#![warn(missing_docs)]
//! # Penny
//!
//! A reproduction of *"Compiler-Directed Soft Error Resilience for
//! Lightweight GPU Register File Protection"* (PLDI 2020).
//!
//! Penny protects GPU register files (RF) against soft errors without the
//! full cost of ECC: registers carry cheap **error detection codes** (parity),
//! and detected errors are **corrected by re-executing compiler-constructed
//! idempotent regions** whose inputs were checkpointed.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — a PTX-like GPU IR with parser, printer and builder.
//! * [`analysis`] — CFG, dominators, loops, liveness, reaching definitions,
//!   alias analysis.
//! * [`compiler`] — the Penny passes (region formation, eager checkpointing,
//!   bimodal placement, overwrite prevention, optimal pruning, storage
//!   assignment, low-level opts, code generation) plus the iGPU and Bolt
//!   baselines.
//! * [`sim`] — a SIMT GPU simulator with a parity/ECC register-file model,
//!   fault injection and the Penny recovery runtime.
//! * [`coding`] — executable ECC/EDC codes (parity, Hamming, SECDED, DECTED,
//!   TECQED) and the register-file hardware cost model.
//! * [`workloads`] — the 25 evaluation kernels.
//! * [`eval`] — the experiment harness regenerating every table and figure.
//!
//! # Quick start
//!
//! ```
//! use penny::compiler::{compile, PennyConfig};
//! use penny::sim::{Gpu, GpuConfig};
//! use penny::workloads;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Pick a workload, compile it with full Penny protection, and run it.
//! let w = workloads::by_abbr("MT").expect("matrix transpose workload");
//! let config = PennyConfig::penny().with_launch(w.dims);
//! let protected = compile(&w.kernel()?, &config)?;
//!
//! let mut gpu = Gpu::new(GpuConfig::fermi());
//! let launch = w.prepare(gpu.global_mut());
//! let stats = gpu.run(&protected, &launch)?;
//! assert!(w.check(gpu.global()));
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use penny_analysis as analysis;
pub use penny_bench as eval;
pub use penny_coding as coding;
pub use penny_core as compiler;
pub use penny_graph as graph;
pub use penny_ir as ir;
pub use penny_sim as sim;
pub use penny_workloads as workloads;
