//! `penny` — the command-line front end.
//!
//! ```text
//! penny compile <file> [--scheme penny|bolt|bolt-global|igpu|none]
//!                      [--grid N] [--block N] [--emit]
//! penny run     <file> [same flags] [--param V]... [--dump ADDR LEN]
//!                      [--inject BLOCK,WARP,LANE,REG,BIT,AFTER]...
//! penny check   <file>                 # parse + verify only
//! ```
//!
//! Kernels are in the PTX-like assembly (see `penny::ir::parser`). `run`
//! zero-fills device memory; use `--fill ADDR LEN SEED` to place
//! deterministic pseudo-random inputs, `--dump ADDR LEN` to print memory
//! after the launch.

use std::process::ExitCode;

use penny::compiler::{compile, LaunchDims, PennyConfig};
use penny::sim::{FaultPlan, Gpu, GpuConfig, Injection, LaunchConfig};

struct Args {
    command: String,
    file: String,
    scheme: String,
    grid: u32,
    block: u32,
    emit: bool,
    params: Vec<u32>,
    fills: Vec<(u32, u32, u32)>,
    dumps: Vec<(u32, u32)>,
    injections: Vec<Injection>,
}

fn usage() -> &'static str {
    "usage: penny <compile|run|check> <file.ptx> \
     [--scheme penny|bolt|bolt-global|igpu|none] [--grid N] [--block N] \
     [--emit] [--param V]... [--fill ADDR LEN SEED]... [--dump ADDR LEN]... \
     [--inject BLOCK,WARP,LANE,REG,BIT,AFTER]..."
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map_err(|e| format!("bad number `{s}`: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(|| usage().to_string())?;
    let file = it.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        command,
        file,
        scheme: "penny".into(),
        grid: 4,
        block: 32,
        emit: false,
        params: Vec::new(),
        fills: Vec::new(),
        dumps: Vec::new(),
        injections: Vec::new(),
    };
    while let Some(flag) = it.next() {
        let mut next = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--scheme" => args.scheme = next()?,
            "--grid" => args.grid = parse_u32(&next()?)?,
            "--block" => args.block = parse_u32(&next()?)?,
            "--emit" => args.emit = true,
            "--param" => args.params.push(parse_u32(&next()?)?),
            "--fill" => {
                let (a, l, s) =
                    (parse_u32(&next()?)?, parse_u32(&next()?)?, parse_u32(&next()?)?);
                args.fills.push((a, l, s));
            }
            "--dump" => {
                let (a, l) = (parse_u32(&next()?)?, parse_u32(&next()?)?);
                args.dumps.push((a, l));
            }
            "--inject" => {
                let spec = next()?;
                let parts: Vec<u32> = spec
                    .split(',')
                    .map(parse_u32)
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--inject {spec}: {e}"))?;
                if parts.len() != 6 {
                    return Err(format!("--inject wants 6 fields, got {}", parts.len()));
                }
                args.injections.push(Injection {
                    block: parts[0],
                    warp: parts[1],
                    lane: parts[2],
                    reg: parts[3],
                    bit: parts[4],
                    after_warp_insts: parts[5] as u64,
                });
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn config_for(scheme: &str, dims: LaunchDims) -> Result<PennyConfig, String> {
    let cfg = match scheme {
        "penny" => PennyConfig::penny(),
        "bolt" => PennyConfig::bolt_auto(),
        "bolt-global" => PennyConfig::bolt_global(),
        "igpu" => PennyConfig::igpu(),
        "none" => PennyConfig::unprotected(),
        other => return Err(format!("unknown scheme `{other}`")),
    };
    Ok(cfg.with_launch(dims))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("penny: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text =
        std::fs::read_to_string(&args.file).map_err(|e| format!("{}: {e}", args.file))?;
    let kernel =
        penny::ir::parse_kernel(&text).map_err(|e| format!("{}: {e}", args.file))?;
    penny::ir::validate(&kernel).map_err(|e| format!("{}: {e}", args.file))?;

    match args.command.as_str() {
        "check" => {
            println!(
                "{}: ok ({} blocks, {} instructions, {} params)",
                kernel.name,
                kernel.num_blocks(),
                kernel.num_insts(),
                kernel.params.len()
            );
            Ok(())
        }
        "compile" => {
            let dims = LaunchDims::linear(args.grid, args.block);
            let cfg = config_for(&args.scheme, dims)?;
            let protected = compile(&kernel, &cfg).map_err(|e| e.to_string())?;
            let s = &protected.stats;
            println!("scheme: {}", args.scheme);
            println!("regions:            {}", s.regions);
            println!(
                "checkpoints:        {} considered, {} committed",
                s.total_checkpoints, s.committed
            );
            println!("  pruned (basic):   {}", s.pruned_basic);
            println!("  pruned (optimal): +{}", s.pruned_additional);
            println!(
                "overwrite-prone:    {} regs, {} adjustment blocks",
                s.overwrite_prone_regs, s.adjustment_blocks
            );
            println!("regs/thread:        {}", s.regs_per_thread);
            println!(
                "ckpt storage:       {} B shared, {} global slots",
                s.ckpt_shared_bytes, s.ckpt_global_slots
            );
            println!("est. occupancy:     {:.0}%", s.occupancy * 100.0);
            if args.emit {
                println!("\n{}", protected.kernel);
            }
            Ok(())
        }
        "run" => {
            let dims = LaunchDims::linear(args.grid, args.block);
            let cfg = config_for(&args.scheme, dims)?;
            let protected = compile(&kernel, &cfg).map_err(|e| e.to_string())?;
            if args.params.len() != kernel.params.len() {
                return Err(format!(
                    "kernel takes {} params ({}), {} given via --param",
                    kernel.params.len(),
                    kernel
                        .params
                        .iter()
                        .map(|p| p.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    args.params.len()
                ));
            }
            let gpu_config = match args.scheme.as_str() {
                "none" => GpuConfig::fermi().with_rf(penny::sim::RfProtection::None),
                "igpu" => GpuConfig::fermi()
                    .with_rf(penny::sim::RfProtection::Ecc(penny::coding::Scheme::Secded)),
                _ => GpuConfig::fermi(),
            };
            let mut gpu = Gpu::new(gpu_config);
            for &(addr, len, seed) in &args.fills {
                let mut rng = penny::workloads::util::XorShift32::new(seed);
                let data: Vec<u32> = (0..len).map(|_| rng.next_u32() % 1000).collect();
                gpu.global_mut().write_slice(addr, &data);
            }
            let launch = LaunchConfig::new(dims, args.params.clone())
                .with_faults(FaultPlan { injections: args.injections.clone() });
            let stats = gpu.run(&protected, &launch).map_err(|e| e.to_string())?;
            println!("cycles:          {}", stats.cycles);
            println!("instructions:    {}", stats.instructions);
            println!(
                "rf accesses:     {} reads, {} writes",
                stats.rf.reads, stats.rf.writes
            );
            println!("errors detected: {}", stats.rf.detected);
            println!("recoveries:      {}", stats.recoveries);
            for &(addr, len) in &args.dumps {
                let words = gpu.global().read_slice(addr, len as usize);
                println!("[0x{addr:08X}..+{len}] = {words:?}");
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
