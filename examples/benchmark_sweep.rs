//! Benchmark sweep: reproduce the paper's headline comparison (figure 9)
//! on any subset of the 25 workloads, from the command line.
//!
//! ```text
//! cargo run --release --example benchmark_sweep            # all 25
//! cargo run --release --example benchmark_sweep SGEMM STC  # a subset
//! ```

use penny::eval::report::render_figure;
use penny::eval::runner::{gmean, run_scheme, SchemeId};
use penny::eval::{Figure, Series};
use penny::sim::GpuConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<_> = penny::workloads::all()
        .into_iter()
        .filter(|w| args.is_empty() || args.iter().any(|a| a == w.abbr))
        .collect();
    if workloads.is_empty() {
        eprintln!("no matching workloads; known abbreviations:");
        for w in penny::workloads::all() {
            eprint!(" {}", w.abbr);
        }
        eprintln!();
        std::process::exit(1);
    }

    let gpu = GpuConfig::fermi();
    let schemes =
        [SchemeId::IGpu, SchemeId::BoltGlobal, SchemeId::BoltAuto, SchemeId::Penny];
    let mut series = Vec::new();
    for scheme in schemes {
        let mut values = Vec::new();
        for w in &workloads {
            let base = run_scheme(w, SchemeId::Baseline, &gpu).run.cycles as f64;
            let m = run_scheme(w, scheme, &gpu.clone().with_rf(scheme.rf()));
            values.push((w.abbr.to_string(), m.run.cycles as f64 / base));
        }
        let g = gmean(&values.iter().map(|(_, v)| *v).collect::<Vec<_>>());
        println!("{:<18} gmean overhead: {:+.1}%", scheme.name(), (g - 1.0) * 100.0);
        series.push(Series::new(scheme.name(), values));
    }
    let fig = Figure {
        title: "fault-free execution time, normalized to unprotected baseline".into(),
        workloads: workloads.iter().map(|w| w.abbr.to_string()).collect(),
        series,
    };
    println!("{}", render_figure(&fig));
}
