//! Compiler tour: watch Penny transform a kernel pass by pass —
//! region formation, eager checkpointing, overwrite prevention, optimal
//! pruning, and final lowering.
//!
//! ```text
//! cargo run --release --example compiler_tour
//! ```

use penny::analysis::{AliasOptions, Liveness, ReachingDefs};
use penny::compiler::{
    checkpoint, compile, overwrite, regions, LaunchDims, PennyConfig, RegionMap, Restore,
};

const SOURCE: &str = r#"
    .kernel tour .params A N
    entry:
        mov.u32 %r0, %tid.x
        ld.param.u32 %r1, [A]
        ld.param.u32 %r2, [N]
        shl.u32 %r3, %r0, 2
        add.u32 %r4, %r1, %r3
        ld.global.u32 %r5, [%r4]
        mul.u32 %r6, %r5, 7
        st.global.u32 [%r4], %r6
        add.u32 %r7, %r6, %r2
        st.global.u32 [%r4], %r7
        ret
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = penny::ir::parse_kernel(SOURCE)?;
    println!("== original kernel ==\n{kernel}");

    // Pass 1: region formation. The load/store pair on [%r4] is a memory
    // anti-dependence, so a boundary lands before each aliasing store.
    regions::form_regions(&mut kernel, AliasOptions::default());
    println!("== after region formation ==\n{kernel}");

    // Pass 2: eager checkpointing of region live-ins at their LUPs.
    let rm = RegionMap::compute(&kernel);
    let lv = Liveness::compute(&kernel);
    let rd = ReachingDefs::compute(&kernel);
    let live = checkpoint::region_live_ins(&kernel, &rm, &lv);
    for (i, regs) in live.iter().enumerate() {
        println!("live-ins of R{i}: {regs:?}");
    }
    let edges = checkpoint::lup_edges(&kernel, &rm, &live, &rd);
    let placements = checkpoint::eager_placement(&edges);
    checkpoint::insert_checkpoints(&mut kernel, &placements);
    println!("\n== after eager checkpointing ==\n{kernel}");

    // Pass 3: overwrite prevention (2-coloring storage alternation).
    let out = overwrite::apply_alternation(&mut kernel, &rm);
    println!(
        "overwrite-prone registers: {:?} (adjustment blocks: {})\n",
        out.prone, out.adjustment_blocks
    );

    // The full pipeline (with optimal pruning + lowering) from the top:
    let original = penny::ir::parse_kernel(SOURCE)?;
    let config = PennyConfig::penny().with_launch(LaunchDims::linear(4, 32));
    let protected = compile(&original, &config)?;
    println!("== fully compiled (checkpoints pruned + lowered) ==\n{}", protected.kernel);
    println!(
        "stats: {} checkpoints considered, {} committed, {} regions",
        protected.stats.total_checkpoints,
        protected.stats.committed,
        protected.stats.regions
    );
    for region in &protected.regions {
        for (reg, restore) in &region.restores {
            let how = match restore {
                Restore::Slot(s) => format!("slot {s:?}"),
                Restore::Slice(sl) => format!("recovery slice ({} ops)", sl.len()),
            };
            println!("  restore {reg} of {}: {how}", region.id);
        }
    }
    Ok(())
}
