//! Error-coverage study: how the same coding budget behaves as ECC
//! versus as Penny's detection-only EDC (the paper's Table 1 argument,
//! exercised bit-by-bit on the executable codes).
//!
//! ```text
//! cargo run --release --example error_coverage
//! ```

use penny::coding::{Decode, Scheme};

/// Counts outcomes of every k-bit error pattern (sampled deterministically
/// when the space is large).
fn sweep(scheme: Scheme, flips: usize) -> (u64, u64, u64, u64) {
    let codec = scheme.codec().expect("codec");
    let n = codec.n();
    let data = 0x5A5A_C3C3u32;
    let word = codec.encode(data);
    let (mut clean, mut corrected, mut detected, mut miscorrected) = (0, 0, 0, 0);
    let mut pattern: Vec<usize> = (0..flips).collect();
    let mut tested = 0u64;
    loop {
        let mut w = word;
        for &b in &pattern {
            w ^= 1u64 << b;
        }
        match codec.decode(w) {
            Decode::Clean(d) if d == data => clean += 1,
            Decode::Clean(_) => miscorrected += 1,
            Decode::Corrected { data: d, .. } if d == data => corrected += 1,
            Decode::Corrected { .. } => miscorrected += 1,
            Decode::Detected => detected += 1,
        }
        tested += 1;
        // Next combination (lexicographic), bounded for big spaces.
        let mut i = flips;
        loop {
            if i == 0 {
                return (clean, corrected, detected, miscorrected);
            }
            i -= 1;
            pattern[i] += 1;
            if pattern[i] <= n - (flips - i) {
                for j in i + 1..flips {
                    pattern[j] = pattern[j - 1] + 1;
                }
                break;
            }
        }
        if tested >= 20_000 {
            return (clean, corrected, detected, miscorrected);
        }
    }
}

fn main() {
    println!("error outcomes per scheme (data word 0x5A5AC3C3):\n");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>13}",
        "scheme", "flips", "clean", "corrected", "detected", "miscorrected"
    );
    for scheme in [Scheme::Parity, Scheme::Hamming, Scheme::Secded, Scheme::Dected] {
        for flips in 1..=4usize {
            let (clean, corrected, detected, mis) = sweep(scheme, flips);
            println!(
                "{:<10} {:>6} {:>10} {:>10} {:>10} {:>13}",
                scheme.name(),
                flips,
                clean,
                corrected,
                detected,
                mis
            );
        }
        println!();
    }
    println!("Reading guide:");
    println!("* Parity detects every odd-weight error but no even-weight one —");
    println!("  enough for Penny, because detection + idempotent re-execution");
    println!("  equals correction at a fraction of ECC's bit budget.");
    println!("* SECDED corrects single flips inline but *miscorrects* some");
    println!("  3-bit patterns — exactly why the paper runs the same code in");
    println!("  detection-only mode under Penny to survive 3-bit errors.");
}
