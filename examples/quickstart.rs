//! Quickstart: protect a kernel with Penny and watch it survive a
//! register-file soft error.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use penny::compiler::{compile, LaunchDims, PennyConfig};
use penny::sim::{FaultPlan, Gpu, GpuConfig, Injection, LaunchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small CUDA-style kernel in the PTX-like assembly: each thread
    // triples its element and adds its global id.
    let kernel = penny::ir::parse_kernel(
        r#"
        .kernel triple .params IN OUT N
        entry:
            mov.u32 %r0, %tid.x
            mov.u32 %r1, %ctaid.x
            mov.u32 %r2, %ntid.x
            mad.u32 %r3, %r1, %r2, %r0
            ld.param.u32 %r4, [IN]
            ld.param.u32 %r5, [OUT]
            ld.param.u32 %r6, [N]
            setp.lt.u32 %p0, %r3, %r6
            bra %p0, body, exit
        body:
            shl.u32 %r7, %r3, 2
            add.u32 %r8, %r4, %r7
            add.u32 %r9, %r5, %r7
            ld.global.u32 %r10, [%r8]
            mul.u32 %r11, %r10, 3
            add.u32 %r12, %r11, %r3
            st.global.u32 [%r9], %r12
            ld.global.u32 %r13, [%r9]
            add.u32 %r14, %r13, %r3
            st.global.u32 [%r9], %r14
            jmp exit
        exit:
            ret
    "#,
    )?;

    // Compile with full Penny protection: idempotent regions, eagerly
    // checkpointed live-ins (bimodal placement), optimal pruning,
    // occupancy-aware checkpoint storage.
    let dims = LaunchDims::linear(4, 32);
    let config = PennyConfig::penny().with_launch(dims);
    let protected = compile(&kernel, &config)?;
    println!("kernel `triple` compiled with Penny:");
    println!("  regions formed:        {}", protected.stats.regions);
    println!("  checkpoints considered:{:>3}", protected.stats.total_checkpoints);
    println!("  committed after prune: {:>3}", protected.stats.committed);
    println!("  est. occupancy:        {:.0}%", protected.stats.occupancy * 100.0);

    // Inject a 3-bit soft error into thread 17's output-address register
    // %r9. Instruction counts shift with instrumentation, so sweep the
    // trigger point until the fault lands inside the register's live
    // window; parity then detects it at the next read and Penny's
    // runtime restores the region's live-ins and re-executes.
    let expected: Vec<u32> = (0..128u32).map(|i| i * 11 * 3 + i + i).collect();
    let mut detected_total = 0u64;
    let mut recovered_total = 0u64;
    for after in 1..40 {
        let mut gpu = Gpu::new(GpuConfig::fermi()); // parity-protected RF
        let input: Vec<u32> = (0..128).map(|i| i * 11).collect();
        gpu.global_mut().write_slice(0x1_0000, &input);
        let mk = |bit| Injection {
            block: 0,
            warp: 0,
            lane: 17,
            reg: 9,
            bit,
            after_warp_insts: after,
        };
        let faults = FaultPlan { injections: vec![mk(2), mk(9), mk(30)] };
        let launch =
            LaunchConfig::new(dims, vec![0x1_0000, 0x2_0000, 128]).with_faults(faults);
        let stats = gpu.run(&protected, &launch)?;
        let out = gpu.global().read_slice(0x2_0000, 128);
        assert_eq!(out, expected, "output must match the fault-free result");
        detected_total += stats.rf.detected;
        recovered_total += stats.recoveries;
    }
    println!("\nswept 39 injection points into register %r9 (3 bits each):");
    println!("  errors detected by parity: {detected_total}");
    println!("  region re-executions:      {recovered_total}");
    println!("  output verified after every run: matches the fault-free result ✓");
    assert!(detected_total > 0, "demo must exercise the detection path");
    Ok(())
}
