//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size bound for generated collections: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn draw(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` aiming for a size in `size`
/// (duplicates permitting — draws are capped, like real proptest when
/// the element domain is small).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.draw(rng);
        let mut out = HashSet::with_capacity(target);
        let mut tries = 0;
        while out.len() < target && tries < target * 20 + 20 {
            out.insert(self.element.sample(rng));
            tries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..50 {
            let v = vec(0u8..5, 0..12).sample(&mut rng);
            assert!(v.len() < 12);
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(1u64..20, 6).sample(&mut rng);
        assert_eq!(exact.len(), 6);
    }

    #[test]
    fn hash_set_reaches_target() {
        let mut rng = TestRng::for_test("set");
        for _ in 0..50 {
            let s = hash_set(0u32..33, 1..9).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 9);
            assert!(s.iter().all(|&x| x < 33));
        }
    }
}
