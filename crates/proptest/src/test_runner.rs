//! The minimal test runner: a deterministic per-test RNG and the
//! rejection sentinel `prop_assume!` returns.

/// Sentinel for a rejected case (from `prop_assume!`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject;

/// Deterministic xoshiro256++ generator, seeded from the test's full
/// module path so every test gets a stable but distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the RNG for a named test (FNV-1a over the name, then
    /// SplitMix64 state expansion).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_test("t");
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
