//! `any::<T>()` support for typed `proptest!` parameters.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

/// The strategy for an arbitrary value of `T` (primitives only).
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_space_roughly() {
        let mut rng = TestRng::for_test("any");
        let mut small = 0;
        for _ in 0..1000 {
            if any::<u32>().sample(&mut rng) < u32::MAX / 2 {
                small += 1;
            }
        }
        assert!((300..700).contains(&small), "{small}");
        let b = any::<bool>();
        let flips: Vec<bool> = (0..10).map(|_| b.sample(&mut rng)).collect();
        assert!(flips.iter().any(|&x| x) && flips.iter().any(|&x| !x));
    }
}
