//! Value-generation strategies: ranges, `Just`, unions, tuples, and
//! approximate string patterns.

use crate::test_runner::TestRng;

/// A source of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies with a common value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; the option list must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Approximate string-pattern strategy: a `&str` used as a strategy
/// yields random printable text whose length honors a trailing
/// `{lo,hi}` bound when present (default up to 32 chars). The pattern
/// body itself is not interpreted.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_count_suffix(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            // Mostly ASCII printable (heavy on the parser's alphabet),
            // with occasional non-ASCII to probe UTF-8 handling.
            let c = match rng.below(20) {
                0 => char::from_u32(0xA1 + rng.below(0x200) as u32).unwrap_or('§'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

/// Parses a trailing `{lo,hi}` repetition bound from a pattern.
fn parse_count_suffix(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let inner = &body[open + 1..];
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn just_and_union() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![boxed(Just("a")), boxed(Just("b"))]);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..50 {
            match u.sample(&mut rng) {
                "a" => seen_a = true,
                "b" => seen_b = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuples");
        let (a, b, c) = (0usize..7, 0usize..7, 1u64..16).sample(&mut rng);
        assert!(a < 7 && b < 7 && (1..16).contains(&c));
    }

    #[test]
    fn string_pattern_honors_counts() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..20 {
            let s = "\\PC{0,200}".sample(&mut rng);
            assert!(s.chars().count() <= 200);
        }
        assert_eq!(parse_count_suffix("\\PC{0,200}"), Some((0, 200)));
        assert_eq!(parse_count_suffix("abc"), None);
    }
}
