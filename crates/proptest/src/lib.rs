//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! member shadows registry `proptest` with the subset this repo's
//! property tests use: the [`proptest!`] macro (typed params and
//! `name in strategy` params), integer/float range strategies,
//! [`strategy::Just`], [`prop_oneof!`], `collection::{vec, hash_set}`,
//! string-pattern strategies (approximate — sized random printable
//! text), and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case prints
//! its inputs and panics as-is), and string "regex" strategies only
//! honor the trailing `{lo,hi}` length bound. Both are immaterial to
//! the invariants the tests check.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Per-`proptest!`-block configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (it is not counted against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn` items
/// whose parameters are `name: Type` (uses [`arbitrary::any`]) or
/// `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( $cfg:tt ) => {};
    ( $cfg:tt
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_case! { $cfg $name [] ( $($params)* ) $body }
        $crate::__proptest_items! { $cfg $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All params munched: emit the test.
    ( ($cfg:expr) $name:ident [ $(($n:ident ; $s:expr))* ] ( ) $body:block ) => {
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(__cfg.cases);
            while __accepted < __cfg.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $n = $crate::Strategy::sample(&($s), &mut __rng);)*
                // Snapshot inputs before the body may consume them, so a
                // failing case can still report what it was given.
                let __inputs: ::std::vec::Vec<(&str, ::std::string::String)> = vec![
                    $((stringify!($n), format!("{:?}", &$n)),)*
                ];
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match __outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {
                        __accepted += 1;
                    }
                    ::core::result::Result::Ok(::core::result::Result::Err(
                        $crate::test_runner::Reject,
                    )) => {}
                    ::core::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:",
                            __accepted + 1,
                            __cfg.cases,
                            stringify!($name)
                        );
                        for (__pname, __pval) in &__inputs {
                            eprintln!("  {__pname} = {__pval}");
                        }
                        ::std::panic::resume_unwind(__payload);
                    }
                }
                let _ = &__inputs;
            }
        }
    };
    // `name in strategy, rest...`
    ( $cfg:tt $name:ident [ $($acc:tt)* ] ( $n:ident in $s:expr, $($rest:tt)* ) $body:block ) => {
        $crate::__proptest_case! { $cfg $name [ $($acc)* ($n ; $s) ] ( $($rest)* ) $body }
    };
    ( $cfg:tt $name:ident [ $($acc:tt)* ] ( $n:ident in $s:expr ) $body:block ) => {
        $crate::__proptest_case! { $cfg $name [ $($acc)* ($n ; $s) ] ( ) $body }
    };
    // `name: Type, rest...`
    ( $cfg:tt $name:ident [ $($acc:tt)* ] ( $n:ident : $t:ty, $($rest:tt)* ) $body:block ) => {
        $crate::__proptest_case! {
            $cfg $name [ $($acc)* ($n ; $crate::arbitrary::any::<$t>()) ] ( $($rest)* ) $body
        }
    };
    ( $cfg:tt $name:ident [ $($acc:tt)* ] ( $n:ident : $t:ty ) $body:block ) => {
        $crate::__proptest_case! {
            $cfg $name [ $($acc)* ($n ; $crate::arbitrary::any::<$t>()) ] ( ) $body
        }
    };
}
