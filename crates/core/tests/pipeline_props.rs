//! Property-based tests of the full compile pipeline on generated
//! kernels: every configuration must produce valid, anti-dependence-free,
//! recoverable code.

use proptest::prelude::*;

use penny_analysis::{AliasOptions, Liveness};
use penny_core::{
    checkpoint, compile, regions, LaunchDims, OverwritePolicy, PennyConfig, Protection,
    PruningMode, RegionMap, Restore, StoragePolicy,
};
use penny_ir::{Cmp, Kernel, KernelBuilder, MemSpace, Special, Type};

/// Structured random kernels: optional guard, a body with in-place
/// memory updates (forcing cuts), an optional loop, and divergence.
fn gen_kernel(shape: u8, ops: &[u8]) -> Kernel {
    let mut b = KernelBuilder::new("pipe", &["A", "B"]);
    b.block("entry");
    let tid = b.special(Special::TidX);
    let a = b.ld_param("A");
    let bb = b.ld_param("B");
    let off = b.shl(Type::U32, tid, 2u32);
    let addr = b.add(Type::U32, a, off);
    let out = b.add(Type::U32, bb, off);
    let mut v = b.ld(MemSpace::Global, Type::U32, addr, 0);

    if shape.is_multiple_of(2) {
        // A loop with an in-place update: regions per iteration.
        let head = b.block("head");
        let exit = b.block("exit");
        let i = b.imm(0);
        b.jump(head);
        b.select(head);
        for (j, op) in ops.iter().enumerate() {
            let c = (j as u32 + 1) | 1;
            v = match op % 4 {
                0 => b.add(Type::U32, v, c),
                1 => b.mul(Type::U32, v, c),
                2 => {
                    let t = b.ld(MemSpace::Global, Type::U32, addr, 0);
                    let u = b.add(Type::U32, t, v);
                    b.st(MemSpace::Global, addr, 0, u);
                    u
                }
                _ => b.xor(Type::U32, v, i),
            };
        }
        let ni = b.add(Type::U32, i, 1u32);
        b.mov_to(Type::U32, i, ni);
        let p = b.setp(Cmp::Lt, Type::U32, i, 3u32);
        b.branch(p, false, head, exit);
        b.select(exit);
        b.st(MemSpace::Global, out, 0, v);
        b.ret();
    } else {
        // Divergent in-place updates.
        let hot = b.block("hot");
        let cold = b.block("cold");
        let join = b.block("join");
        let p = b.setp(Cmp::Lt, Type::U32, tid, 13u32);
        let merged = b.fresh();
        b.branch(p, false, hot, cold);
        b.select(hot);
        let mut hv = v;
        for (j, op) in ops.iter().enumerate() {
            let c = (j as u32 + 1) | 1;
            hv = match op % 3 {
                0 => b.add(Type::U32, hv, c),
                1 => {
                    let t = b.ld(MemSpace::Global, Type::U32, addr, 0);
                    let u = b.xor(Type::U32, t, hv);
                    b.st(MemSpace::Global, addr, 0, u);
                    u
                }
                _ => b.mul(Type::U32, hv, c),
            };
        }
        b.mov_to(Type::U32, merged, hv);
        b.jump(join);
        b.select(cold);
        let cv = b.add(Type::U32, v, 7u32);
        b.mov_to(Type::U32, merged, cv);
        b.jump(join);
        b.select(join);
        b.st(MemSpace::Global, out, 0, merged);
        b.ret();
    }
    let k = b.finish();
    penny_ir::validate(&k).expect("generator produced invalid kernel");
    k
}

fn configs() -> Vec<PennyConfig> {
    let dims = LaunchDims::linear(2, 32);
    let mut cfgs = vec![
        PennyConfig::penny().with_launch(dims),
        PennyConfig::bolt_global().with_launch(dims),
        PennyConfig::bolt_auto().with_launch(dims),
        PennyConfig::igpu().with_launch(dims),
        PennyConfig {
            overwrite: OverwritePolicy::Renaming,
            ..PennyConfig::penny().with_launch(dims)
        },
        PennyConfig {
            overwrite: OverwritePolicy::Alternation,
            storage: StoragePolicy::Shared,
            pruning: PruningMode::None,
            bcp: false,
            low_opts: false,
            ..PennyConfig::penny().with_launch(dims)
        },
    ];
    cfgs.push(PennyConfig { protection: Protection::None, ..cfgs[0].clone() });
    cfgs
}

/// The invariant body shared by the property test and pinned
/// regressions: the pipeline never produces invalid code, never leaves a
/// memory anti-dependence inside a region, and always gives every region
/// live-in a restore plan.
fn check_pipeline_invariants(kernel: &Kernel) {
    for cfg in configs() {
        let protected = compile(kernel, &cfg).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        penny_ir::validate(&protected.kernel)
            .unwrap_or_else(|e| panic!("{cfg:?}: output invalid: {e}"));
        if matches!(cfg.protection, Protection::None) {
            continue;
        }
        // No anti-dependence survives inside any region.
        assert!(
            regions::verify_no_antidep(&protected.kernel, AliasOptions::default()),
            "anti-dependence survives under {cfg:?}"
        );
        // Every live-in of every region has a restore (skip iGPU:
        // it relies on ECC, not restores).
        if matches!(cfg.protection, Protection::Penny | Protection::Bolt) {
            let rm = RegionMap::compute(&protected.kernel);
            let lv = Liveness::compute(&protected.kernel);
            let live = checkpoint::region_live_ins(&protected.kernel, &rm, &lv);
            for info in &protected.regions {
                let region_live = &live[info.id.index()];
                for reg in region_live {
                    // Codegen setup registers are restored separately.
                    let in_restores = info.restores.iter().any(|(r, _)| r == reg);
                    let in_setup = protected.setup.iter().any(|(r, _)| r == reg);
                    assert!(
                        in_restores || in_setup,
                        "{reg} live into {} has no restore under {cfg:?}",
                        info.id
                    );
                }
                for (_, restore) in &info.restores {
                    if let Restore::Slice(s) = restore {
                        assert!(!s.is_empty());
                    }
                }
            }
        }
    }
}

/// Postconditions of region formation alone, shared likewise.
fn check_region_formation(kernel: &Kernel) {
    let mut k = kernel.clone();
    let n = regions::form_regions(&mut k, AliasOptions::default());
    assert!(n >= 1);
    assert!(regions::regions_are_dense(&k));
    assert!(regions::verify_no_antidep(&k, AliasOptions::default()));
    penny_ir::validate(&k).expect("valid after region formation");
    assert_eq!(regions::region_count(&k), n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_invariants(shape: u8, ops in proptest::collection::vec(0u8..4, 1..10)) {
        check_pipeline_invariants(&gen_kernel(shape, &ops));
    }

    #[test]
    fn region_formation_postconditions(shape: u8, ops in proptest::collection::vec(0u8..4, 1..10)) {
        check_region_formation(&gen_kernel(shape, &ops));
    }
}

/// Pinned from a proptest-regressions seed (`shape = 0, ops = [2]`): the
/// minimal loop whose only body op is the in-place load/add/store — the
/// smallest kernel with a loop-carried anti-dependence, which once
/// tripped the pipeline. Kept as a named test so the case survives
/// regression-file cleanups.
#[test]
fn regression_minimal_loop_inplace_update() {
    let kernel = gen_kernel(0, &[2]);
    check_pipeline_invariants(&kernel);
    check_region_formation(&kernel);
}
