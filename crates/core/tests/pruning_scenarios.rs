//! Scenario tests for the optimal pruning phases: trivially prunable
//! values, committed memory-dependent values, and the phase-2 decision
//! dependences where one checkpoint's fate rides on another's.

use penny_analysis::{AliasOptions, Liveness, ReachingDefs};
use penny_core::{checkpoint, regions, PruningMode, RegionMap};
use penny_ir::{Kernel, VReg};

fn prepared(src: &str) -> (Kernel, RegionMap) {
    let mut k = penny_ir::parse_kernel(src).expect("parse");
    regions::form_regions(&mut k, AliasOptions::default());
    let rm = RegionMap::compute(&k);
    let lv = Liveness::compute(&k);
    let rd = ReachingDefs::compute(&k);
    let live = checkpoint::region_live_ins(&k, &rm, &lv);
    let edges = checkpoint::lup_edges(&k, &rm, &live, &rd);
    let ps = checkpoint::eager_placement(&edges);
    checkpoint::insert_checkpoints(&mut k, &ps);
    let rm = RegionMap::compute(&k);
    (k, rm)
}

fn pruned_regs(k: &Kernel, out: &penny_core::pruning::PruneOutcome) -> Vec<VReg> {
    out.decisions
        .pruned
        .iter()
        .map(|&id| k.inst_at(k.find_inst(id).expect("cp")).ckpt_reg())
        .collect()
}

fn committed_regs(k: &Kernel, out: &penny_core::pruning::PruneOutcome) -> Vec<VReg> {
    out.decisions
        .committed
        .iter()
        .map(|&id| k.inst_at(k.find_inst(id).expect("cp")).ckpt_reg())
        .collect()
}

/// A value derived from another checkpointed value whose own recompute
/// fails (memory overwritten): its pruning decision *depends on* the
/// other checkpoint being committed — the ϕU → phase-2 path.
#[test]
fn dependent_value_prunes_via_committed_checkpoint() {
    // %r1 loads from memory that is later overwritten -> its checkpoint
    // must commit. %r2 = %r1 + 1 is recomputable *from %r1's slot*:
    // phase 2 should prune %r2's checkpoint with a LoadSlot slice.
    let (k, rm) = prepared(
        r#"
        .kernel dep
        entry:
            mov.u32 %r0, 64
            ld.global.u32 %r1, [%r0]
            add.u32 %r2, %r1, 1
            st.global.u32 [%r0], %r2
            add.u32 %r3, %r2, %r1
            st.global.u32 [%r0+4], %r3
            ret
    "#,
    );
    let out = penny_core::pruning::prune(&k, &rm, PruningMode::Optimal);
    let committed = committed_regs(&k, &out);
    let pruned = pruned_regs(&k, &out);
    assert!(
        committed.contains(&VReg(1)),
        "memory-dependent %r1 must commit: committed={committed:?}"
    );
    assert!(
        pruned.contains(&VReg(2)),
        "%r2 should prune via %r1's slot: pruned={pruned:?} committed={committed:?}"
    );
}

/// Negated-branch predicate dependence: values defined under `@!p`-style
/// control still reconstruct with the right select polarity.
#[test]
fn negated_branch_polarity_is_respected() {
    let (k, rm) = prepared(
        r#"
        .kernel neg .params A
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [A]
            setp.ge.u32 %p0, %r0, 16
            bra !%p0, low, high
        low:
            mov.u32 %r2, 111
            jmp join
        high:
            mov.u32 %r2, 222
            jmp join
        join:
            shl.u32 %r3, %r0, 2
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            st.global.u32 [%r4], %r5
            add.u32 %r6, %r5, %r2
            st.global.u32 [%r4+4], %r6
            ret
    "#,
    );
    let out = penny_core::pruning::prune(&k, &rm, PruningMode::Optimal);
    let pruned = pruned_regs(&k, &out);
    assert!(pruned.contains(&VReg(3)), "merged %r2 (VReg 3) should prune: {pruned:?}");
}

/// Checkpoints with no consumers (dead) always prune, in both modes.
#[test]
fn dead_checkpoints_prune_in_basic_mode_too() {
    let (k, rm) = prepared(
        r#"
        .kernel live .params A B
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [A]
            ld.param.u32 %r2, [B]
            shl.u32 %r3, %r0, 2
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            st.global.u32 [%r4], %r5
            add.u32 %r6, %r2, %r3
            st.global.u32 [%r6], %r5
            ret
    "#,
    );
    for mode in [PruningMode::Optimal, PruningMode::Basic { seed: 9, trials: 32 }] {
        let out = penny_core::pruning::prune(&k, &rm, mode);
        assert_eq!(
            out.decisions.pruned.len() + out.decisions.committed.len(),
            out.total as usize
        );
    }
}

/// Optimal pruning is deterministic: same input, same decisions.
#[test]
fn optimal_pruning_is_deterministic() {
    let src = r#"
        .kernel det .params A N
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [A]
            ld.param.u32 %r2, [N]
            shl.u32 %r3, %r0, 2
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            mul.u32 %r6, %r5, %r2
            st.global.u32 [%r4], %r6
            add.u32 %r7, %r6, 1
            st.global.u32 [%r4], %r7
            ret
    "#;
    let (k1, rm1) = prepared(src);
    let (k2, rm2) = prepared(src);
    let a = penny_core::pruning::prune(&k1, &rm1, PruningMode::Optimal);
    let b = penny_core::pruning::prune(&k2, &rm2, PruningMode::Optimal);
    assert_eq!(a.decisions.pruned.len(), b.decisions.pruned.len());
    assert_eq!(a.optimal_pruned_count, b.optimal_pruned_count);
    assert_eq!(a.basic_pruned_count, b.basic_pruned_count);
}

/// Bolt's random search never prunes a checkpoint the validator rejects:
/// whatever it returns, the committed set still covers every region
/// live-in through slots or buildable slices (compile-level check).
#[test]
fn basic_pruning_is_safe_end_to_end() {
    use penny_core::{compile, LaunchDims, PennyConfig};
    let src = r#"
        .kernel safe .params A
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [A]
            shl.u32 %r2, %r0, 2
            add.u32 %r3, %r1, %r2
            ld.global.u32 %r4, [%r3]
            add.u32 %r5, %r4, 3
            st.global.u32 [%r3], %r5
            mul.u32 %r6, %r5, %r4
            st.global.u32 [%r3], %r6
            ret
    "#;
    let kernel = penny_ir::parse_kernel(src).expect("parse");
    for seed in 0..10u64 {
        let cfg = PennyConfig {
            pruning: PruningMode::Basic { seed, trials: 32 },
            ..PennyConfig::penny()
        }
        .with_launch(LaunchDims::linear(1, 32));
        let protected = compile(&kernel, &cfg).expect("compile");
        for region in &protected.regions {
            for (_, restore) in &region.restores {
                if let penny_core::Restore::Slice(s) = restore {
                    assert!(!s.is_empty());
                }
            }
        }
    }
}
