//! Tests for the static protection-invariant validator
//! (`penny_core::check`): the stock pipeline passes every invariant, and
//! hand-broken instrumented programs are rejected with errors named
//! after the violated invariant.

use std::collections::HashSet;

use penny_analysis::{AliasOptions, Liveness, ReachingDefs};
use penny_core::check::{
    check_coverage, check_idempotence, check_instrumented, check_pruning,
    check_slot_consistency, check_slot_width, Invariant,
};
use penny_core::checkpoint::{
    eager_placement, insert_checkpoints, lup_edges, region_live_ins,
};
use penny_core::overwrite::apply_alternation;
use penny_core::regions::form_regions;
use penny_core::{compile, CompileError, PennyConfig, RegionMap};
use penny_ir::{parse_kernel, Color, Kernel, Op, VReg};

/// In-place update: one anti-dependence, two regions, simple restores.
const K_INPLACE: &str = r#"
    .kernel t .params A N
    entry:
        mov.u32 %r0, %tid.x
        ld.param.u32 %r1, [A]
        ld.param.u32 %r2, [N]
        shl.u32 %r3, %r0, 2
        add.u32 %r4, %r1, %r3
        ld.global.u32 %r5, [%r4]
        add.u32 %r6, %r5, %r2
        st.global.u32 [%r4], %r6
        st.global.u32 [%r4], %r0
        ret
"#;

/// Loop with a per-iteration anti-dependence: regions inside the loop,
/// loop-carried live-ins, overwrite-prone registers.
const K_LOOP: &str = r#"
    .kernel l .params A N
    entry:
        mov.u32 %r0, 0
        ld.param.u32 %r1, [A]
        ld.param.u32 %r9, [N]
        jmp head
    head:
        shl.u32 %r2, %r0, 2
        add.u32 %r3, %r1, %r2
        ld.global.u32 %r4, [%r3]
        add.u32 %r5, %r4, 1
        st.global.u32 [%r3], %r5
        add.u32 %r0, %r0, 1
        setp.lt.u32 %p0, %r0, %r9
        bra %p0, head, exit
    exit:
        ret
"#;

/// Runs the pipeline front half by hand: regions, eager checkpoints,
/// storage alternation. Returns the instrumented kernel (all checkpoints
/// still present).
fn instrument(src: &str) -> Kernel {
    let mut k = parse_kernel(src).expect("parse");
    form_regions(&mut k, AliasOptions::default());
    let rm = RegionMap::compute(&k);
    let lv = Liveness::compute(&k);
    let live = region_live_ins(&k, &rm, &lv);
    let rd = ReachingDefs::compute(&k);
    let edges = lup_edges(&k, &rm, &live, &rd);
    let placements = eager_placement(&edges);
    insert_checkpoints(&mut k, &placements);
    let out = apply_alternation(&mut k, &rm);
    assert!(out.failed.is_empty(), "alternation failed: {:?}", out.failed);
    k
}

fn live_ins_of(k: &Kernel, rm: &RegionMap) -> Vec<Vec<VReg>> {
    let lv = Liveness::compute(k);
    region_live_ins(k, rm, &lv)
}

// ---------------------------------------------------------------------
// Positive: the stock pipeline satisfies every invariant.
// ---------------------------------------------------------------------

#[test]
fn instrumented_kernels_pass_all_invariants() {
    for src in [K_INPLACE, K_LOOP] {
        let k = instrument(src);
        let rm = RegionMap::compute(&k);
        check_instrumented(&k, &rm, AliasOptions::default())
            .unwrap_or_else(|v| panic!("stock instrumented kernel rejected: {v}"));
    }
}

#[test]
fn compile_with_validation_passes_all_presets() {
    for src in [K_INPLACE, K_LOOP] {
        let k = parse_kernel(src).expect("parse");
        for config in [
            PennyConfig::penny(),
            PennyConfig::bolt_global(),
            PennyConfig::bolt_auto(),
            PennyConfig::igpu(),
            PennyConfig::penny_no_opt(),
            PennyConfig::unprotected(),
        ] {
            let config = config.with_validation(true);
            compile(&k, &config).unwrap_or_else(|e| {
                panic!("validated compile failed ({:?}): {e}", config.protection)
            });
        }
    }
}

#[test]
fn basic_and_optimal_pruning_both_validate() {
    // Cross-check: both pruning modes must satisfy pruning soundness on
    // the same kernels (basic prunes a subset, optimal prunes more).
    use penny_core::PruningMode;
    for src in [K_INPLACE, K_LOOP] {
        let k = parse_kernel(src).expect("parse");
        let basic = PennyConfig {
            pruning: PruningMode::Basic { seed: 0xB017, trials: 64 },
            ..PennyConfig::penny()
        }
        .with_validation(true);
        let optimal = PennyConfig::penny().with_validation(true);
        let b = compile(&k, &basic).expect("basic prune validates");
        let o = compile(&k, &optimal).expect("optimal prune validates");
        assert!(
            o.stats.committed <= b.stats.committed,
            "optimal ({}) must not commit more than basic ({})",
            o.stats.committed,
            b.stats.committed
        );
    }
}

// ---------------------------------------------------------------------
// Negative: hand-broken programs are rejected with named invariants.
// ---------------------------------------------------------------------

#[test]
fn intra_region_antidep_is_rejected() {
    // The in-place update kernel without region formation: the ld/st
    // pair on [%r4] sits inside one (implicit) region.
    let k = parse_kernel(K_INPLACE).expect("parse");
    let err = check_idempotence(&k, AliasOptions::default())
        .expect_err("anti-dependence must be rejected");
    assert_eq!(err.invariant, Invariant::RegionIdempotence);
    assert!(err.to_string().contains("region-idempotence"), "{err}");

    // Sanity: after region formation the same kernel passes.
    let mut k2 = parse_kernel(K_INPLACE).expect("parse");
    form_regions(&mut k2, AliasOptions::default());
    check_idempotence(&k2, AliasOptions::default()).expect("formed regions pass");
}

#[test]
fn marker_erasure_reintroduces_antidep() {
    // Erase a non-entry region marker from a correctly formed kernel:
    // the anti-dependence it was cut for comes back.
    let mut k = parse_kernel(K_INPLACE).expect("parse");
    form_regions(&mut k, AliasOptions::default());
    let rm = RegionMap::compute(&k);
    assert!(rm.len() >= 2);
    let (_, loc, _) = rm.markers()[rm.len() - 1];
    k.block_mut(loc.block).insts.remove(loc.idx);
    let err = check_idempotence(&k, AliasOptions::default())
        .expect_err("erased marker must re-expose the anti-dependence");
    assert_eq!(err.invariant, Invariant::RegionIdempotence);
}

#[test]
fn dropped_checkpoint_is_rejected() {
    // Remove checkpoints one at a time from the instrumented kernel; at
    // least one must be load-bearing for coverage, and the validator
    // must name checkpoint-coverage for it.
    let k = instrument(K_LOOP);
    let ckpts = k.checkpoints();
    assert!(!ckpts.is_empty());
    let mut rejected = 0;
    for (loc, _, reg) in &ckpts {
        let mut broken = k.clone();
        broken.block_mut(loc.block).insts.remove(loc.idx);
        let rm = RegionMap::compute(&broken);
        let live = live_ins_of(&broken, &rm);
        if let Err(v) = check_coverage(&broken, &rm, &live) {
            assert_eq!(v.invariant, Invariant::CheckpointCoverage, "{v}");
            assert!(v.to_string().contains(&reg.to_string()) || rejected > 0, "{v}");
            rejected += 1;
        }
    }
    assert!(rejected > 0, "no checkpoint removal was detected");
}

#[test]
fn miscolored_checkpoint_slot_is_rejected() {
    // Force every checkpoint of an alternation-colored register to slot
    // K0: the in-region re-checkpoint then clobbers the slot its own
    // region restores from.
    let mut k = instrument(K_LOOP);
    let two_colored: Vec<VReg> = {
        let mut regs: Vec<(VReg, Color)> = k
            .locs()
            .filter(|(_, i)| i.is_ckpt())
            .map(|(_, i)| (i.ckpt_reg(), i.ckpt_color().expect("color")))
            .collect();
        regs.sort_by_key(|&(r, c)| (r, c.index()));
        regs.dedup();
        let mut out = Vec::new();
        for w in regs.windows(2) {
            if w[0].0 == w[1].0 {
                out.push(w[0].0);
            }
        }
        out
    };
    assert!(!two_colored.is_empty(), "expected an alternation-colored register");
    let victim = two_colored[0];
    for b in k.block_ids().collect::<Vec<_>>() {
        for inst in &mut k.block_mut(b).insts {
            if inst.is_ckpt() && inst.ckpt_reg() == victim {
                inst.op = Op::Ckpt(Color::K0);
            }
        }
    }
    let rm = RegionMap::compute(&k);
    let live = live_ins_of(&k, &rm);
    let err = check_slot_consistency(&k, &rm, &live)
        .expect_err("miscolored checkpoint must be rejected");
    assert_eq!(err.invariant, Invariant::SlotConsistency);
    assert!(err.to_string().contains("slot-consistency"), "{err}");
}

#[test]
fn regression_checkpoint_slots_cover_every_register_type() {
    // `assign_storage` sizes every checkpoint slot at a fixed
    // CKPT_SLOT_BYTES per thread regardless of the checkpointed
    // register's declared type. The slot-width invariant makes that
    // assumption explicit: every representable `Type` must fit the slot
    // (exhaustively — a future wider type breaks this match), and the
    // stock instrumented kernels must pass the check. The negative case
    // (a checkpoint wider than a slot) is unrepresentable in the 32-bit
    // IR today, which is exactly what this test documents.
    use penny_core::storage::CKPT_SLOT_BYTES;
    use penny_ir::Type;
    let slot_bits = 8 * CKPT_SLOT_BYTES;
    for ty in [Type::U32, Type::S32, Type::F32, Type::Pred] {
        let bits = match ty {
            Type::U32 | Type::S32 | Type::F32 | Type::Pred => ty.width_bits(),
        };
        assert!(bits <= slot_bits, "{ty} ({bits} bits) cannot fit a checkpoint slot");
    }
    for src in [K_INPLACE, K_LOOP] {
        let k = instrument(src);
        check_slot_width(&k).expect("instrumented kernel passes slot-width");
    }
    assert_eq!(Invariant::SlotWidth.name(), "slot-width");
}

#[test]
fn unsound_pruning_is_rejected() {
    // Pruning *every* checkpoint of the in-place-update kernel is
    // unsound: the loaded value is gone after the store overwrites its
    // source, so no recovery slice exists.
    let k = instrument(K_INPLACE);
    let rm = RegionMap::compute(&k);
    let committed = HashSet::new();
    let err = check_pruning(&k, &rm, &committed)
        .expect_err("pruning everything must be rejected");
    assert_eq!(err.invariant, Invariant::PruningSoundness);
    assert!(err.to_string().contains("pruning-soundness"), "{err}");
}

#[test]
fn committed_everything_is_always_sound() {
    let k = instrument(K_INPLACE);
    let rm = RegionMap::compute(&k);
    let committed: HashSet<_> = k.checkpoints().iter().map(|&(_, id, _)| id).collect();
    check_pruning(&k, &rm, &committed).expect("no pruning, nothing to justify");
}

#[test]
fn invariant_error_converts_into_compile_error() {
    let k = parse_kernel(K_INPLACE).expect("parse");
    let v = check_idempotence(&k, AliasOptions::default()).expect_err("violation");
    let e: CompileError = v.clone().into();
    match &e {
        CompileError::Invariant(inner) => assert_eq!(inner, &v),
        other => panic!("expected Invariant, got {other:?}"),
    }
    assert!(e.to_string().contains("protection invariant violated"), "{e}");
    assert!(std::error::Error::source(&e).is_some());
}
