//! Register-pressure estimation.
//!
//! Penny's occupancy model needs registers-per-thread; register renaming
//! (paper §6.3) trades checkpoint-overwrite safety for extra register
//! pressure, which this module makes visible. Following CRAT (the paper's
//! register-allocation substrate), pressure is MAXLIVE: the maximum
//! number of simultaneously live virtual registers at any program point,
//! plus a small ABI reserve.

use penny_analysis::Liveness;
use penny_ir::{Kernel, Loc};

/// Registers reserved for addressing/temporaries by the code generator.
pub const RESERVED_REGS: u32 = 4;

/// Maximum number of simultaneously live registers (plus reserve) —
/// the per-thread register demand used for occupancy.
pub fn register_pressure(kernel: &Kernel) -> u32 {
    let lv = Liveness::compute(kernel);
    let mut max = 0usize;
    for b in kernel.block_ids() {
        let n = kernel.block(b).insts.len();
        for idx in 0..=n {
            let live = lv.live_set_before(kernel, Loc { block: b, idx });
            max = max.max(live.len());
        }
    }
    max as u32 + RESERVED_REGS
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    #[test]
    fn pressure_counts_overlapping_lifetimes() {
        let low = parse_kernel(
            r#"
            .kernel low .params A
            entry:
                ld.param.u32 %r0, [A]
                ld.global.u32 %r1, [%r0]
                st.global.u32 [%r0], %r1
                ret
        "#,
        )
        .expect("parse");
        let high = parse_kernel(
            r#"
            .kernel high .params A
            entry:
                ld.param.u32 %r0, [A]
                ld.global.u32 %r1, [%r0]
                ld.global.u32 %r2, [%r0+4]
                ld.global.u32 %r3, [%r0+8]
                ld.global.u32 %r4, [%r0+12]
                add.u32 %r5, %r1, %r2
                add.u32 %r6, %r3, %r4
                add.u32 %r7, %r5, %r6
                st.global.u32 [%r0], %r7
                ret
        "#,
        )
        .expect("parse");
        let p_low = register_pressure(&low);
        let p_high = register_pressure(&high);
        assert!(p_high > p_low, "{p_high} vs {p_low}");
        assert_eq!(p_low, 2 + RESERVED_REGS);
        assert_eq!(p_high, 5 + RESERVED_REGS);
    }

    #[test]
    fn empty_kernel_has_reserve_only() {
        let mut k = Kernel::new("e", &[]);
        k.add_block("entry");
        assert_eq!(register_pressure(&k), RESERVED_REGS);
    }
}
