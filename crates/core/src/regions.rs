//! Idempotent region formation (paper §5).
//!
//! A region may not contain a memory anti-dependence: every execution
//! path from a load to a store that may overwrite the loaded location
//! must cross a region boundary. Synchronization instructions (barriers,
//! atomics) are boundaries too, which handles inter-thread
//! anti-dependences for data-race-free programs (paper footnote 4).
//!
//! The cut placement is the greedy "latest point" hitting-set heuristic:
//! a boundary right before an endangered store covers *every* path into
//! that store, mirroring De Kruijf et al.'s approximation.

use std::collections::HashSet;

use penny_analysis::{AliasAnalysis, AliasOptions, BitSet};
use penny_ir::{InstId, Kernel, Loc, Op, RegionId, Type};

/// Runs region formation, inserting `region` markers into the kernel.
///
/// Returns the number of regions formed. Region ids are assigned in
/// reverse post-order of the final marker placement, with region 0 at the
/// kernel entry.
pub fn form_regions(kernel: &mut Kernel, alias: AliasOptions) -> usize {
    // 1. Entry marker.
    let entry = kernel.entry;
    let m = kernel.make_inst(Op::RegionEntry(RegionId(0)), Type::U32, None, vec![]);
    kernel.insert_at(Loc { block: entry, idx: 0 }, m);

    // 2. Boundary after every synchronization instruction.
    for b in kernel.block_ids().collect::<Vec<_>>() {
        let mut idx = 0;
        while idx < kernel.block(b).insts.len() {
            if kernel.block(b).insts[idx].op.is_sync() {
                let m =
                    kernel.make_inst(Op::RegionEntry(RegionId(0)), Type::U32, None, vec![]);
                kernel.insert_at(Loc { block: b, idx: idx + 1 }, m);
                idx += 1;
            }
            idx += 1;
        }
    }

    // 3. Anti-dependence cuts, to fixpoint.
    loop {
        let aa = AliasAnalysis::compute(kernel, alias);
        match first_endangered_store(kernel, &aa) {
            Some(loc) => {
                let m =
                    kernel.make_inst(Op::RegionEntry(RegionId(0)), Type::U32, None, vec![]);
                kernel.insert_at(loc, m);
            }
            None => break,
        }
    }

    // 4. Boundary at the header of every loop that already contains a
    //    boundary. Such loops cross regions every iteration; without a
    //    header cut, a region could follow *itself* around the loop —
    //    the pattern 2-coloring storage alternation cannot express
    //    statically (a single static checkpoint cannot alternate slots
    //    per iteration). Loops without internal boundaries stay whole
    //    (a single idempotent region, zero checkpoint pressure — the
    //    common case for read-only accumulation loops).
    let loops = penny_analysis::LoopInfo::compute(kernel);
    let mut headers: Vec<penny_ir::BlockId> = loops
        .loops()
        .iter()
        .filter(|l| {
            l.blocks
                .iter()
                .any(|b| kernel.block(*b).insts.iter().any(|i| i.region_entry().is_some()))
        })
        .map(|l| l.header)
        .collect();
    headers.sort();
    headers.dedup();
    for h in headers {
        if kernel
            .block(h)
            .insts
            .first()
            .map(|i| i.region_entry().is_some())
            .unwrap_or(false)
        {
            continue;
        }
        let m = kernel.make_inst(Op::RegionEntry(RegionId(0)), Type::U32, None, vec![]);
        kernel.insert_at(Loc { block: h, idx: 0 }, m);
    }

    renumber_regions(kernel)
}

/// Finds the first store reached by a may-anti-dependent load with no
/// intervening region boundary.
fn first_endangered_store(kernel: &Kernel, aa: &AliasAnalysis) -> Option<Loc> {
    // "Active loads" dataflow: loads since the last boundary.
    let load_ids: Vec<InstId> =
        kernel.locs().filter(|(_, i)| i.op.reads_memory()).map(|(_, i)| i.id).collect();
    let index_of: std::collections::HashMap<InstId, usize> =
        load_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let nl = load_ids.len();
    let n = kernel.num_blocks();
    let mut in_sets = vec![BitSet::new(nl); n];
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state = BitSet::new(nl);
            for &p in &preds[b.index()] {
                // Out of predecessor = transfer over its body.
                let mut s = in_sets[p.index()].clone();
                transfer_block(kernel, p, &index_of, &mut s);
                state.union_with(&s);
            }
            if state != in_sets[b.index()] {
                in_sets[b.index()] = state;
                changed = true;
            }
        }
    }
    // Scan for an endangered store in RPO (deterministic placement).
    for &b in &order {
        let mut active = in_sets[b.index()].clone();
        for (idx, inst) in kernel.block(b).insts.iter().enumerate() {
            if inst.region_entry().is_some() {
                active.clear();
            }
            if inst.op.writes_memory() {
                let write = aa.access(inst.id).expect("access summary");
                for li in active.iter() {
                    let read = aa.access(load_ids[li]).expect("load summary");
                    if aa.may_antidep(read, write) {
                        return Some(Loc { block: b, idx });
                    }
                }
            }
            if inst.op.reads_memory() {
                active.insert(index_of[&inst.id]);
            }
        }
    }
    None
}

fn transfer_block(
    kernel: &Kernel,
    b: penny_ir::BlockId,
    index_of: &std::collections::HashMap<InstId, usize>,
    state: &mut BitSet,
) {
    for inst in &kernel.block(b).insts {
        if inst.region_entry().is_some() {
            state.clear();
        }
        if inst.op.reads_memory() {
            state.insert(index_of[&inst.id]);
        }
    }
}

/// Renumbers all region markers in reverse post-order; returns the count.
fn renumber_regions(kernel: &mut Kernel) -> usize {
    let mut next = 0u32;
    for b in kernel.reverse_post_order() {
        for inst in &mut kernel.block_mut(b).insts {
            if let Op::RegionEntry(r) = &mut inst.op {
                *r = RegionId(next);
                next += 1;
            }
        }
    }
    next as usize
}

/// Checks the region-formation postcondition: no load-store may-alias
/// pair without an intervening boundary. Used by tests and debug
/// assertions.
pub fn verify_no_antidep(kernel: &Kernel, alias: AliasOptions) -> bool {
    let aa = AliasAnalysis::compute(kernel, alias);
    first_endangered_store(kernel, &aa).is_none()
}

/// Collects all region markers as `(region, loc, inst id)` in program
/// order.
pub fn markers(kernel: &Kernel) -> Vec<(RegionId, Loc, InstId)> {
    let mut out: Vec<(RegionId, Loc, InstId)> = kernel
        .locs()
        .filter_map(|(loc, i)| i.region_entry().map(|r| (r, loc, i.id)))
        .collect();
    out.sort_by_key(|&(r, _, _)| r);
    out
}

/// The set of region ids present in a kernel.
pub fn region_count(kernel: &Kernel) -> usize {
    kernel.locs().filter(|(_, i)| i.region_entry().is_some()).count()
}

/// Dead simple sanity check that region ids are dense `0..n`.
pub fn regions_are_dense(kernel: &Kernel) -> bool {
    let ids: HashSet<u32> =
        kernel.locs().filter_map(|(_, i)| i.region_entry().map(|r| r.0)).collect();
    (0..ids.len() as u32).all(|i| ids.contains(&i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    fn form(src: &str) -> (Kernel, usize) {
        let mut k = parse_kernel(src).expect("parse");
        let n = form_regions(&mut k, AliasOptions::default());
        penny_ir::validate(&k).expect("still valid");
        assert!(regions_are_dense(&k));
        (k, n)
    }

    #[test]
    fn straightline_no_antidep_is_one_region() {
        let (_, n) = form(
            r#"
            .kernel s .params A B
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                ld.param.u32 %r2, [B]
                shl.u32 %r3, %r0, 2
                add.u32 %r4, %r1, %r3
                add.u32 %r5, %r2, %r3
                ld.global.u32 %r6, [%r4]
                st.global.u32 [%r5], %r6
                ret
        "#,
        );
        assert_eq!(n, 1, "A->B copy has no anti-dependence");
    }

    #[test]
    fn in_place_update_is_cut() {
        let (k, n) = form(
            r#"
            .kernel u .params A
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                shl.u32 %r3, %r0, 2
                add.u32 %r4, %r1, %r3
                ld.global.u32 %r6, [%r4]
                add.u32 %r7, %r6, 1
                st.global.u32 [%r4], %r7
                ret
        "#,
        );
        assert_eq!(n, 2, "load/store of the same word must be split");
        // The cut must sit before the store and after the load.
        assert!(verify_no_antidep(&k, AliasOptions::default()));
    }

    #[test]
    fn figure1_memory_antidependence() {
        // Paper figure 1: ld [0x10] ... st [0x10] -> 2 regions.
        let (_, n) = form(
            r#"
            .kernel f1
            entry:
                mov.u32 %r0, 16
                ld.global.u32 %r1, [%r0]
                add.u32 %r2, %r1, 5
                st.global.u32 [%r0], %r2
                ld.global.u32 %r3, [%r0]
                st.global.u32 [%r3], %r3
                ret
        "#,
        );
        // ld->st on [0x10] forces one cut; the re-load [%r0] then st [%r3]
        // may alias again (unknown %r3) forcing another.
        assert!(n >= 2, "expected at least 2 regions, got {n}");
    }

    #[test]
    fn barrier_is_a_boundary() {
        let (k, n) = form(
            r#"
            .kernel b .params A
            entry:
                mov.u32 %r0, %tid.x
                shl.u32 %r1, %r0, 2
                st.shared.u32 [%r1], %r0
                bar.sync
                ld.shared.u32 %r2, [%r1+4]
                ld.param.u32 %r3, [A]
                add.u32 %r4, %r3, %r1
                st.global.u32 [%r4], %r2
                ret
        "#,
        );
        assert_eq!(n, 2, "barrier splits the kernel");
        // The marker must sit right after the barrier.
        let mk = markers(&k);
        assert_eq!(mk.len(), 2);
    }

    #[test]
    fn loop_carried_antidep_cuts_inside_loop() {
        let (k, n) = form(
            r#"
            .kernel l .params A N
            entry:
                mov.u32 %r0, 0
                ld.param.u32 %r1, [A]
                ld.param.u32 %r9, [N]
                jmp head
            head:
                shl.u32 %r2, %r0, 2
                add.u32 %r3, %r1, %r2
                ld.global.u32 %r4, [%r3]
                add.u32 %r5, %r4, 1
                st.global.u32 [%r3], %r5
                add.u32 %r0, %r0, 1
                setp.lt.u32 %p0, %r0, %r9
                bra %p0, head, exit
            exit:
                ret
        "#,
        );
        assert!(n >= 2, "loop body needs a boundary per iteration, got {n}");
        assert!(verify_no_antidep(&k, AliasOptions::default()));
    }

    #[test]
    fn atomic_is_a_boundary() {
        let (_, n) = form(
            r#"
            .kernel a .params H
            entry:
                ld.param.u32 %r0, [H]
                atom.global.add.u32 %r1, [%r0], 1
                st.global.u32 [%r0+4], %r1
                ret
        "#,
        );
        assert!(n >= 2);
    }

    #[test]
    fn diamond_paths_are_both_protected() {
        let (k, _) = form(
            r#"
            .kernel d .params A
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                shl.u32 %r2, %r0, 2
                add.u32 %r3, %r1, %r2
                ld.global.u32 %r4, [%r3]
                setp.lt.u32 %p0, %r4, 10
                bra %p0, small, big
            small:
                add.u32 %r5, %r4, 1
                jmp store
            big:
                add.u32 %r5, %r4, 2
                jmp store
            store:
                st.global.u32 [%r3], %r5
                ret
        "#,
        );
        assert!(verify_no_antidep(&k, AliasOptions::default()));
    }
}
