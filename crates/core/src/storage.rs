//! Automatic checkpoint storage assignment (paper §6.5).
//!
//! Committed checkpoints live in shared or global memory (both ECC
//! protected in GPUs). Shared memory is fast but scarce; filling it past
//! the occupancy-preserving budget would throttle warp-level parallelism.
//! Penny therefore scores registers by their accumulated checkpoint cost
//! and packs the hottest ones into shared memory until the budget runs
//! out.

use std::collections::HashMap;

use penny_analysis::LoopInfo;
use penny_ir::{Color, Kernel, MemSpace, VReg};

use crate::config::{LaunchDims, MachineParams, StoragePolicy};
use crate::cost::{checkpoint_cost, PRUNE_COST_BASE};
use crate::meta::SlotRef;

/// Bytes of checkpoint storage per thread per slot.
///
/// Every checkpointed register is stored as one 32-bit word; the
/// slot-width pipeline invariant ([`crate::check::Invariant::SlotWidth`])
/// validates that no checkpointed register is wider than this.
pub const CKPT_SLOT_BYTES: u32 = 4;

/// The result of storage assignment.
#[derive(Debug, Clone, Default)]
pub struct StorageAssignment {
    /// Slot per (register, color index).
    pub slots: HashMap<(VReg, usize), SlotRef>,
    /// Bytes of shared checkpoint storage per block.
    pub shared_bytes: u32,
    /// Number of global slots.
    pub global_slots: u32,
}

/// Assigns storage for every committed checkpoint currently in the
/// kernel.
pub fn assign_storage(
    kernel: &Kernel,
    policy: StoragePolicy,
    machine: &MachineParams,
    launch: &LaunchDims,
    regs_per_thread: u32,
) -> StorageAssignment {
    let loops = LoopInfo::compute(kernel);
    // Score each (reg, color) by total checkpoint cost (paper §6.1).
    let mut scores: HashMap<(VReg, usize), u64> = HashMap::new();
    for (loc, _, reg) in kernel.checkpoints() {
        let color = kernel.inst_at(loc).ckpt_color().unwrap_or(Color::K0);
        *scores.entry((reg, color.index())).or_insert(0) +=
            checkpoint_cost(&loops, loc, PRUNE_COST_BASE);
    }
    let mut keys: Vec<(VReg, usize)> = scores.keys().copied().collect();
    // Hottest first; ties by register id for determinism.
    keys.sort_by_key(|k| (std::cmp::Reverse(scores[k]), k.0, k.1));

    let tpb = launch.threads_per_block();
    let slot_shared_bytes = tpb * CKPT_SLOT_BYTES;
    let budget = match policy {
        StoragePolicy::Global => 0,
        // Shared and Auto both cap at the per-block share of the SM's
        // shared memory under resident occupancy. Shared used to grant
        // one block the entire SM (`shared_per_sm - kernel.shared_bytes`),
        // which over-filled shared storage whenever more than one block
        // is resident; the policies now differ only in preference order
        // elsewhere, not in the occupancy model.
        StoragePolicy::Shared | StoragePolicy::Auto => {
            shared_budget(machine, launch, regs_per_thread, kernel.shared_bytes)
        }
    };

    let mut out = StorageAssignment::default();
    let mut shared_used = 0u32;
    let mut shared_index = 0u32;
    let mut global_index = 0u32;
    for key in keys {
        if shared_used + slot_shared_bytes <= budget {
            out.slots.insert(key, SlotRef { space: MemSpace::Shared, index: shared_index });
            shared_index += 1;
            shared_used += slot_shared_bytes;
        } else {
            out.slots.insert(key, SlotRef { space: MemSpace::Global, index: global_index });
            global_index += 1;
        }
    }
    out.shared_bytes = shared_used;
    out.global_slots = global_index;
    out
}

/// The largest number of shared bytes per block that keeps the baseline
/// occupancy (paper: "figure out how much shared memory can be used
/// without reducing the occupancy").
pub fn shared_budget(
    machine: &MachineParams,
    launch: &LaunchDims,
    regs_per_thread: u32,
    program_shared: u32,
) -> u32 {
    let tpb = launch.threads_per_block();
    // The hardware always hosts at least one block; mirror the engine's
    // clamp so over-limit kernels still get the shared-memory budget of
    // their single resident block.
    let baseline = machine.blocks_per_sm(tpb, regs_per_thread, program_shared).max(1);
    // Max shared-per-block such that blocks_per_sm stays >= baseline.
    let max_total = machine.shared_per_sm / baseline;
    max_total.saturating_sub(program_shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::{parse_kernel, Op, Type};

    fn kernel_with_cps(n: usize) -> Kernel {
        let mut k = parse_kernel(
            r#"
            .kernel s
            entry:
                mov.u32 %r0, 1
                mov.u32 %r1, 2
                mov.u32 %r2, 3
                mov.u32 %r3, 4
                st.global.u32 [%r0], %r1
                ret
        "#,
        )
        .expect("parse");
        for i in 0..n {
            let cp = k.make_inst(
                Op::Ckpt(Color::K0),
                Type::U32,
                None,
                vec![penny_ir::Operand::Reg(VReg((i % 4) as u32))],
            );
            let end = k.block(penny_ir::BlockId(0)).insts.len() - 1;
            k.insert_at(penny_ir::Loc { block: penny_ir::BlockId(0), idx: end }, cp);
        }
        k
    }

    #[test]
    fn global_policy_uses_no_shared() {
        let k = kernel_with_cps(4);
        let a = assign_storage(
            &k,
            StoragePolicy::Global,
            &MachineParams::fermi(),
            &LaunchDims::linear(4, 128),
            16,
        );
        assert_eq!(a.shared_bytes, 0);
        assert!(a.global_slots > 0);
        assert!(a.slots.values().all(|s| s.space == MemSpace::Global));
    }

    #[test]
    fn shared_policy_prefers_shared() {
        let k = kernel_with_cps(4);
        let a = assign_storage(
            &k,
            StoragePolicy::Shared,
            &MachineParams::fermi(),
            &LaunchDims::linear(4, 128),
            16,
        );
        assert!(a.shared_bytes > 0);
        assert!(a.slots.values().all(|s| s.space == MemSpace::Shared));
    }

    fn kernel_with_reg_cps(nregs: usize) -> Kernel {
        let mut src = String::from("\n.kernel s\nentry:\n");
        for i in 0..nregs {
            src.push_str(&format!("    mov.u32 %r{i}, {i}\n"));
        }
        src.push_str("    st.global.u32 [%r0], %r1\n    ret\n");
        let mut k = parse_kernel(&src).expect("parse");
        for i in 0..nregs {
            let cp = k.make_inst(
                Op::Ckpt(Color::K0),
                Type::U32,
                None,
                vec![penny_ir::Operand::Reg(VReg(i as u32))],
            );
            let end = k.block(penny_ir::BlockId(0)).insts.len() - 1;
            k.insert_at(penny_ir::Loc { block: penny_ir::BlockId(0), idx: end }, cp);
        }
        k
    }

    #[test]
    fn regression_shared_policy_uses_per_block_budget() {
        // 16 checkpointed registers at tpb=128 want 16 * 512 B = 8 K of
        // shared slots, but with 8 blocks resident per SM the
        // occupancy-preserving per-block share on fermi is 48 K / 8 = 6 K.
        // The Shared policy used to grant one block the whole SM (48 K),
        // so every slot landed in shared memory and multi-block residency
        // was silently over-subscribed.
        let k = kernel_with_reg_cps(16);
        let m = MachineParams::fermi();
        let launch = LaunchDims::linear(4, 128);
        assert_eq!(shared_budget(&m, &launch, 16, 0), 6 * 1024);
        let a = assign_storage(&k, StoragePolicy::Shared, &m, &launch, 16);
        assert_eq!(a.shared_bytes, 6 * 1024, "{a:?}");
        assert_eq!(a.global_slots, 4, "{a:?}");
    }

    #[test]
    fn auto_respects_occupancy_budget() {
        let m = MachineParams::fermi();
        let launch = LaunchDims::linear(4, 128);
        // Light register use: 8 blocks/SM baseline; budget = 48K/8 = 6K.
        assert_eq!(shared_budget(&m, &launch, 16, 0), 6 * 1024);
        // Heavy register use: 4 blocks/SM; budget = 12K.
        assert_eq!(shared_budget(&m, &launch, 63, 0), 12 * 1024);
        // Program shared memory eats the budget entirely when it already
        // sits at the per-block limit (48K/8 blocks = 6K).
        assert_eq!(shared_budget(&m, &launch, 16, 6 * 1024), 0);
        // With a smaller program footprint, the remainder is available.
        assert_eq!(shared_budget(&m, &launch, 16, 4 * 1024), 2 * 1024);
    }

    #[test]
    fn auto_spills_to_global_when_budget_exhausted() {
        let k = kernel_with_cps(4);
        // A tiny machine with almost no shared memory.
        let tiny = MachineParams { shared_per_sm: 1024, ..MachineParams::fermi() };
        let a =
            assign_storage(&k, StoragePolicy::Auto, &tiny, &LaunchDims::linear(4, 128), 16);
        // 1024 / baseline-blocks budget < one 512-byte slot per register.
        assert!(a.global_slots > 0, "{a:?}");
    }

    #[test]
    fn distinct_slots_per_register_and_color() {
        let mut k = kernel_with_cps(2);
        // Add a K1 checkpoint for register 0.
        let cp = k.make_inst(
            Op::Ckpt(Color::K1),
            Type::U32,
            None,
            vec![penny_ir::Operand::Reg(VReg(0))],
        );
        let end = k.block(penny_ir::BlockId(0)).insts.len() - 1;
        k.insert_at(penny_ir::Loc { block: penny_ir::BlockId(0), idx: end }, cp);
        let a = assign_storage(
            &k,
            StoragePolicy::Global,
            &MachineParams::fermi(),
            &LaunchDims::linear(4, 128),
            16,
        );
        let mut seen = std::collections::HashSet::new();
        for slot in a.slots.values() {
            assert!(seen.insert((slot.space, slot.index)), "slot reused: {slot:?}");
        }
        assert!(a.slots.contains_key(&(VReg(0), 0)));
        assert!(a.slots.contains_key(&(VReg(0), 1)));
    }
}
