//! The checkpoint cost model (paper §6.1): a checkpoint at loop nesting
//! depth `d` costs `C^d`, with `C = 64`, prioritizing removal of
//! checkpoints in deeply nested loops.

use penny_analysis::LoopInfo;
use penny_ir::Loc;

/// Cost base used for pruning/storage decisions (paper uses 64).
pub const PRUNE_COST_BASE: u64 = 64;

/// Cost base used by bimodal checkpoint placement (paper §6.2 uses 2^d).
pub const BCP_COST_BASE: u64 = 2;

/// `base^depth`, saturating.
pub fn cost_at_depth(base: u64, depth: u32) -> u64 {
    base.saturating_pow(depth.min(10))
}

/// Cost of a checkpoint placed at `loc` under the given base.
pub fn checkpoint_cost(loops: &LoopInfo, loc: Loc, base: u64) -> u64 {
    cost_at_depth(base, loops.depth_at(loc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::{parse_kernel, BlockId};

    #[test]
    fn deeper_is_costlier() {
        assert_eq!(cost_at_depth(64, 0), 1);
        assert_eq!(cost_at_depth(64, 1), 64);
        assert_eq!(cost_at_depth(64, 2), 4096);
        assert!(cost_at_depth(64, 10) > cost_at_depth(64, 9));
        // Saturation guard.
        assert_eq!(cost_at_depth(64, 100), cost_at_depth(64, 10));
    }

    #[test]
    fn checkpoint_cost_uses_loop_depth() {
        let k = parse_kernel(
            r#"
            .kernel l
            entry:
                mov.u32 %r0, 0
                jmp head
            head:
                add.u32 %r0, %r0, 1
                setp.lt.u32 %p0, %r0, 10
                bra %p0, head, exit
            exit:
                ret
        "#,
        )
        .expect("parse");
        let loops = LoopInfo::compute(&k);
        let in_loop = Loc { block: BlockId(1), idx: 0 };
        let outside = Loc { block: BlockId(0), idx: 0 };
        assert_eq!(checkpoint_cost(&loops, in_loop, PRUNE_COST_BASE), 64);
        assert_eq!(checkpoint_cost(&loops, outside, PRUNE_COST_BASE), 1);
        assert_eq!(checkpoint_cost(&loops, in_loop, BCP_COST_BASE), 2);
    }
}
