//! Code generation: lowering checkpoint pseudo-instructions to real
//! stores, plus the low-level optimizations of paper §6.6 (hoisted
//! address computation = LICM/CSE, and local checkpoint scheduling).

use std::collections::HashMap;

use penny_ir::{Color, InstId, Kernel, Loc, MemSpace, Op, Operand, Special, Type, VReg};

use crate::config::LaunchDims;
use crate::meta::{SetupValue, SlotRef, GLOBAL_CKPT_BASE};

/// Output of lowering.
#[derive(Debug, Clone, Default)]
pub struct Lowered {
    /// Setup registers (hoisted address bases) and their meanings.
    pub setup: Vec<(VReg, SetupValue)>,
    /// Instructions added (for overhead accounting).
    pub added_insts: u32,
}

/// Byte address of one thread's word within a slot.
///
/// * Shared: `shared_base + index * threads_per_block * 4 + tid_flat*4`
/// * Global: `GLOBAL_CKPT_BASE + index * total_threads * 4 + gtid*4`
pub fn slot_stride(slot: &SlotRef, launch: &LaunchDims) -> u32 {
    match slot.space {
        MemSpace::Shared => launch.threads_per_block() * 4,
        _ => launch.total_threads() * 4,
    }
}

/// Constant part of a slot's address (everything but the per-thread
/// offset).
pub fn slot_base(slot: &SlotRef, shared_base: u32, launch: &LaunchDims) -> u32 {
    match slot.space {
        MemSpace::Shared => shared_base + slot.index * slot_stride(slot, launch),
        _ => GLOBAL_CKPT_BASE + slot.index * slot_stride(slot, launch),
    }
}

/// Removes pruned checkpoints and lowers committed ones to stores.
///
/// With `low_opts`, per-slot addresses are computed once at kernel entry
/// (the paper's LICM/CSE on checkpoint address code) and checkpoint
/// stores are sunk within their blocks (local scheduling). Without it,
/// the full address computation is materialized at every checkpoint
/// site — the expensive configuration figure 10's `No_opt` bar measures.
pub fn lower_checkpoints(
    kernel: &mut Kernel,
    slots: &HashMap<(VReg, usize), SlotRef>,
    shared_base: u32,
    launch: &LaunchDims,
    low_opts: bool,
) -> Lowered {
    let mut lowered = Lowered::default();
    if low_opts {
        local_schedule(kernel);
    }
    let cp_ids: Vec<InstId> =
        kernel.locs().filter(|(_, i)| i.is_ckpt()).map(|(_, i)| i.id).collect();
    if cp_ids.is_empty() {
        return lowered;
    }

    // Which slots are actually stored to?
    let mut used_slots: Vec<SlotRef> = Vec::new();
    for &id in &cp_ids {
        let loc = kernel.find_inst(id).expect("cp");
        let inst = kernel.inst_at(loc);
        let key = (inst.ckpt_reg(), inst.ckpt_color().unwrap_or(Color::K0).index());
        let slot = slots
            .get(&key)
            .copied()
            .unwrap_or_else(|| panic!("committed checkpoint {key:?} has no slot"));
        if !used_slots.contains(&slot) {
            used_slots.push(slot);
        }
    }
    used_slots.sort_by_key(|s| (s.space == MemSpace::Global, s.index));

    let mut addr_reg: HashMap<SlotRef, VReg> = HashMap::new();
    if low_opts {
        // Hoisted setup at kernel entry (right after the entry marker).
        let mut setup_insts = Vec::new();
        let tid4 = emit_tid_flat4(kernel, launch, &mut setup_insts);
        let need_global = used_slots.iter().any(|s| s.space != MemSpace::Shared);
        let gtid4 = if need_global {
            let g = emit_gtid4(kernel, launch, tid4, &mut setup_insts);
            lowered.setup.push((g, SetupValue::GlobalTid4));
            Some(g)
        } else {
            None
        };
        lowered.setup.push((tid4, SetupValue::TidFlat4));
        for &slot in &used_slots {
            let base = slot_base(&slot, shared_base, launch);
            let per_thread = match slot.space {
                MemSpace::Shared => tid4,
                _ => gtid4.expect("global tid emitted"),
            };
            let a = kernel.fresh_vreg();
            setup_insts.push(kernel.make_inst(
                Op::Add,
                Type::U32,
                Some(a),
                vec![Operand::Imm(base), Operand::Reg(per_thread)],
            ));
            addr_reg.insert(slot, a);
            lowered.setup.push((a, SetupValue::SlotAddr(slot)));
        }
        lowered.added_insts += setup_insts.len() as u32;
        let insert_at = entry_insert_point(kernel);
        for (i, inst) in setup_insts.into_iter().enumerate() {
            kernel.insert_at(Loc { block: insert_at.block, idx: insert_at.idx + i }, inst);
        }
    }

    // Lower each checkpoint.
    for id in cp_ids {
        let loc = kernel.find_inst(id).expect("cp");
        let inst = kernel.inst_at(loc).clone();
        let reg = inst.ckpt_reg();
        let color = inst.ckpt_color().unwrap_or(Color::K0);
        let slot = slots[&(reg, color.index())];
        let space = slot.space;
        // Remove the pseudo-op.
        kernel.block_mut(loc.block).insts.remove(loc.idx);
        let mut seq = Vec::new();
        let addr = if low_opts {
            addr_reg[&slot]
        } else {
            // Full inline address computation.
            let tid4 = emit_tid_flat4(kernel, launch, &mut seq);
            let per_thread = if space == MemSpace::Shared {
                tid4
            } else {
                emit_gtid4(kernel, launch, tid4, &mut seq)
            };
            let base = slot_base(&slot, shared_base, launch);
            let a = kernel.fresh_vreg();
            seq.push(kernel.make_inst(
                Op::Add,
                Type::U32,
                Some(a),
                vec![Operand::Imm(base), Operand::Reg(per_thread)],
            ));
            a
        };
        // Predicates cannot feed a store directly: materialize 0/1 first.
        let value_reg = if kernel.is_pred(reg) {
            let t = kernel.fresh_vreg();
            seq.push(kernel.make_inst(
                Op::Selp,
                Type::U32,
                Some(t),
                vec![Operand::Imm(1), Operand::Imm(0), Operand::Reg(reg)],
            ));
            t
        } else {
            reg
        };
        let mut st = kernel.make_inst(
            Op::St(space),
            Type::U32,
            None,
            vec![Operand::Reg(addr), Operand::Reg(value_reg)],
        );
        st.guard = inst.guard;
        seq.push(st);
        lowered.added_insts += seq.len() as u32;
        for (i, s) in seq.into_iter().enumerate() {
            kernel.insert_at(Loc { block: loc.block, idx: loc.idx + i }, s);
        }
    }
    lowered
}

/// Where setup code goes: after any leading region markers in the entry
/// block.
fn entry_insert_point(kernel: &Kernel) -> Loc {
    let entry = kernel.entry;
    let mut idx = 0;
    for inst in &kernel.block(entry).insts {
        if inst.region_entry().is_some() {
            idx += 1;
        } else {
            break;
        }
    }
    Loc { block: entry, idx }
}

/// Emits `tid_flat * 4` into a fresh register.
fn emit_tid_flat4(
    kernel: &mut Kernel,
    launch: &LaunchDims,
    seq: &mut Vec<penny_ir::Inst>,
) -> VReg {
    let tid = kernel.fresh_vreg();
    seq.push(kernel.make_inst(
        Op::Mov,
        Type::U32,
        Some(tid),
        vec![Operand::Special(Special::TidX)],
    ));
    let flat = if launch.block.1 > 1 {
        let tidy = kernel.fresh_vreg();
        seq.push(kernel.make_inst(
            Op::Mov,
            Type::U32,
            Some(tidy),
            vec![Operand::Special(Special::TidY)],
        ));
        let f = kernel.fresh_vreg();
        seq.push(kernel.make_inst(
            Op::Mad,
            Type::U32,
            Some(f),
            vec![Operand::Reg(tidy), Operand::Imm(launch.block.0), Operand::Reg(tid)],
        ));
        f
    } else {
        tid
    };
    let tid4 = kernel.fresh_vreg();
    seq.push(kernel.make_inst(
        Op::Shl,
        Type::U32,
        Some(tid4),
        vec![Operand::Reg(flat), Operand::Imm(2)],
    ));
    tid4
}

/// Emits `global_tid * 4` given `tid_flat * 4`.
fn emit_gtid4(
    kernel: &mut Kernel,
    launch: &LaunchDims,
    tid4: VReg,
    seq: &mut Vec<penny_ir::Inst>,
) -> VReg {
    let cta = kernel.fresh_vreg();
    seq.push(kernel.make_inst(
        Op::Mov,
        Type::U32,
        Some(cta),
        vec![Operand::Special(Special::CtaIdX)],
    ));
    let cta_flat = if launch.grid.1 > 1 {
        let cy = kernel.fresh_vreg();
        seq.push(kernel.make_inst(
            Op::Mov,
            Type::U32,
            Some(cy),
            vec![Operand::Special(Special::CtaIdY)],
        ));
        let f = kernel.fresh_vreg();
        seq.push(kernel.make_inst(
            Op::Mad,
            Type::U32,
            Some(f),
            vec![Operand::Reg(cy), Operand::Imm(launch.grid.0), Operand::Reg(cta)],
        ));
        f
    } else {
        cta
    };
    let g = kernel.fresh_vreg();
    // gtid*4 = cta_flat * (tpb*4) + tid4.
    seq.push(kernel.make_inst(
        Op::Mad,
        Type::U32,
        Some(g),
        vec![
            Operand::Reg(cta_flat),
            Operand::Imm(launch.threads_per_block() * 4),
            Operand::Reg(tid4),
        ],
    ));
    g
}

/// Local checkpoint scheduling (paper §6.6): sink each checkpoint down
/// within its basic block — past independent instructions — so the store
/// issues late and overlaps ALU work. Stops at region markers, at
/// redefinitions of the saved register, at barriers, and before the
/// block terminator.
pub fn local_schedule(kernel: &mut Kernel) {
    for b in kernel.block_ids().collect::<Vec<_>>() {
        let mut idx = 0;
        while idx < kernel.block(b).insts.len() {
            if !kernel.block(b).insts[idx].is_ckpt() {
                idx += 1;
                continue;
            }
            let reg = kernel.block(b).insts[idx].ckpt_reg();
            let mut target = idx;
            for j in idx + 1..kernel.block(b).insts.len() {
                let next = &kernel.block(b).insts[j];
                if next.region_entry().is_some()
                    || next.def() == Some(reg)
                    || next.op.is_sync()
                    || next.is_ckpt()
                {
                    // Sync ops (bar and atomics) fence scheduling: a
                    // checkpoint sunk past an atomic would sit between
                    // it and its region boundary, where a parity
                    // detection on the store's operands rolls back
                    // across — and replays — the non-idempotent RMW.
                    break;
                }
                target = j;
            }
            if target != idx {
                let cp = kernel.block_mut(b).insts.remove(idx);
                kernel.block_mut(b).insts.insert(target, cp);
                // The checkpoint moved past `target - idx` instructions;
                // continue scanning from the original position.
            } else {
                idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    fn kernel_with_cp() -> Kernel {
        parse_kernel(
            r#"
            .kernel k .params A
            entry:
                region R0
                mov.u32 %r0, 5
                cp %r0
                mov.u32 %r1, 7
                add.u32 %r2, %r0, %r1
                st.global.u32 [%r2], %r0
                ret
        "#,
        )
        .expect("parse")
    }

    fn one_slot() -> HashMap<(VReg, usize), SlotRef> {
        [((VReg(0), 0), SlotRef { space: MemSpace::Shared, index: 0 })]
            .into_iter()
            .collect()
    }

    #[test]
    fn lowering_replaces_pseudo_with_store() {
        let mut k = kernel_with_cp();
        let launch = LaunchDims::linear(2, 64);
        let out = lower_checkpoints(&mut k, &one_slot(), 256, &launch, true);
        assert!(k.checkpoints().is_empty(), "pseudo-op must be gone");
        let stores: Vec<_> =
            k.locs().filter(|(_, i)| matches!(i.op, Op::St(MemSpace::Shared))).collect();
        assert_eq!(stores.len(), 1);
        assert!(!out.setup.is_empty());
        penny_ir::validate(&k).expect("valid after lowering");
    }

    #[test]
    fn hoisted_mode_adds_fewer_instructions_per_checkpoint() {
        let launch = LaunchDims::linear(2, 64);
        let mut hoisted = kernel_with_cp();
        let a = lower_checkpoints(&mut hoisted, &one_slot(), 256, &launch, true);
        let mut inline = kernel_with_cp();
        let b = lower_checkpoints(&mut inline, &one_slot(), 256, &launch, false);
        // One checkpoint: hoisted pays setup once; inline pays at site.
        // With more checkpoints, hoisted wins; verify per-site cost.
        let site_cost_inline = b.added_insts;
        assert!(site_cost_inline >= 3, "inline must materialize addresses");
        let _ = a;
        penny_ir::validate(&inline).expect("valid");
    }

    #[test]
    fn shared_address_formula() {
        let launch = LaunchDims::linear(2, 64);
        let slot = SlotRef { space: MemSpace::Shared, index: 3 };
        assert_eq!(slot_stride(&slot, &launch), 64 * 4);
        assert_eq!(slot_base(&slot, 1024, &launch), 1024 + 3 * 256);
        let g = SlotRef { space: MemSpace::Global, index: 2 };
        assert_eq!(slot_stride(&g, &launch), 128 * 4);
        assert_eq!(slot_base(&g, 1024, &launch), GLOBAL_CKPT_BASE + 2 * 512);
    }

    #[test]
    fn local_schedule_sinks_checkpoint() {
        let mut k = kernel_with_cp();
        local_schedule(&mut k);
        let b = penny_ir::BlockId(0);
        // cp was at idx 2; it can sink past `mov %r1` and `add` but not
        // past the store?  It can sink past the store too (store doesn't
        // redefine %r0): lands at block end.
        let cp_idx =
            k.block(b).insts.iter().position(|i| i.is_ckpt()).expect("cp still present");
        assert_eq!(cp_idx, k.block(b).insts.len() - 1);
    }

    #[test]
    fn local_schedule_stops_at_redefinition() {
        let mut k = parse_kernel(
            r#"
            .kernel k
            entry:
                mov.u32 %r0, 5
                cp %r0
                mov.u32 %r1, 7
                mov.u32 %r0, 9
                st.global.u32 [%r1], %r0
                ret
        "#,
        )
        .expect("parse");
        local_schedule(&mut k);
        let b = penny_ir::BlockId(0);
        let cp_idx = k.block(b).insts.iter().position(|i| i.is_ckpt()).expect("cp");
        // Must stay before the redefinition of %r0 (idx 3 pre-move).
        assert_eq!(cp_idx, 2, "{:?}", k.block(b).insts);
    }

    #[test]
    fn local_schedule_does_not_sink_past_an_atomic() {
        // Sinking a checkpoint past the atomic would park its lowered
        // store between the atomic and its region boundary, where a
        // parity detection replays the non-idempotent RMW.
        let mut k = parse_kernel(
            r#"
            .kernel k .params H
            entry:
                ld.param.u32 %r0, [H]
                mov.u32 %r1, 5
                cp %r1
                add.u32 %r2, %r1, 1
                atom.global.add.u32 %r3, [%r0], 1
                region R1
                st.global.u32 [%r0], %r2
                ret
        "#,
        )
        .expect("parse");
        local_schedule(&mut k);
        let b = penny_ir::BlockId(0);
        let insts = &k.block(b).insts;
        let cp_idx = insts.iter().position(|i| i.is_ckpt()).expect("cp");
        let atom_idx =
            insts.iter().position(|i| matches!(i.op, Op::Atom(..))).expect("atom");
        assert!(cp_idx < atom_idx, "{insts:?}");
        crate::check::check_atomic_windows(&k).expect("window clear");
    }

    #[test]
    fn global_slot_lowering_emits_global_store() {
        let mut k = kernel_with_cp();
        let slots: HashMap<(VReg, usize), SlotRef> =
            [((VReg(0), 0), SlotRef { space: MemSpace::Global, index: 0 })]
                .into_iter()
                .collect();
        let launch = LaunchDims::linear(2, 64);
        lower_checkpoints(&mut k, &slots, 0, &launch, true);
        assert!(k
            .locs()
            .any(|(_, i)| matches!(i.op, Op::St(MemSpace::Global) if i.srcs[1].as_reg() == Some(VReg(0)))));
        penny_ir::validate(&k).expect("valid");
    }
}
