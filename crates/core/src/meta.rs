//! Compiler output: the instrumented kernel plus the resilience metadata
//! the recovery runtime consumes.

use std::collections::HashMap;

use penny_ir::{Cmp, InstId, Kernel, MemSpace, Op, RegionId, Special, Type, VReg};

/// Base address of the reserved global-memory checkpoint arena.
///
/// The runtime (simulator) guarantees this region exists and is ECC
/// protected — the stand-in for the CUDA-driver allocation the paper's
/// runtime would perform.
pub const GLOBAL_CKPT_BASE: u32 = 0xC000_0000;

/// A checkpoint storage slot: `index` words per thread within `space`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    /// Shared or global memory.
    pub space: MemSpace,
    /// Slot index (scaled by thread count at address time).
    pub index: u32,
}

/// One instruction of a recovery slice (paper §6.4: the code that
/// recomputes a pruned checkpoint's value at recovery time).
///
/// Slices form a little DAG program: operands are indices of earlier
/// slice instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceInst {
    /// A literal value.
    Const(u32),
    /// A special register of the recovering thread.
    Special(Special),
    /// Read this thread's checkpoint slot.
    LoadSlot(SlotRef),
    /// Re-load a memory word: address = `slice[base] + offset`.
    LoadMem {
        /// Memory space.
        space: MemSpace,
        /// Slice index of the base address.
        base: usize,
        /// Constant byte offset.
        offset: i32,
    },
    /// Apply an ALU op to earlier slice values.
    Alu {
        /// Operation (subset of IR opcodes: no memory, no control).
        op: Op,
        /// Operand type.
        ty: Type,
        /// Secondary type for `cvt`.
        ty2: Type,
        /// Slice indices of the operands.
        args: Vec<usize>,
    },
    /// Compare two earlier values, producing a predicate (0/1).
    Setp {
        /// Comparison operator.
        cmp: Cmp,
        /// Operand type.
        ty: Type,
        /// Left operand slice index.
        a: usize,
        /// Right operand slice index.
        b: usize,
    },
    /// `pred ? a : b` over earlier slice values (the executable form of a
    /// predicate dependence).
    Select {
        /// Slice index of the predicate.
        pred: usize,
        /// Value when the predicate is true.
        a: usize,
        /// Value when the predicate is false.
        b: usize,
    },
}

/// A recovery slice: evaluate instructions in order; the last value is
/// the recomputed register.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Slice {
    /// Instructions in dependency order.
    pub insts: Vec<SliceInst>,
}

impl Slice {
    /// Number of slice instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// How the recovery runtime restores one live-in register of a region.
#[derive(Debug, Clone, PartialEq)]
pub enum Restore {
    /// Load the value from a checkpoint slot.
    Slot(SlotRef),
    /// Recompute it with a recovery slice.
    Slice(Slice),
}

/// A code-generator setup register: a per-thread constant computed once
/// at kernel entry (checkpoint addressing). The recovery runtime
/// recomputes these directly instead of checkpointing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupValue {
    /// Linear thread id within the block, times 4 (byte offset).
    TidFlat4,
    /// Linear global thread id, times 4 (byte offset).
    GlobalTid4,
    /// Fully-formed byte address of this thread's word in a slot.
    SlotAddr(SlotRef),
}

/// Static description of one idempotent region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// Region id (matches the `region` marker in the code).
    pub id: RegionId,
    /// Stable id of the marker instruction.
    pub marker: InstId,
    /// Live-in registers and how to restore each.
    pub restores: Vec<(VReg, Restore)>,
}

/// Compile-time statistics (drives paper figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompileStats {
    /// Checkpoints considered before pruning.
    pub total_checkpoints: u32,
    /// Checkpoints Bolt's basic pruning would remove.
    pub pruned_basic: u32,
    /// Checkpoints only Penny's optimal pruning removes (beyond basic).
    pub pruned_additional: u32,
    /// Checkpoints remaining in the generated code.
    pub committed: u32,
    /// Idempotent regions formed.
    pub regions: u32,
    /// Registers that needed overwrite protection.
    pub overwrite_prone_regs: u32,
    /// Adjustment blocks inserted by storage alternation.
    pub adjustment_blocks: u32,
    /// Estimated registers per thread after instrumentation.
    pub regs_per_thread: u32,
    /// Shared-memory bytes of checkpoint storage per block.
    pub ckpt_shared_bytes: u32,
    /// Global-memory checkpoint slots.
    pub ckpt_global_slots: u32,
    /// Estimated occupancy (resident warps / max) after instrumentation.
    pub occupancy: f64,
}

impl Eq for RegionInfo {}

/// The compiler's output: an executable kernel plus recovery metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Protected {
    /// Instrumented kernel (checkpoints lowered to real stores).
    pub kernel: Kernel,
    /// Per-region recovery information, indexed by region id.
    pub regions: Vec<RegionInfo>,
    /// Slot assignment per (register, color-index) pair.
    pub slots: HashMap<(VReg, usize), SlotRef>,
    /// Setup registers computed once at entry (checkpoint addressing);
    /// the recovery runtime recomputes these directly.
    pub setup: Vec<(VReg, SetupValue)>,
    /// First byte of shared-memory checkpoint storage (after the
    /// program's own shared data).
    pub shared_ckpt_base: u32,
    /// Bytes of shared-memory checkpoint storage per block.
    pub shared_ckpt_bytes: u32,
    /// Number of global checkpoint slots (each `total_threads` words).
    pub global_slot_count: u32,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Static fault-site classification of the final lowered kernel
    /// (present when compiled with [`crate::PennyConfig::vulnerability`]).
    pub vulnerability: Option<penny_analysis::VulnerabilityMap>,
}

impl Protected {
    /// Wraps an untransformed kernel (baseline runs).
    pub fn passthrough(kernel: Kernel) -> Protected {
        Protected {
            kernel,
            regions: Vec::new(),
            slots: HashMap::new(),
            setup: Vec::new(),
            shared_ckpt_base: 0,
            shared_ckpt_bytes: 0,
            global_slot_count: 0,
            stats: CompileStats::default(),
            vulnerability: None,
        }
    }

    /// Region info by id.
    pub fn region(&self, id: RegionId) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_has_no_metadata() {
        let k = penny_ir::Kernel::new("k", &[]);
        let p = Protected::passthrough(k);
        assert!(p.regions.is_empty());
        assert!(p.slots.is_empty());
        assert_eq!(p.stats.total_checkpoints, 0);
    }

    #[test]
    fn slice_len() {
        let s = Slice { insts: vec![SliceInst::Const(1), SliceInst::Const(2)] };
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Slice::default().is_empty());
    }
}
