//! Compiler error type.

use std::error::Error;
use std::fmt;

use penny_ir::ValidateError;

use crate::check::InvariantViolation;

/// Errors produced by [`crate::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input (or instrumented output) kernel failed verification.
    Validate(ValidateError),
    /// A protection invariant failed the static validator
    /// ([`crate::check`], enabled by [`crate::PennyConfig::validate`]).
    Invariant(InvariantViolation),
    /// The kernel sanitizer rejected the input (enabled by
    /// [`crate::PennyConfig::lint`]); the string holds the rendered
    /// diagnostics, one per line.
    Lint(String),
    /// A construct the compiler cannot handle safely.
    Unsupported(String),
    /// An internal invariant was violated (a bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Validate(e) => write!(f, "kernel validation failed: {e}"),
            CompileError::Invariant(v) => {
                write!(f, "protection invariant violated: {v}")
            }
            CompileError::Lint(m) => write!(f, "kernel sanitizer rejected input: {m}"),
            CompileError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Validate(e) => Some(e),
            CompileError::Invariant(v) => Some(v),
            _ => None,
        }
    }
}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> CompileError {
        CompileError::Validate(e)
    }
}

impl From<InvariantViolation> for CompileError {
    fn from(v: InvariantViolation) -> CompileError {
        CompileError::Invariant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CompileError::Unsupported("weird op".into());
        assert!(e.to_string().contains("weird op"));
        let v = CompileError::Validate(ValidateError { loc: None, message: "bad".into() });
        assert!(v.to_string().contains("bad"));
        assert!(std::error::Error::source(&v).is_some());
    }
}
