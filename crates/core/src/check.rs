//! Static protection-invariant validator.
//!
//! Penny's recovery guarantee (paper Appendix A) rests on four compiler
//! invariants. Nothing about a corrupted-output assert ten thousand
//! cycles into a simulation names the pass that broke it; this module
//! machine-checks each invariant right where it must hold and fails
//! compilation with a *named* diagnostic instead:
//!
//! 1. **Region idempotence** — no memory anti-dependence (load followed
//!    by a may-aliasing store) inside any region, so re-executing the
//!    region from its entry recomputes exactly the same state.
//! 2. **Checkpoint coverage** — on *every* path into a region, each of
//!    its live-in registers was checkpointed after its last definition,
//!    so the slot recovery reads holds the region-entry value.
//! 3. **Slot consistency** — every live-in sits in one well-defined
//!    checkpoint slot (all paths agree on the color), and no checkpoint
//!    executed inside a consuming region writes that same slot before
//!    recovery could read it (the figure-4/figure-5 overwrite hazard,
//!    adjustment blocks included).
//! 4. **Pruning soundness** — every checkpoint removed by pruning is
//!    redundant per the PDDG ϕV/ϕI/ϕU rules: a recovery slice can be
//!    built for each consumer region under the final commit/prune
//!    decisions.
//!
//! Invariants 1–3 are checked on the instrumented kernel (all
//! checkpoints still present, before pruning); invariant 4 on the final
//! pruning decisions. [`crate::compile`] runs both behind
//! [`crate::PennyConfig::validate`].

use std::collections::{HashMap, HashSet};

use penny_analysis::{AliasAnalysis, AliasOptions, ControlDeps, Liveness, ReachingDefs};
use penny_ir::{Color, InstId, Kernel, Loc, RegionId, VReg};

use crate::checkpoint::region_live_ins;
use crate::meta::SlotRef;
use crate::pruning::slice_builder::{
    reaching_checkpoints, Assume, BuildResult, SliceBuilder,
};
use crate::regionmap::RegionMap;

/// The protection invariant a violation names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// No memory anti-dependence inside any region.
    RegionIdempotence,
    /// Every region live-in checkpointed after its last definition on
    /// every path into the region.
    CheckpointCoverage,
    /// Live-in checkpoint slots are unambiguous and never clobbered
    /// inside a consuming region.
    SlotConsistency,
    /// Every pruned checkpoint is redundant (a recovery slice exists).
    PruningSoundness,
    /// Every checkpointed register fits the fixed 32-bit checkpoint slot
    /// storage assignment sizes (`CKPT_SLOT_BYTES` per thread).
    SlotWidth,
}

impl Invariant {
    /// Stable diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::RegionIdempotence => "region-idempotence",
            Invariant::CheckpointCoverage => "checkpoint-coverage",
            Invariant::SlotConsistency => "slot-consistency",
            Invariant::PruningSoundness => "pruning-soundness",
            Invariant::SlotWidth => "slot-width",
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One named invariant violation with a precise diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// What broke, where.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(invariant: Invariant, detail: String) -> InvariantViolation {
    InvariantViolation { invariant, detail }
}

/// Runs the kernel sanitizer ([`penny_analysis::lint_kernel`]) over the
/// *input* kernel, before any transformation. Launch-geometry hints come
/// from the configuration, so the race prover can enumerate lanes.
///
/// # Errors
///
/// Returns [`crate::CompileError::Lint`] listing every diagnostic (one
/// per line) when the sanitizer finds anything.
pub fn check_lint(
    kernel: &Kernel,
    config: &crate::PennyConfig,
) -> Result<(), crate::CompileError> {
    let opts = penny_analysis::LintOptions {
        hints: penny_analysis::RangeHints::launch(config.launch.block, config.launch.grid),
        reserved_base: config.alias.reserved_base,
        allow: Vec::new(),
    };
    let diags = penny_analysis::lint_kernel(kernel, &opts);
    if diags.is_empty() {
        return Ok(());
    }
    let joined = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
    Err(crate::CompileError::Lint(joined))
}

/// Checks that no instruction reads a register between an atomic and
/// the region marker that follows it (the atomic-replay window).
///
/// Recovery rolls a warp back to its *current* region snapshot. Region
/// formation places a boundary right after every atomic so a rollback
/// never replays its read-modify-write — but only if no parity-checked
/// register read can fire inside the atomic-to-marker window. Checkpoint
/// hoisting ([`crate::checkpoint::hoist_ckpts_above_atomics`]) clears
/// the window of everything except a checkpoint of the atomic's own
/// result, which cannot be saved before the value exists: such kernels
/// are rejected here, because a detection at that store would replay a
/// non-idempotent memory update.
///
/// Run on the final lowered kernel, unconditionally (this is a
/// soundness precondition of the recovery runtime, not a debug check).
///
/// # Errors
///
/// Returns a message naming the atomic and the offending read.
pub fn check_atomic_windows(kernel: &Kernel) -> Result<(), String> {
    for b in kernel.block_ids() {
        let insts = &kernel.block(b).insts;
        for (i, inst) in insts.iter().enumerate() {
            if !matches!(inst.op, penny_ir::Op::Atom(..)) {
                continue;
            }
            for later in &insts[i + 1..] {
                if later.region_entry().is_some() {
                    break;
                }
                let reads_reg = later.guard.is_some()
                    || later.srcs.iter().any(|s| matches!(s, penny_ir::Operand::Reg(_)));
                if reads_reg {
                    return Err(format!(
                        "register read ({}) between atomic {} and its region \
                         boundary: a detection there would replay the atomic",
                        later.op.mnemonic(),
                        inst.op.mnemonic()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks invariants 1–3 on an instrumented kernel: region markers and
/// checkpoint pseudo-ops present, pruning not yet applied.
///
/// # Errors
///
/// Returns the first violation found, named after its invariant.
pub fn check_instrumented(
    kernel: &Kernel,
    rm: &RegionMap,
    alias: AliasOptions,
) -> Result<(), InvariantViolation> {
    check_idempotence(kernel, alias)?;
    let lv = Liveness::compute(kernel);
    let live_ins = region_live_ins(kernel, rm, &lv);
    check_coverage(kernel, rm, &live_ins)?;
    check_slot_consistency(kernel, rm, &live_ins)?;
    check_slot_width(kernel)?;
    Ok(())
}

/// Slot-width invariant: storage assignment allocates a fixed
/// [`crate::storage::CKPT_SLOT_BYTES`]-byte slot per thread per
/// checkpoint, so every checkpointed register must fit that width. The
/// 32-bit IR cannot currently express a wider register, but the check
/// keeps the sizing assumption explicit (and future-proof) rather than
/// silently truncating if wider types ever land.
///
/// # Errors
///
/// Names the checkpoint whose register type is wider than a slot.
pub fn check_slot_width(kernel: &Kernel) -> Result<(), InvariantViolation> {
    let slot_bits = 8 * crate::storage::CKPT_SLOT_BYTES;
    for (loc, _, reg) in kernel.checkpoints() {
        let ty = kernel.inst_at(loc).ty;
        if ty.width_bits() > slot_bits {
            return Err(violation(
                Invariant::SlotWidth,
                format!(
                    "checkpoint of {reg} at {loc:?} stores a {} value ({} bits) in a \
                     {slot_bits}-bit slot; storage assignment would truncate it",
                    ty,
                    ty.width_bits(),
                ),
            ));
        }
    }
    Ok(())
}

/// Invariant 1: no load→store memory anti-dependence without an
/// intervening region boundary.
///
/// # Errors
///
/// Names the endangered store and the load it would clobber.
pub fn check_idempotence(
    kernel: &Kernel,
    alias: AliasOptions,
) -> Result<(), InvariantViolation> {
    let aa = AliasAnalysis::compute(kernel, alias);
    // "Active loads" forward dataflow: loads executed since the last
    // region boundary (union over paths — any path exposes the hazard).
    let load_ids: Vec<InstId> =
        kernel.locs().filter(|(_, i)| i.op.reads_memory()).map(|(_, i)| i.id).collect();
    let index_of: HashMap<InstId, usize> =
        load_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let n = kernel.num_blocks();
    let mut in_sets: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let transfer = |b: penny_ir::BlockId, s: &mut HashSet<usize>| {
        for inst in &kernel.block(b).insts {
            if inst.region_entry().is_some() {
                s.clear();
            }
            if inst.op.reads_memory() {
                s.insert(index_of[&inst.id]);
            }
        }
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state = HashSet::new();
            for &p in &preds[b.index()] {
                let mut s = in_sets[p.index()].clone();
                transfer(p, &mut s);
                state.extend(s);
            }
            if state != in_sets[b.index()] {
                in_sets[b.index()] = state;
                changed = true;
            }
        }
    }
    // Walk each block and test every store against the active loads.
    for b in kernel.block_ids() {
        let mut active = in_sets[b.index()].clone();
        for (idx, inst) in kernel.block(b).insts.iter().enumerate() {
            if inst.region_entry().is_some() {
                active.clear();
            }
            if inst.op.writes_memory() {
                if let Some(write) = aa.access(inst.id) {
                    for &li in &active {
                        let load = load_ids[li];
                        if let Some(read) = aa.access(load) {
                            if aa.may_antidep(read, write) {
                                let load_loc = kernel
                                    .find_inst(load)
                                    .map(|l| format!("{l:?}"))
                                    .unwrap_or_else(|| "<gone>".into());
                                return Err(violation(
                                    Invariant::RegionIdempotence,
                                    format!(
                                        "store `{}` at {:?} may overwrite memory read by \
                                         load at {} in the same region; re-execution \
                                         would not be idempotent",
                                        inst.op.mnemonic(),
                                        Loc { block: b, idx },
                                        load_loc,
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            if inst.op.reads_memory() {
                active.insert(index_of[&inst.id]);
            }
        }
    }
    Ok(())
}

/// Per-register checkpoint-freshness state for invariant 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Fresh {
    /// Neither defined nor checkpointed yet on this path.
    Undef,
    /// Last definition on this path is followed by a checkpoint.
    Ckpted,
    /// Defined after the last checkpoint: the slot is stale.
    Stale,
}

/// Invariant 2: on every path into a region, each live-in was
/// checkpointed *after its last definition* — the slot recovery would
/// read holds the region-entry value.
///
/// # Errors
///
/// Names the region and register whose slot can be stale.
pub fn check_coverage(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> Result<(), InvariantViolation> {
    let nregs = kernel.vreg_limit() as usize;
    let n = kernel.num_blocks();
    // Forward must-dataflow; merge = elementwise max, so one stale path
    // poisons the join (`Stale` is the top of the per-register lattice).
    let transfer = |b: penny_ir::BlockId, st: &mut Vec<Fresh>| {
        for inst in &kernel.block(b).insts {
            if inst.is_ckpt() {
                st[inst.ckpt_reg().index()] = Fresh::Ckpted;
            } else if let Some(d) = inst.def() {
                // A guarded definition still overwrites on its taken
                // lanes, so it staledates the slot like any other.
                st[d.index()] = Fresh::Stale;
            }
        }
    };
    let mut in_states: Vec<Vec<Fresh>> = vec![vec![Fresh::Undef; nregs]; n];
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state = vec![Fresh::Undef; nregs];
            for &p in &preds[b.index()] {
                let mut s = in_states[p.index()].clone();
                transfer(p, &mut s);
                for i in 0..nregs {
                    state[i] = state[i].max(s[i]);
                }
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
    }
    for &(region, loc, _) in rm.markers() {
        let mut st = in_states[loc.block.index()].clone();
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if inst.is_ckpt() {
                st[inst.ckpt_reg().index()] = Fresh::Ckpted;
            } else if let Some(d) = inst.def() {
                st[d.index()] = Fresh::Stale;
            }
        }
        for &reg in &live_ins[region.index()] {
            if st[reg.index()] == Fresh::Stale {
                return Err(violation(
                    Invariant::CheckpointCoverage,
                    format!(
                        "live-in {reg} of {region} reaches the region entry at {loc:?} \
                         with no checkpoint after its last definition on some path; \
                         recovery would restore a stale value"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Per-register slot state for invariant 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// No checkpoint executed yet on this path.
    None,
    /// Latest checkpoint wrote this slot.
    One(Color),
    /// Paths disagree.
    Conflict,
}

impl Slot {
    fn merge(self, other: Slot) -> Slot {
        match (self, other) {
            (a, b) if a == b => a,
            (Slot::None, x) | (x, Slot::None) => x,
            _ => Slot::Conflict,
        }
    }
}

/// Invariant 3: every live-in has one well-defined checkpoint slot at
/// its region entry, and no checkpoint inside a consuming region writes
/// that slot before recovery could read it.
///
/// # Errors
///
/// Names the ambiguous live-in or the clobbering checkpoint.
pub fn check_slot_consistency(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> Result<(), InvariantViolation> {
    let nregs = kernel.vreg_limit() as usize;
    let n = kernel.num_blocks();
    let transfer = |b: penny_ir::BlockId, st: &mut Vec<Slot>| {
        for inst in &kernel.block(b).insts {
            if inst.is_ckpt() {
                if let Some(c) = inst.ckpt_color() {
                    st[inst.ckpt_reg().index()] = Slot::One(c);
                }
            }
        }
    };
    let mut in_states: Vec<Option<Vec<Slot>>> = vec![None; n];
    in_states[kernel.entry.index()] = Some(vec![Slot::None; nregs]);
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state: Option<Vec<Slot>> =
                if b == kernel.entry { Some(vec![Slot::None; nregs]) } else { None };
            for &p in &preds[b.index()] {
                let Some(pin) = in_states[p.index()].clone() else { continue };
                let mut pout = pin;
                transfer(p, &mut pout);
                state = Some(match state {
                    None => pout,
                    Some(s) => s.iter().zip(&pout).map(|(&a, &b)| a.merge(b)).collect(),
                });
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
    }
    // Slot of each live-in at its region entry.
    let mut restore_slot: HashMap<(RegionId, VReg), Color> = HashMap::new();
    for &(region, loc, _) in rm.markers() {
        let Some(mut st) = in_states[loc.block.index()].clone() else { continue };
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if inst.is_ckpt() {
                if let Some(c) = inst.ckpt_color() {
                    st[inst.ckpt_reg().index()] = Slot::One(c);
                }
            }
        }
        for &reg in &live_ins[region.index()] {
            match st[reg.index()] {
                Slot::Conflict => {
                    return Err(violation(
                        Invariant::SlotConsistency,
                        format!(
                            "live-in {reg} of {region} has no consistent checkpoint \
                             slot at {loc:?}: paths reach the region entry with its \
                             value in different slots"
                        ),
                    ));
                }
                Slot::One(c) => {
                    restore_slot.insert((region, reg), c);
                }
                // No checkpoint reaches the marker: either the register
                // is never defined on that path (benign) or invariant 2
                // already reported staleness.
                Slot::None => {}
            }
        }
    }
    // No checkpoint inside a consuming region may write the slot that
    // still holds the region's live-in (figure 4/5; this is exactly the
    // constraint overwrite prevention must discharge — adjustment-block
    // dummy checkpoints are instructions like any other here).
    let table = rm.by_inst(kernel);
    for (loc, id, reg) in kernel.checkpoints() {
        let Some(color) = kernel.inst_at(loc).ckpt_color() else { continue };
        for region in table.get(&id).into_iter().flatten() {
            if !live_ins[region.index()].contains(&reg) {
                continue;
            }
            if restore_slot.get(&(*region, reg)) == Some(&color) {
                return Err(violation(
                    Invariant::SlotConsistency,
                    format!(
                        "checkpoint of {reg} at {loc:?} writes slot {color:?} while \
                         executing inside {region}, whose live-in {reg} must remain \
                         readable from {color:?} until recovery; the checkpoint \
                         clobbers its own restore source"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 4: every checkpoint absent from `committed` is redundant —
/// for each region that would have consumed it, a recovery slice can be
/// built under the final decisions (the PDDG ϕV verdict; ϕI or a
/// dangling ϕU here means the pruner removed a load-bearing checkpoint).
///
/// # Errors
///
/// Names the pruned checkpoint and the consumer region left without a
/// restore path.
pub fn check_pruning(
    kernel: &Kernel,
    rm: &RegionMap,
    committed: &HashSet<InstId>,
) -> Result<(), InvariantViolation> {
    let rd = ReachingDefs::compute(kernel);
    let aa = AliasAnalysis::compute(kernel, AliasOptions::default());
    let cd = ControlDeps::compute(kernel);
    let lv = Liveness::compute(kernel);
    let live_ins = region_live_ins(kernel, rm, &lv);
    let reach_cp = reaching_checkpoints(kernel, rm);
    let region_of = rm.by_inst(kernel);
    let provisional = crate::pruning::provisional_slots(kernel);
    let slot_fn = |reg: VReg, color: Color| -> SlotRef {
        provisional
            .get(&(reg, color.index()))
            .copied()
            .unwrap_or(SlotRef { space: penny_ir::MemSpace::Global, index: u32::MAX })
    };
    let assume_fn = |id: InstId| {
        if committed.contains(&id) {
            Assume::Committed
        } else {
            Assume::Pruned
        }
    };
    let builder = SliceBuilder::new(
        kernel, &rd, &aa, &cd, rm, &slot_fn, &assume_fn, &reach_cp, &region_of,
    );
    for (_, id, reg) in kernel.checkpoints() {
        if committed.contains(&id) {
            continue;
        }
        // Consumer regions: live-in of the register, reached by this
        // checkpoint's value.
        for &(region, marker_loc, _) in rm.markers() {
            if !live_ins[region.index()].contains(&reg) {
                continue;
            }
            let reaches =
                reach_cp.get(&(region, reg)).map(|set| set.contains(&id)).unwrap_or(false);
            if !reaches {
                continue;
            }
            // If every other reaching checkpoint is committed the slot
            // itself still serves the restore only when *all* reaching
            // checkpoints are committed — one pruned member forces a
            // slice (mirrors `build_restores`).
            let all_committed = reach_cp
                .get(&(region, reg))
                .map(|set| set.iter().all(|i| committed.contains(i)))
                .unwrap_or(false);
            if all_committed {
                continue;
            }
            match builder.build(reg, marker_loc, &[region], &HashSet::new()) {
                BuildResult::Built(_) => {}
                other => {
                    let kind = match other {
                        BuildResult::Invalid => "not reconstructible (ϕI)",
                        BuildResult::Undecided(_) => {
                            "left with unresolved decision dependences (ϕU)"
                        }
                        BuildResult::Built(_) => unreachable!(),
                    };
                    return Err(violation(
                        Invariant::PruningSoundness,
                        format!(
                            "checkpoint {id:?} of {reg} was pruned, but live-in {reg} \
                             of consumer {region} is {kind}: no recovery slice exists \
                             under the final commit/prune decisions"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}
