//! Mapping program points to the idempotent region(s) they may execute
//! in.
//!
//! Regions are *dynamic* intervals between region-entry markers. A static
//! location after a control-flow merge can belong to different regions on
//! different paths, so the map is a may-set: forward dataflow where a
//! marker replaces the state with its own region.

use std::collections::HashMap;

use penny_analysis::BitSet;
use penny_ir::{InstId, Kernel, Loc, RegionId};

/// Region membership analysis.
#[derive(Debug, Clone)]
pub struct RegionMap {
    /// Marker (region, loc, inst) triples, indexed by region id.
    markers: Vec<(RegionId, Loc, InstId)>,
    /// Possible current regions at each block entry.
    block_in: Vec<BitSet>,
    nregions: usize,
}

impl RegionMap {
    /// Computes the map. Region markers must already be present and
    /// densely numbered (see [`crate::regions::form_regions`]).
    pub fn compute(kernel: &Kernel) -> RegionMap {
        let markers = crate::regions::markers(kernel);
        let nregions = markers.len();
        let n = kernel.num_blocks();
        let mut block_in = vec![BitSet::new(nregions); n];
        let order = kernel.reverse_post_order();
        let preds = kernel.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut state = BitSet::new(nregions);
                for &p in &preds[b.index()] {
                    let mut s = block_in[p.index()].clone();
                    Self::transfer(kernel, p, &mut s);
                    state.union_with(&s);
                }
                if state != block_in[b.index()] {
                    block_in[b.index()] = state;
                    changed = true;
                }
            }
        }
        RegionMap { markers, block_in, nregions }
    }

    fn transfer(kernel: &Kernel, b: penny_ir::BlockId, state: &mut BitSet) {
        for inst in &kernel.block(b).insts {
            if let Some(r) = inst.region_entry() {
                state.clear();
                state.insert(r.index());
            }
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.nregions
    }

    /// Returns `true` if no regions exist.
    pub fn is_empty(&self) -> bool {
        self.nregions == 0
    }

    /// Marker triples in region-id order.
    pub fn markers(&self) -> &[(RegionId, Loc, InstId)] {
        &self.markers
    }

    /// Per-block entry states (possible current regions), indexed by
    /// block. Exposed for overwrite prevention's incremental table
    /// maintenance.
    pub(crate) fn block_in_sets(&self) -> &[BitSet] {
        &self.block_in
    }

    /// The region state at the *exit* of `b`: the entry state pushed
    /// through the block's markers (the dataflow transfer function).
    pub(crate) fn exit_state(
        kernel: &Kernel,
        b: penny_ir::BlockId,
        entry: &BitSet,
    ) -> BitSet {
        let mut s = entry.clone();
        Self::transfer(kernel, b, &mut s);
        s
    }

    /// Location of a region's entry marker.
    pub fn marker_loc(&self, r: RegionId) -> Loc {
        self.markers[r.index()].1
    }

    /// Stable instruction id of a region's entry marker.
    pub fn marker_inst(&self, r: RegionId) -> InstId {
        self.markers[r.index()].2
    }

    /// The regions the instruction at `loc` may execute in.
    ///
    /// For a marker instruction itself, this is the *enclosing* region
    /// (the marker belongs to the region it terminates, not the one it
    /// starts).
    pub fn regions_at(&self, kernel: &Kernel, loc: Loc) -> Vec<RegionId> {
        let mut state = self.block_in[loc.block.index()].clone();
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if let Some(r) = inst.region_entry() {
                state.clear();
                state.insert(r.index());
            }
        }
        state.iter().map(|i| RegionId(i as u32)).collect()
    }

    /// Builds a per-instruction region table for fast repeated queries:
    /// instruction id → possible regions.
    pub fn by_inst(&self, kernel: &Kernel) -> HashMap<InstId, Vec<RegionId>> {
        let mut out = HashMap::new();
        for b in kernel.block_ids() {
            let mut state = self.block_in[b.index()].clone();
            for inst in &kernel.block(b).insts {
                out.insert(
                    inst.id,
                    state.iter().map(|i| RegionId(i as u32)).collect::<Vec<_>>(),
                );
                if let Some(r) = inst.region_entry() {
                    state.clear();
                    state.insert(r.index());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    #[test]
    fn regions_after_barrier() {
        let mut k = parse_kernel(
            r#"
            .kernel b .params A
            entry:
                mov.u32 %r0, %tid.x
                shl.u32 %r1, %r0, 2
                st.shared.u32 [%r1], %r0
                bar.sync
                ld.shared.u32 %r2, [%r1]
                ld.param.u32 %r3, [A]
                add.u32 %r4, %r3, %r1
                st.global.u32 [%r4], %r2
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        assert_eq!(rm.len(), 2);
        // The barrier itself is in region 0; the load after it in region 1.
        let bar_loc = k
            .locs()
            .find(|(_, i)| i.op == penny_ir::Op::Bar)
            .map(|(l, _)| l)
            .expect("barrier");
        assert_eq!(rm.regions_at(&k, bar_loc), vec![RegionId(0)]);
        let after = Loc { block: bar_loc.block, idx: bar_loc.idx + 2 };
        assert_eq!(rm.regions_at(&k, after), vec![RegionId(1)]);
    }

    #[test]
    fn merge_without_marker_keeps_both_regions() {
        let mut k = parse_kernel(
            r#"
            .kernel m .params A
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                setp.lt.u32 %p0, %r0, 16
                bra %p0, a, b
            a:
                bar.sync
                jmp join
            b:
                jmp join
            join:
                st.global.u32 [%r1], %r0
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        assert_eq!(rm.len(), 2);
        // The join-block store may run in region 0 (via b) or region 1
        // (via the barrier in a).
        let store_loc =
            k.locs().find(|(_, i)| i.op.writes_memory()).map(|(l, _)| l).expect("store");
        let rs = rm.regions_at(&k, store_loc);
        assert_eq!(rs.len(), 2, "{rs:?}");
    }

    #[test]
    fn by_inst_matches_point_queries() {
        let mut k = parse_kernel(
            r#"
            .kernel q
            entry:
                mov.u32 %r0, 1
                bar.sync
                mov.u32 %r1, 2
                st.global.u32 [%r1], %r0
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let table = rm.by_inst(&k);
        for (loc, inst) in k.locs() {
            assert_eq!(&rm.regions_at(&k, loc), table.get(&inst.id).expect("entry"));
        }
    }
}
