//! The iGPU baseline (Menon et al., ISCA'12), as evaluated in the paper.
//!
//! iGPU makes regions idempotent by **renaming anti-dependent
//! registers** instead of checkpointing live-outs: any register that is
//! live into a region and overwritten inside it gets a fresh name, so
//! re-execution always finds the original inputs intact. No stores are
//! added — but recovery correctness requires an ECC-protected register
//! file (the renamed inputs still sit in registers), which is exactly
//! why iGPU cannot deliver ECC-free protection (paper §7.3).

use penny_analysis::{Liveness, ReachingDefs};
use penny_ir::{Kernel, VReg};

use crate::regionmap::RegionMap;

/// Result of the iGPU transformation.
#[derive(Debug, Clone, Default)]
pub struct IGpuOutcome {
    /// Number of definitions renamed.
    pub renamed_defs: u32,
    /// Registers that could not be renamed (kept as-is; iGPU would
    /// instead split the region there — we conservatively accept the
    /// pressure-free fallback since no checkpoint correctness hinges on
    /// it in this baseline).
    pub skipped: u32,
}

/// Renames register anti-dependences inside every region: for each
/// region `R` and register `r` live into `R` but redefined inside it,
/// the redefinition gets a fresh register.
pub fn apply_igpu_renaming(kernel: &mut Kernel, rm: &RegionMap) -> IGpuOutcome {
    let mut outcome = IGpuOutcome::default();
    // Definitions already attempted (renamed or skipped): never revisit,
    // so the loop terminates even on loop-carried anti-dependences that
    // renaming cannot eliminate. (Real iGPU would split the region
    // there; our iGPU baseline runs on an ECC RF, so the residual
    // anti-dependence affects no correctness property we measure.)
    let mut attempted: std::collections::HashSet<penny_ir::InstId> =
        std::collections::HashSet::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "iGPU renaming did not converge");
        let lv = Liveness::compute(kernel);
        let live_ins = crate::checkpoint::region_live_ins(kernel, rm, &lv);
        let table = rm.by_inst(kernel);
        let rd = ReachingDefs::compute(kernel);
        // Find one anti-dependent definition: def of r at a point whose
        // region has r live-in.
        let mut target: Option<(penny_ir::InstId, VReg)> = None;
        'scan: for (_, inst) in kernel.locs() {
            let Some(reg) = inst.def() else { continue };
            if inst.guard.is_some() || attempted.contains(&inst.id) {
                continue;
            }
            for region in table.get(&inst.id).into_iter().flatten() {
                if live_ins[region.index()].contains(&reg) {
                    target = Some((inst.id, reg));
                    break 'scan;
                }
            }
        }
        let Some((def_id, reg)) = target else { break };
        attempted.insert(def_id);
        match crate::overwrite::rename_def_for_igpu(kernel, &rd, def_id, reg) {
            true => outcome.renamed_defs += 1,
            false => outcome.skipped += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    #[test]
    fn igpu_renames_register_antidependences() {
        let mut k = parse_kernel(
            r#"
            .kernel g
            entry:
                mov.u32 %r0, 64
                ld.global.u32 %r1, [%r0]
                add.u32 %r2, %r1, 1
                st.global.u32 [%r0], %r2
                add.u32 %r3, %r1, 2
                mov.u32 %r1, 7
                st.global.u32 [%r0+8], %r3
                st.global.u32 [%r0+12], %r1
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let before = k.vreg_limit();
        let out = apply_igpu_renaming(&mut k, &rm);
        penny_ir::validate(&k).expect("valid after iGPU renaming");
        // %r1 is live into the store region and redefined inside it.
        assert!(out.renamed_defs >= 1, "{out:?}");
        assert!(k.vreg_limit() > before);
        // Postcondition: no register anti-dependence remains.
        let lv = Liveness::compute(&k);
        let live_ins = crate::checkpoint::region_live_ins(&k, &rm, &lv);
        let table = rm.by_inst(&k);
        for (_, inst) in k.locs() {
            if let Some(reg) = inst.def() {
                for region in table.get(&inst.id).into_iter().flatten() {
                    assert!(
                        !live_ins[region.index()].contains(&reg),
                        "anti-dependence on {reg} remains in {region}"
                    );
                }
            }
        }
    }

    #[test]
    fn igpu_no_op_without_antidependence() {
        let mut k = parse_kernel(
            r#"
            .kernel n .params A B
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                ld.param.u32 %r2, [B]
                shl.u32 %r3, %r0, 2
                add.u32 %r4, %r1, %r3
                add.u32 %r5, %r2, %r3
                ld.global.u32 %r6, [%r4]
                st.global.u32 [%r5], %r6
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let out = apply_igpu_renaming(&mut k, &rm);
        assert_eq!(out.renamed_defs, 0);
    }
}
