//! Bolt's *basic* checkpoint pruning: random solution search
//! (paper §6.4's description of the prior state of the art).
//!
//! Bolt preconceives a random n-bit string (bit i = "checkpoint i is
//! pruned"), validates the whole solution, and accepts the first valid
//! one it encounters. The search space is 2^n, so the accepted solution
//! is usually far from optimal — exactly the gap figure 12 quantifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use penny_ir::{InstId, Kernel};

use super::optimal::{AssumeTable, Optimizer, PruneDecisions};
use super::slice_builder::{Assume, BuildResult};

/// Runs Bolt's random-search pruning.
///
/// Tries `trials` random subsets (with random densities); the first
/// subset whose every member validates becomes the answer. Falls back to
/// pruning nothing.
pub fn basic_prune(
    opt: &Optimizer<'_>,
    kernel: &Kernel,
    assume: &AssumeTable,
    seed: u64,
    trials: u32,
) -> PruneDecisions {
    let mut rng = StdRng::seed_from_u64(seed);
    let _n = opt.checkpoints.len();
    let mut accepted: Option<Vec<InstId>> = None;
    for _ in 0..trials {
        let density: f64 = rng.gen_range(0.1..0.9);
        let subset: Vec<InstId> =
            opt.checkpoints.iter().copied().filter(|_| rng.gen_bool(density)).collect();
        if subset.is_empty() {
            continue;
        }
        // Preconceive the whole solution, then validate it.
        for &cp in &opt.checkpoints {
            let a = if subset.contains(&cp) { Assume::Pruned } else { Assume::Committed };
            assume.set(cp, a);
        }
        let valid = subset.iter().all(|&cp| {
            // Dead checkpoints validate trivially.
            if opt.consumers.get(&cp).map(|c| c.is_empty()).unwrap_or(true) {
                return true;
            }
            let loc = kernel.find_inst(cp).expect("checkpoint present");
            let reg = opt.regs[&cp];
            let consumers = opt.consumers.get(&cp).cloned().unwrap_or_default();
            let forbidden = [cp].into_iter().collect();
            matches!(
                opt.builder.build(reg, loc, &consumers, &forbidden),
                BuildResult::Built(_)
            )
        });
        if valid {
            accepted = Some(subset);
            break;
        }
    }
    let pruned = accepted.unwrap_or_default();
    for &cp in &opt.checkpoints {
        let a = if pruned.contains(&cp) { Assume::Pruned } else { Assume::Committed };
        assume.set(cp, a);
    }
    let mut out = PruneDecisions::default();
    for &cp in &opt.checkpoints {
        if pruned.contains(&cp) {
            out.pruned.push(cp);
        } else {
            out.committed.push(cp);
        }
    }
    out
}
