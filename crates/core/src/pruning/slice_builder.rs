//! Recovery-slice construction — the executable core of checkpoint
//! validation (paper §6.4).
//!
//! A checkpoint can be pruned when its value is *reconstructible* at
//! recovery time from things that survive an error: literals, special
//! registers, read-only or provably-unmodified memory, and **other
//! committed checkpoints**. Building the reconstruction program (the
//! *recovery slice*) and validating the checkpoint are the same
//! computation, so this module does both at once:
//!
//! * [`SliceBuilder::build`] returns `Built(slice)` (the paper's ϕV),
//!   `Invalid` (ϕI), or `Undecided(constraints)` (ϕU) listing the
//!   commit/prune decisions on other checkpoints that the result hinges
//!   on — exactly the *decision dependences* phase 2 orders.

use std::collections::{HashMap, HashSet};

use penny_analysis::{AliasAnalysis, ControlDeps, ReachingDefs};
use penny_ir::{InstId, Kernel, Loc, MemSpace, Op, Operand, RegionId, VReg};

use crate::meta::{Slice, SliceInst, SlotRef};
use crate::regionmap::RegionMap;

/// A decision another checkpoint's pruning verdict depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The referenced checkpoint must be committed (its slot is read).
    Commit(InstId),
    /// The referenced checkpoint must be pruned (it would clobber a slot
    /// the slice reads).
    Prune(InstId),
}

impl Constraint {
    /// The checkpoint the constraint talks about.
    pub fn inst(self) -> InstId {
        match self {
            Constraint::Commit(i) | Constraint::Prune(i) => i,
        }
    }
}

/// Assumed pruning decision for a checkpoint during validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assume {
    /// Decision not yet made.
    Undecided,
    /// Checkpoint stays in the code.
    Committed,
    /// Checkpoint is removed.
    Pruned,
}

/// Result of building a slice.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildResult {
    /// Reconstructible unconditionally; here is the slice.
    Built(Slice),
    /// Reconstructible iff these constraints hold.
    Undecided(Vec<Constraint>),
    /// Not reconstructible.
    Invalid,
}

/// Context shared by all slice constructions over one kernel snapshot.
pub struct SliceBuilder<'a> {
    kernel: &'a Kernel,
    rd: &'a ReachingDefs,
    aa: &'a AliasAnalysis,
    cd: &'a ControlDeps,
    rm: &'a RegionMap,
    /// Checkpoint slot assignment (register, color) — filled with
    /// provisional indices before storage assignment runs.
    slots: &'a dyn Fn(VReg, penny_ir::Color) -> SlotRef,
    /// Assumed decisions.
    assume: &'a dyn Fn(InstId) -> Assume,
    /// Reaching checkpoints per (region marker, register), precomputed.
    reach_cp: &'a HashMap<(RegionId, VReg), Vec<InstId>>,
    /// Instruction-id → possible regions table.
    region_of: &'a HashMap<InstId, Vec<RegionId>>,
}

impl<'a> SliceBuilder<'a> {
    /// Creates a builder over one kernel snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &'a Kernel,
        rd: &'a ReachingDefs,
        aa: &'a AliasAnalysis,
        cd: &'a ControlDeps,
        rm: &'a RegionMap,
        slots: &'a dyn Fn(VReg, penny_ir::Color) -> SlotRef,
        assume: &'a dyn Fn(InstId) -> Assume,
        reach_cp: &'a HashMap<(RegionId, VReg), Vec<InstId>>,
        region_of: &'a HashMap<InstId, Vec<RegionId>>,
    ) -> SliceBuilder<'a> {
        SliceBuilder { kernel, rd, aa, cd, rm, slots, assume, reach_cp, region_of }
    }

    /// Builds a slice recomputing the value of register `reg` as seen at
    /// program point `at`, for recovery inside any of `consumers`.
    ///
    /// `forbidden` checkpoints may not be used as slot sources (a
    /// checkpoint may not justify itself).
    pub fn build(
        &self,
        reg: VReg,
        at: Loc,
        consumers: &[RegionId],
        forbidden: &HashSet<InstId>,
    ) -> BuildResult {
        let mut slice = Slice::default();
        let mut constraints: Vec<Constraint> = Vec::new();
        let mut visiting = HashSet::new();
        let mut memo: HashMap<(VReg, InstId), usize> = HashMap::new();
        match self.value_of(
            reg,
            at,
            consumers,
            forbidden,
            &mut slice,
            &mut constraints,
            &mut visiting,
            &mut memo,
        ) {
            Ok(_) if constraints.is_empty() => BuildResult::Built(slice),
            Ok(_) => {
                constraints.sort_by_key(|c| (c.inst(), matches!(c, Constraint::Prune(_))));
                constraints.dedup();
                BuildResult::Undecided(constraints)
            }
            Err(()) => BuildResult::Invalid,
        }
    }

    /// Emits slice code computing `reg`'s value at `at`; returns the
    /// slice index of the result.
    #[allow(clippy::too_many_arguments)]
    fn value_of(
        &self,
        reg: VReg,
        at: Loc,
        consumers: &[RegionId],
        forbidden: &HashSet<InstId>,
        slice: &mut Slice,
        constraints: &mut Vec<Constraint>,
        visiting: &mut HashSet<InstId>,
        memo: &mut HashMap<(VReg, InstId), usize>,
    ) -> Result<usize, ()> {
        let defs = self.rd.reaching_defs_of(self.kernel, at, reg);
        match defs.len() {
            0 => Err(()),
            1 => self.def_value(
                defs[0].inst,
                consumers,
                forbidden,
                slice,
                constraints,
                visiting,
                memo,
            ),
            2 => {
                // Predicate dependence: the two definitions are selected
                // by a branch (paper figure 6); emit a Select.
                let d0 = defs[0];
                let d1 = defs[1];
                let Some((branch, d0_then)) =
                    self.cd.deciding_branch(d0.loc.block, d1.loc.block)
                else {
                    return Err(());
                };
                let pred = match self.kernel.block(branch).term {
                    penny_ir::Terminator::Branch { pred, negated, .. } => (pred, negated),
                    _ => return Err(()),
                };
                // The predicate value at the branch point must itself be
                // recomputable *and* still be the value that made the
                // decision: require its reaching defs at `at` to match
                // those at the branch.
                let branch_point =
                    Loc { block: branch, idx: self.kernel.block(branch).insts.len() };
                let at_branch = self.rd.reaching_defs_of(self.kernel, branch_point, pred.0);
                let at_use = self.rd.reaching_defs_of(self.kernel, at, pred.0);
                if at_branch.len() != 1 || at_branch != at_use {
                    return Err(());
                }
                let p = self.value_of(
                    pred.0,
                    branch_point,
                    consumers,
                    forbidden,
                    slice,
                    constraints,
                    visiting,
                    memo,
                )?;
                let v0 = self.def_value(
                    d0.inst,
                    consumers,
                    forbidden,
                    slice,
                    constraints,
                    visiting,
                    memo,
                )?;
                let v1 = self.def_value(
                    d1.inst,
                    consumers,
                    forbidden,
                    slice,
                    constraints,
                    visiting,
                    memo,
                )?;
                // `pred==true` selects the `then_` side; `negated` swaps.
                let (tv, fv) = if d0_then != pred.1 { (v0, v1) } else { (v1, v0) };
                slice.insts.push(SliceInst::Select { pred: p, a: tv, b: fv });
                Ok(slice.insts.len() - 1)
            }
            _ => Err(()),
        }
    }

    /// Emits slice code for the value produced by definition `def_id`.
    #[allow(clippy::too_many_arguments)]
    fn def_value(
        &self,
        def_id: InstId,
        consumers: &[RegionId],
        forbidden: &HashSet<InstId>,
        slice: &mut Slice,
        constraints: &mut Vec<Constraint>,
        visiting: &mut HashSet<InstId>,
        memo: &mut HashMap<(VReg, InstId), usize>,
    ) -> Result<usize, ()> {
        let loc = self.kernel.find_inst(def_id).ok_or(())?;
        let inst = self.kernel.inst_at(loc);
        let reg = inst.def().ok_or(())?;
        if let Some(&idx) = memo.get(&(reg, def_id)) {
            return Ok(idx);
        }
        // Option A: a checkpoint of this very value whose slot survives.
        if let Some(idx) =
            self.slot_value(def_id, reg, consumers, forbidden, slice, constraints)?
        {
            memo.insert((reg, def_id), idx);
            return Ok(idx);
        }
        // Option B: recompute from operands.
        if inst.guard.is_some() {
            return Err(()); // conditional definition: not recomputable
        }
        if visiting.contains(&def_id) {
            return Err(()); // cyclic (loop-carried) dependence
        }
        visiting.insert(def_id);
        let result = self.recompute(
            loc,
            inst,
            consumers,
            forbidden,
            slice,
            constraints,
            visiting,
            memo,
        );
        visiting.remove(&def_id);
        let idx = result?;
        memo.insert((reg, def_id), idx);
        Ok(idx)
    }

    /// Tries to source the value from a checkpoint slot. `Ok(Some(idx))`
    /// on success (possibly adding constraints), `Ok(None)` when no
    /// usable checkpoint exists, `Err` never.
    fn slot_value(
        &self,
        def_id: InstId,
        reg: VReg,
        consumers: &[RegionId],
        forbidden: &HashSet<InstId>,
        slice: &mut Slice,
        constraints: &mut Vec<Constraint>,
    ) -> Result<Option<usize>, ()> {
        'cand: for (cp_loc, cp_id, cp_reg) in self.kernel.checkpoints() {
            if cp_reg != reg || forbidden.contains(&cp_id) {
                continue;
            }
            if (self.assume)(cp_id) == Assume::Pruned {
                continue;
            }
            // The checkpoint must save exactly this definition's value.
            let feeding = self.rd.reaching_defs_of(self.kernel, cp_loc, reg);
            if feeding.len() != 1 || feeding[0].inst != def_id {
                continue;
            }
            let color = self
                .kernel
                .inst_at(self.kernel.find_inst(cp_id).ok_or(())?)
                .ckpt_color()
                .ok_or(())?;
            // For every consumer region, this checkpoint must be the one
            // reaching the region entry for (reg): its slot then holds
            // the right value at recovery time.
            let mut local_constraints = Vec::new();
            for &r in consumers {
                match self.reach_cp.get(&(r, reg)) {
                    Some(set) if set.len() == 1 && set[0] == cp_id => {}
                    _ => continue 'cand,
                }
                // No same-slot writer may fire inside the consumer
                // region before recovery — require such writers pruned.
                for (_, other_id, other_reg) in self.kernel.checkpoints() {
                    if other_id == cp_id || other_reg != reg {
                        continue;
                    }
                    let other_loc = self.kernel.find_inst(other_id).ok_or(())?;
                    let other_color =
                        self.kernel.inst_at(other_loc).ckpt_color().ok_or(())?;
                    if other_color != color {
                        continue;
                    }
                    let regions =
                        self.region_of.get(&other_id).cloned().unwrap_or_default();
                    if regions.contains(&r) {
                        match (self.assume)(other_id) {
                            Assume::Pruned => {}
                            Assume::Committed => continue 'cand,
                            Assume::Undecided => {
                                local_constraints.push(Constraint::Prune(other_id))
                            }
                        }
                    }
                }
            }
            // Usable. Commit constraint unless already decided.
            match (self.assume)(cp_id) {
                Assume::Committed => {}
                Assume::Undecided => local_constraints.push(Constraint::Commit(cp_id)),
                Assume::Pruned => unreachable!("filtered above"),
            }
            constraints.extend(local_constraints);
            slice.insts.push(SliceInst::LoadSlot((self.slots)(reg, color)));
            return Ok(Some(slice.insts.len() - 1));
        }
        Ok(None)
    }

    /// Recomputes a definition from its operands.
    #[allow(clippy::too_many_arguments)]
    fn recompute(
        &self,
        loc: Loc,
        inst: &penny_ir::Inst,
        consumers: &[RegionId],
        forbidden: &HashSet<InstId>,
        slice: &mut Slice,
        constraints: &mut Vec<Constraint>,
        visiting: &mut HashSet<InstId>,
        memo: &mut HashMap<(VReg, InstId), usize>,
    ) -> Result<usize, ()> {
        let operand = |o: Operand,
                       slice: &mut Slice,
                       constraints: &mut Vec<Constraint>,
                       visiting: &mut HashSet<InstId>,
                       memo: &mut HashMap<(VReg, InstId), usize>|
         -> Result<usize, ()> {
            match o {
                Operand::Imm(v) => {
                    slice.insts.push(SliceInst::Const(v));
                    Ok(slice.insts.len() - 1)
                }
                Operand::Special(s) => {
                    slice.insts.push(SliceInst::Special(s));
                    Ok(slice.insts.len() - 1)
                }
                Operand::Reg(r) => self.value_of(
                    r,
                    loc,
                    consumers,
                    forbidden,
                    slice,
                    constraints,
                    visiting,
                    memo,
                ),
            }
        };
        match inst.op {
            Op::Mov => operand(inst.srcs[0], slice, constraints, visiting, memo),
            Op::Ld(space) => {
                if !self.memory_stable(inst.id, space) {
                    return Err(());
                }
                let base = operand(inst.srcs[0], slice, constraints, visiting, memo)?;
                slice.insts.push(SliceInst::LoadMem { space, base, offset: inst.offset });
                Ok(slice.insts.len() - 1)
            }
            Op::Setp(cmp) => {
                let a = operand(inst.srcs[0], slice, constraints, visiting, memo)?;
                let b = operand(inst.srcs[1], slice, constraints, visiting, memo)?;
                slice.insts.push(SliceInst::Setp { cmp, ty: inst.ty, a, b });
                Ok(slice.insts.len() - 1)
            }
            Op::Selp => {
                let a = operand(inst.srcs[0], slice, constraints, visiting, memo)?;
                let b = operand(inst.srcs[1], slice, constraints, visiting, memo)?;
                let p = operand(inst.srcs[2], slice, constraints, visiting, memo)?;
                slice.insts.push(SliceInst::Select { pred: p, a, b });
                Ok(slice.insts.len() - 1)
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::MulHi
            | Op::Mad
            | Op::Div
            | Op::Rem
            | Op::Min
            | Op::Max
            | Op::Neg
            | Op::Abs
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Not
            | Op::Shl
            | Op::Shr
            | Op::Sra
            | Op::Cvt
            | Op::Sqrt
            | Op::Rsqrt
            | Op::Rcp
            | Op::Ex2
            | Op::Lg2
            | Op::Sin
            | Op::Cos => {
                let mut args = Vec::with_capacity(inst.srcs.len());
                for &s in &inst.srcs {
                    args.push(operand(s, slice, constraints, visiting, memo)?);
                }
                slice.insts.push(SliceInst::Alu {
                    op: inst.op,
                    ty: inst.ty,
                    ty2: inst.ty2,
                    args,
                });
                Ok(slice.insts.len() - 1)
            }
            // Atomics, stores, barriers, pseudo ops: not value-producing
            // in a recomputable way.
            _ => Err(()),
        }
    }

    /// A loaded memory word is stable if its space is read-only or no
    /// may-aliasing store is *reachable from the load* (a store that
    /// already executed produced the value the load saw; only stores
    /// that can still run before recovery — i.e. forward-reachable ones —
    /// can clobber it). This is a sound approximation of the paper's
    /// "until the endpoints of the regions where cv is used" check.
    fn memory_stable(&self, load_id: InstId, space: MemSpace) -> bool {
        if space.is_read_only() {
            return true;
        }
        let Some(read) = self.aa.access(load_id) else { return false };
        let Some(load_loc) = self.kernel.find_inst(load_id) else { return false };
        !self.aa.accesses().iter().any(|w| {
            w.is_write
                && self.aa.may_antidep(read, w)
                && self.reachable_from(load_loc, w.loc)
        })
    }

    /// Forward reachability between program points (same-block later
    /// position, or any position in a CFG-successor-reachable block —
    /// which covers loop re-entry into the load's own block).
    fn reachable_from(&self, from: Loc, to: Loc) -> bool {
        if from.block == to.block && to.idx > from.idx {
            return true;
        }
        let mut seen = vec![false; self.kernel.num_blocks()];
        let mut stack: Vec<penny_ir::BlockId> =
            self.kernel.block(from.block).term.successors();
        while let Some(b) = stack.pop() {
            if seen[b.index()] {
                continue;
            }
            seen[b.index()] = true;
            if b == to.block {
                return true;
            }
            stack.extend(self.kernel.block(b).term.successors());
        }
        false
    }

    /// Access to the region map (used by the pruning driver).
    pub fn region_map(&self) -> &RegionMap {
        self.rm
    }
}

/// Computes, for each (region, register), the set of checkpoints whose
/// value reaches the region's entry marker (the "latest checkpoint"
/// dataflow; all checkpoints assumed present).
pub fn reaching_checkpoints(
    kernel: &Kernel,
    rm: &RegionMap,
) -> HashMap<(RegionId, VReg), Vec<InstId>> {
    let n = kernel.num_blocks();
    let nregs = kernel.vreg_limit() as usize;
    type St = Vec<Vec<InstId>>; // per register: reaching cp set
    let transfer = |kernel: &Kernel, b: penny_ir::BlockId, st: &mut St| {
        for inst in &kernel.block(b).insts {
            if inst.is_ckpt() {
                st[inst.ckpt_reg().index()] = vec![inst.id];
            }
        }
    };
    let mut in_states: Vec<St> = vec![vec![Vec::new(); nregs]; n];
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state: St = vec![Vec::new(); nregs];
            for &p in &preds[b.index()] {
                let mut pout = in_states[p.index()].clone();
                transfer(kernel, p, &mut pout);
                for i in 0..nregs {
                    for id in &pout[i] {
                        if !state[i].contains(id) {
                            state[i].push(*id);
                        }
                    }
                }
            }
            for s in &mut state {
                s.sort();
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
    }
    let mut out = HashMap::new();
    for &(region, loc, _) in rm.markers() {
        let mut st = in_states[loc.block.index()].clone();
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if inst.is_ckpt() {
                st[inst.ckpt_reg().index()] = vec![inst.id];
            }
        }
        for (i, set) in st.iter().enumerate() {
            if !set.is_empty() {
                out.insert((region, VReg(i as u32)), set.clone());
            }
        }
    }
    out
}
