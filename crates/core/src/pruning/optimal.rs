//! Penny's optimal two-phase checkpoint pruning (paper §6.4).
//!
//! Phase 1 classifies every checkpoint by building its recovery slice
//! under no assumptions: trivially prunable (ϕV/τP), trivially committed
//! (ϕI/τC), or undecided (ϕU/τU) with recorded decision dependences.
//! Phase 2 orders the undecided checkpoints by decision dependence
//! (Tarjan SCCs + topological order) and finalizes each in turn; SCC
//! members are solved together by brute force over their joint
//! assignment (the paper found no SCCs in its evaluation; neither do our
//! workloads, but the path is exercised by unit tests).

use std::collections::{HashMap, HashSet};

use penny_graph::StronglyConnectedComponents;
use penny_ir::{InstId, Kernel, RegionId, VReg};

use super::slice_builder::{Assume, BuildResult, Constraint, SliceBuilder};

/// Final pruning decisions.
#[derive(Debug, Clone, Default)]
pub struct PruneDecisions {
    /// Checkpoints to remove.
    pub pruned: Vec<InstId>,
    /// Checkpoints to keep.
    pub committed: Vec<InstId>,
}

impl PruneDecisions {
    /// Returns `true` if the checkpoint is pruned.
    pub fn is_pruned(&self, id: InstId) -> bool {
        self.pruned.contains(&id)
    }
}

/// Largest SCC the brute-force solver will attempt (2^12 assignments).
const MAX_SCC: usize = 12;

/// Pruning driver state.
pub struct Optimizer<'a> {
    /// Slice builder context (assume-agnostic pieces).
    pub builder: &'a SliceBuilder<'a>,
    /// All checkpoints in program order.
    pub checkpoints: Vec<InstId>,
    /// Consumer regions per checkpoint.
    pub consumers: HashMap<InstId, Vec<RegionId>>,
    /// Register saved by each checkpoint.
    pub regs: HashMap<InstId, VReg>,
    /// Cost of keeping each checkpoint.
    pub costs: HashMap<InstId, u64>,
}

/// Interior-mutable assumption table shared with the builder closure.
#[derive(Debug, Clone, Default)]
pub struct AssumeTable {
    inner: std::cell::RefCell<HashMap<InstId, Assume>>,
}

impl AssumeTable {
    /// Current assumption for a checkpoint.
    pub fn get(&self, id: InstId) -> Assume {
        self.inner.borrow().get(&id).copied().unwrap_or(Assume::Undecided)
    }

    /// Sets an assumption.
    pub fn set(&self, id: InstId, a: Assume) {
        self.inner.borrow_mut().insert(id, a);
    }

    /// Clears an assumption back to undecided.
    pub fn clear(&self, id: InstId) {
        self.inner.borrow_mut().remove(&id);
    }
}

/// Validates one checkpoint under current assumptions.
fn validate(opt: &Optimizer<'_>, kernel: &Kernel, cp: InstId) -> BuildResult {
    let loc = kernel.find_inst(cp).expect("checkpoint present");
    let reg = opt.regs[&cp];
    let consumers = opt.consumers.get(&cp).cloned().unwrap_or_default();
    let forbidden: HashSet<InstId> = [cp].into_iter().collect();
    opt.builder.build(reg, loc, &consumers, &forbidden)
}

/// Phase-1 classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Class {
    /// Trivially prunable.
    Pruned,
    /// Trivially committed.
    Committed,
    /// Undecided, with decision dependences.
    Undecided(Vec<Constraint>),
}

/// Runs both phases; returns the final decisions.
pub fn run(opt: &Optimizer<'_>, kernel: &Kernel, assume: &AssumeTable) -> PruneDecisions {
    // ---- Phase 1: trivial classification. ----
    let mut class: HashMap<InstId, Class> = HashMap::new();
    for &cp in &opt.checkpoints {
        // Dead checkpoints (no consumers) prune immediately.
        if opt.consumers.get(&cp).map(|c| c.is_empty()).unwrap_or(true) {
            class.insert(cp, Class::Pruned);
            assume.set(cp, Assume::Pruned);
            continue;
        }
        let c = match validate(opt, kernel, cp) {
            BuildResult::Built(_) => Class::Pruned,
            BuildResult::Invalid => Class::Committed,
            BuildResult::Undecided(deps) => Class::Undecided(deps),
        };
        match &c {
            Class::Pruned => assume.set(cp, Assume::Pruned),
            Class::Committed => assume.set(cp, Assume::Committed),
            Class::Undecided(_) => {}
        }
        class.insert(cp, c);
    }

    // ---- Phase 2: order undecided checkpoints by decision deps. ----
    let undecided: Vec<InstId> = opt
        .checkpoints
        .iter()
        .copied()
        .filter(|c| matches!(class.get(c), Some(Class::Undecided(_))))
        .collect();
    if !undecided.is_empty() {
        let index: HashMap<InstId, usize> =
            undecided.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let succs = |v: usize| -> Vec<usize> {
            let cp = undecided[v];
            match class.get(&cp) {
                Some(Class::Undecided(deps)) => deps
                    .iter()
                    .filter_map(|d| index.get(&d.inst()).copied())
                    .filter(|&u| u != v)
                    .collect(),
                _ => Vec::new(),
            }
        };
        let scc = StronglyConnectedComponents::compute(undecided.len(), succs);
        // Tarjan emits components in reverse topological order: a
        // component's dependences live in earlier-emitted components, so
        // processing in emission order decides prerequisites first.
        for comp in 0..scc.count() {
            let members: Vec<InstId> =
                scc.members(comp).iter().map(|&v| undecided[v]).collect();
            if members.len() == 1 && !scc.in_cycle(index[&members[0]], succs) {
                let cp = members[0];
                let verdict = match validate(opt, kernel, cp) {
                    BuildResult::Built(_) => Assume::Pruned,
                    // Still-undecided constraints or invalidity: keep it.
                    _ => Assume::Committed,
                };
                assume.set(cp, verdict);
            } else {
                solve_scc(opt, kernel, assume, &members);
            }
        }
    }

    // ---- Collect. ----
    let mut out = PruneDecisions::default();
    for &cp in &opt.checkpoints {
        match assume.get(cp) {
            Assume::Pruned => out.pruned.push(cp),
            _ => out.committed.push(cp),
        }
    }
    out
}

/// Brute-forces the joint assignment of an SCC's members, minimizing the
/// total committed cost (paper §6.4.2).
fn solve_scc(
    opt: &Optimizer<'_>,
    kernel: &Kernel,
    assume: &AssumeTable,
    members: &[InstId],
) {
    if members.len() > MAX_SCC {
        for &m in members {
            assume.set(m, Assume::Committed);
        }
        return;
    }
    let mut best: Option<(u64, u32)> = None;
    for mask in 0u32..(1 << members.len()) {
        for (i, &m) in members.iter().enumerate() {
            let a = if mask & (1 << i) != 0 { Assume::Pruned } else { Assume::Committed };
            assume.set(m, a);
        }
        let valid = members.iter().enumerate().all(|(i, &m)| {
            mask & (1 << i) == 0
                || matches!(validate(opt, kernel, m), BuildResult::Built(_))
        });
        if valid {
            let cost: u64 = members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) == 0)
                .map(|(_, m)| opt.costs.get(m).copied().unwrap_or(1))
                .sum();
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, mask));
            }
        }
    }
    let mask = best.map(|(_, m)| m).unwrap_or(0);
    for (i, &m) in members.iter().enumerate() {
        let a = if mask & (1 << i) != 0 { Assume::Pruned } else { Assume::Committed };
        assume.set(m, a);
    }
}
