//! Checkpoint pruning (paper §6.4): remove checkpoints whose values can
//! be reconstructed by a *recovery slice* at recovery time.
//!
//! * [`slice_builder`] — unified validation + slice construction.
//! * [`optimal`] — Penny's two-phase optimal pruning.
//! * [`basic`] — Bolt's random-search pruning (the baseline figure 12
//!   compares against).
//!
//! The top-level [`prune`] entry point runs either mode over a kernel
//! snapshot and returns decisions plus the statistics used by the
//! evaluation harness.

pub mod basic;
pub mod optimal;
pub mod slice_builder;

use std::collections::HashMap;

use penny_analysis::{AliasAnalysis, ControlDeps, Liveness, LoopInfo, ReachingDefs};
use penny_ir::{Color, InstId, Kernel, RegionId, VReg};

pub use optimal::{AssumeTable, Optimizer, PruneDecisions};
pub use slice_builder::{Assume, BuildResult, Constraint, SliceBuilder};

use crate::config::PruningMode;
use crate::cost::{checkpoint_cost, PRUNE_COST_BASE};
use crate::meta::SlotRef;
use crate::regionmap::RegionMap;

/// Pruning outcome with comparative statistics.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Final decisions actually applied.
    pub decisions: PruneDecisions,
    /// How many checkpoints Bolt's basic pruning removes on the same
    /// input (for figure 12; computed regardless of mode).
    pub basic_pruned_count: u32,
    /// How many checkpoints optimal pruning removes.
    pub optimal_pruned_count: u32,
    /// Total checkpoints considered.
    pub total: u32,
}

/// Provisional slot assignment used during pruning: slot indices are
/// synthesized per (register, color); storage assignment later maps them
/// to real locations. Slices store `SlotRef`s, so the pipeline keeps
/// this mapping consistent.
pub fn provisional_slots(kernel: &Kernel) -> HashMap<(VReg, usize), SlotRef> {
    let mut map = HashMap::new();
    let mut next = 0u32;
    let mut cps: Vec<(VReg, Color)> = kernel
        .locs()
        .filter(|(_, i)| i.is_ckpt())
        .map(|(_, i)| (i.ckpt_reg(), i.ckpt_color().expect("color")))
        .collect();
    cps.sort_by_key(|&(r, c)| (r, c.index()));
    cps.dedup();
    for (reg, color) in cps {
        map.entry((reg, color.index())).or_insert_with(|| {
            let s = SlotRef { space: penny_ir::MemSpace::Global, index: next };
            next += 1;
            s
        });
    }
    map
}

/// Runs pruning in the configured mode.
///
/// Returns the outcome; the caller removes the pruned instructions.
pub fn prune(kernel: &Kernel, rm: &RegionMap, mode: PruningMode) -> PruneOutcome {
    let checkpoints: Vec<InstId> =
        kernel.checkpoints().iter().map(|&(_, id, _)| id).collect();
    let total = checkpoints.len() as u32;
    if checkpoints.is_empty() {
        return PruneOutcome::default();
    }
    let rd = ReachingDefs::compute(kernel);
    let aa = AliasAnalysis::compute(kernel, penny_analysis::AliasOptions::default());
    let cd = ControlDeps::compute(kernel);
    let lv = Liveness::compute(kernel);
    let loops = LoopInfo::compute(kernel);
    let live_ins = crate::checkpoint::region_live_ins(kernel, rm, &lv);
    let reach_cp = slice_builder::reaching_checkpoints(kernel, rm);
    let region_of = rm.by_inst(kernel);
    let slots = provisional_slots(kernel);
    let slot_fn = move |reg: VReg, color: Color| -> SlotRef {
        slots
            .get(&(reg, color.index()))
            .copied()
            .unwrap_or(SlotRef { space: penny_ir::MemSpace::Global, index: u32::MAX })
    };

    // Consumers: regions whose entry-reaching checkpoint set for the
    // register contains this checkpoint and whose live-ins include it.
    let mut consumers: HashMap<InstId, Vec<RegionId>> = HashMap::new();
    let mut regs: HashMap<InstId, VReg> = HashMap::new();
    let mut costs: HashMap<InstId, u64> = HashMap::new();
    for &(loc, id, reg) in &kernel.checkpoints() {
        regs.insert(id, reg);
        costs.insert(id, checkpoint_cost(&loops, loc, PRUNE_COST_BASE));
        let mut cs = Vec::new();
        for &(region, _, _) in rm.markers() {
            if !live_ins[region.index()].contains(&reg) {
                continue;
            }
            if reach_cp.get(&(region, reg)).map(|set| set.contains(&id)).unwrap_or(false) {
                cs.push(region);
            }
        }
        consumers.insert(id, cs);
    }

    let run_with =
        |assume: &AssumeTable,
         f: &dyn Fn(&Optimizer<'_>, &AssumeTable) -> PruneDecisions| {
            let assume_fn = |id: InstId| assume.get(id);
            let builder = SliceBuilder::new(
                kernel, &rd, &aa, &cd, rm, &slot_fn, &assume_fn, &reach_cp, &region_of,
            );
            let opt = Optimizer {
                builder: &builder,
                checkpoints: checkpoints.clone(),
                consumers: consumers.clone(),
                regs: regs.clone(),
                costs: costs.clone(),
            };
            f(&opt, assume)
        };

    // Always compute both for the statistics.
    let basic_seed = match mode {
        PruningMode::Basic { seed, .. } => seed,
        _ => 0xB017,
    };
    let basic_trials = match mode {
        PruningMode::Basic { trials, .. } => trials,
        _ => 64,
    };
    let basic_assume = AssumeTable::default();
    let basic_dec = run_with(&basic_assume, &|opt, assume| {
        basic::basic_prune(opt, kernel, assume, basic_seed, basic_trials)
    });
    let optimal_assume = AssumeTable::default();
    let optimal_dec =
        run_with(&optimal_assume, &|opt, assume| optimal::run(opt, kernel, assume));

    let basic_pruned_count = basic_dec.pruned.len() as u32;
    let optimal_pruned_count = optimal_dec.pruned.len() as u32;
    let decisions = match mode {
        PruningMode::None => {
            PruneDecisions { pruned: Vec::new(), committed: checkpoints.clone() }
        }
        PruningMode::Basic { .. } => basic_dec,
        PruningMode::Optimal => optimal_dec,
    };
    PruneOutcome { decisions, basic_pruned_count, optimal_pruned_count, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        eager_placement, insert_checkpoints, lup_edges, region_live_ins,
    };
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    /// Builds a kernel with regions + eager checkpoints from source.
    fn prepared(src: &str) -> (Kernel, RegionMap) {
        let mut k = parse_kernel(src).expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let edges = lup_edges(&k, &rm, &live, &rd);
        let ps = eager_placement(&edges);
        insert_checkpoints(&mut k, &ps);
        let rm = RegionMap::compute(&k);
        (k, rm)
    }

    /// Constant-derived live-ins are trivially prunable.
    #[test]
    fn optimal_prunes_constant_values() {
        let (k, rm) = prepared(
            r#"
            .kernel c .params A
            entry:
                mov.u32 %r0, 16
                mov.u32 %r1, %tid.x
                shl.u32 %r2, %r1, 2
                ld.param.u32 %r3, [A]
                add.u32 %r4, %r3, %r2
                ld.global.u32 %r5, [%r4]
                add.u32 %r6, %r5, %r0
                st.global.u32 [%r4], %r6
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::Optimal);
        // %r0 (const 16), %r1 (tid), %r2, %r3 (param), %r4 are all
        // recomputable; the loaded %r5 / %r6 depend on overwritten
        // memory so stay committed only if their checkpoints exist.
        assert!(out.total > 0);
        assert!(
            out.optimal_pruned_count >= out.total - 2,
            "expected most of {} pruned, got {}",
            out.total,
            out.optimal_pruned_count
        );
    }

    /// A value loaded from memory that is later overwritten cannot be
    /// reconstructed by re-loading: its checkpoint must stay.
    #[test]
    fn overwritten_memory_commits_the_checkpoint() {
        let (k, rm) = prepared(
            r#"
            .kernel m
            entry:
                mov.u32 %r0, 64
                ld.global.u32 %r1, [%r0]
                add.u32 %r2, %r1, 1
                st.global.u32 [%r0], %r2
                st.global.u32 [%r0+4], %r1
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::Optimal);
        // %r1's checkpoint (live into the store region) must be
        // committed: [%r0] is clobbered, so a re-load is wrong.
        let committed_regs: Vec<VReg> = out
            .decisions
            .committed
            .iter()
            .map(|&id| {
                let loc = k.find_inst(id).expect("cp");
                k.inst_at(loc).ckpt_reg()
            })
            .collect();
        assert!(committed_regs.contains(&VReg(1)), "{committed_regs:?}");
    }

    /// Loop-carried values (cyclic dependences) cannot be recomputed.
    #[test]
    fn loop_carried_value_commits() {
        let (k, rm) = prepared(
            r#"
            .kernel l .params A N
            entry:
                mov.u32 %r0, 0
                mov.u32 %r1, 1
                ld.param.u32 %r2, [A]
                ld.param.u32 %r3, [N]
                ld.global.u32 %r7, [%r2]
                jmp head
            head:
                mul.u32 %r1, %r1, %r7
                st.global.u32 [%r2], %r1
                add.u32 %r0, %r0, 1
                setp.lt.u32 %p0, %r0, %r3
                bra %p0, head, exit
            exit:
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::Optimal);
        // %r1 (accumulator) and %r0 (counter) are loop-carried: their
        // in-loop checkpoints cannot all be pruned.
        let committed_regs: Vec<VReg> = out
            .decisions
            .committed
            .iter()
            .map(|&id| k.inst_at(k.find_inst(id).expect("cp")).ckpt_reg())
            .collect();
        assert!(
            committed_regs.contains(&VReg(1)) || committed_regs.contains(&VReg(0)),
            "loop-carried registers must keep checkpoints: {committed_regs:?}"
        );
    }

    #[test]
    fn optimal_beats_or_ties_basic() {
        let (k, rm) = prepared(
            r#"
            .kernel cmp .params A B N
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                ld.param.u32 %r2, [B]
                ld.param.u32 %r3, [N]
                shl.u32 %r4, %r0, 2
                add.u32 %r5, %r1, %r4
                add.u32 %r6, %r2, %r4
                ld.global.u32 %r7, [%r5]
                mul.u32 %r8, %r7, 3
                st.global.u32 [%r6], %r8
                add.u32 %r9, %r8, %r3
                st.global.u32 [%r6+4], %r9
                st.global.u32 [%r5], %r9
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::Optimal);
        assert!(
            out.optimal_pruned_count >= out.basic_pruned_count,
            "optimal {} < basic {}",
            out.optimal_pruned_count,
            out.basic_pruned_count
        );
        assert!(out.optimal_pruned_count > 0, "something must be prunable");
    }

    #[test]
    fn mode_none_keeps_everything() {
        let (k, rm) = prepared(
            r#"
            .kernel n
            entry:
                mov.u32 %r0, 64
                ld.global.u32 %r1, [%r0]
                st.global.u32 [%r0], %r1
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::None);
        assert!(out.decisions.pruned.is_empty());
        assert_eq!(out.decisions.committed.len() as u32, out.total);
    }

    /// Predicate-dependent values are reconstructed with a Select
    /// (paper figure 6's predicate dependence).
    #[test]
    fn branch_merged_value_is_prunable_via_select() {
        let (k, rm) = prepared(
            r#"
            .kernel s .params A
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                setp.lt.u32 %p0, %r0, 16
                bra %p0, a, b
            a:
                mov.u32 %r2, 100
                jmp join
            b:
                mov.u32 %r2, 200
                jmp join
            join:
                shl.u32 %r3, %r0, 2
                add.u32 %r4, %r1, %r3
                ld.global.u32 %r5, [%r4]
                st.global.u32 [%r4], %r5
                add.u32 %r6, %r5, %r2
                st.global.u32 [%r4+4], %r6
                ret
        "#,
        );
        let out = prune(&k, &rm, PruningMode::Optimal);
        // %r2 (VReg 3; %p0 takes VReg 2) is 100 or 200 depending on
        // %p0: reconstructible, so its checkpoints prune.
        let pruned_regs: Vec<VReg> = out
            .decisions
            .pruned
            .iter()
            .map(|&id| k.inst_at(k.find_inst(id).expect("cp")).ckpt_reg())
            .collect();
        assert!(pruned_regs.contains(&VReg(3)), "{pruned_regs:?}");
    }
}
