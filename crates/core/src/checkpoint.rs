//! Live-in computation, last-update-point discovery, and checkpoint
//! placement — eager (Bolt-style, paper §3) and bimodal (Penny §6.2).

use std::collections::{HashMap, HashSet};

use penny_analysis::{DefSite, Liveness, LoopInfo, ReachingDefs};
use penny_graph::bipartite::{BipartiteCover, Side};
use penny_ir::{Color, InstId, Kernel, Loc, Op, RegionId, Type, VReg};

use crate::cost::{checkpoint_cost, BCP_COST_BASE};
use crate::regionmap::RegionMap;

/// One LUP-to-boundary relation: definition `def` of `reg` reaches the
/// boundary of `region`, where `reg` is live-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LupEdge {
    /// The defining instruction (last update point).
    pub def: DefSite,
    /// The region whose boundary consumes the definition.
    pub region: RegionId,
    /// The register involved.
    pub reg: VReg,
}

/// Live-in registers per region (indexed by region id).
pub fn region_live_ins(kernel: &Kernel, rm: &RegionMap, lv: &Liveness) -> Vec<Vec<VReg>> {
    rm.markers()
        .iter()
        .map(|&(_, loc, _)| {
            lv.live_set_before(kernel, loc).iter().map(|i| VReg(i as u32)).collect()
        })
        .collect()
}

/// Computes all LUP edges (paper figure 2's many-to-many relation).
pub fn lup_edges(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
    rd: &ReachingDefs,
) -> Vec<LupEdge> {
    let mut edges = Vec::new();
    for &(region, loc, _) in rm.markers() {
        for &reg in &live_ins[region.index()] {
            for def in rd.reaching_defs_of(kernel, loc, reg) {
                edges.push(LupEdge { def, region, reg });
            }
        }
    }
    edges
}

/// Where a checkpoint is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CkptPos {
    /// Immediately after the defining instruction (eager/LUP placement).
    AfterLup(InstId),
    /// Immediately before the region's entry marker (boundary placement).
    BeforeBoundary(RegionId),
}

/// A planned checkpoint: register + position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Register to save.
    pub reg: VReg,
    /// Where to save it.
    pub pos: CkptPos,
}

/// Bolt's eager placement: one checkpoint right after every LUP.
pub fn eager_placement(edges: &[LupEdge]) -> Vec<Placement> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for e in edges {
        if seen.insert((e.def.inst, e.reg)) {
            out.push(Placement { reg: e.reg, pos: CkptPos::AfterLup(e.def.inst) });
        }
    }
    out
}

/// Aggregate counters from one bimodal-placement solve, for the
/// checkpoint-placement observability span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BcpStats {
    /// Distinct LUP vertices across all per-register instances.
    pub lups: u64,
    /// Distinct boundary vertices across all per-register instances.
    pub boundaries: u64,
    /// LUP-to-boundary edges covered.
    pub edges: u64,
    /// Augmenting paths pushed by the underlying max-flow solves.
    pub augmenting_paths: u64,
    /// Total minimum cover cost across registers.
    pub cover_cost: u64,
}

/// Penny's bimodal checkpoint placement: per register, solve the
/// LUP-vs-boundary minimum-weight vertex cover (paper §6.2) with weights
/// `2^loop-depth`.
pub fn bimodal_placement(
    kernel: &Kernel,
    rm: &RegionMap,
    loops: &LoopInfo,
    edges: &[LupEdge],
) -> Vec<Placement> {
    bimodal_placement_counted(kernel, rm, loops, edges).0
}

/// [`bimodal_placement`] plus the solver counters ([`BcpStats`]) the
/// observability layer reports.
pub fn bimodal_placement_counted(
    _kernel: &Kernel,
    rm: &RegionMap,
    loops: &LoopInfo,
    edges: &[LupEdge],
) -> (Vec<Placement>, BcpStats) {
    // Group edges per register.
    let mut by_reg: HashMap<VReg, Vec<&LupEdge>> = HashMap::new();
    for e in edges {
        by_reg.entry(e.reg).or_default().push(e);
    }
    let mut out = Vec::new();
    let mut stats = BcpStats::default();
    let mut regs: Vec<VReg> = by_reg.keys().copied().collect();
    regs.sort();
    for reg in regs {
        let es = &by_reg[&reg];
        // Dense indices for LUPs and boundaries of this register.
        let mut lups: Vec<InstId> = Vec::new();
        let mut lup_locs: Vec<Loc> = Vec::new();
        let mut bounds: Vec<RegionId> = Vec::new();
        for e in es.iter() {
            if !lups.contains(&e.def.inst) {
                lups.push(e.def.inst);
                lup_locs.push(e.def.loc);
            }
            if !bounds.contains(&e.region) {
                bounds.push(e.region);
            }
        }
        let mut g = BipartiteCover::new();
        for &loc in &lup_locs {
            g.add_left(checkpoint_cost(loops, loc, BCP_COST_BASE));
        }
        for &r in &bounds {
            g.add_right(checkpoint_cost(loops, rm.marker_loc(r), BCP_COST_BASE));
        }
        for e in es.iter() {
            let li = lups.iter().position(|&x| x == e.def.inst).expect("lup indexed");
            let bi = bounds.iter().position(|&x| x == e.region).expect("boundary indexed");
            g.add_edge(li, bi);
        }
        let cover = g.solve();
        stats.lups += lups.len() as u64;
        stats.boundaries += bounds.len() as u64;
        stats.edges += es.len() as u64;
        stats.augmenting_paths += cover.augmenting_paths;
        stats.cover_cost += cover.total_cost;
        for &(side, i) in &cover.chosen {
            let pos = match side {
                Side::Left => CkptPos::AfterLup(lups[i]),
                Side::Right => CkptPos::BeforeBoundary(bounds[i]),
            };
            out.push(Placement { reg, pos });
        }
    }
    (out, stats)
}

/// Inserts `cp` pseudo-instructions for the given placements; returns the
/// new checkpoint instruction ids.
///
/// All checkpoints start with color `K0`; overwrite prevention recolors
/// them later.
pub fn insert_checkpoints(kernel: &mut Kernel, placements: &[Placement]) -> Vec<InstId> {
    let mut ids = Vec::with_capacity(placements.len());
    for p in placements {
        let anchor = match p.pos {
            CkptPos::AfterLup(def) => {
                let loc = kernel.find_inst(def).expect("LUP present");
                Loc { block: loc.block, idx: loc.idx + 1 }
            }
            CkptPos::BeforeBoundary(region) => {
                let (_, marker) = kernel
                    .locs()
                    .find(|(_, i)| i.region_entry() == Some(region))
                    .map(|(l, i)| (l, i.id))
                    .expect("marker present");

                kernel.find_inst(marker).expect("marker loc")
            }
        };
        let cp = kernel.make_inst(
            Op::Ckpt(Color::K0),
            Type::U32,
            None,
            vec![penny_ir::Operand::Reg(p.reg)],
        );
        ids.push(cp.id);
        kernel.insert_at(anchor, cp);
    }
    ids
}

/// Hoists checkpoint pseudo-ops that landed between an atomic and the
/// region marker following it to just before the atomic.
///
/// Region formation places a boundary immediately after every atomic,
/// but boundary-anchored checkpoint placement then inserts `cp` ops in
/// that window. Lowered checkpoint stores read registers, and a parity
/// detection on such a read rolls the warp back to the *previous*
/// marker — replaying the atomic's read-modify-write, which is not
/// idempotent. Any checkpointed value defined before the atomic can be
/// saved before it instead (the atomic writes no register other than
/// its own destination), closing the window. A checkpoint of the
/// atomic's own result cannot move and is rejected later by
/// [`crate::check::check_atomic_windows`].
///
/// Returns the number of checkpoints moved.
pub fn hoist_ckpts_above_atomics(kernel: &mut Kernel) -> u32 {
    let mut moved = 0u32;
    for b in kernel.block_ids().collect::<Vec<_>>() {
        let insts = &mut kernel.block_mut(b).insts;
        let mut i = 0;
        while i < insts.len() {
            if !matches!(insts[i].op, Op::Atom(..)) {
                i += 1;
                continue;
            }
            let atom_dst = insts[i].dst;
            let mut j = i + 1;
            while j < insts.len() && insts[j].op.is_pseudo() {
                let cp_reg = match insts[j].srcs.first() {
                    Some(&penny_ir::Operand::Reg(r)) => Some(r),
                    _ => None,
                };
                if cp_reg.is_some() && cp_reg != atom_dst {
                    let cp = insts.remove(j);
                    insts.insert(i, cp);
                    moved += 1;
                    i += 1; // the atomic shifted right
                }
                j += 1;
            }
            i += 1;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    /// Figure-1 style kernel: two regions; %r1-ish value crosses the
    /// boundary.
    fn two_region_kernel() -> Kernel {
        let mut k = parse_kernel(
            r#"
            .kernel f .params A
            entry:
                mov.u32 %r0, 16
                ld.param.u32 %r9, [A]
                ld.global.u32 %r1, [%r0]
                add.u32 %r2, %r1, 5
                st.global.u32 [%r0], %r2
                add.u32 %r3, %r2, 1
                st.global.u32 [%r9], %r3
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        k
    }

    fn setup(k: &Kernel) -> (RegionMap, Vec<Vec<VReg>>, Vec<LupEdge>) {
        let rm = RegionMap::compute(k);
        let lv = Liveness::compute(k);
        let rd = ReachingDefs::compute(k);
        let live = region_live_ins(k, &rm, &lv);
        let edges = lup_edges(k, &rm, &live, &rd);
        (rm, live, edges)
    }

    #[test]
    fn live_ins_cross_the_boundary() {
        let k = two_region_kernel();
        let (rm, live, _) = setup(&k);
        assert!(rm.len() >= 2);
        // Region 0 (entry) has no live-ins.
        assert!(live[0].is_empty(), "{:?}", live[0]);
        // The store region needs %r0 (VReg 0: address) and %r2 (VReg 3:
        // value; parse order assigns %r0=0, %r9=1, %r1=2, %r2=3).
        let r1 = &live[1];
        assert!(r1.contains(&VReg(0)), "{r1:?}");
        assert!(r1.contains(&VReg(3)), "{r1:?}");
    }

    #[test]
    fn eager_places_one_cp_per_lup() {
        let k = two_region_kernel();
        let (_, _, edges) = setup(&k);
        let ps = eager_placement(&edges);
        // Each (def, reg) once, positioned after the LUP.
        let mut seen = HashSet::new();
        for p in &ps {
            assert!(matches!(p.pos, CkptPos::AfterLup(_)));
            assert!(seen.insert((p.reg, p.pos)), "duplicate {p:?}");
        }
        assert!(!ps.is_empty());
    }

    #[test]
    fn insert_checkpoints_preserves_validity() {
        let mut k = two_region_kernel();
        let (_, _, edges) = setup(&k);
        let ps = eager_placement(&edges);
        let ids = insert_checkpoints(&mut k, &ps);
        assert_eq!(ids.len(), ps.len());
        penny_ir::validate(&k).expect("valid after insertion");
        assert_eq!(k.checkpoints().len(), ps.len());
        // Each checkpoint sits right after its LUP.
        for (p, id) in ps.iter().zip(&ids) {
            let cp_loc = k.find_inst(*id).expect("cp");
            if let CkptPos::AfterLup(def) = p.pos {
                let def_loc = k.find_inst(def).expect("def");
                assert_eq!(cp_loc.block, def_loc.block);
                assert_eq!(cp_loc.idx, def_loc.idx + 1);
            }
        }
    }

    #[test]
    fn bimodal_moves_loop_checkpoints_to_boundary() {
        // A register updated in a loop, consumed by a region boundary
        // after the loop: LUP placement costs 2^1, boundary placement
        // costs 2^0 -> BCP must choose the boundary.
        let mut k = parse_kernel(
            r#"
            .kernel l .params A N
            entry:
                mov.u32 %r0, 0
                mov.u32 %r1, 0
                ld.param.u32 %r2, [A]
                ld.param.u32 %r3, [N]
                jmp head
            head:
                add.u32 %r1, %r1, %r0
                add.u32 %r0, %r0, 1
                setp.lt.u32 %p0, %r0, %r3
                bra %p0, head, after
            after:
                ld.global.u32 %r4, [%r2]
                st.global.u32 [%r2], %r4
                add.u32 %r5, %r4, %r1
                st.global.u32 [%r2+4], %r5
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let loops = LoopInfo::compute(&k);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let edges = lup_edges(&k, &rm, &live, &rd);
        let bimodal = bimodal_placement(&k, &rm, &loops, &edges);
        // %r1's LUP is in the loop; its only consumer boundary is the
        // post-loop cut (depth 0): boundary placement wins.
        let r1_places: Vec<&Placement> =
            bimodal.iter().filter(|p| p.reg == VReg(1)).collect();
        assert!(!r1_places.is_empty());
        for p in r1_places {
            assert!(
                matches!(p.pos, CkptPos::BeforeBoundary(_)),
                "expected boundary placement, got {p:?}"
            );
        }
        // Bimodal never costs more than eager.
        let eager = eager_placement(&edges);
        let cost = |ps: &[Placement]| -> u64 {
            ps.iter()
                .map(|p| match p.pos {
                    CkptPos::AfterLup(d) => {
                        checkpoint_cost(&loops, k.find_inst(d).expect("loc"), BCP_COST_BASE)
                    }
                    CkptPos::BeforeBoundary(r) => {
                        checkpoint_cost(&loops, rm.marker_loc(r), BCP_COST_BASE)
                    }
                })
                .sum()
        };
        assert!(cost(&bimodal) <= cost(&eager), "bimodal must not regress");
    }

    #[test]
    fn every_lup_edge_is_covered_by_bimodal() {
        let k = two_region_kernel();
        let (rm, _, edges) = setup(&k);
        let loops = LoopInfo::compute(&k);
        let ps = bimodal_placement(&k, &rm, &loops, &edges);
        for e in &edges {
            let covered = ps.iter().any(|p| {
                p.reg == e.reg
                    && match p.pos {
                        CkptPos::AfterLup(d) => d == e.def.inst,
                        CkptPos::BeforeBoundary(r) => r == e.region,
                    }
            });
            assert!(covered, "edge {e:?} uncovered");
        }
    }

    /// Kernel with an atomic followed by its region boundary, plus a
    /// checkpoint parked in the window between them.
    fn atomic_window_kernel(cp_reg: &str) -> Kernel {
        let k = parse_kernel(&format!(
            r#"
            .kernel a .params H
            entry:
                ld.param.u32 %r0, [H]
                mov.u32 %r1, 7
                atom.global.add.u32 %r2, [%r0], 1
                cp {cp_reg}
                region R1
                add.u32 %r3, %r1, 1
                st.global.u32 [%r0], %r3
                ret
        "#
        ))
        .expect("parse");
        // The parse keeps the hand-written marker; no form_regions here
        // so the window layout stays exactly as written.
        penny_ir::validate(&k).expect("valid");
        k
    }

    #[test]
    fn hoist_moves_window_checkpoint_above_the_atomic() {
        let mut k = atomic_window_kernel("%r1");
        let moved = hoist_ckpts_above_atomics(&mut k);
        assert_eq!(moved, 1);
        let insts = &k.block(penny_ir::BlockId(0)).insts;
        let atom = insts.iter().position(|i| matches!(i.op, Op::Atom(..))).expect("atom");
        let cp = insts.iter().position(|i| i.is_ckpt()).expect("cp");
        assert!(cp < atom, "checkpoint must precede the atomic");
        // And nothing remains in the atom-to-marker window.
        crate::check::check_atomic_windows(&k).expect("window clear");
    }

    #[test]
    fn hoist_leaves_checkpoint_of_the_atomics_own_result() {
        // cp %r2 checkpoints the atomic's destination: its value does
        // not exist before the atomic, so the hoist must not move it.
        let mut k = atomic_window_kernel("%r2");
        let moved = hoist_ckpts_above_atomics(&mut k);
        assert_eq!(moved, 0);
        let insts = &k.block(penny_ir::BlockId(0)).insts;
        let atom = insts.iter().position(|i| matches!(i.op, Op::Atom(..))).expect("atom");
        let cp = insts.iter().position(|i| i.is_ckpt()).expect("cp");
        assert!(cp > atom, "checkpoint of the result stays put");
        // The window check must flag this irreducible hazard.
        assert!(crate::check::check_atomic_windows(&k).is_err());
    }

    #[test]
    fn hoist_handles_multiple_window_checkpoints() {
        let mut k = parse_kernel(
            r#"
            .kernel m .params H
            entry:
                ld.param.u32 %r0, [H]
                mov.u32 %r1, 3
                mov.u32 %r2, 4
                atom.global.add.u32 %r3, [%r0], 1
                cp %r1
                cp %r3
                cp %r2
                region R1
                add.u32 %r4, %r1, %r2
                st.global.u32 [%r0], %r4
                ret
        "#,
        )
        .expect("parse");
        let moved = hoist_ckpts_above_atomics(&mut k);
        // %r1 and %r2 hoist; %r3 (the atomic's result) cannot.
        assert_eq!(moved, 2);
        let insts = &k.block(penny_ir::BlockId(0)).insts;
        let atom = insts.iter().position(|i| matches!(i.op, Op::Atom(..))).expect("atom");
        let cps: Vec<usize> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_ckpt())
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(cps.len(), 3);
        assert_eq!(cps.iter().filter(|&&c| c < atom).count(), 2);
        assert_eq!(cps.iter().filter(|&&c| c > atom).count(), 1);
        penny_ir::validate(&k).expect("still valid");
    }
}
