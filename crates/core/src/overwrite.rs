//! Checkpoint-overwrite prevention (paper §6.3).
//!
//! GPUs have no store buffer, so a checkpoint of `r` taken inside a
//! region that *also consumes* an earlier checkpoint of `r` would clobber
//! the value recovery still needs (paper figure 4). Two software schemes
//! fix this:
//!
//! * **register renaming** — split the live range: the overwriting
//!   definition gets a fresh register (and therefore a fresh checkpoint
//!   slot). Mirrors the paper's live-range extension; costs register
//!   pressure, which we surface as a pressure penalty.
//! * **2-coloring storage alternation** — each overwrite-prone register
//!   gets two slots (`K0`/`K1`); checkpoints in consecutive
//!   checkpointing regions alternate. Color conflicts at control-flow
//!   merges are repaired with adjustment blocks carrying dummy
//!   checkpoints (paper figure 5).

use std::collections::{HashMap, HashSet};

use penny_analysis::{AnalysisCtx, Liveness, ReachingDefs};
use penny_ir::{
    BlockId, Color, IdWatermark, InstId, Kernel, Loc, Op, Operand, RegionId, VReg,
};

use crate::regionmap::RegionMap;

/// Registers whose checkpoints may overwrite a still-needed checkpoint:
/// `r` such that some region both has `r` live-in and contains a
/// checkpoint of `r` (paper figure 4's condition).
pub fn overwrite_prone_regs(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> Vec<VReg> {
    overwrite_prone_regs_with(kernel, &rm.by_inst(kernel), live_ins)
}

/// [`overwrite_prone_regs`] against a prebuilt instruction→region table
/// (the renaming loop reuses one table across iterations; renaming
/// never adds, removes, or moves instructions, so the table stays
/// valid).
fn overwrite_prone_regs_with(
    kernel: &Kernel,
    table: &HashMap<InstId, Vec<RegionId>>,
    live_ins: &[Vec<VReg>],
) -> Vec<VReg> {
    let mut prone = HashSet::new();
    for (_, inst) in kernel.locs() {
        if !inst.is_ckpt() {
            continue;
        }
        let reg = inst.ckpt_reg();
        for region in table.get(&inst.id).into_iter().flatten() {
            if live_ins[region.index()].contains(&reg) {
                prone.insert(reg);
            }
        }
    }
    let mut v: Vec<VReg> = prone.into_iter().collect();
    v.sort();
    v
}

/// Memoized analyses for one overwrite-prevention invocation.
///
/// The pass interleaves queries and edits; recomputing every analysis
/// per loop iteration used to dominate compile time. Caching obeys a
/// two-tier invalidation contract:
///
/// * [`PassCtx::invalidate_values`] — a def-use web was renamed.
///   Liveness, reaching defs, region live-ins, and the prone set are
///   stale; the instruction→region table is **not** (renaming rewrites
///   operands in place, so no instruction is added, removed, or moved
///   and no region marker changes).
/// * No invalidation at all for failed attempts: a [`RenameResult::Failed`]
///   probe returns before any mutation, so every cached result stays
///   valid — exactly the iterations the old code paid full recomputation
///   for.
struct PassCtx<'rm> {
    rm: &'rm RegionMap,
    actx: AnalysisCtx,
    live_ins: Option<Vec<Vec<VReg>>>,
    prone: Option<Vec<VReg>>,
    by_inst: Option<HashMap<InstId, Vec<RegionId>>>,
}

impl<'rm> PassCtx<'rm> {
    fn new(rm: &'rm RegionMap) -> PassCtx<'rm> {
        PassCtx { rm, actx: AnalysisCtx::new(), live_ins: None, prone: None, by_inst: None }
    }

    /// Ensures live-ins and the prone set are current.
    fn refresh(&mut self, kernel: &Kernel) {
        if self.prone.is_some() {
            return;
        }
        self.ensure_by_inst(kernel);
        let lv = self.actx.liveness(kernel);
        let live_ins = crate::checkpoint::region_live_ins(kernel, self.rm, lv);
        let prone = overwrite_prone_regs_with(
            kernel,
            self.by_inst.as_ref().expect("ensured"),
            &live_ins,
        );
        self.live_ins = Some(live_ins);
        self.prone = Some(prone);
    }

    fn ensure_by_inst(&mut self, kernel: &Kernel) {
        if self.by_inst.is_none() {
            self.by_inst = Some(self.rm.by_inst(kernel));
        }
    }

    /// The kernel's def-use sets changed (a rename landed): drop every
    /// value-dependent result, keep the instruction→region table.
    fn invalidate_values(&mut self) {
        self.actx.invalidate();
        self.live_ins = None;
        self.prone = None;
    }
}

/// Outcome of an overwrite-prevention pass.
#[derive(Debug, Clone, Default)]
pub struct OverwriteOutcome {
    /// Registers that needed protection.
    pub prone: Vec<VReg>,
    /// Renamed definitions (renaming scheme): count used as a register-
    /// pressure penalty, mirroring the paper's live-range extension.
    pub renamed_defs: u32,
    /// Adjustment blocks inserted (alternation scheme).
    pub adjustment_blocks: u32,
    /// Registers the scheme could not handle (caller must fall back).
    pub failed: Vec<VReg>,
}

/// Applies register renaming to every overwrite-prone register.
///
/// For each checkpoint of a prone register `r` inside a region that has
/// `r` live-in, the *defining* instruction of that checkpointed value is
/// renamed to a fresh register (uses rewired), giving the new value its
/// own checkpoint slot. Definitions whose def-use web cannot be renamed
/// in isolation (merged uses, guarded defs) are reported in `failed`.
pub fn apply_renaming(kernel: &mut Kernel, rm: &RegionMap) -> OverwriteOutcome {
    let mut outcome = OverwriteOutcome::default();
    // Registers created by renaming: if one becomes prone again the
    // register is genuinely loop-carried and renaming cannot converge —
    // hand it to the alternation fallback instead of chasing it.
    let mut created: HashSet<VReg> = HashSet::new();
    // Iterate: each successful rename can change liveness; failed
    // attempts mutate nothing, so the cached analyses carry over.
    let mut ctx = PassCtx::new(rm);
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts < 4096, "renaming did not converge");
        ctx.refresh(kernel);
        let prone = ctx.prone.clone().expect("refreshed");
        if outcome.prone.is_empty() {
            outcome.prone = prone.clone();
        }
        let candidate = prone
            .iter()
            .copied()
            .find(|r| !outcome.failed.contains(r) && !created.contains(r));
        let Some(reg) = candidate else {
            // Renamed registers that came back prone need the fallback.
            for r in prone {
                if created.contains(&r) && !outcome.failed.contains(&r) {
                    outcome.failed.push(r);
                }
            }
            break;
        };
        match rename_one(kernel, &mut ctx, reg, &mut created) {
            RenameResult::Renamed => {
                outcome.renamed_defs += 1;
                ctx.invalidate_values();
            }
            RenameResult::Failed => outcome.failed.push(reg),
        }
    }
    outcome
}

enum RenameResult {
    Renamed,
    Failed,
}

/// Renames one offending definition of `reg`.
fn rename_one(
    kernel: &mut Kernel,
    ctx: &mut PassCtx<'_>,
    reg: VReg,
    created: &mut HashSet<VReg>,
) -> RenameResult {
    ctx.ensure_by_inst(kernel);
    let rd = ctx.actx.reachdefs(kernel);
    let table = ctx.by_inst.as_ref().expect("ensured");
    let live_ins = ctx.live_ins.as_ref().expect("refreshed");
    // Find a checkpoint of `reg` inside a region with `reg` live-in.
    let mut target_def: Option<InstId> = None;
    'outer: for (loc, inst) in kernel.locs() {
        if !inst.is_ckpt() || inst.ckpt_reg() != reg {
            continue;
        }
        let in_bad_region = table
            .get(&inst.id)
            .into_iter()
            .flatten()
            .any(|r| live_ins[r.index()].contains(&reg));
        if !in_bad_region {
            continue;
        }
        // The value being checkpointed: its reaching def(s) here.
        let defs = rd.reaching_defs_of(kernel, loc, reg);
        if defs.len() != 1 {
            return RenameResult::Failed;
        }
        target_def = Some(defs[0].inst);
        break 'outer;
    }
    let Some(def_id) = target_def else { return RenameResult::Failed };
    let result = rename_def_web(kernel, rd, def_id, reg);
    if matches!(result, RenameResult::Renamed) {
        // The freshest register is the one just allocated.
        created.insert(VReg(kernel.vreg_limit() - 1));
    }
    result
}

/// Renames definition `def_id` of `reg` and all uses it exclusively
/// reaches.
fn rename_def_web(
    kernel: &mut Kernel,
    rd: &ReachingDefs,
    def_id: InstId,
    reg: VReg,
) -> RenameResult {
    let def_loc = kernel.find_inst(def_id).expect("def present");
    if kernel.inst_at(def_loc).guard.is_some() {
        return RenameResult::Failed;
    }
    // Collect uses of `reg` reached by this def; every such use must be
    // reached *only* by this def.
    let mut use_sites: Vec<(Loc, UseKind)> = Vec::new();
    for b in kernel.block_ids().collect::<Vec<_>>() {
        let n = kernel.block(b).insts.len();
        for idx in 0..n {
            let loc = Loc { block: b, idx };
            let inst = kernel.inst_at(loc);
            let uses_reg = inst.srcs.iter().any(|o| o.as_reg() == Some(reg))
                || inst.guard.map(|g| g.pred == reg).unwrap_or(false);
            if !uses_reg {
                continue;
            }
            let reaching = rd.reaching_defs_of(kernel, loc, reg);
            let hits_def = reaching.iter().any(|d| d.inst == def_id);
            if !hits_def {
                continue;
            }
            if reaching.len() != 1 {
                return RenameResult::Failed;
            }
            use_sites.push((loc, UseKind::Inst));
        }
        // Terminator predicate use.
        if kernel.block(b).term.pred() == Some(reg) {
            let loc = Loc { block: b, idx: n };
            let reaching = rd.reaching_defs_of(kernel, loc, reg);
            if reaching.iter().any(|d| d.inst == def_id) {
                if reaching.len() != 1 {
                    return RenameResult::Failed;
                }
                use_sites.push((loc, UseKind::Terminator));
            }
        }
    }
    // Apply.
    let fresh = if kernel.is_pred(reg) { kernel.fresh_pred() } else { kernel.fresh_vreg() };
    let def_loc = kernel.find_inst(def_id).expect("def present");
    kernel.block_mut(def_loc.block).insts[def_loc.idx].dst = Some(fresh);
    for (loc, kind) in use_sites {
        match kind {
            UseKind::Inst => {
                let inst = &mut kernel.block_mut(loc.block).insts[loc.idx];
                for o in &mut inst.srcs {
                    if o.as_reg() == Some(reg) {
                        *o = Operand::Reg(fresh);
                    }
                }
                if let Some(g) = &mut inst.guard {
                    if g.pred == reg {
                        g.pred = fresh;
                    }
                }
            }
            UseKind::Terminator => {
                if let penny_ir::Terminator::Branch { pred, .. } =
                    &mut kernel.block_mut(loc.block).term
                {
                    *pred = fresh;
                }
            }
        }
    }
    RenameResult::Renamed
}

enum UseKind {
    Inst,
    Terminator,
}

/// Renames one definition's def-use web for the iGPU baseline; returns
/// `true` on success.
pub fn rename_def_for_igpu(
    kernel: &mut Kernel,
    rd: &ReachingDefs,
    def_id: InstId,
    reg: VReg,
) -> bool {
    matches!(rename_def_web(kernel, rd, def_id, reg), RenameResult::Renamed)
}

/// The `needed` component of the coloring state: which slot holds the
/// current region's live-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Needed {
    /// No checkpoint has executed yet.
    Empty,
    /// The live-in sits in this slot.
    Slot(Color),
    /// Paths disagree; any checkpoint before the next region marker
    /// (which resets `needed` from `holds`) is unresolvable.
    Poison,
}

/// Per-register coloring state for the alternation dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColorState {
    /// Color of the most recent checkpoint of the register.
    holds: Option<Color>,
    /// `holds` sampled at the last region boundary — the slot containing
    /// the current region's live-in, which must not be overwritten.
    needed: Needed,
}

impl ColorState {
    fn bottom() -> ColorState {
        ColorState { holds: None, needed: Needed::Empty }
    }

    /// Merge at a control-flow join: `holds` disagreement is a repairable
    /// conflict (handled by the caller); `needed` merges as a constraint
    /// union — `Empty` (no checkpoint yet, unconstrained) absorbs into
    /// the constrained side, and two different slots poison.
    fn merge(self, other: ColorState) -> ColorState {
        let needed = match (self.needed, other.needed) {
            (a, b) if a == b => a,
            (Needed::Empty, x) | (x, Needed::Empty) => x,
            _ => Needed::Poison,
        };
        ColorState { holds: self.holds.or(other.holds), needed }
    }

    /// `holds` values are compatible when equal or when one side has no
    /// checkpoint yet (adopting the other side's constraint is sound).
    fn holds_compatible(self, other: ColorState) -> bool {
        self.holds == other.holds || self.holds.is_none() || other.holds.is_none()
    }
}

/// Undo journal for the speculative CFG edits of one [`color_register`]
/// call.
///
/// Coloring mutates the CFG (edge splits carrying dummy checkpoints);
/// failed attempts used to be discarded by restoring a whole-kernel
/// clone taken up front. The journal records just enough to undo the
/// edits exactly — which edge each adjustment block was spliced into,
/// plus an [`IdWatermark`] so the id allocators (and the instruction and
/// register numbering of everything compiled afterwards) rewind too.
struct Journal {
    ids: IdWatermark,
    /// `(from, to, mid)` per [`Kernel::split_edge`], in application
    /// order. `mid` is always the block appended last at that point, and
    /// nothing else ever targets it, so undo is pop + un-rewire.
    splits: Vec<(BlockId, BlockId, BlockId)>,
}

impl Journal {
    fn mark(kernel: &Kernel) -> Journal {
        Journal { ids: kernel.id_watermark(), splits: Vec::new() }
    }

    /// [`Kernel::split_edge`], recorded for undo.
    fn split_edge(&mut self, kernel: &mut Kernel, from: BlockId, to: BlockId) -> BlockId {
        let mid = kernel.split_edge(from, to);
        self.splits.push((from, to, mid));
        mid
    }

    fn has_edits(&self) -> bool {
        !self.splits.is_empty()
    }

    /// Undoes every recorded edit (newest first) and rewinds the id
    /// allocators, restoring the kernel byte-for-byte to its state at
    /// [`Journal::mark`].
    fn rollback(self, kernel: &mut Kernel) {
        for (from, to, mid) in self.splits.into_iter().rev() {
            debug_assert_eq!(
                mid.index() + 1,
                kernel.num_blocks(),
                "journal undo out of order"
            );
            kernel.block_mut(from).term.map_targets(|t| if t == mid { to } else { t });
            kernel.blocks.pop();
        }
        kernel.rollback_ids(self.ids);
    }
}

/// Incrementally maintained instruction→region table shared across
/// coloring attempts.
///
/// [`color_register`] needs the table once per round, and every conflict
/// round used to trigger a full `RegionMap::compute` + `by_inst` rebuild
/// over a CFG that grows with each repair — the single hottest loop of
/// the whole pipeline. Both edit kinds the coloring performs have exact
/// O(1) incremental updates:
///
/// * **edge split** ([`CfgCache::note_split`]) — the adjustment block
///   carries no region marker, so it is a pass-through node: every
///   existing block's least-fixpoint solution is unchanged, and the new
///   block's entry state is exactly the split edge's source-exit state.
///   Its dummy checkpoint lives in precisely those regions.
/// * **dummy insert** ([`CfgCache::note_insert`]) — inserting an
///   instruction changes no block's entry state; the new checkpoint's
///   regions are the point query at its location.
///
/// Rewriting a checkpoint's color never touches the table (same
/// instructions, same regions). Only a journal rollback — which removes
/// blocks — invalidates it, and that costs one rebuild on next use.
#[derive(Default)]
struct CfgCache {
    state: Option<CfgState>,
    /// Reusable buffers for [`color_round`]; pure scratch space, always
    /// valid (never invalidated with the table).
    scratch: ColorScratch,
}

/// Scratch buffers for the coloring fixpoint. A failing attempt runs up
/// to 64 rounds, each of which needs the post-order, the predecessor
/// lists, and two per-block state vectors; reusing the allocations
/// across rounds (and across attempts) removes the dominant per-round
/// constant factor.
#[derive(Default)]
struct ColorScratch {
    order: Vec<BlockId>,
    preds: Vec<Vec<BlockId>>,
    visited: Vec<bool>,
    stack: Vec<(BlockId, usize)>,
    in_states: Vec<Option<ColorState>>,
    outs: Vec<Option<(ColorState, Option<ColorState>)>>,
}

struct CfgState {
    /// Possible current regions at each block entry (mirrors
    /// `RegionMap::block_in` for the current kernel).
    block_in: Vec<penny_analysis::BitSet>,
    /// Instruction id → possible regions (mirrors `RegionMap::by_inst`).
    table: HashMap<InstId, Vec<RegionId>>,
}

impl CfgCache {
    fn table(&mut self, kernel: &Kernel) -> &HashMap<InstId, Vec<RegionId>> {
        let state = self.state.get_or_insert_with(|| {
            let rm = crate::regionmap::RegionMap::compute(kernel);
            CfgState { block_in: rm.block_in_sets().to_vec(), table: rm.by_inst(kernel) }
        });
        &state.table
    }

    /// Registers the edge split `from -> mid` (with `mid`'s dummy
    /// checkpoint `cp`) in the cached solution.
    fn note_split(&mut self, kernel: &Kernel, from: BlockId, mid: BlockId, cp: InstId) {
        let Some(state) = self.state.as_mut() else { return };
        let ext = crate::regionmap::RegionMap::exit_state(
            kernel,
            from,
            &state.block_in[from.index()],
        );
        debug_assert_eq!(mid.index(), state.block_in.len(), "mid must be the newest block");
        state.table.insert(cp, ext.iter().map(|i| RegionId(i as u32)).collect());
        state.block_in.push(ext);
    }

    /// Registers a dummy checkpoint `cp` inserted at `loc` (no CFG
    /// change) in the cached solution.
    fn note_insert(&mut self, kernel: &Kernel, loc: Loc, cp: InstId) {
        let Some(state) = self.state.as_mut() else { return };
        let mut s = state.block_in[loc.block.index()].clone();
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if let Some(r) = inst.region_entry() {
                s.clear();
                s.insert(r.index());
            }
        }
        state.table.insert(cp, s.iter().map(|i| RegionId(i as u32)).collect());
    }

    fn invalidate(&mut self) {
        self.state = None;
    }
}

/// Applies 2-coloring storage alternation to all overwrite-prone
/// registers, inserting adjustment blocks at conflicts.
///
/// Returns the outcome; `failed` lists registers whose conflicts could
/// not be repaired with dummy checkpoints alone (the caller falls back
/// to renaming for those).
pub fn apply_alternation(kernel: &mut Kernel, rm: &RegionMap) -> OverwriteOutcome {
    let lv = Liveness::compute(kernel);
    let live_ins = crate::checkpoint::region_live_ins(kernel, rm, &lv);
    let prone = overwrite_prone_regs(kernel, rm, &live_ins);
    let mut outcome =
        OverwriteOutcome { prone: prone.clone(), ..OverwriteOutcome::default() };
    // One instruction→region table serves every attempt; color_register
    // journals its own edits and rolls them back on failure, so failed
    // attempts no longer cost a whole-kernel clone + restore.
    let mut cfg = CfgCache::default();
    for reg in prone {
        match color_register(kernel, reg, &live_ins, &mut cfg) {
            Some(adjustments) => outcome.adjustment_blocks += adjustments,
            None => match escalate_with_dummies(kernel, rm, reg, &live_ins, &mut cfg) {
                Some(adjustments) => outcome.adjustment_blocks += adjustments,
                None => outcome.failed.push(reg),
            },
        }
    }
    outcome
}

/// Escalation for registers a plain 2-coloring cannot handle: a region
/// that checkpoints `reg` follows itself around a loop, so the number of
/// checkpointing regions along the cycle is odd and no static coloring
/// alternates correctly. Adding a dummy checkpoint right after the entry
/// marker of a *non-checkpointing* region flips the cycle parity — it
/// saves exactly that region's live-in value, so it is always safe.
/// Dummies are added one marker at a time (each changes parity) until
/// the coloring succeeds.
fn escalate_with_dummies(
    kernel: &mut Kernel,
    rm: &RegionMap,
    reg: VReg,
    live_ins: &[Vec<VReg>],
    cfg: &mut CfgCache,
) -> Option<u32> {
    let candidates: Vec<penny_ir::InstId> = rm
        .markers()
        .iter()
        .filter(|&&(region, _, _)| live_ins[region.index()].contains(&reg))
        .map(|&(_, _, id)| id)
        .collect();
    let mut inserted = 0u32;
    for marker_id in candidates {
        // Skip markers whose region already starts with a checkpoint of
        // this register.
        let loc = kernel.find_inst(marker_id).expect("marker present");
        if kernel
            .block(loc.block)
            .insts
            .get(loc.idx + 1)
            .map(|i| i.is_ckpt() && i.ckpt_reg() == reg)
            .unwrap_or(false)
        {
            continue;
        }
        let cp = kernel.make_inst(
            Op::Ckpt(Color::K0),
            penny_ir::Type::U32,
            None,
            vec![Operand::Reg(reg)],
        );
        let cp_id = cp.id;
        let cp_loc = Loc { block: loc.block, idx: loc.idx + 1 };
        kernel.insert_at(cp_loc, cp);
        inserted += 1;
        cfg.note_insert(kernel, cp_loc, cp_id);
        // On failure the coloring edits roll back but the dummy stays
        // (it is safe on its own and the next attempt builds on it).
        if let Some(adjustments) = color_register(kernel, reg, live_ins, cfg) {
            return Some(adjustments + inserted);
        }
    }
    None
}

/// Colors all checkpoints of one register; returns the number of
/// adjustment blocks inserted, or `None` on unresolvable conflict.
///
/// Self-cleaning: on failure every CFG edit this call made is undone
/// (journal rollback), leaving the kernel — id allocators included —
/// exactly as it was on entry.
fn color_register(
    kernel: &mut Kernel,
    reg: VReg,
    live_ins: &[Vec<VReg>],
    cfg: &mut CfgCache,
) -> Option<u32> {
    let mut journal = Journal::mark(kernel);
    let mut adjustments = 0u32;
    // Transfer memo from any previous call is stale (different register,
    // possibly different kernel): drop it for this call.
    cfg.scratch.outs.clear();
    // Constrained checkpoints: those in a region whose live-ins include
    // the register (they must avoid the live-in slot and therefore
    // flip). Existing checkpoints never change regions during the loop
    // below (splits only add marker-free blocks), so the set is built
    // once; each conflict repair adds its own dummy if constrained.
    let in_live_region = |table: &HashMap<InstId, Vec<RegionId>>, id: InstId| {
        table.get(&id).into_iter().flatten().any(|region| {
            live_ins.get(region.index()).map(|l| l.contains(&reg)).unwrap_or(false)
        })
    };
    let mut constrained: HashSet<InstId> = {
        let table = cfg.table(kernel);
        kernel
            .checkpoints()
            .iter()
            .filter(|&&(_, id, r)| r == reg && in_live_region(table, id))
            .map(|&(_, id, _)| id)
            .collect()
    };
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 64 {
            break;
        }
        match color_round(kernel, reg, &constrained, &mut cfg.scratch) {
            ColorRound::Done(colors) => {
                // Commit colors to the checkpoint instructions in one
                // walk (color rewrites keep the cached table valid).
                for blk in &mut kernel.blocks {
                    for inst in &mut blk.insts {
                        if let Some(&c) = colors.get(&inst.id) {
                            inst.op = Op::Ckpt(c);
                        }
                    }
                }
                return Some(adjustments);
            }
            ColorRound::Conflict { edge: (from, to), want } => {
                // Insert an adjustment block with a dummy checkpoint so
                // the incoming state matches `want` (paper figure 5).
                let adj = journal.split_edge(kernel, from, to);
                let cp = kernel.make_inst(
                    Op::Ckpt(want),
                    penny_ir::Type::U32,
                    None,
                    vec![Operand::Reg(reg)],
                );
                let cp_id = cp.id;
                kernel.block_mut(adj).insts.push(cp);
                adjustments += 1;
                cfg.note_split(kernel, from, adj, cp_id);
                if in_live_region(cfg.table(kernel), cp_id) {
                    constrained.insert(cp_id);
                }
            }
            ColorRound::Unresolvable => break,
        }
    }
    // Failed: drop this call's edits. The cached table may have been
    // rebuilt against them, so it goes too.
    if journal.has_edits() {
        cfg.invalidate();
    }
    journal.rollback(kernel);
    None
}

enum ColorRound {
    Done(HashMap<InstId, Color>),
    Conflict { edge: (BlockId, BlockId), want: Color },
    Unresolvable,
}

/// Memoized block transfer: the coloring out-state of `p` given the
/// current in-states. Transfer outputs depend only on the block's
/// in-state, so each block is re-transferred only when its in-state
/// changed since the cached entry — the fixpoint loop below queries
/// every predecessor of every block per sweep, which used to pay a full
/// transfer (plus a throwaway color sink) per query.
fn memo_out(
    kernel: &Kernel,
    reg: VReg,
    constrained: &HashSet<InstId>,
    cache: &mut [Option<(ColorState, Option<ColorState>)>],
    in_states: &[Option<ColorState>],
    p: BlockId,
) -> Option<Option<ColorState>> {
    let pin = in_states[p.index()]?;
    if let Some((cached_in, out)) = cache[p.index()] {
        if cached_in == pin {
            return Some(out);
        }
    }
    let out = transfer_colors(kernel, p, reg, pin, constrained, None);
    cache[p.index()] = Some((pin, out));
    Some(out)
}

/// One monotone pass of the coloring dataflow for `reg`.
fn color_round(
    kernel: &Kernel,
    reg: VReg,
    constrained: &HashSet<InstId>,
    scratch: &mut ColorScratch,
) -> ColorRound {
    let n = kernel.num_blocks();
    kernel.reverse_post_order_into(
        &mut scratch.visited,
        &mut scratch.stack,
        &mut scratch.order,
    );
    kernel.predecessors_into(&mut scratch.preds);
    scratch.in_states.clear();
    scratch.in_states.resize(n, None);
    // `outs` deliberately survives across rounds: within one
    // `color_register` call a repair only appends a fresh block (slot
    // pushed as `None` here) and existing blocks' instructions and the
    // constrained status of their checkpoints never change, so cached
    // transfers keyed by in-state stay exact. The caller clears it once
    // per call (the kernel and register differ between calls).
    scratch.outs.resize(n, None);
    let order = &scratch.order;
    let preds = &scratch.preds;
    let in_states = &mut scratch.in_states;
    let outs = &mut scratch.outs;
    in_states[kernel.entry.index()] = Some(ColorState::bottom());
    // Iterate to fixpoint; conflicts surface as differing pred states.
    for _ in 0..2 * n + 4 {
        let mut changed = false;
        for &b in order {
            let mut state: Option<ColorState> =
                if b == kernel.entry { Some(ColorState::bottom()) } else { None };
            let mut conflict: Option<(BlockId, ColorState)> = None;
            for &p in &preds[b.index()] {
                let Some(pout) = memo_out(kernel, reg, constrained, outs, in_states, p)
                else {
                    continue;
                };
                let Some(pout) = pout else { return ColorRound::Unresolvable };
                state = match state {
                    None => Some(pout),
                    Some(s) if s.holds_compatible(pout) => Some(s.merge(pout)),
                    Some(s) => {
                        conflict = Some((p, s));
                        Some(s)
                    }
                };
            }
            if let Some((bad_pred, want_state)) = conflict {
                // A dummy checkpoint on an edge may write color `c` iff
                // the live-in slot on that path is not `c` (an `Empty`
                // needed is unconstrained). Try to equalize `holds` by
                // putting a dummy on either side of the conflict.
                let legal = |needed: Needed, c: Color| match needed {
                    Needed::Slot(x) => x != c,
                    Needed::Empty => true,
                    Needed::Poison => false,
                };
                let pout = memo_out(kernel, reg, constrained, outs, in_states, bad_pred)
                    .expect("processed")
                    .expect("no poison past cp on processed path");
                if let Some(w) = want_state.holds {
                    if legal(pout.needed, w) {
                        return ColorRound::Conflict { edge: (bad_pred, b), want: w };
                    }
                }
                if let Some(&first) = preds[b.index()]
                    .iter()
                    .find(|&&p| p != bad_pred && in_states[p.index()].is_some())
                {
                    let fout = memo_out(kernel, reg, constrained, outs, in_states, first)
                        .expect("processed")
                        .expect("no poison past cp on processed path");
                    if let Some(w) = pout.holds {
                        if legal(fout.needed, w) {
                            return ColorRound::Conflict { edge: (first, b), want: w };
                        }
                    }
                }
                return ColorRound::Unresolvable;
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
        if !changed {
            // Stable and conflict-free: collect colors from every
            // reachable block (the entry included — it has no preds and
            // is never transferred above).
            let mut colors: HashMap<InstId, Color> = HashMap::new();
            for &b in order {
                if let Some(pin) = in_states[b.index()] {
                    if transfer_colors(kernel, b, reg, pin, constrained, Some(&mut colors))
                        .is_none()
                    {
                        return ColorRound::Unresolvable;
                    }
                }
            }
            return ColorRound::Done(colors);
        }
    }
    // Fixpoint not reached within bound: treat as unresolvable.
    ColorRound::Unresolvable
}

fn flip_or_k0(needed: Needed) -> Option<Color> {
    match needed {
        Needed::Slot(c) => Some(c.flipped()),
        Needed::Empty => Some(Color::K0),
        Needed::Poison => None,
    }
}

/// Transfers the coloring state across a block; records chosen colors
/// into `colors` when given one (the fixpoint loop passes `None` — it
/// only needs out-states). Returns `None` if a constrained checkpoint is
/// reached with poisoned `needed`.
///
/// Constrained checkpoints (their region has the register live-in) must
/// avoid the live-in slot, i.e. write `flip(needed)`. Unconstrained ones
/// (the value is freshly defined in a region that did not need the old
/// one) keep the current color — flipping there would flip the loop
/// parity for no benefit.
fn transfer_colors(
    kernel: &Kernel,
    b: BlockId,
    reg: VReg,
    mut state: ColorState,
    constrained: &HashSet<InstId>,
    mut colors: Option<&mut HashMap<InstId, Color>>,
) -> Option<ColorState> {
    for inst in &kernel.block(b).insts {
        if inst.region_entry().is_some() {
            state.needed = match state.holds {
                Some(c) => Needed::Slot(c),
                None => Needed::Empty,
            };
        } else if inst.is_ckpt() && inst.ckpt_reg() == reg {
            let c = if constrained.contains(&inst.id) {
                flip_or_k0(state.needed)?
            } else {
                state.holds.unwrap_or(Color::K0)
            };
            if let Some(map) = colors.as_deref_mut() {
                map.insert(inst.id, c);
            }
            state.holds = Some(c);
        }
    }
    Some(state)
}

/// Computes, for every region and live-in register, the color of the
/// checkpoint slot holding its value at region entry (used by both the
/// recovery metadata and codegen).
///
/// # Panics
///
/// Panics if different paths leave the live-in in different slots — the
/// invariant overwrite prevention must establish.
pub fn restore_colors(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> HashMap<(RegionId, VReg), Color> {
    // Forward dataflow: color of the latest checkpoint per register.
    let n = kernel.num_blocks();
    let nregs = kernel.vreg_limit() as usize;
    #[derive(Clone, PartialEq)]
    struct St(Vec<Option<Color>>);
    let transfer = |b: BlockId, st: &mut St| {
        for inst in &kernel.block(b).insts {
            if inst.is_ckpt() {
                st.0[inst.ckpt_reg().index()] = inst.ckpt_color();
            }
        }
    };
    let mut in_states: Vec<Option<St>> = vec![None; n];
    in_states[kernel.entry.index()] = Some(St(vec![None; nregs]));
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state: Option<St> =
                if b == kernel.entry { Some(St(vec![None; nregs])) } else { None };
            for &p in &preds[b.index()] {
                let Some(pin) = in_states[p.index()].clone() else { continue };
                let mut pout = pin;
                transfer(p, &mut pout);
                state = Some(match state {
                    None => pout,
                    Some(mut s) => {
                        // Merge: disagreement -> poison with None (will
                        // trip the assert below only if actually needed).
                        for i in 0..nregs {
                            if s.0[i] != pout.0[i] {
                                s.0[i] = None;
                            }
                        }
                        s
                    }
                });
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
    }
    // Read off the state at each marker.
    let mut out = HashMap::new();
    for &(region, loc, _) in rm.markers() {
        let Some(mut st) = in_states[loc.block.index()].clone() else { continue };
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if inst.is_ckpt() {
                st.0[inst.ckpt_reg().index()] = inst.ckpt_color();
            }
        }
        for &reg in &live_ins[region.index()] {
            let color = st.0[reg.index()].unwrap_or_else(|| {
                panic!("live-in {reg} of {region} has no consistent checkpoint slot")
            });
            out.insert((region, reg), color);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        eager_placement, insert_checkpoints, lup_edges, region_live_ins,
    };
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    /// Paper figure 4: r1 checkpointed, live into R2, then redefined and
    /// re-checkpointed within R2.
    fn figure4_kernel() -> Kernel {
        let mut k = parse_kernel(
            r#"
            .kernel f4
            entry:
                mov.u32 %r1, 5
                mov.u32 %r2, 49152
                ld.global.u32 %r3, [%r2]
                mov.u32 %r4, 7
                st.global.u32 [%r2], %r1
                add.u32 %r1, %r1, %r4
                ld.global.u32 %r4, [%r2+4]
                st.global.u32 [%r2+4], %r1
                st.global.u32 [%r2+8], %r4
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let edges = lup_edges(&k, &rm, &live, &rd);
        let ps = eager_placement(&edges);
        insert_checkpoints(&mut k, &ps);
        k
    }

    #[test]
    fn figure4_register_is_overwrite_prone() {
        let k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let prone = overwrite_prone_regs(&k, &rm, &live);
        assert!(prone.contains(&VReg(0)), "r1 (=%r1=VReg 0) must be prone: {prone:?}");
    }

    #[test]
    fn alternation_colors_flip_across_regions() {
        let mut k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let outcome = apply_alternation(&mut k, &rm);
        assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
        penny_ir::validate(&k).expect("valid");
        // The checkpoints of the prone register must not all share one
        // color.
        let prone = outcome.prone[0];
        let colors: HashSet<Color> = k
            .locs()
            .filter(|(_, i)| i.is_ckpt() && i.ckpt_reg() == prone)
            .map(|(_, i)| i.ckpt_color().expect("color"))
            .collect();
        assert_eq!(colors.len(), 2, "expected both colors in use: {colors:?}");
    }

    #[test]
    fn alternation_gives_consistent_restore_colors() {
        let mut k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let outcome = apply_alternation(&mut k, &rm);
        assert!(outcome.failed.is_empty());
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        // Must not panic: every live-in has a consistent slot.
        let rc = restore_colors(&k, &rm, &live);
        // The figure-4 register's live-in for the later region must sit
        // in the color of its *first* checkpoint.
        assert!(!rc.is_empty());
    }

    #[test]
    fn renaming_splits_the_offending_definition() {
        let mut k = figure4_kernel();
        let before_regs = k.vreg_limit();
        let rm = RegionMap::compute(&k);
        let outcome = apply_renaming(&mut k, &rm);
        assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
        assert!(outcome.renamed_defs >= 1);
        assert!(k.vreg_limit() > before_regs, "fresh register expected");
        penny_ir::validate(&k).expect("valid after renaming");
        // After renaming, no register is overwrite-prone any more.
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let prone = overwrite_prone_regs(&k, &rm, &live);
        assert!(prone.is_empty(), "still prone: {prone:?}");
    }

    #[test]
    fn nothing_to_do_when_no_checkpoints() {
        let mut k = parse_kernel(
            ".kernel n\nentry:\n mov.u32 %r0, 1\n st.global.u32 [%r0], %r0\n ret\n",
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let out = apply_alternation(&mut k, &rm);
        assert!(out.prone.is_empty());
        assert_eq!(out.adjustment_blocks, 0);
    }

    #[test]
    fn failed_coloring_rolls_the_kernel_back_exactly() {
        // A coloring attempt that fails must leave no trace: same
        // printed kernel, same id allocators (checked via the ids the
        // next allocations hand out).
        let mut k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let before_text = k.to_string();
        let before_w = k.id_watermark();
        // An unknown register has no checkpoints: coloring trivially
        // succeeds with zero adjustments and must not touch the kernel.
        let mut cfg = CfgCache::default();
        let r = color_register(&mut k, VReg(999), &live, &mut cfg);
        assert_eq!(r, Some(0));
        assert_eq!(k.to_string(), before_text);
        assert_eq!(k.id_watermark(), before_w);
    }

    #[test]
    fn journal_rollback_restores_split_edges() {
        let mut k = parse_kernel(
            r#"
            .kernel j
            entry:
                mov.u32 %r0, 1
                setp.lt.u32 %p0, %r0, 2
                bra %p0, a, b
            a:
                jmp c
            b:
                jmp c
            c:
                ret
        "#,
        )
        .expect("parse");
        let before_text = k.to_string();
        let before_blocks = k.num_blocks();
        let mut j = Journal::mark(&k);
        let mid1 = j.split_edge(&mut k, BlockId(1), BlockId(3));
        // Split an edge out of the first adjustment block too, to cover
        // stacked undo.
        let _mid2 = j.split_edge(&mut k, mid1, BlockId(3));
        assert_eq!(k.num_blocks(), before_blocks + 2);
        j.rollback(&mut k);
        assert_eq!(k.num_blocks(), before_blocks);
        assert_eq!(k.to_string(), before_text);
        penny_ir::validate(&k).expect("valid after rollback");
    }
}
