//! Checkpoint-overwrite prevention (paper §6.3).
//!
//! GPUs have no store buffer, so a checkpoint of `r` taken inside a
//! region that *also consumes* an earlier checkpoint of `r` would clobber
//! the value recovery still needs (paper figure 4). Two software schemes
//! fix this:
//!
//! * **register renaming** — split the live range: the overwriting
//!   definition gets a fresh register (and therefore a fresh checkpoint
//!   slot). Mirrors the paper's live-range extension; costs register
//!   pressure, which we surface as a pressure penalty.
//! * **2-coloring storage alternation** — each overwrite-prone register
//!   gets two slots (`K0`/`K1`); checkpoints in consecutive
//!   checkpointing regions alternate. Color conflicts at control-flow
//!   merges are repaired with adjustment blocks carrying dummy
//!   checkpoints (paper figure 5).

use std::collections::{HashMap, HashSet};

use penny_analysis::{Liveness, ReachingDefs};
use penny_ir::{BlockId, Color, InstId, Kernel, Loc, Op, Operand, RegionId, VReg};

use crate::regionmap::RegionMap;

/// Registers whose checkpoints may overwrite a still-needed checkpoint:
/// `r` such that some region both has `r` live-in and contains a
/// checkpoint of `r` (paper figure 4's condition).
pub fn overwrite_prone_regs(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> Vec<VReg> {
    let table = rm.by_inst(kernel);
    let mut prone = HashSet::new();
    for (_, inst) in kernel.locs() {
        if !inst.is_ckpt() {
            continue;
        }
        let reg = inst.ckpt_reg();
        for region in table.get(&inst.id).into_iter().flatten() {
            if live_ins[region.index()].contains(&reg) {
                prone.insert(reg);
            }
        }
    }
    let mut v: Vec<VReg> = prone.into_iter().collect();
    v.sort();
    v
}

/// Outcome of an overwrite-prevention pass.
#[derive(Debug, Clone, Default)]
pub struct OverwriteOutcome {
    /// Registers that needed protection.
    pub prone: Vec<VReg>,
    /// Renamed definitions (renaming scheme): count used as a register-
    /// pressure penalty, mirroring the paper's live-range extension.
    pub renamed_defs: u32,
    /// Adjustment blocks inserted (alternation scheme).
    pub adjustment_blocks: u32,
    /// Registers the scheme could not handle (caller must fall back).
    pub failed: Vec<VReg>,
}

/// Applies register renaming to every overwrite-prone register.
///
/// For each checkpoint of a prone register `r` inside a region that has
/// `r` live-in, the *defining* instruction of that checkpointed value is
/// renamed to a fresh register (uses rewired), giving the new value its
/// own checkpoint slot. Definitions whose def-use web cannot be renamed
/// in isolation (merged uses, guarded defs) are reported in `failed`.
pub fn apply_renaming(kernel: &mut Kernel, rm: &RegionMap) -> OverwriteOutcome {
    let mut outcome = OverwriteOutcome::default();
    // Registers created by renaming: if one becomes prone again the
    // register is genuinely loop-carried and renaming cannot converge —
    // hand it to the alternation fallback instead of chasing it.
    let mut created: HashSet<VReg> = HashSet::new();
    // Iterate: each successful rename can change liveness, so recompute.
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts < 4096, "renaming did not converge");
        let lv = Liveness::compute(kernel);
        let live_ins = crate::checkpoint::region_live_ins(kernel, rm, &lv);
        let prone = overwrite_prone_regs(kernel, rm, &live_ins);
        if outcome.prone.is_empty() {
            outcome.prone = prone.clone();
        }
        let candidates: Vec<VReg> = prone
            .iter()
            .copied()
            .filter(|r| !outcome.failed.contains(r) && !created.contains(r))
            .collect();
        let Some(&reg) = candidates.first() else {
            // Renamed registers that came back prone need the fallback.
            for r in prone {
                if created.contains(&r) && !outcome.failed.contains(&r) {
                    outcome.failed.push(r);
                }
            }
            break;
        };
        match rename_one(kernel, rm, reg, &live_ins, &mut created) {
            RenameResult::Renamed => outcome.renamed_defs += 1,
            RenameResult::Failed => outcome.failed.push(reg),
        }
    }
    outcome
}

enum RenameResult {
    Renamed,
    Failed,
}

/// Renames one offending definition of `reg`.
fn rename_one(
    kernel: &mut Kernel,
    rm: &RegionMap,
    reg: VReg,
    live_ins: &[Vec<VReg>],
    created: &mut HashSet<VReg>,
) -> RenameResult {
    let table = rm.by_inst(kernel);
    let rd = ReachingDefs::compute(kernel);
    // Find a checkpoint of `reg` inside a region with `reg` live-in.
    let mut target_def: Option<InstId> = None;
    'outer: for (loc, inst) in kernel.locs() {
        if !inst.is_ckpt() || inst.ckpt_reg() != reg {
            continue;
        }
        let in_bad_region = table
            .get(&inst.id)
            .into_iter()
            .flatten()
            .any(|r| live_ins[r.index()].contains(&reg));
        if !in_bad_region {
            continue;
        }
        // The value being checkpointed: its reaching def(s) here.
        let defs = rd.reaching_defs_of(kernel, loc, reg);
        if defs.len() != 1 {
            return RenameResult::Failed;
        }
        target_def = Some(defs[0].inst);
        break 'outer;
    }
    let Some(def_id) = target_def else { return RenameResult::Failed };
    let result = rename_def_web(kernel, &rd, def_id, reg);
    if matches!(result, RenameResult::Renamed) {
        // The freshest register is the one just allocated.
        created.insert(VReg(kernel.vreg_limit() - 1));
    }
    result
}

/// Renames definition `def_id` of `reg` and all uses it exclusively
/// reaches.
fn rename_def_web(
    kernel: &mut Kernel,
    rd: &ReachingDefs,
    def_id: InstId,
    reg: VReg,
) -> RenameResult {
    let def_loc = kernel.find_inst(def_id).expect("def present");
    if kernel.inst_at(def_loc).guard.is_some() {
        return RenameResult::Failed;
    }
    // Collect uses of `reg` reached by this def; every such use must be
    // reached *only* by this def.
    let mut use_sites: Vec<(Loc, UseKind)> = Vec::new();
    for b in kernel.block_ids().collect::<Vec<_>>() {
        let n = kernel.block(b).insts.len();
        for idx in 0..n {
            let loc = Loc { block: b, idx };
            let inst = kernel.inst_at(loc);
            let uses_reg = inst.srcs.iter().any(|o| o.as_reg() == Some(reg))
                || inst.guard.map(|g| g.pred == reg).unwrap_or(false);
            if !uses_reg {
                continue;
            }
            let reaching = rd.reaching_defs_of(kernel, loc, reg);
            let hits_def = reaching.iter().any(|d| d.inst == def_id);
            if !hits_def {
                continue;
            }
            if reaching.len() != 1 {
                return RenameResult::Failed;
            }
            use_sites.push((loc, UseKind::Inst));
        }
        // Terminator predicate use.
        if kernel.block(b).term.pred() == Some(reg) {
            let loc = Loc { block: b, idx: n };
            let reaching = rd.reaching_defs_of(kernel, loc, reg);
            if reaching.iter().any(|d| d.inst == def_id) {
                if reaching.len() != 1 {
                    return RenameResult::Failed;
                }
                use_sites.push((loc, UseKind::Terminator));
            }
        }
    }
    // Apply.
    let fresh = if kernel.is_pred(reg) { kernel.fresh_pred() } else { kernel.fresh_vreg() };
    let def_loc = kernel.find_inst(def_id).expect("def present");
    kernel.block_mut(def_loc.block).insts[def_loc.idx].dst = Some(fresh);
    for (loc, kind) in use_sites {
        match kind {
            UseKind::Inst => {
                let inst = &mut kernel.block_mut(loc.block).insts[loc.idx];
                for o in &mut inst.srcs {
                    if o.as_reg() == Some(reg) {
                        *o = Operand::Reg(fresh);
                    }
                }
                if let Some(g) = &mut inst.guard {
                    if g.pred == reg {
                        g.pred = fresh;
                    }
                }
            }
            UseKind::Terminator => {
                if let penny_ir::Terminator::Branch { pred, .. } =
                    &mut kernel.block_mut(loc.block).term
                {
                    *pred = fresh;
                }
            }
        }
    }
    RenameResult::Renamed
}

enum UseKind {
    Inst,
    Terminator,
}

/// Renames one definition's def-use web for the iGPU baseline; returns
/// `true` on success.
pub fn rename_def_for_igpu(
    kernel: &mut Kernel,
    rd: &ReachingDefs,
    def_id: InstId,
    reg: VReg,
) -> bool {
    matches!(rename_def_web(kernel, rd, def_id, reg), RenameResult::Renamed)
}

/// The `needed` component of the coloring state: which slot holds the
/// current region's live-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Needed {
    /// No checkpoint has executed yet.
    Empty,
    /// The live-in sits in this slot.
    Slot(Color),
    /// Paths disagree; any checkpoint before the next region marker
    /// (which resets `needed` from `holds`) is unresolvable.
    Poison,
}

/// Per-register coloring state for the alternation dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColorState {
    /// Color of the most recent checkpoint of the register.
    holds: Option<Color>,
    /// `holds` sampled at the last region boundary — the slot containing
    /// the current region's live-in, which must not be overwritten.
    needed: Needed,
}

impl ColorState {
    fn bottom() -> ColorState {
        ColorState { holds: None, needed: Needed::Empty }
    }

    /// Merge at a control-flow join: `holds` disagreement is a repairable
    /// conflict (handled by the caller); `needed` merges as a constraint
    /// union — `Empty` (no checkpoint yet, unconstrained) absorbs into
    /// the constrained side, and two different slots poison.
    fn merge(self, other: ColorState) -> ColorState {
        let needed = match (self.needed, other.needed) {
            (a, b) if a == b => a,
            (Needed::Empty, x) | (x, Needed::Empty) => x,
            _ => Needed::Poison,
        };
        ColorState { holds: self.holds.or(other.holds), needed }
    }

    /// `holds` values are compatible when equal or when one side has no
    /// checkpoint yet (adopting the other side's constraint is sound).
    fn holds_compatible(self, other: ColorState) -> bool {
        self.holds == other.holds || self.holds.is_none() || other.holds.is_none()
    }
}

/// Applies 2-coloring storage alternation to all overwrite-prone
/// registers, inserting adjustment blocks at conflicts.
///
/// Returns the outcome; `failed` lists registers whose conflicts could
/// not be repaired with dummy checkpoints alone (the caller falls back
/// to renaming for those).
pub fn apply_alternation(kernel: &mut Kernel, rm: &RegionMap) -> OverwriteOutcome {
    let lv = Liveness::compute(kernel);
    let live_ins = crate::checkpoint::region_live_ins(kernel, rm, &lv);
    let prone = overwrite_prone_regs(kernel, rm, &live_ins);
    let mut outcome =
        OverwriteOutcome { prone: prone.clone(), ..OverwriteOutcome::default() };
    for reg in prone {
        // Coloring mutates the CFG (edge splits); keep failed attempts
        // from polluting the kernel by working on a checkpointed copy.
        let backup = kernel.clone();
        match color_register(kernel, reg, &live_ins) {
            Some(adjustments) => outcome.adjustment_blocks += adjustments,
            None => {
                *kernel = backup;
                match escalate_with_dummies(kernel, rm, reg, &live_ins) {
                    Some(adjustments) => outcome.adjustment_blocks += adjustments,
                    None => outcome.failed.push(reg),
                }
            }
        }
    }
    outcome
}

/// Escalation for registers a plain 2-coloring cannot handle: a region
/// that checkpoints `reg` follows itself around a loop, so the number of
/// checkpointing regions along the cycle is odd and no static coloring
/// alternates correctly. Adding a dummy checkpoint right after the entry
/// marker of a *non-checkpointing* region flips the cycle parity — it
/// saves exactly that region's live-in value, so it is always safe.
/// Dummies are added one marker at a time (each changes parity) until
/// the coloring succeeds.
fn escalate_with_dummies(
    kernel: &mut Kernel,
    rm: &RegionMap,
    reg: VReg,
    live_ins: &[Vec<VReg>],
) -> Option<u32> {
    let candidates: Vec<penny_ir::InstId> = rm
        .markers()
        .iter()
        .filter(|&&(region, _, _)| live_ins[region.index()].contains(&reg))
        .map(|&(_, _, id)| id)
        .collect();
    let mut inserted = 0u32;
    for marker_id in candidates {
        // Skip markers whose region already starts with a checkpoint of
        // this register.
        let loc = kernel.find_inst(marker_id).expect("marker present");
        if kernel
            .block(loc.block)
            .insts
            .get(loc.idx + 1)
            .map(|i| i.is_ckpt() && i.ckpt_reg() == reg)
            .unwrap_or(false)
        {
            continue;
        }
        let cp = kernel.make_inst(
            Op::Ckpt(Color::K0),
            penny_ir::Type::U32,
            None,
            vec![Operand::Reg(reg)],
        );
        kernel.insert_at(Loc { block: loc.block, idx: loc.idx + 1 }, cp);
        inserted += 1;
        let snapshot = kernel.clone();
        match color_register(kernel, reg, live_ins) {
            Some(adjustments) => return Some(adjustments + inserted),
            None => *kernel = snapshot, // keep the dummy, drop the garbage
        }
    }
    None
}

/// Colors all checkpoints of one register; returns the number of
/// adjustment blocks inserted, or `None` on unresolvable conflict.
fn color_register(kernel: &mut Kernel, reg: VReg, live_ins: &[Vec<VReg>]) -> Option<u32> {
    let mut adjustments = 0u32;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 64 {
            return None;
        }
        // Constrained checkpoints: those in a region whose live-ins
        // include the register (they must avoid the live-in slot and
        // therefore flip). Recomputed per round because adjustment
        // blocks move checkpoints around.
        let rm = crate::regionmap::RegionMap::compute(kernel);
        let table = rm.by_inst(kernel);
        let constrained: HashSet<InstId> = kernel
            .checkpoints()
            .iter()
            .filter(|&&(_, id, r)| {
                r == reg
                    && table.get(&id).into_iter().flatten().any(|region| {
                        live_ins
                            .get(region.index())
                            .map(|l| l.contains(&reg))
                            .unwrap_or(false)
                    })
            })
            .map(|&(_, id, _)| id)
            .collect();
        match color_round(kernel, reg, &constrained) {
            ColorRound::Done(colors) => {
                // Commit colors to the checkpoint instructions.
                for (id, color) in colors {
                    let loc = kernel.find_inst(id).expect("cp present");
                    kernel.block_mut(loc.block).insts[loc.idx].op = Op::Ckpt(color);
                }
                return Some(adjustments);
            }
            ColorRound::Conflict { edge: (from, to), want } => {
                // Insert an adjustment block with a dummy checkpoint so
                // the incoming state matches `want` (paper figure 5).
                let adj = kernel.split_edge(from, to);
                let cp = kernel.make_inst(
                    Op::Ckpt(want),
                    penny_ir::Type::U32,
                    None,
                    vec![Operand::Reg(reg)],
                );
                kernel.block_mut(adj).insts.push(cp);
                adjustments += 1;
            }
            ColorRound::Unresolvable => return None,
        }
    }
}

enum ColorRound {
    Done(Vec<(InstId, Color)>),
    Conflict { edge: (BlockId, BlockId), want: Color },
    Unresolvable,
}

/// One monotone pass of the coloring dataflow for `reg`.
fn color_round(kernel: &Kernel, reg: VReg, constrained: &HashSet<InstId>) -> ColorRound {
    let n = kernel.num_blocks();
    let mut in_states: Vec<Option<ColorState>> = vec![None; n];
    in_states[kernel.entry.index()] = Some(ColorState::bottom());
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let pred_out =
        |p: BlockId, in_states: &[Option<ColorState>]| -> Option<Option<ColorState>> {
            in_states[p.index()].map(|pin| {
                let mut sink = HashMap::new();
                transfer_colors(kernel, p, reg, pin, constrained, &mut sink)
            })
        };
    // Iterate to fixpoint; conflicts surface as differing pred states.
    for _ in 0..2 * n + 4 {
        let mut changed = false;
        for &b in &order {
            let mut state: Option<ColorState> =
                if b == kernel.entry { Some(ColorState::bottom()) } else { None };
            let mut conflict: Option<(BlockId, ColorState)> = None;
            for &p in &preds[b.index()] {
                let Some(pout) = pred_out(p, &in_states) else { continue };
                let Some(pout) = pout else { return ColorRound::Unresolvable };
                state = match state {
                    None => Some(pout),
                    Some(s) if s.holds_compatible(pout) => Some(s.merge(pout)),
                    Some(s) => {
                        conflict = Some((p, s));
                        Some(s)
                    }
                };
            }
            if let Some((bad_pred, want_state)) = conflict {
                // A dummy checkpoint on an edge may write color `c` iff
                // the live-in slot on that path is not `c` (an `Empty`
                // needed is unconstrained). Try to equalize `holds` by
                // putting a dummy on either side of the conflict.
                let legal = |needed: Needed, c: Color| match needed {
                    Needed::Slot(x) => x != c,
                    Needed::Empty => true,
                    Needed::Poison => false,
                };
                let pout = pred_out(bad_pred, &in_states)
                    .expect("processed")
                    .expect("no poison past cp on processed path");
                if let Some(w) = want_state.holds {
                    if legal(pout.needed, w) {
                        return ColorRound::Conflict { edge: (bad_pred, b), want: w };
                    }
                }
                if let Some(&first) = preds[b.index()]
                    .iter()
                    .find(|&&p| p != bad_pred && in_states[p.index()].is_some())
                {
                    let fout = pred_out(first, &in_states)
                        .expect("processed")
                        .expect("no poison past cp on processed path");
                    if let Some(w) = pout.holds {
                        if legal(fout.needed, w) {
                            return ColorRound::Conflict { edge: (first, b), want: w };
                        }
                    }
                }
                return ColorRound::Unresolvable;
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
        if !changed {
            // Stable and conflict-free: collect colors from every
            // reachable block (the entry included — it has no preds and
            // is never transferred above).
            let mut colors: HashMap<InstId, Color> = HashMap::new();
            for &b in &order {
                if let Some(pin) = in_states[b.index()] {
                    if transfer_colors(kernel, b, reg, pin, constrained, &mut colors)
                        .is_none()
                    {
                        return ColorRound::Unresolvable;
                    }
                }
            }
            return ColorRound::Done(colors.into_iter().collect());
        }
    }
    // Fixpoint not reached within bound: treat as unresolvable.
    ColorRound::Unresolvable
}

fn flip_or_k0(needed: Needed) -> Option<Color> {
    match needed {
        Needed::Slot(c) => Some(c.flipped()),
        Needed::Empty => Some(Color::K0),
        Needed::Poison => None,
    }
}

/// Transfers the coloring state across a block; records chosen colors.
/// Returns `None` if a constrained checkpoint is reached with poisoned
/// `needed`.
///
/// Constrained checkpoints (their region has the register live-in) must
/// avoid the live-in slot, i.e. write `flip(needed)`. Unconstrained ones
/// (the value is freshly defined in a region that did not need the old
/// one) keep the current color — flipping there would flip the loop
/// parity for no benefit.
fn transfer_colors(
    kernel: &Kernel,
    b: BlockId,
    reg: VReg,
    mut state: ColorState,
    constrained: &HashSet<InstId>,
    colors: &mut HashMap<InstId, Color>,
) -> Option<ColorState> {
    for inst in &kernel.block(b).insts {
        if inst.region_entry().is_some() {
            state.needed = match state.holds {
                Some(c) => Needed::Slot(c),
                None => Needed::Empty,
            };
        } else if inst.is_ckpt() && inst.ckpt_reg() == reg {
            let c = if constrained.contains(&inst.id) {
                flip_or_k0(state.needed)?
            } else {
                state.holds.unwrap_or(Color::K0)
            };
            colors.insert(inst.id, c);
            state.holds = Some(c);
        }
    }
    Some(state)
}

/// Computes, for every region and live-in register, the color of the
/// checkpoint slot holding its value at region entry (used by both the
/// recovery metadata and codegen).
///
/// # Panics
///
/// Panics if different paths leave the live-in in different slots — the
/// invariant overwrite prevention must establish.
pub fn restore_colors(
    kernel: &Kernel,
    rm: &RegionMap,
    live_ins: &[Vec<VReg>],
) -> HashMap<(RegionId, VReg), Color> {
    // Forward dataflow: color of the latest checkpoint per register.
    let n = kernel.num_blocks();
    let nregs = kernel.vreg_limit() as usize;
    #[derive(Clone, PartialEq)]
    struct St(Vec<Option<Color>>);
    let transfer = |b: BlockId, st: &mut St| {
        for inst in &kernel.block(b).insts {
            if inst.is_ckpt() {
                st.0[inst.ckpt_reg().index()] = inst.ckpt_color();
            }
        }
    };
    let mut in_states: Vec<Option<St>> = vec![None; n];
    in_states[kernel.entry.index()] = Some(St(vec![None; nregs]));
    let order = kernel.reverse_post_order();
    let preds = kernel.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut state: Option<St> =
                if b == kernel.entry { Some(St(vec![None; nregs])) } else { None };
            for &p in &preds[b.index()] {
                let Some(pin) = in_states[p.index()].clone() else { continue };
                let mut pout = pin;
                transfer(p, &mut pout);
                state = Some(match state {
                    None => pout,
                    Some(mut s) => {
                        // Merge: disagreement -> poison with None (will
                        // trip the assert below only if actually needed).
                        for i in 0..nregs {
                            if s.0[i] != pout.0[i] {
                                s.0[i] = None;
                            }
                        }
                        s
                    }
                });
            }
            if state != in_states[b.index()] {
                in_states[b.index()] = state;
                changed = true;
            }
        }
    }
    // Read off the state at each marker.
    let mut out = HashMap::new();
    for &(region, loc, _) in rm.markers() {
        let Some(mut st) = in_states[loc.block.index()].clone() else { continue };
        for inst in &kernel.block(loc.block).insts[..loc.idx] {
            if inst.is_ckpt() {
                st.0[inst.ckpt_reg().index()] = inst.ckpt_color();
            }
        }
        for &reg in &live_ins[region.index()] {
            let color = st.0[reg.index()].unwrap_or_else(|| {
                panic!("live-in {reg} of {region} has no consistent checkpoint slot")
            });
            out.insert((region, reg), color);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        eager_placement, insert_checkpoints, lup_edges, region_live_ins,
    };
    use crate::regions::form_regions;
    use penny_analysis::AliasOptions;
    use penny_ir::parse_kernel;

    /// Paper figure 4: r1 checkpointed, live into R2, then redefined and
    /// re-checkpointed within R2.
    fn figure4_kernel() -> Kernel {
        let mut k = parse_kernel(
            r#"
            .kernel f4
            entry:
                mov.u32 %r1, 5
                mov.u32 %r2, 49152
                ld.global.u32 %r3, [%r2]
                mov.u32 %r4, 7
                st.global.u32 [%r2], %r1
                add.u32 %r1, %r1, %r4
                ld.global.u32 %r4, [%r2+4]
                st.global.u32 [%r2+4], %r1
                st.global.u32 [%r2+8], %r4
                ret
        "#,
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let edges = lup_edges(&k, &rm, &live, &rd);
        let ps = eager_placement(&edges);
        insert_checkpoints(&mut k, &ps);
        k
    }

    #[test]
    fn figure4_register_is_overwrite_prone() {
        let k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let prone = overwrite_prone_regs(&k, &rm, &live);
        assert!(prone.contains(&VReg(0)), "r1 (=%r1=VReg 0) must be prone: {prone:?}");
    }

    #[test]
    fn alternation_colors_flip_across_regions() {
        let mut k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let outcome = apply_alternation(&mut k, &rm);
        assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
        penny_ir::validate(&k).expect("valid");
        // The checkpoints of the prone register must not all share one
        // color.
        let prone = outcome.prone[0];
        let colors: HashSet<Color> = k
            .locs()
            .filter(|(_, i)| i.is_ckpt() && i.ckpt_reg() == prone)
            .map(|(_, i)| i.ckpt_color().expect("color"))
            .collect();
        assert_eq!(colors.len(), 2, "expected both colors in use: {colors:?}");
    }

    #[test]
    fn alternation_gives_consistent_restore_colors() {
        let mut k = figure4_kernel();
        let rm = RegionMap::compute(&k);
        let outcome = apply_alternation(&mut k, &rm);
        assert!(outcome.failed.is_empty());
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        // Must not panic: every live-in has a consistent slot.
        let rc = restore_colors(&k, &rm, &live);
        // The figure-4 register's live-in for the later region must sit
        // in the color of its *first* checkpoint.
        assert!(!rc.is_empty());
    }

    #[test]
    fn renaming_splits_the_offending_definition() {
        let mut k = figure4_kernel();
        let before_regs = k.vreg_limit();
        let rm = RegionMap::compute(&k);
        let outcome = apply_renaming(&mut k, &rm);
        assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
        assert!(outcome.renamed_defs >= 1);
        assert!(k.vreg_limit() > before_regs, "fresh register expected");
        penny_ir::validate(&k).expect("valid after renaming");
        // After renaming, no register is overwrite-prone any more.
        let lv = Liveness::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let prone = overwrite_prone_regs(&k, &rm, &live);
        assert!(prone.is_empty(), "still prone: {prone:?}");
    }

    #[test]
    fn nothing_to_do_when_no_checkpoints() {
        let mut k = parse_kernel(
            ".kernel n\nentry:\n mov.u32 %r0, 1\n st.global.u32 [%r0], %r0\n ret\n",
        )
        .expect("parse");
        form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let out = apply_alternation(&mut k, &rm);
        assert!(out.prone.is_empty());
        assert_eq!(out.adjustment_blocks, 0);
    }
}
