//! The Penny pass pipeline (paper §5): region formation → checkpoint
//! placement → overwrite prevention → pruning → storage assignment →
//! low-level optimization and code generation → recovery metadata.

use std::collections::{HashMap, HashSet};

use penny_analysis::{AliasAnalysis, ControlDeps, Liveness, LoopInfo, ReachingDefs};
use penny_ir::{Color, InstId, Kernel, VReg};
use penny_obs::{record_pass, Recorder, SpanTimer};

use crate::baselines::apply_igpu_renaming;
use crate::checkpoint::{
    bimodal_placement_counted, eager_placement, insert_checkpoints, lup_edges,
    region_live_ins, BcpStats,
};
use crate::codegen::lower_checkpoints;
use crate::config::{OverwritePolicy, PennyConfig, Protection};
use crate::error::CompileError;
use crate::meta::{CompileStats, Protected, RegionInfo, Restore, SlotRef};
use crate::overwrite::{apply_alternation, apply_renaming, restore_colors};
use crate::pruning::slice_builder::{
    reaching_checkpoints, Assume, BuildResult, SliceBuilder,
};
use crate::pruning::{prune, PruneOutcome};
use crate::regalloc::register_pressure;
use crate::regionmap::RegionMap;
use crate::regions::form_regions;
use crate::storage::assign_storage;

/// Compiles a kernel under the given configuration.
///
/// # Errors
///
/// Returns [`CompileError`] when the input kernel fails validation, when
/// the sanitizer is enabled ([`PennyConfig::lint`]) and reports a
/// diagnostic, when the instrumented kernel fails re-validation (an
/// internal invariant), or when recovery metadata cannot be constructed.
pub fn compile(kernel: &Kernel, config: &PennyConfig) -> Result<Protected, CompileError> {
    compile_observed(kernel, config, &penny_obs::NULL)
}

/// [`compile`] with an observability sink: each pass of the pipeline
/// records a [`penny_obs::SpanKind::Pass`] span (wall time + counters)
/// into `rec`. With a disabled recorder (e.g. [`penny_obs::NULL`]) this
/// is exactly `compile`: no clock reads, no span allocation, identical
/// output.
///
/// Under [`OverwritePolicy::Auto`] both overwrite variants compile and
/// both record spans — the duplicated passes represent real compile
/// work; aggregate by pass label when reporting.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn compile_observed(
    kernel: &Kernel,
    config: &PennyConfig,
    rec: &dyn Recorder,
) -> Result<Protected, CompileError> {
    penny_ir::validate(kernel).map_err(CompileError::Validate)?;
    if config.lint {
        crate::check::check_lint(kernel, config)?;
    }
    let mut protected = match config.protection {
        Protection::None => Ok(Protected::passthrough(kernel.clone())),
        Protection::IGpu => compile_igpu(kernel, config, rec),
        Protection::Bolt | Protection::Penny => match config.overwrite {
            OverwritePolicy::Auto => {
                // Paper §6.3: compile both ways, keep the cheaper. A
                // variant that cannot protect every register (e.g.
                // renaming on loop-carried registers) simply loses.
                let renamed =
                    compile_checkpointed(kernel, config, OverwritePolicy::Renaming, rec);
                let colored =
                    compile_checkpointed(kernel, config, OverwritePolicy::Alternation, rec);
                match (renamed, colored) {
                    (Ok(r), Ok(c)) => {
                        Ok(if score(&r.stats) <= score(&c.stats) { r } else { c })
                    }
                    (Ok(r), Err(_)) => Ok(r),
                    (Err(_), Ok(c)) => Ok(c),
                    (Err(e), Err(_)) => Err(e),
                }
            }
            policy => compile_checkpointed(kernel, config, policy, rec),
        },
    }?;
    if config.vulnerability {
        // Static fault-site classification of the final artifact — the
        // exact kernel the simulator will decode, so the map's program
        // points line up with the decoded stream one-for-one. Under
        // `OverwritePolicy::Auto` only the winning variant is analyzed.
        let timer = SpanTimer::start(rec);
        let map = penny_analysis::VulnerabilityMap::compute(&protected.kernel);
        let c = map.counts();
        record_pass(
            rec,
            &kernel.name,
            "vulnerability",
            timer,
            &[
                ("cells", c.cells),
                ("dead", c.dead),
                ("overwritten", c.overwritten),
                ("read_first", c.read_first),
                ("protected_points", c.protected_points),
                ("atomics_fenced", map.atomics_fenced() as u64),
                ("has_regions", map.has_regions() as u64),
            ],
        );
        protected.vulnerability = Some(map);
    }
    Ok(protected)
}

/// Compiles every kernel of a module under one configuration.
///
/// # Errors
///
/// Fails on the first kernel that does not compile, naming it.
pub fn compile_module(
    module: &penny_ir::Module,
    config: &PennyConfig,
) -> Result<Vec<Protected>, CompileError> {
    module
        .kernels
        .iter()
        .map(|k| {
            compile(k, config).map_err(|e| match e {
                CompileError::Unsupported(m) => {
                    CompileError::Unsupported(format!("kernel `{}`: {m}", k.name))
                }
                other => other,
            })
        })
        .collect()
}

/// Cost estimate for auto-selection: committed checkpoint count scaled
/// by the occupancy loss (lower is better).
fn score(stats: &CompileStats) -> f64 {
    let occ = stats.occupancy.max(1e-6);
    (1.0 + stats.committed as f64) / occ
}

fn compile_igpu(
    kernel: &Kernel,
    config: &PennyConfig,
    rec: &dyn Recorder,
) -> Result<Protected, CompileError> {
    let mut k = kernel.clone();
    let timer = SpanTimer::start(rec);
    form_regions(&mut k, config.alias);
    let rm = RegionMap::compute(&k);
    record_pass(
        rec,
        &kernel.name,
        "region-formation",
        timer,
        &[("regions", rm.len() as u64)],
    );
    let timer = SpanTimer::start(rec);
    let igpu = apply_igpu_renaming(&mut k, &rm);
    record_pass(
        rec,
        &kernel.name,
        "igpu-renaming",
        timer,
        &[("renamed_defs", igpu.renamed_defs as u64), ("skipped", igpu.skipped as u64)],
    );
    penny_ir::validate(&k).map_err(CompileError::Validate)?;
    // Skipped loop-carried anti-dependences are a documented gap of the
    // renaming transformation, so idempotence only holds when none were
    // skipped.
    if config.validate && igpu.skipped == 0 {
        crate::check::check_idempotence(&k, config.alias)
            .map_err(CompileError::Invariant)?;
    }
    let regions = rm
        .markers()
        .iter()
        .map(|&(id, _, marker)| RegionInfo { id, marker, restores: Vec::new() })
        .collect();
    // Renamed defs extend live ranges (the paper's mechanism); skipped
    // loop-carried anti-dependences would need copies/spills in a real
    // iGPU build, so they count against pressure as well.
    let pressure = register_pressure(&k) + igpu.renamed_defs + igpu.skipped;
    let stats = CompileStats {
        regions: rm.len() as u32,
        regs_per_thread: pressure,
        occupancy: config.machine.occupancy(
            config.launch.threads_per_block(),
            pressure,
            k.shared_bytes,
        ),
        ..CompileStats::default()
    };
    Ok(Protected {
        kernel: k,
        regions,
        slots: HashMap::new(),
        setup: Vec::new(),
        shared_ckpt_base: 0,
        shared_ckpt_bytes: 0,
        global_slot_count: 0,
        stats,
        vulnerability: None,
    })
}

fn compile_checkpointed(
    kernel: &Kernel,
    config: &PennyConfig,
    overwrite: OverwritePolicy,
    rec: &dyn Recorder,
) -> Result<Protected, CompileError> {
    let mut k = kernel.clone();
    let subject = kernel.name.as_str();

    // ---- Region formation. ----
    let timer = SpanTimer::start(rec);
    form_regions(&mut k, config.alias);
    let rm = RegionMap::compute(&k);
    record_pass(rec, subject, "region-formation", timer, &[("regions", rm.len() as u64)]);

    // ---- Checkpoint placement. ----
    {
        let timer = SpanTimer::start(rec);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let live = region_live_ins(&k, &rm, &lv);
        let edges = lup_edges(&k, &rm, &live, &rd);
        let (placements, bcp) = if config.bcp {
            let loops = LoopInfo::compute(&k);
            bimodal_placement_counted(&k, &rm, &loops, &edges)
        } else {
            (eager_placement(&edges), BcpStats::default())
        };
        insert_checkpoints(&mut k, &placements);
        let hoisted = crate::checkpoint::hoist_ckpts_above_atomics(&mut k);
        record_pass(
            rec,
            subject,
            "checkpoint-placement",
            timer,
            &[
                ("lup_edges", edges.len() as u64),
                ("placements", placements.len() as u64),
                ("bcp_augmenting_paths", bcp.augmenting_paths),
                ("bcp_cover_cost", bcp.cover_cost),
                ("hoisted_above_atomics", hoisted as u64),
            ],
        );
    }

    // ---- Overwrite prevention. ----
    let timer = SpanTimer::start(rec);
    let mut renamed_defs = 0u32;
    let mut adjustment_blocks = 0u32;
    let prone_count;
    match overwrite {
        OverwritePolicy::Renaming => {
            let out = apply_renaming(&mut k, &rm);
            renamed_defs = out.renamed_defs;
            prone_count = out.prone.len() as u32;
            if !out.failed.is_empty() {
                // Fall back to alternation for the stragglers. Renaming
                // may have changed the CFG view: recompute the map.
                let rm2 = RegionMap::compute(&k);
                let alt = apply_alternation(&mut k, &rm2);
                adjustment_blocks = alt.adjustment_blocks;
                if !alt.failed.is_empty() {
                    return Err(CompileError::Unsupported(format!(
                        "overwrite prevention failed for {:?}",
                        alt.failed
                    )));
                }
            }
        }
        OverwritePolicy::Alternation => {
            let out = apply_alternation(&mut k, &rm);
            adjustment_blocks = out.adjustment_blocks;
            prone_count = out.prone.len() as u32;
            if !out.failed.is_empty() {
                // Adjustment blocks changed the CFG: recompute the map
                // before the renaming fallback.
                let rm2 = RegionMap::compute(&k);
                let ren = apply_renaming(&mut k, &rm2);
                renamed_defs = ren.renamed_defs;
                if !ren.failed.is_empty() {
                    return Err(CompileError::Unsupported(format!(
                        "overwrite prevention failed for {:?}",
                        ren.failed
                    )));
                }
            }
        }
        OverwritePolicy::None => {
            let lv = Liveness::compute(&k);
            let live = region_live_ins(&k, &rm, &lv);
            prone_count =
                crate::overwrite::overwrite_prone_regs(&k, &rm, &live).len() as u32;
        }
        OverwritePolicy::Auto => unreachable!("resolved by compile()"),
    }
    // Adjustment blocks change the CFG: recompute the region map view.
    let rm = RegionMap::compute(&k);
    record_pass(
        rec,
        subject,
        "overwrite-prevention",
        timer,
        &[
            ("renamed_defs", renamed_defs as u64),
            ("adjustment_blocks", adjustment_blocks as u64),
            ("prone_regs", prone_count as u64),
        ],
    );

    // ---- Static invariant validation (instrumented kernel). ----
    // All checkpoints are still present here, so region idempotence,
    // checkpoint coverage, and slot consistency must hold
    // unconditionally.
    if config.validate {
        let timer = SpanTimer::start(rec);
        crate::check::check_instrumented(&k, &rm, config.alias)
            .map_err(CompileError::Invariant)?;
        record_pass(
            rec,
            subject,
            "validation",
            timer,
            &[("checkpoints", k.checkpoints().len() as u64)],
        );
    }

    // ---- Pruning. ----
    // Provisional slot indices are a function of the checkpoint set, so
    // capture them *before* pruned checkpoints are removed — the same
    // view `prune` and `build_restores` use internally.
    let timer = SpanTimer::start(rec);
    let provisional = crate::pruning::provisional_slots(&k);
    let prune_out: PruneOutcome = prune(&k, &rm, config.pruning);
    let mut committed_set: HashSet<InstId> =
        prune_out.decisions.committed.iter().copied().collect();
    record_pass(
        rec,
        subject,
        "pruning",
        timer,
        &[
            ("total", prune_out.total as u64),
            ("pruned_basic", prune_out.basic_pruned_count as u64),
            ("pruned_optimal", prune_out.optimal_pruned_count as u64),
            ("committed", committed_set.len() as u64),
        ],
    );

    // ---- Recovery metadata (may force checkpoints back in). ----
    let timer = SpanTimer::start(rec);
    let (regions, forced) = build_restores(&k, &rm, &committed_set)?;
    let forced_commits = forced.len() as u64;
    for id in forced {
        committed_set.insert(id);
    }
    if rec.enabled() {
        let slot_restores = regions
            .iter()
            .flat_map(|r| &r.restores)
            .filter(|(_, r)| matches!(r, Restore::Slot(_)))
            .count() as u64;
        let slice_restores = regions
            .iter()
            .flat_map(|r| &r.restores)
            .filter(|(_, r)| matches!(r, Restore::Slice(_)))
            .count() as u64;
        record_pass(
            rec,
            subject,
            "restore-metadata",
            timer,
            &[
                ("forced_commits", forced_commits),
                ("slot_restores", slot_restores),
                ("slice_restores", slice_restores),
            ],
        );
    }
    // ---- Static invariant validation (final pruning decisions). ----
    // Checked after restore construction so the forced-commit safety net
    // is part of what gets validated.
    if config.validate {
        crate::check::check_pruning(&k, &rm, &committed_set)
            .map_err(CompileError::Invariant)?;
    }
    // Remove pruned checkpoints from the code.
    for (loc, id, _) in k.checkpoints().into_iter().rev() {
        if !committed_set.contains(&id) {
            k.block_mut(loc.block).insts.remove(loc.idx);
        }
    }

    // ---- Storage assignment. ----
    let timer = SpanTimer::start(rec);
    let pressure_estimate = register_pressure(&k) + renamed_defs;
    let storage = assign_storage(
        &k,
        config.storage,
        &config.machine,
        &config.launch,
        pressure_estimate,
    );
    record_pass(
        rec,
        subject,
        "storage-assignment",
        timer,
        &[
            ("shared_slots", (storage.slots.len() as u64) - storage.global_slots as u64),
            ("global_slots", storage.global_slots as u64),
            ("shared_bytes", storage.shared_bytes as u64),
        ],
    );

    // ---- Rewrite slot references in slices to the final assignment. ----
    let remap: HashMap<SlotRef, SlotRef> = provisional
        .iter()
        .filter_map(|(key, prov)| storage.slots.get(key).map(|fin| (*prov, *fin)))
        .collect();
    let regions = remap_regions(regions, &remap, &storage.slots, &k, &rm)?;

    // ---- Code generation. ----
    let timer = SpanTimer::start(rec);
    let shared_ckpt_base = k.shared_bytes;
    let lowered = lower_checkpoints(
        &mut k,
        &storage.slots,
        shared_ckpt_base,
        &config.launch,
        config.low_opts,
    );
    penny_ir::validate(&k).map_err(CompileError::Validate)?;
    // Soundness precondition of the recovery runtime, checked on the
    // final lowered code unconditionally: a register read between an
    // atomic and its region boundary would let a detection replay the
    // atomic's non-idempotent memory update. Checkpoint hoisting clears
    // the window for every value defined before the atomic; only a
    // kernel that needs the atomic's *own result* checkpointed (its
    // value lives past the boundary) still trips this.
    crate::check::check_atomic_windows(&k).map_err(CompileError::Unsupported)?;

    let pressure = register_pressure(&k) + renamed_defs;
    let stats = CompileStats {
        total_checkpoints: prune_out.total,
        pruned_basic: prune_out.basic_pruned_count,
        pruned_additional: prune_out
            .optimal_pruned_count
            .saturating_sub(prune_out.basic_pruned_count),
        committed: committed_set.len() as u32,
        regions: rm.len() as u32,
        overwrite_prone_regs: prone_count,
        adjustment_blocks,
        regs_per_thread: pressure,
        ckpt_shared_bytes: storage.shared_bytes,
        ckpt_global_slots: storage.global_slots,
        occupancy: config.machine.occupancy(
            config.launch.threads_per_block(),
            pressure,
            k.shared_bytes + storage.shared_bytes,
        ),
    };
    record_pass(
        rec,
        subject,
        "codegen",
        timer,
        &[
            ("setup_regs", lowered.setup.len() as u64),
            ("regs_per_thread", pressure as u64),
            ("occupancy_ppm", (stats.occupancy * 1e6) as u64),
        ],
    );
    Ok(Protected {
        kernel: k,
        regions,
        slots: storage.slots,
        setup: lowered.setup,
        shared_ckpt_base,
        shared_ckpt_bytes: storage.shared_bytes,
        global_slot_count: storage.global_slots,
        stats,
        vulnerability: None,
    })
}

/// Builds per-region restore plans. Returns the region table plus any
/// checkpoints that had to be forced back to committed because a valid
/// slice could not be constructed for a pruned reaching checkpoint.
fn build_restores(
    kernel: &Kernel,
    rm: &RegionMap,
    committed: &HashSet<InstId>,
) -> Result<(Vec<RegionInfo>, Vec<InstId>), CompileError> {
    let lv = Liveness::compute(kernel);
    let live_ins = region_live_ins(kernel, rm, &lv);
    let reach_cp = reaching_checkpoints(kernel, rm);
    let rd = ReachingDefs::compute(kernel);
    let aa = AliasAnalysis::compute(kernel, penny_analysis::AliasOptions::default());
    let cd = ControlDeps::compute(kernel);
    let region_of = rm.by_inst(kernel);
    let provisional = crate::pruning::provisional_slots(kernel);
    let slot_fn = |reg: VReg, color: Color| -> SlotRef {
        provisional
            .get(&(reg, color.index()))
            .copied()
            .unwrap_or(SlotRef { space: penny_ir::MemSpace::Global, index: u32::MAX })
    };
    let assume_fn = |id: InstId| {
        if committed.contains(&id) {
            Assume::Committed
        } else {
            Assume::Pruned
        }
    };
    let builder = SliceBuilder::new(
        kernel, &rd, &aa, &cd, rm, &slot_fn, &assume_fn, &reach_cp, &region_of,
    );
    let rc = restore_colors(kernel, rm, &live_ins);

    let mut forced: Vec<InstId> = Vec::new();
    let mut regions = Vec::new();
    for &(region, marker_loc, marker_id) in rm.markers() {
        let mut restores = Vec::new();
        let mut live: Vec<VReg> = live_ins[region.index()].clone();
        live.sort();
        for reg in live {
            let reaching = reach_cp.get(&(region, reg)).cloned().unwrap_or_default();
            let all_committed =
                !reaching.is_empty() && reaching.iter().all(|id| committed.contains(id));
            if all_committed {
                let color = rc.get(&(region, reg)).copied().unwrap_or(Color::K0);
                restores.push((reg, Restore::Slot(slot_fn(reg, color))));
                continue;
            }
            // Some reaching checkpoint was pruned (or none exists):
            // restore via slice.
            match builder.build(reg, marker_loc, &[region], &HashSet::new()) {
                BuildResult::Built(slice) => restores.push((reg, Restore::Slice(slice))),
                _ => {
                    // Force the pruned reaching checkpoints back in.
                    if reaching.is_empty() {
                        return Err(CompileError::Internal(format!(
                            "live-in {reg} of {region} has no checkpoint and no slice"
                        )));
                    }
                    forced.extend(reaching.iter().copied());
                    let color = rc.get(&(region, reg)).copied().unwrap_or(Color::K0);
                    restores.push((reg, Restore::Slot(slot_fn(reg, color))));
                }
            }
        }
        regions.push(RegionInfo { id: region, marker: marker_id, restores });
    }
    Ok((regions, forced))
}

/// Rewrites provisional slot references to the final storage assignment.
fn remap_regions(
    regions: Vec<RegionInfo>,
    remap: &HashMap<SlotRef, SlotRef>,
    final_slots: &HashMap<(VReg, usize), SlotRef>,
    kernel: &Kernel,
    rm: &RegionMap,
) -> Result<Vec<RegionInfo>, CompileError> {
    let _ = (kernel, rm, final_slots);
    let map_slot = |s: SlotRef| -> Result<SlotRef, CompileError> {
        remap.get(&s).copied().ok_or_else(|| {
            CompileError::Internal(format!("slot {s:?} missing from final assignment"))
        })
    };
    regions
        .into_iter()
        .map(|r| {
            let restores = r
                .restores
                .into_iter()
                .map(|(reg, restore)| {
                    let restore = match restore {
                        Restore::Slot(s) => Restore::Slot(map_slot(s)?),
                        Restore::Slice(mut slice) => {
                            for inst in &mut slice.insts {
                                if let crate::meta::SliceInst::LoadSlot(s) = inst {
                                    *s = map_slot(*s)?;
                                }
                            }
                            Restore::Slice(slice)
                        }
                    };
                    Ok((reg, restore))
                })
                .collect::<Result<Vec<_>, CompileError>>()?;
            Ok(RegionInfo { restores, ..r })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    const KERNEL: &str = r#"
        .kernel t .params A N
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [A]
            ld.param.u32 %r2, [N]
            shl.u32 %r3, %r0, 2
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            add.u32 %r6, %r5, %r2
            st.global.u32 [%r4], %r6
            st.global.u32 [%r4], %r0
            ret
    "#;

    #[test]
    fn penny_pipeline_produces_valid_kernel() {
        let k = parse_kernel(KERNEL).expect("parse");
        let p = compile(&k, &PennyConfig::penny()).expect("compile");
        penny_ir::validate(&p.kernel).expect("output valid");
        assert!(p.stats.regions >= 2);
        assert!(!p.regions.is_empty());
        // No checkpoint pseudo-ops survive lowering.
        assert!(p.kernel.checkpoints().is_empty());
    }

    #[test]
    fn every_live_in_has_a_restore() {
        let k = parse_kernel(KERNEL).expect("parse");
        let p = compile(&k, &PennyConfig::penny()).expect("compile");
        for region in &p.regions {
            for (reg, restore) in &region.restores {
                match restore {
                    Restore::Slot(s) => {
                        assert!(s.index != u32::MAX, "unassigned slot for {reg}")
                    }
                    Restore::Slice(slice) => assert!(!slice.is_empty()),
                }
            }
        }
    }

    #[test]
    fn bolt_commits_more_than_penny() {
        let k = parse_kernel(KERNEL).expect("parse");
        let penny = compile(&k, &PennyConfig::penny()).expect("penny");
        let bolt = compile(&k, &PennyConfig::bolt_global()).expect("bolt");
        assert!(
            bolt.stats.committed >= penny.stats.committed,
            "bolt {} vs penny {}",
            bolt.stats.committed,
            penny.stats.committed
        );
    }

    #[test]
    fn unprotected_is_passthrough() {
        let k = parse_kernel(KERNEL).expect("parse");
        let p = compile(&k, &PennyConfig::unprotected()).expect("compile");
        assert_eq!(p.kernel.num_insts(), k.num_insts());
        assert_eq!(p.stats.total_checkpoints, 0);
    }

    #[test]
    fn igpu_adds_no_stores() {
        let k = parse_kernel(KERNEL).expect("parse");
        let p = compile(&k, &PennyConfig::igpu()).expect("compile");
        let base_stores = k.locs().filter(|(_, i)| i.op.writes_memory()).count();
        let igpu_stores = p.kernel.locs().filter(|(_, i)| i.op.writes_memory()).count();
        assert_eq!(base_stores, igpu_stores, "iGPU must not add stores");
    }

    #[test]
    fn stats_track_pruning_effect() {
        let k = parse_kernel(KERNEL).expect("parse");
        let penny = compile(&k, &PennyConfig::penny()).expect("penny");
        assert!(penny.stats.total_checkpoints > 0);
        assert!(
            penny.stats.committed <= penny.stats.total_checkpoints,
            "{:?}",
            penny.stats
        );
        let noopt = compile(&k, &PennyConfig::penny_no_opt()).expect("no-opt");
        assert!(noopt.stats.committed >= penny.stats.committed);
    }

    #[test]
    fn occupancy_is_populated() {
        let k = parse_kernel(KERNEL).expect("parse");
        let p = compile(&k, &PennyConfig::penny()).expect("compile");
        assert!(p.stats.occupancy > 0.0 && p.stats.occupancy <= 1.0);
    }
}
