//! Compiler configuration: protection scheme, optimization toggles, and
//! the machine/launch parameters the storage assigner needs.

use penny_analysis::AliasOptions;

/// Which resilience transformation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No transformation (baseline).
    None,
    /// iGPU (Menon et al.): idempotent regions via anti-dependence register
    /// renaming; requires an ECC-protected RF for correct recovery.
    IGpu,
    /// Bolt (Liu et al.) adapted to GPU: eager LUP checkpointing with
    /// basic random-search pruning.
    Bolt,
    /// Penny: all optimizations available (subject to the toggles below).
    Penny,
}

/// Where committed checkpoints are stored (paper §6.5, figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePolicy {
    /// Everything in shared memory.
    Shared,
    /// Everything in global memory.
    Global,
    /// Automatic assignment: fill shared memory up to the
    /// occupancy-preserving budget, highest-cost registers first.
    Auto,
}

/// How checkpoint overwriting is prevented (paper §6.3, figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverwritePolicy {
    /// Register renaming (live-range splitting).
    Renaming,
    /// 2-coloring storage alternation with adjustment blocks.
    Alternation,
    /// Compile both ways, keep the cheaper (paper's auto-selection).
    Auto,
    /// No protection (unsafe; used only for the figure-11 sensitivity
    /// study).
    None,
}

/// Checkpoint pruning mode (paper §6.4, figures 12-13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruningMode {
    /// Keep every checkpoint.
    None,
    /// Bolt's basic pruning: random solution search.
    Basic {
        /// RNG seed (deterministic builds).
        seed: u64,
        /// Number of random solutions attempted.
        trials: u32,
    },
    /// Penny's optimal two-phase pruning.
    Optimal,
}

/// GPU resource limits relevant to occupancy (one SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineParams {
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared memory bytes per SM.
    pub shared_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
}

impl MachineParams {
    /// Fermi-generation limits (Tesla C2050-like).
    pub fn fermi() -> MachineParams {
        MachineParams {
            regs_per_sm: 32 * 1024,
            shared_per_sm: 48 * 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            warp_size: 32,
        }
    }

    /// Fermi limits scaled to the simulator's small launches (the
    /// paper's occupancy effects — register pressure and shared-memory
    /// footprint limiting resident blocks — bind at these values for
    /// 32-128-thread blocks; see DESIGN.md).
    pub fn scaled_fermi() -> MachineParams {
        MachineParams {
            regs_per_sm: 1536,
            shared_per_sm: 8 * 1024,
            max_warps_per_sm: 4,
            max_blocks_per_sm: 4,
            warp_size: 32,
        }
    }

    /// Volta limits scaled like [`MachineParams::scaled_fermi`].
    pub fn scaled_volta() -> MachineParams {
        MachineParams {
            regs_per_sm: 3 * 1024,
            shared_per_sm: 16 * 1024,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 8,
            warp_size: 32,
        }
    }

    /// Volta-generation limits (Titan V-like).
    pub fn volta() -> MachineParams {
        MachineParams {
            regs_per_sm: 64 * 1024,
            shared_per_sm: 96 * 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_size: 32,
        }
    }

    /// Thread blocks resident per SM for the given per-block demands.
    ///
    /// Returns 0 when a block cannot fit at all.
    pub fn blocks_per_sm(
        &self,
        threads_per_block: u32,
        regs_per_thread: u32,
        shared_per_block: u32,
    ) -> u32 {
        if threads_per_block == 0 {
            return 0;
        }
        let warps_per_block = threads_per_block.div_ceil(self.warp_size);
        let by_warps = self
            .max_warps_per_sm
            .checked_div(warps_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let by_regs = self
            .regs_per_sm
            .checked_div(regs_per_thread * threads_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let by_shared = self
            .shared_per_sm
            .checked_div(shared_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        by_warps.min(by_regs).min(by_shared).min(self.max_blocks_per_sm)
    }

    /// Occupancy (resident warps / max warps) for the given demands.
    pub fn occupancy(
        &self,
        threads_per_block: u32,
        regs_per_thread: u32,
        shared_per_block: u32,
    ) -> f64 {
        let warps_per_block = threads_per_block.div_ceil(self.warp_size);
        let blocks =
            self.blocks_per_sm(threads_per_block, regs_per_thread, shared_per_block);
        (blocks * warps_per_block) as f64 / self.max_warps_per_sm as f64
    }
}

/// Kernel launch geometry, needed at compile time for checkpoint-slot
/// addressing and occupancy estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDims {
    /// Threads per block (x, y).
    pub block: (u32, u32),
    /// Blocks per grid (x, y).
    pub grid: (u32, u32),
}

impl LaunchDims {
    /// 1-D launch helper.
    pub fn linear(grid_x: u32, block_x: u32) -> LaunchDims {
        LaunchDims { block: (block_x, 1), grid: (grid_x, 1) }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    /// Blocks per grid.
    pub fn blocks(&self) -> u32 {
        self.grid.0 * self.grid.1
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u32 {
        self.threads_per_block() * self.blocks()
    }
}

/// Full compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PennyConfig {
    /// Protection scheme.
    pub protection: Protection,
    /// Checkpoint storage policy.
    pub storage: StoragePolicy,
    /// Overwrite-prevention policy.
    pub overwrite: OverwritePolicy,
    /// Enable bimodal checkpoint placement (paper §6.2).
    pub bcp: bool,
    /// Pruning mode.
    pub pruning: PruningMode,
    /// Enable low-level optimizations (LICM/CSE on checkpoint address
    /// code and local scheduling; paper §6.6).
    pub low_opts: bool,
    /// Alias-analysis options for region formation.
    pub alias: AliasOptions,
    /// Machine limits for occupancy-aware storage assignment.
    pub machine: MachineParams,
    /// Launch geometry.
    pub launch: LaunchDims,
    /// Run the static protection-invariant validator ([`crate::check`])
    /// on the instrumented kernel and the pruning decisions; a violation
    /// fails compilation with [`crate::CompileError::Invariant`]. Debug
    /// aid — off by default.
    pub validate: bool,
    /// Run the kernel sanitizer ([`penny_analysis::lint_kernel`]) on the
    /// input kernel before any transformation; any diagnostic fails
    /// compilation with [`crate::CompileError::Lint`]. Off by default.
    pub lint: bool,
    /// Run the static vulnerability analysis
    /// ([`penny_analysis::VulnerabilityMap`]) on the final lowered
    /// kernel and attach the result to [`crate::Protected`]. Off by
    /// default; the conformance harness enables it for static pruning
    /// and translation validation.
    pub vulnerability: bool,
}

impl PennyConfig {
    fn base(protection: Protection) -> PennyConfig {
        PennyConfig {
            protection,
            storage: StoragePolicy::Auto,
            overwrite: OverwritePolicy::Auto,
            bcp: true,
            pruning: PruningMode::Optimal,
            low_opts: true,
            alias: AliasOptions::default(),
            machine: MachineParams::fermi(),
            launch: LaunchDims::linear(4, 128),
            validate: false,
            lint: false,
            vulnerability: false,
        }
    }

    /// Fully optimized Penny (the paper's headline configuration).
    pub fn penny() -> PennyConfig {
        Self::base(Protection::Penny)
    }

    /// Bolt storing all checkpoints in global memory.
    pub fn bolt_global() -> PennyConfig {
        PennyConfig {
            storage: StoragePolicy::Global,
            overwrite: OverwritePolicy::Alternation,
            bcp: false,
            pruning: PruningMode::Basic { seed: 0xB017, trials: 64 },
            low_opts: false,
            ..Self::base(Protection::Bolt)
        }
    }

    /// Bolt with Penny's automatic storage assignment.
    pub fn bolt_auto() -> PennyConfig {
        PennyConfig { storage: StoragePolicy::Auto, ..Self::bolt_global() }
    }

    /// iGPU baseline (renaming only; needs ECC RF).
    pub fn igpu() -> PennyConfig {
        PennyConfig {
            bcp: false,
            pruning: PruningMode::None,
            low_opts: false,
            ..Self::base(Protection::IGpu)
        }
    }

    /// Unprotected baseline.
    pub fn unprotected() -> PennyConfig {
        PennyConfig {
            pruning: PruningMode::None,
            bcp: false,
            ..Self::base(Protection::None)
        }
    }

    /// Penny with every optimization disabled (figure 10's `No_opt`:
    /// eager checkpointing, global storage, storage alternation).
    pub fn penny_no_opt() -> PennyConfig {
        PennyConfig {
            storage: StoragePolicy::Global,
            overwrite: OverwritePolicy::Alternation,
            bcp: false,
            pruning: PruningMode::None,
            low_opts: false,
            ..Self::base(Protection::Penny)
        }
    }

    /// Builder-style launch override.
    pub fn with_launch(mut self, launch: LaunchDims) -> PennyConfig {
        self.launch = launch;
        self
    }

    /// Builder-style machine override.
    pub fn with_machine(mut self, machine: MachineParams) -> PennyConfig {
        self.machine = machine;
        self
    }

    /// Builder-style validator toggle (see [`PennyConfig::validate`]).
    pub fn with_validation(mut self, validate: bool) -> PennyConfig {
        self.validate = validate;
        self
    }

    /// Builder-style sanitizer toggle (see [`PennyConfig::lint`]).
    pub fn with_lint(mut self, lint: bool) -> PennyConfig {
        self.lint = lint;
        self
    }

    /// Builder-style vulnerability-analysis toggle (see
    /// [`PennyConfig::vulnerability`]).
    pub fn with_vulnerability(mut self, vulnerability: bool) -> PennyConfig {
        self.vulnerability = vulnerability;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_occupancy_limits() {
        let m = MachineParams::fermi();
        // 128-thread blocks, light register/shared use: warp-limited.
        assert_eq!(m.blocks_per_sm(128, 16, 0), 8);
        // Heavy registers: 63 regs/thread * 128 threads = 8064 per block.
        assert_eq!(m.blocks_per_sm(128, 63, 0), 4);
        // Heavy shared memory: 24KB per block -> 2 blocks.
        assert_eq!(m.blocks_per_sm(128, 16, 24 * 1024), 2);
        assert!(m.occupancy(128, 16, 0) > m.occupancy(128, 63, 0));
    }

    #[test]
    fn occupancy_is_in_unit_interval() {
        let m = MachineParams::volta();
        for regs in [8, 32, 64, 128] {
            for sh in [0u32, 1024, 16 * 1024, 96 * 1024] {
                let o = m.occupancy(256, regs, sh);
                assert!((0.0..=1.0).contains(&o), "occupancy {o}");
            }
        }
    }

    #[test]
    fn launch_dims_arithmetic() {
        let l = LaunchDims { block: (16, 8), grid: (4, 2) };
        assert_eq!(l.threads_per_block(), 128);
        assert_eq!(l.blocks(), 8);
        assert_eq!(l.total_threads(), 1024);
        assert_eq!(LaunchDims::linear(2, 64).total_threads(), 128);
    }

    #[test]
    fn presets_differ_in_the_right_knobs() {
        assert_eq!(PennyConfig::bolt_global().storage, StoragePolicy::Global);
        assert_eq!(PennyConfig::bolt_auto().storage, StoragePolicy::Auto);
        assert!(matches!(PennyConfig::bolt_auto().pruning, PruningMode::Basic { .. }));
        assert_eq!(PennyConfig::penny().pruning, PruningMode::Optimal);
        assert!(PennyConfig::penny().bcp);
        assert!(!PennyConfig::igpu().bcp);
    }

    #[test]
    fn zero_thread_block_yields_zero_occupancy() {
        let m = MachineParams::fermi();
        assert_eq!(m.blocks_per_sm(0, 10, 0), 0);
    }
}
