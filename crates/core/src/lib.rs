#![warn(missing_docs)]
//! The Penny compiler: compiler-directed soft error resilience for GPU
//! register files (PLDI 2020 reproduction).
//!
//! Given a kernel in the `penny-ir` representation, [`compile`] produces
//! a [`Protected`] kernel: the program partitioned into **idempotent
//! regions**, its region live-ins **eagerly checkpointed** into
//! ECC-protected shared/global memory, overwrite-safe, aggressively
//! **pruned**, and lowered to real stores — plus the recovery metadata
//! (region table, checkpoint slots, recovery slices) the runtime uses to
//! re-execute a region after a parity-detected register-file error.
//!
//! The pass structure follows the paper:
//!
//! | Pass | Module | Paper |
//! |---|---|---|
//! | Region formation | [`regions`] | §5 |
//! | Live-ins / LUPs / eager & bimodal placement | [`checkpoint`] | §3, §6.2 |
//! | Overwrite prevention (renaming, 2-coloring) | [`overwrite`] | §6.3 |
//! | Optimal + basic pruning, recovery slices | [`pruning`] | §6.4 |
//! | Storage assignment & occupancy | [`storage`] | §6.5 |
//! | Low-level opts + lowering | [`codegen`] | §6.6 |
//! | iGPU baseline | [`baselines`] | §7.3 |
//!
//! # Examples
//!
//! ```
//! use penny_core::{compile, PennyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = penny_ir::parse_kernel(r#"
//!     .kernel inc .params A
//!     entry:
//!         mov.u32 %r0, %tid.x
//!         ld.param.u32 %r1, [A]
//!         mad.u32 %r2, %r0, 4, %r1
//!         ld.global.u32 %r3, [%r2]
//!         add.u32 %r4, %r3, 1
//!         st.global.u32 [%r2], %r4
//!         ret
//! "#)?;
//! let protected = compile(&kernel, &PennyConfig::penny())?;
//! assert!(protected.stats.regions >= 2); // in-place update forces a cut
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod check;
pub mod checkpoint;
pub mod codegen;
pub mod config;
pub mod cost;
pub mod error;
pub mod meta;
pub mod overwrite;
pub mod pipeline;
pub mod pruning;
pub mod regalloc;
pub mod regionmap;
pub mod regions;
pub mod storage;

pub use check::{Invariant, InvariantViolation};
pub use config::{
    LaunchDims, MachineParams, OverwritePolicy, PennyConfig, Protection, PruningMode,
    StoragePolicy,
};
pub use error::CompileError;
pub use meta::{
    CompileStats, Protected, RegionInfo, Restore, SetupValue, Slice, SliceInst, SlotRef,
    GLOBAL_CKPT_BASE,
};
pub use pipeline::{compile, compile_module, compile_observed};
pub use regionmap::RegionMap;
