//! Snapshot/replay fault injection: fork each site from a
//! region-boundary checkpoint instead of re-simulating from cycle 0.
//!
//! # The cost model this attacks
//!
//! A conformance campaign runs one full kernel per injection site. But
//! a single-bit RF fault only perturbs execution from the moment the
//! corrupted register is *observed* — everything before that instant
//! is bit-identical to the fault-free run, and everything in waves
//! scheduled before the victim's wave is untouched entirely. This
//! module records one fault-free run per (workload, scheme) pair —
//! capturing wave states at region-entry boundaries, per-wave
//! stats/memory marks, and a per-thread register access trace — and
//! then answers each site from the cheapest sufficient evidence:
//!
//! * **Never-fires** (trigger past the warp's dynamic length, or lane
//!   beyond the warp width): the site run *is* the recording.
//! * **Invisible** (first access of the victim register at or after
//!   the trigger is a write, or there is none): the flip is
//!   overwritten before any read observes it — `RegFile::write`
//!   re-encodes obliviously — so the site run is again bit-identical
//!   to the recording.
//! * **Corrected-inline** (first access is a read under SECDED ECC):
//!   the decode corrects and scrubs the word back to its exact
//!   fault-free encoding with no timing penalty; the outcome is the
//!   recording plus one `corrected` and one `decoded_reads` count.
//! * **Simulate** (first access is a read under parity EDC or an
//!   unprotected RF): detection/corruption genuinely perturbs the
//!   run. The site forks the victim's wave from the latest recorded
//!   snapshot whose victim-warp progress has not yet passed the first
//!   read, replays that wave honestly, and — when the wave ends with
//!   global-memory contents equal to the recorded wave-end mark —
//!   splices the recorded remainder instead of re-simulating it.
//!
//! # Determinism contract
//!
//! A forked site run is **bit-identical** to a from-scratch run of the
//! same injection: verdict, [`RunStats`], and memory contents. The
//! classification shortcuts rest on three engine invariants pinned by
//! tests: a register write re-encodes and clears the dirty bit without
//! looking at the old word; a single-bit EDC fault always reads as
//! `Detected` (the corrupted value is never architecturally observed,
//! so the outcome is independent of which bit flipped); and a
//! single-bit SECDED read always corrects inline and scrubs. The fork
//! shortcut rests on snapshots being taken at scheduler-cycle
//! boundaries of a deterministic engine: resuming a captured wave
//! state replays the identical cycle stream.
//!
//! Global memory is forked copy-on-write ([`GlobalMemory::fork`]), so
//! each site pays O(pages it actually dirties), not O(heap).

use std::collections::HashMap;

use penny_core::Protected;
use penny_ir::RegionId;

use crate::config::{GpuConfig, RfProtection};
use crate::engine::{
    check_launch, wave_plan, LaunchConfig, RunStats, SmEngine, TraceEvent, WaveState,
    WaveTrace,
};
use crate::fault::{FaultPlan, Injection};
use crate::memory::GlobalMemory;
use crate::program::{DKind, DSrc, Program, NO_REG};
use crate::{Gpu, SimError};

/// Per-wave snapshot cap; when a wave crosses more region boundaries
/// than this, the recorder thins to every other snapshot and doubles
/// its minimum capture gap.
const MAX_SNAPS_PER_WAVE: usize = 64;

/// How an injection site was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// The injection never fires (trigger past the warp's dynamic
    /// length, lane beyond the warp width, or register out of range).
    NeverFires,
    /// The flip fires but is overwritten before any read observes it.
    Invisible,
    /// The first observation is a read under SECDED ECC: corrected
    /// inline and scrubbed, with no downstream effect.
    CorrectedInline,
    /// The first observation is a read under parity EDC or an
    /// unprotected RF; the wave was forked and replayed.
    Simulated,
}

impl SiteClass {
    /// Stable short name (for span counters and reports).
    pub fn name(self) -> &'static str {
        match self {
            SiteClass::NeverFires => "never_fires",
            SiteClass::Invisible => "invisible",
            SiteClass::CorrectedInline => "corrected_inline",
            SiteClass::Simulated => "simulated",
        }
    }
}

/// Outcome of one site run answered from a [`Recording`].
#[derive(Debug, Clone)]
pub struct SiteRun {
    /// Final launch statistics — bit-identical to a from-scratch run.
    pub stats: RunStats,
    /// Final global memory (copy-on-write fork).
    pub global: GlobalMemory,
    /// How the site was answered.
    pub class: SiteClass,
    /// Whether the injection fired at all.
    pub fired: bool,
    /// Whether the recorded run suffix was spliced onto the replayed
    /// wave (wave-end memory contents matched the recording).
    pub spliced: bool,
    /// Wave-local cycle the fork resumed from (0 for wave start or
    /// un-simulated classes).
    pub fork_cycle: u64,
    /// Warp instructions actually re-simulated for this site.
    pub replayed_insts: u64,
    /// Global-memory pages copied (COW) during the replay.
    pub pages_copied: u64,
}

/// One access of a (lane, register) cell in a warp's dynamic stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    /// Dynamic instruction index within the warp.
    pub(crate) idx: u64,
    /// Read (`true`) or write; a read-and-write instruction records
    /// the read first, matching engine phase order.
    pub(crate) read: bool,
}

/// The per-warp register access trace of one recording.
///
/// Cells are stored in CSR form — one flat access array plus per-cell
/// offsets — rather than a `Vec` per cell: a trace has `32 * num_regs`
/// cells and nearly all of them are populated, so per-cell vectors cost
/// thousands of small allocations every time a recording is rebuilt
/// (the persisted-recording load path in particular). Incremental
/// building during the trace itself goes through [`TraceBuilder`].
#[derive(Debug)]
pub(crate) struct WarpTrace {
    /// Cell boundaries: cell `i` (flattened `lane * num_regs + reg`)
    /// spans `flat[offsets[i]..offsets[i + 1]]`. Length is the cell
    /// count plus one.
    offsets: Vec<u32>,
    /// Every cell's accesses, concatenated in cell order; within a
    /// cell, sorted by dynamic instruction index.
    flat: Vec<Access>,
    /// The warp's final dynamic instruction count.
    pub(crate) final_executed: u64,
    /// Live lanes.
    pub(crate) width: u32,
    /// Program counter of each dynamic instruction, indexed by the
    /// warp-local dynamic instruction index. Region markers are
    /// fast-forwarded by the engine and never appear here.
    pub(crate) pcs: Vec<u32>,
    /// Flow mask (pre-guard) of each dynamic instruction. A lane in
    /// the mask at index `t` executes exactly the recorded CFG path
    /// from `pcs[t]` onward, which is what lets a per-PC static fact
    /// be attributed to a fault site at trigger `t`.
    pub(crate) masks: Vec<u32>,
}

impl WarpTrace {
    /// Builds a trace from CSR parts; `offsets` must be monotone with
    /// `offsets[0] == 0` and final entry `flat.len()` (callers: the
    /// trace builder and the recording deserializer, both of which
    /// construct exactly that).
    pub(crate) fn from_csr(
        offsets: Vec<u32>,
        flat: Vec<Access>,
        final_executed: u64,
        width: u32,
        pcs: Vec<u32>,
        masks: Vec<u32>,
    ) -> WarpTrace {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last().copied(), Some(flat.len() as u32));
        WarpTrace { offsets, flat, final_executed, width, pcs, masks }
    }

    /// Number of `(lane, reg)` cells.
    pub(crate) fn num_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Cell `i`'s accesses, sorted by dynamic instruction index.
    pub(crate) fn cell(&self, i: usize) -> &[Access] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Accumulates one warp's trace during recording (per-cell vectors for
/// cheap incremental pushes), then [`TraceBuilder::finish`]es into the
/// compact CSR [`WarpTrace`].
#[derive(Debug)]
struct TraceBuilder {
    cells: Vec<Vec<Access>>,
    final_executed: u64,
    width: u32,
    pcs: Vec<u32>,
    masks: Vec<u32>,
}

impl TraceBuilder {
    fn new(num_cells: usize, width: u32) -> TraceBuilder {
        TraceBuilder {
            cells: vec![Vec::new(); num_cells],
            final_executed: 0,
            width,
            pcs: Vec::new(),
            masks: Vec::new(),
        }
    }

    fn finish(self) -> WarpTrace {
        let total: usize = self.cells.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(self.cells.len() + 1);
        let mut flat = Vec::with_capacity(total);
        offsets.push(0);
        for cell in &self.cells {
            flat.extend_from_slice(cell);
            offsets.push(flat.len() as u32);
        }
        WarpTrace::from_csr(
            offsets,
            flat,
            self.final_executed,
            self.width,
            self.pcs,
            self.masks,
        )
    }
}

/// One mid-wave checkpoint, captured at a scheduler-cycle boundary
/// right after some warp crossed a region-entry marker.
pub(crate) struct Snap {
    pub(crate) state: WaveState,
    pub(crate) global: GlobalMemory,
    pub(crate) stats: RunStats,
    /// Executed count per resident warp (block-major), for victim
    /// validity checks.
    pub(crate) executed: Vec<u64>,
}

/// One wave of the recorded serial schedule, with enough marks to fork
/// into it and splice past it.
pub(crate) struct WaveRec {
    pub(crate) sm: usize,
    pub(crate) blocks: Vec<u32>,
    pub(crate) stats_before: RunStats,
    pub(crate) stats_after: RunStats,
    pub(crate) cycles: u64,
    pub(crate) global_start: GlobalMemory,
    pub(crate) global_end: GlobalMemory,
    pub(crate) snaps: Vec<Snap>,
}

/// One warp's recorded dynamic stream, borrowed from a [`Recording`].
#[derive(Debug, Clone, Copy)]
pub struct WarpStream<'a> {
    /// Linear block index.
    pub block: u32,
    /// Warp id within the block.
    pub warp: u32,
    /// Live lanes.
    pub width: u32,
    /// Program counter per dynamic instruction.
    pub pcs: &'a [u32],
    /// Flow mask per dynamic instruction.
    pub masks: &'a [u32],
}

/// Counters describing a recording (for observability spans).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordingCounters {
    /// Region-boundary snapshots retained.
    pub snapshots: u64,
    /// Warp instructions in the fault-free run (the per-site replay
    /// savings baseline).
    pub total_warp_insts: u64,
}

/// A recorded fault-free run of one (kernel, config, launch) triple:
/// the substrate conformance forks injection sites from.
pub struct Recording {
    pub(crate) protection: RfProtection,
    pub(crate) num_sms: usize,
    pub(crate) launch: LaunchConfig,
    pub(crate) program: Program,
    pub(crate) waves: Vec<WaveRec>,
    /// Linear block index -> position in `waves`.
    pub(crate) block_wave: HashMap<u32, usize>,
    pub(crate) accesses: HashMap<(u32, u32), WarpTrace>,
    pub(crate) num_regs: usize,
    pub(crate) warps_per_block: u32,
    pub(crate) final_stats: RunStats,
    pub(crate) final_global: GlobalMemory,
    pub(crate) counters: RecordingCounters,
}

/// The wave recorder: captures snapshots on region crossings and
/// accumulates the register access trace.
struct WaveRecorder<'p> {
    program: &'p Program,
    num_regs: usize,
    /// Linear block indices of this wave.
    blocks: Vec<u32>,
    traces: &'p mut HashMap<(u32, u32), TraceBuilder>,
    snaps: Vec<Snap>,
    /// Last observed `(snapshot.executed)` per resident warp, to
    /// detect new region entries.
    last_entry: Vec<u64>,
    started: bool,
    min_gap: u64,
    last_capture: u64,
}

impl<'p> WaveRecorder<'p> {
    fn new(
        program: &'p Program,
        blocks: &[u32],
        num_regs: usize,
        traces: &'p mut HashMap<(u32, u32), TraceBuilder>,
    ) -> WaveRecorder<'p> {
        WaveRecorder {
            program,
            num_regs,
            blocks: blocks.to_vec(),
            traces,
            snaps: Vec::new(),
            last_entry: Vec::new(),
            started: false,
            min_gap: 1,
            last_capture: 0,
        }
    }

    fn push_access(
        &mut self,
        block: u32,
        warp: u32,
        lanes: u32,
        reg: u32,
        ev_idx: u64,
        read: bool,
    ) {
        if reg == NO_REG || reg as usize >= self.num_regs {
            return;
        }
        let tr = self.traces.get_mut(&(block, warp)).expect("warp trace registered");
        let mut m = lanes;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            tr.cells[lane * self.num_regs + reg as usize]
                .push(Access { idx: ev_idx, read });
        }
    }
}

impl WaveTrace for WaveRecorder<'_> {
    fn at_cycle(&mut self, eng: &SmEngine<'_>, stats: &RunStats) {
        if !self.started {
            // First cycle: register every resident warp's trace slot.
            self.started = true;
            for (bi, b) in eng.blocks().iter().enumerate() {
                for w in &b.warps {
                    self.traces.insert(
                        (self.blocks[bi], w.id),
                        TraceBuilder::new(32 * self.num_regs, w.width),
                    );
                    self.last_entry.push(u64::MAX);
                }
            }
            return;
        }
        // Detect a region-entry since the previous cycle: some warp's
        // region snapshot advanced.
        let mut entered = false;
        let mut flat = 0usize;
        for b in eng.blocks() {
            for w in &b.warps {
                let cur = w.snapshot.as_ref().map_or(u64::MAX, |s| s.executed);
                if cur != self.last_entry[flat] {
                    self.last_entry[flat] = cur;
                    entered |= w.snapshot.is_some();
                }
                flat += 1;
            }
        }
        if !entered {
            return;
        }
        let state = eng.capture();
        if state.cycle.saturating_sub(self.last_capture) < self.min_gap
            && !self.snaps.is_empty()
        {
            return;
        }
        self.last_capture = state.cycle;
        let executed =
            eng.blocks().iter().flat_map(|b| b.warps.iter().map(|w| w.executed)).collect();
        self.snaps.push(Snap {
            state,
            global: eng.global().fork(),
            stats: *stats,
            executed,
        });
        if self.snaps.len() > MAX_SNAPS_PER_WAVE {
            // Thin: keep every other snapshot, double the capture gap.
            let mut i = 0usize;
            self.snaps.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            self.min_gap *= 2;
        }
    }

    fn on_inst(&mut self, ev: TraceEvent) {
        let block = self.blocks[ev.bi];
        let warp = {
            let tr =
                self.traces.get_mut(&(block, ev.wi as u32)).expect("warp trace registered");
            tr.final_executed = ev.executed + 1;
            debug_assert_eq!(tr.pcs.len() as u64, ev.executed, "per-warp event order");
            tr.pcs.push(ev.pc as u32);
            tr.masks.push(ev.mask);
            ev.wi as u32
        };
        let d = self.program.decoded[ev.pc];
        match d.kind {
            DKind::Branch { pred, .. } => {
                self.push_access(block, warp, ev.mask, pred, ev.executed, true);
            }
            DKind::Ret | DKind::Jump { .. } => {}
            _ => {
                if d.guard != NO_REG {
                    self.push_access(block, warp, ev.mask, d.guard, ev.executed, true);
                }
                for &s in &d.srcs[..d.nsrcs as usize] {
                    if let DSrc::Reg(r) = s {
                        self.push_access(block, warp, ev.active, r, ev.executed, true);
                    }
                }
                if d.dst != NO_REG {
                    self.push_access(block, warp, ev.active, d.dst, ev.executed, false);
                }
            }
        }
    }
}

/// Fieldwise `base + plus - minus` over every additive counter
/// (everything except `cycles`, which the caller recomputes from
/// per-SM wave sums).
fn stats_splice(mut base: RunStats, plus: &RunStats, minus: &RunStats) -> RunStats {
    base.instructions += plus.instructions - minus.instructions;
    base.warp_instructions += plus.warp_instructions - minus.warp_instructions;
    base.rf.reads += plus.rf.reads - minus.rf.reads;
    base.rf.writes += plus.rf.writes - minus.rf.writes;
    base.rf.detected += plus.rf.detected - minus.rf.detected;
    base.rf.corrected += plus.rf.corrected - minus.rf.corrected;
    base.rf.decoded_reads += plus.rf.decoded_reads - minus.rf.decoded_reads;
    base.recoveries += plus.recoveries - minus.recoveries;
    base.reexec_instructions += plus.reexec_instructions - minus.reexec_instructions;
    base.global_loads += plus.global_loads - minus.global_loads;
    base.global_stores += plus.global_stores - minus.global_stores;
    base.shared_accesses += plus.shared_accesses - minus.shared_accesses;
    base.barriers += plus.barriers - minus.barriers;
    base.skipped_cycles += plus.skipped_cycles - minus.skipped_cycles;
    base
}

impl Recording {
    /// Records one fault-free run: wave marks, region-boundary
    /// snapshots, and the register access trace. The run itself is
    /// bit-identical to [`crate::engine::run`] (the trace is passive);
    /// the returned recording answers injection sites via
    /// [`Recording::run_site`].
    ///
    /// `global` is forked, not mutated.
    ///
    /// # Errors
    ///
    /// Fails like [`crate::engine::run`], plus [`SimError::BadLaunch`]
    /// if the launch carries a fault plan (recordings are fault-free
    /// by definition).
    pub fn record(
        config: &GpuConfig,
        protected: &Protected,
        launch: &LaunchConfig,
        global: &GlobalMemory,
    ) -> Result<Recording, SimError> {
        if !launch.faults.is_empty() {
            return Err(SimError::BadLaunch(
                "recordings must be fault-free (inject via run_site)".into(),
            ));
        }
        check_launch(protected, launch)?;
        let program = Program::new(&protected.kernel);
        let plan = wave_plan(config, protected, launch, &program);
        let num_regs = program.num_regs.max(1);
        let mut g = global.fork();
        let mut stats = RunStats::default();
        let mut waves = Vec::new();
        let mut block_wave = HashMap::new();
        let mut builders = HashMap::new();
        let mut sm_cycles = vec![0u64; config.num_sms as usize];
        for (k, slot) in plan.iter().enumerate() {
            for &b in &slot.blocks {
                block_wave.insert(b, k);
            }
            let stats_before = stats;
            let global_start = g.fork();
            let mut rec =
                WaveRecorder::new(&program, &slot.blocks, num_regs, &mut builders);
            let cycles = {
                let mut eng = SmEngine::for_wave(
                    config,
                    protected,
                    launch,
                    &program,
                    &mut g,
                    &slot.blocks,
                    Some(&mut rec),
                );
                eng.run_wave(&mut stats)?
            };
            sm_cycles[slot.sm] += cycles;
            waves.push(WaveRec {
                sm: slot.sm,
                blocks: slot.blocks.clone(),
                stats_before,
                stats_after: stats,
                cycles,
                global_start,
                global_end: g.fork(),
                snaps: rec.snaps,
            });
        }
        let accesses =
            builders.into_iter().map(|(k, b)| (k, b.finish())).collect::<HashMap<_, _>>();
        let mut final_stats = stats;
        final_stats.cycles = sm_cycles.iter().copied().max().unwrap_or(0);
        let counters = RecordingCounters {
            snapshots: waves.iter().map(|w| w.snaps.len() as u64).sum(),
            total_warp_insts: final_stats.warp_instructions,
        };
        Ok(Recording {
            protection: config.rf,
            num_sms: config.num_sms as usize,
            launch: launch.clone(),
            program,
            waves,
            block_wave,
            accesses,
            num_regs,
            warps_per_block: launch.dims.threads_per_block().div_ceil(32),
            final_stats,
            final_global: g,
            counters,
        })
    }

    /// The fault-free run's statistics.
    pub fn stats(&self) -> &RunStats {
        &self.final_stats
    }

    /// The launch this recording was traced on.
    pub fn launch(&self) -> &LaunchConfig {
        &self.launch
    }

    /// The fault-free run's final global memory.
    pub fn global(&self) -> &GlobalMemory {
        &self.final_global
    }

    /// Recording-level counters (snapshots retained, total warp
    /// instructions).
    pub fn counters(&self) -> RecordingCounters {
        self.counters
    }

    /// Classifies an injection site against the access trace; returns
    /// the class and, for [`SiteClass::Simulated`], the victim warp's
    /// dynamic index of the first read that observes the flip.
    fn classify(&self, inj: &Injection) -> (SiteClass, Option<u64>) {
        let Some(tr) = self.accesses.get(&(inj.block, inj.warp)) else {
            return (SiteClass::NeverFires, None);
        };
        let t = inj.after_warp_insts;
        if inj.lane >= tr.width
            || t >= tr.final_executed
            || inj.reg as usize >= self.num_regs
        {
            return (SiteClass::NeverFires, None);
        }
        let cell = tr.cell(inj.lane as usize * self.num_regs + inj.reg as usize);
        let pos = cell.partition_point(|a| a.idx < t);
        match cell.get(pos) {
            None => (SiteClass::Invisible, None),
            Some(a) if !a.read => (SiteClass::Invisible, None),
            Some(a) => match self.protection {
                RfProtection::Ecc(_) => (SiteClass::CorrectedInline, Some(a.idx)),
                _ => (SiteClass::Simulated, Some(a.idx)),
            },
        }
    }

    /// The class of a site, without running it (reporting only).
    pub fn site_class(&self, inj: &Injection) -> SiteClass {
        self.classify(inj).0
    }

    /// Static attribution of a firing site: the program counter of the
    /// victim warp's dynamic instruction at the trigger, provided the
    /// victim lane belongs to that instruction's flow mask (the lane
    /// then executes exactly the recorded CFG path from this PC on, so
    /// a per-PC static fact applies to it). Returns `None` for
    /// never-firing sites and for lanes outside the mask — those must
    /// be classified dynamically.
    pub fn static_point(&self, inj: &Injection) -> Option<usize> {
        let tr = self.accesses.get(&(inj.block, inj.warp))?;
        let t = inj.after_warp_insts;
        if inj.lane >= tr.width
            || t >= tr.final_executed
            || inj.reg as usize >= self.num_regs
        {
            return None;
        }
        let idx = t as usize;
        ((tr.masks[idx] >> inj.lane) & 1 == 1).then(|| tr.pcs[idx] as usize)
    }

    /// The victim cell's first recorded access at or after dynamic
    /// index `from`: `(index, is_read)`. `None` when the cell is never
    /// accessed again, the warp does not exist, or the lane/register
    /// is out of range. Ground truth for the static liveness oracle.
    pub fn first_access(
        &self,
        block: u32,
        warp: u32,
        lane: u32,
        reg: u32,
        from: u64,
    ) -> Option<(u64, bool)> {
        let tr = self.accesses.get(&(block, warp))?;
        if lane >= tr.width || reg as usize >= self.num_regs {
            return None;
        }
        let cell = tr.cell(lane as usize * self.num_regs + reg as usize);
        let pos = cell.partition_point(|a| a.idx < from);
        cell.get(pos).map(|a| (a.idx, a.read))
    }

    /// Iterates the recorded per-warp dynamic streams (PC and flow
    /// mask per dynamic instruction), for analytic site accounting and
    /// the static/dynamic agreement oracle.
    pub fn warp_streams(&self) -> impl Iterator<Item = WarpStream<'_>> {
        let mut keys: Vec<&(u32, u32)> = self.accesses.keys().collect();
        keys.sort();
        keys.into_iter().map(|k| {
            let tr = &self.accesses[k];
            WarpStream {
                block: k.0,
                warp: k.1,
                width: tr.width,
                pcs: &tr.pcs,
                masks: &tr.masks,
            }
        })
    }

    /// For [`SiteClass::Simulated`] sites: the memoization key under
    /// which two sites provably share a bit-identical outcome. Two
    /// simulated sites on the same victim cell whose flips are first
    /// observed by the same read produce the same run: the flip sits
    /// architecturally unobserved between trigger and first read, and
    /// under EDC the corrupted value itself is never seen (so the bit
    /// index is irrelevant; an unprotected RF observes the value, so
    /// the bit stays in the key).
    pub fn memo_key(&self, inj: &Injection) -> Option<(u32, u32, u32, u32, u32, u64)> {
        match self.classify(inj) {
            (SiteClass::Simulated, Some(j)) => {
                let bit = match self.protection {
                    RfProtection::None => inj.bit,
                    _ => 0,
                };
                Some((inj.block, inj.warp, inj.lane, inj.reg, bit, j))
            }
            _ => None,
        }
    }

    /// Answers one injection site, bit-identically to a from-scratch
    /// `run` of the same fault plan (see the module-level determinism
    /// contract).
    ///
    /// # Errors
    ///
    /// Exactly the errors a from-scratch faulty run would raise
    /// (e.g. [`SimError::UnrecoverableFault`] under EDC with no
    /// regions, or [`SimError::CycleLimit`] when a corrupted loop
    /// bound runs away).
    pub fn run_site(
        &self,
        config: &GpuConfig,
        protected: &Protected,
        inj: Injection,
    ) -> Result<SiteRun, SimError> {
        let (class, first_read) = self.classify(&inj);
        let fired = !matches!(class, SiteClass::NeverFires);
        match class {
            SiteClass::NeverFires | SiteClass::Invisible => Ok(SiteRun {
                stats: self.final_stats,
                global: self.final_global.fork(),
                class,
                fired,
                spliced: false,
                fork_cycle: 0,
                replayed_insts: 0,
                pages_copied: 0,
            }),
            SiteClass::CorrectedInline => {
                let mut stats = self.final_stats;
                stats.rf.corrected += 1;
                stats.rf.decoded_reads += 1;
                Ok(SiteRun {
                    stats,
                    global: self.final_global.fork(),
                    class,
                    fired: true,
                    spliced: false,
                    fork_cycle: 0,
                    replayed_insts: 0,
                    pages_copied: 0,
                })
            }
            SiteClass::Simulated => self.simulate_site(
                config,
                protected,
                inj,
                first_read.expect("simulated sites carry a first-read index"),
            ),
        }
    }

    /// Honest replay of a site whose flip is observed by a read: fork
    /// the victim wave from the latest valid snapshot, replay it, then
    /// splice or simulate the remainder.
    fn simulate_site(
        &self,
        config: &GpuConfig,
        protected: &Protected,
        inj: Injection,
        first_read: u64,
    ) -> Result<SiteRun, SimError> {
        let k = *self.block_wave.get(&inj.block).expect("victim block is scheduled");
        let wave = &self.waves[k];
        let vb = wave
            .blocks
            .iter()
            .position(|&b| b == inj.block)
            .expect("victim block resident in its wave");
        let flat = vb * self.warps_per_block as usize + inj.warp as usize;
        let launch = self.launch.clone().with_faults(FaultPlan::single(inj));
        // Latest snapshot whose victim-warp progress has not passed the
        // first read: the flip is unobserved between the trigger and
        // that read, so applying it at resume time is equivalent to
        // applying it at the trigger.
        let snap = wave.snaps.iter().rev().find(|s| s.executed[flat] <= first_read);
        let (mut stats, mut global, fork_cycle) = match snap {
            Some(s) => (s.stats, s.global.fork(), s.state.cycle),
            None => (wave.stats_before, wave.global_start.fork(), 0),
        };
        let replay_base = stats.warp_instructions;
        let faulty_cycles = {
            let mut eng = match snap {
                Some(s) => SmEngine::restore(
                    config,
                    protected,
                    &launch,
                    &self.program,
                    &mut global,
                    &s.state,
                ),
                None => SmEngine::for_wave(
                    config,
                    protected,
                    &launch,
                    &self.program,
                    &mut global,
                    &wave.blocks,
                    None,
                ),
            };
            eng.run_wave(&mut stats)?
        };
        let mut replayed = stats.warp_instructions - replay_base;
        // Per-SM cycle sums for the waves up to and including the
        // (replayed) victim wave; the two branches below account the
        // suffix waves differently.
        let mut sm_cycles = vec![0u64; self.num_sms];
        for w in &self.waves[..k] {
            sm_cycles[w.sm] += w.cycles;
        }
        sm_cycles[wave.sm] += faulty_cycles;
        if global.contents_eq(&wave.global_end) {
            // The faulty wave converged back onto the recorded memory
            // image, so every later wave replays identically: splice
            // the recorded remainder (stats arithmetic) instead of
            // simulating it.
            for w in &self.waves[k + 1..] {
                sm_cycles[w.sm] += w.cycles;
            }
            let pages_copied = global.pages_copied();
            let stats_final = stats_splice(stats, &self.final_stats, &wave.stats_after);
            let mut g = self.final_global.fork();
            g.reads = self.final_global.reads - wave.global_end.reads + global.reads;
            g.writes = self.final_global.writes - wave.global_end.writes + global.writes;
            let mut stats = stats_final;
            stats.cycles = sm_cycles.iter().copied().max().unwrap_or(0);
            Ok(SiteRun {
                stats,
                global: g,
                class: SiteClass::Simulated,
                fired: true,
                spliced: true,
                fork_cycle,
                replayed_insts: replayed,
                pages_copied,
            })
        } else {
            // Divergent memory: simulate the remaining waves honestly.
            for w in &self.waves[k + 1..] {
                let before = stats.warp_instructions;
                let mut eng = SmEngine::for_wave(
                    config,
                    protected,
                    &launch,
                    &self.program,
                    &mut global,
                    &w.blocks,
                    None,
                );
                sm_cycles[w.sm] += eng.run_wave(&mut stats)?;
                replayed += stats.warp_instructions - before;
            }
            stats.cycles = sm_cycles.iter().copied().max().unwrap_or(0);
            let pages_copied = global.pages_copied();
            Ok(SiteRun {
                stats,
                global,
                class: SiteClass::Simulated,
                fired: true,
                spliced: false,
                fork_cycle,
                replayed_insts: replayed,
                pages_copied,
            })
        }
    }
}

/// A resumable engine checkpoint, produced by [`Gpu::run_to_region`]:
/// one wave's scheduler state (warps, SIMT stacks, register files,
/// shared memory) at a region-entry boundary, plus the copy-on-write
/// global memory and accumulated statistics of everything executed
/// before it.
pub struct EngineSnapshot {
    wave_index: usize,
    launch: LaunchConfig,
    state: WaveState,
    global: GlobalMemory,
    stats: RunStats,
    sm_cycles: Vec<u64>,
    region: RegionId,
}

impl EngineSnapshot {
    /// The region whose entry triggered this checkpoint.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Wave-local cycle of the checkpoint.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Statistics accumulated up to the checkpoint.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// Region-stop tracer for [`Gpu::run_to_region`].
struct RegionStop {
    target: RegionId,
    last_entry: Vec<u64>,
    hit: Option<(WaveState, GlobalMemory, RunStats)>,
}

impl WaveTrace for RegionStop {
    fn at_cycle(&mut self, eng: &SmEngine<'_>, stats: &RunStats) {
        if self.hit.is_some() {
            return;
        }
        if self.last_entry.is_empty() {
            self.last_entry = eng
                .blocks()
                .iter()
                .flat_map(|b| b.warps.iter().map(|_| u64::MAX))
                .collect();
            return;
        }
        let mut flat = 0usize;
        let mut entered = false;
        for b in eng.blocks() {
            for w in &b.warps {
                let cur = w.snapshot.as_ref().map_or(u64::MAX, |s| s.executed);
                if cur != self.last_entry[flat] {
                    self.last_entry[flat] = cur;
                    if w.snapshot.as_ref().is_some_and(|s| s.region == self.target) {
                        entered = true;
                    }
                }
                flat += 1;
            }
        }
        if entered {
            self.hit = Some((eng.capture(), eng.global().fork(), *stats));
        }
    }

    fn on_inst(&mut self, _ev: TraceEvent) {}
}

impl Gpu {
    /// Runs a fault-free launch up to the first entry into `region`
    /// and returns a checkpoint at that boundary. Device memory is not
    /// mutated (the run executes on a copy-on-write fork); resume the
    /// checkpoint — with or without faults — via [`Gpu::resume_from`].
    ///
    /// # Errors
    ///
    /// Fails like [`Gpu::run`]; additionally [`SimError::BadMetadata`]
    /// if the run completes without ever entering `region`, and
    /// [`SimError::BadLaunch`] if the launch carries a fault plan
    /// (inject at resume time instead, so the checkpoint stays
    /// fault-free).
    pub fn run_to_region(
        &self,
        protected: &Protected,
        launch: &LaunchConfig,
        region: RegionId,
    ) -> Result<EngineSnapshot, SimError> {
        if !launch.faults.is_empty() {
            return Err(SimError::BadLaunch(
                "run_to_region captures fault-free checkpoints; pass faults to resume_from"
                    .into(),
            ));
        }
        check_launch(protected, launch)?;
        let program = Program::new(&protected.kernel);
        let plan = wave_plan(self.config(), protected, launch, &program);
        let mut global = self.global().fork();
        let mut stats = RunStats::default();
        let mut sm_cycles = vec![0u64; self.config().num_sms as usize];
        for (k, slot) in plan.iter().enumerate() {
            let mut stop = RegionStop { target: region, last_entry: Vec::new(), hit: None };
            let cycles = {
                let mut eng = SmEngine::for_wave(
                    self.config(),
                    protected,
                    launch,
                    &program,
                    &mut global,
                    &slot.blocks,
                    Some(&mut stop),
                );
                eng.run_wave(&mut stats)?
            };
            if let Some((state, g, s)) = stop.hit {
                return Ok(EngineSnapshot {
                    wave_index: k,
                    launch: launch.clone(),
                    state,
                    global: g,
                    stats: s,
                    sm_cycles,
                    region,
                });
            }
            sm_cycles[slot.sm] += cycles;
        }
        Err(SimError::BadMetadata(format!("{region} is never entered by this launch")))
    }

    /// Resumes a checkpoint to completion, optionally injecting
    /// `faults`, and returns the final statistics; device memory is
    /// replaced with the resumed run's final memory (like [`Gpu::run`]).
    ///
    /// Determinism contract: for any fault plan whose injections had
    /// not yet fired at the checkpoint (triggers at or after the
    /// victim warps' checkpointed progress — e.g. anything inside or
    /// after the checkpoint's region), the resumed run is bit-identical
    /// to a from-scratch run of the same plan: same [`RunStats`], same
    /// memory contents, same errors.
    ///
    /// # Errors
    ///
    /// Fails like [`Gpu::run`].
    pub fn resume_from(
        &mut self,
        protected: &Protected,
        snap: &EngineSnapshot,
        faults: FaultPlan,
    ) -> Result<RunStats, SimError> {
        let launch = snap.launch.clone().with_faults(faults);
        check_launch(protected, &launch)?;
        let program = Program::new(&protected.kernel);
        let plan = wave_plan(self.config(), protected, &launch, &program);
        let mut global = snap.global.fork();
        let mut stats = snap.stats;
        let mut sm_cycles = snap.sm_cycles.clone();
        {
            let mut eng = SmEngine::restore(
                self.config(),
                protected,
                &launch,
                &program,
                &mut global,
                &snap.state,
            );
            sm_cycles[plan[snap.wave_index].sm] += eng.run_wave(&mut stats)?;
        }
        for slot in &plan[snap.wave_index + 1..] {
            let mut eng = SmEngine::for_wave(
                self.config(),
                protected,
                &launch,
                &program,
                &mut global,
                &slot.blocks,
                None,
            );
            sm_cycles[slot.sm] += eng.run_wave(&mut stats)?;
        }
        stats.cycles = sm_cycles.iter().copied().max().unwrap_or(0);
        *self.global_mut() = global;
        Ok(stats)
    }
}
