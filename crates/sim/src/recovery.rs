//! Penny's recovery runtime (paper §3 footnote 3 and Appendix A).
//!
//! When parity detects a corrupted register, the runtime (1) restores
//! every live-in register of the faulting warp's current region — from
//! its checkpoint slot or by evaluating its recovery slice — (2)
//! recomputes the code generator's setup registers, and (3) rewinds the
//! warp to the region-entry snapshot. Re-execution then corrects the
//! error, no matter how many bits were corrupted.

use penny_core::{LaunchDims, Protected, Restore, SetupValue, Slice, SliceInst, SlotRef};
use penny_ir::{MemSpace, RegionId};

use crate::engine::{special_value, BlockCtx};
use crate::memory::GlobalMemory;
use crate::regfile::RfStats;
use crate::SimError;

/// Byte address of `thread`'s word in a checkpoint slot.
pub fn slot_addr(
    slot: &SlotRef,
    protected: &Protected,
    dims: &LaunchDims,
    cta_linear: u32,
    tid_flat: u32,
) -> u32 {
    let base = penny_core::codegen::slot_base(slot, protected.shared_ckpt_base, dims);
    match slot.space {
        MemSpace::Shared => base + tid_flat * 4,
        _ => base + (cta_linear * dims.threads_per_block() + tid_flat) * 4,
    }
}

/// Restores all live-ins of `region` for every lane of warp `wi` in
/// block `bi`. Returns the number of restore operations performed (for
/// the timing charge).
#[allow(clippy::too_many_arguments)]
pub fn restore_warp(
    protected: &Protected,
    dims: &LaunchDims,
    region: RegionId,
    bi: usize,
    wi: usize,
    blocks: &mut [BlockCtx],
    global: &mut GlobalMemory,
    params: &[u32],
    rf_stats: &mut RfStats,
) -> Result<u32, SimError> {
    let info = protected
        .region(region)
        .ok_or_else(|| SimError::BadMetadata(format!("no metadata for {region}")))?;
    let (base_thread, width) = {
        let w = &blocks[bi].warps[wi];
        (w.base_thread as usize, w.width as usize)
    };
    let mut ops = 0u32;
    for lane in 0..width {
        let thread = base_thread + lane;
        let (tid, cta) = {
            let b = &blocks[bi];
            (b.threads[thread].tid, b.cta)
        };
        let tid_flat = tid.0 + tid.1 * dims.block.0;
        let cta_linear = cta.0 + cta.1 * dims.grid.0;
        // Live-in restores.
        for (reg, restore) in &info.restores {
            let value = match restore {
                Restore::Slot(slot) => {
                    let addr = slot_addr(slot, protected, dims, cta_linear, tid_flat);
                    read_slot(blocks, bi, global, slot.space, addr)
                }
                Restore::Slice(slice) => eval_slice(
                    slice, protected, dims, blocks, bi, global, params, tid, cta, tid_flat,
                    cta_linear,
                )?,
            };
            blocks[bi].threads[thread].rf.write(reg.index(), value, rf_stats);
            ops += 1;
        }
        // Setup registers (checkpoint addressing).
        for (reg, sv) in &protected.setup {
            let value = match sv {
                SetupValue::TidFlat4 => tid_flat * 4,
                SetupValue::GlobalTid4 => {
                    (cta_linear * dims.threads_per_block() + tid_flat) * 4
                }
                SetupValue::SlotAddr(slot) => {
                    // The in-kernel address: base + per-thread offset in
                    // the slot's own space addressing scheme.
                    let base = penny_core::codegen::slot_base(
                        slot,
                        protected.shared_ckpt_base,
                        dims,
                    );
                    match slot.space {
                        MemSpace::Shared => base + tid_flat * 4,
                        _ => base + (cta_linear * dims.threads_per_block() + tid_flat) * 4,
                    }
                }
            };
            blocks[bi].threads[thread].rf.write(reg.index(), value, rf_stats);
            ops += 1;
        }
    }
    Ok(ops)
}

fn read_slot(
    blocks: &mut [BlockCtx],
    bi: usize,
    global: &mut GlobalMemory,
    space: MemSpace,
    addr: u32,
) -> u32 {
    match space {
        MemSpace::Shared => blocks[bi].shared.read(addr),
        _ => global.read(addr),
    }
}

/// Evaluates one recovery slice for one thread.
#[allow(clippy::too_many_arguments)]
pub fn eval_slice(
    slice: &Slice,
    protected: &Protected,
    dims: &LaunchDims,
    blocks: &mut [BlockCtx],
    bi: usize,
    global: &mut GlobalMemory,
    params: &[u32],
    tid: (u32, u32),
    cta: (u32, u32),
    tid_flat: u32,
    cta_linear: u32,
) -> Result<u32, SimError> {
    let mut values: Vec<u32> = Vec::with_capacity(slice.len());
    for inst in &slice.insts {
        let v = match inst {
            SliceInst::Const(c) => *c,
            SliceInst::Special(s) => special_value(*s, tid, cta, dims),
            SliceInst::LoadSlot(slot) => {
                let addr = slot_addr(slot, protected, dims, cta_linear, tid_flat);
                read_slot(blocks, bi, global, slot.space, addr)
            }
            SliceInst::LoadMem { space, base, offset } => {
                let addr = values[*base].wrapping_add(*offset as u32);
                match space {
                    MemSpace::Global | MemSpace::Const => global.read(addr),
                    MemSpace::Shared | MemSpace::Local => blocks[bi].shared.read(addr),
                    MemSpace::Param => {
                        params.get((addr / 4) as usize).copied().unwrap_or(0)
                    }
                }
            }
            SliceInst::Alu { op, ty, ty2, args } => {
                // Slice args mirror instruction sources, so the arity
                // cap `penny_ir::MAX_SRCS` applies; gather into fixed
                // slots like the decoded engine path.
                let mut srcs = [0u32; penny_ir::MAX_SRCS];
                for (s, &a) in srcs.iter_mut().zip(args) {
                    *s = values[a];
                }
                crate::alu::eval(*op, *ty, *ty2, &srcs[..args.len()])
            }
            SliceInst::Setp { cmp, ty, a, b } => {
                crate::alu::eval_cmp(*cmp, *ty, values[*a], values[*b]) as u32
            }
            SliceInst::Select { pred, a, b } => {
                if values[*pred] != 0 {
                    values[*a]
                } else {
                    values[*b]
                }
            }
        };
        values.push(v);
    }
    values
        .last()
        .copied()
        .ok_or_else(|| SimError::BadMetadata("empty recovery slice".into()))
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use penny_core::{CompileStats, RegionInfo, SetupValue, SliceInst, GLOBAL_CKPT_BASE};
    use penny_ir::{Cmp, InstId, Kernel, MemSpace, Op, Special, Type, VReg};

    use super::*;
    use crate::config::RfProtection;
    use crate::memory::SharedMemory;
    use crate::regfile::{RegFile, RfStats};
    use crate::warp::Warp;

    const NREGS: usize = 8;
    const SHARED_BASE: u32 = 16;

    fn dims() -> LaunchDims {
        LaunchDims::linear(2, 4) // 2 blocks × 4 threads
    }

    /// One hand-built resident block of 4 threads in a single warp.
    fn block(width: u32) -> BlockCtx {
        let threads = (0..4)
            .map(|i| crate::engine::ThreadCtx {
                rf: RegFile::new(NREGS, RfProtection::None),
                tid: (i, 0),
            })
            .collect();
        BlockCtx {
            index: 0,
            cta: (0, 0),
            shared: SharedMemory::new(SHARED_BASE + 64),
            threads,
            warps: vec![Warp::new(0, 0, width, 0, 0)],
        }
    }

    fn shared_slot(index: u32) -> SlotRef {
        SlotRef { space: MemSpace::Shared, index }
    }

    fn global_slot(index: u32) -> SlotRef {
        SlotRef { space: MemSpace::Global, index }
    }

    /// Metadata with one region whose live-ins are given directly.
    fn protected(
        restores: Vec<(VReg, Restore)>,
        setup: Vec<(VReg, SetupValue)>,
    ) -> Protected {
        Protected {
            kernel: Kernel::new("t", &[]),
            regions: vec![RegionInfo {
                id: penny_ir::RegionId(0),
                marker: InstId(0),
                restores,
            }],
            slots: HashMap::new(),
            setup,
            shared_ckpt_base: SHARED_BASE,
            shared_ckpt_bytes: 64,
            global_slot_count: 2,
            stats: CompileStats::default(),
            vulnerability: None,
        }
    }

    fn eval(
        slice: &Slice,
        p: &Protected,
        blocks: &mut [BlockCtx],
        global: &mut GlobalMemory,
        params: &[u32],
        tid: (u32, u32),
    ) -> Result<u32, SimError> {
        let d = dims();
        let tid_flat = tid.0;
        eval_slice(slice, p, &d, blocks, 0, global, params, tid, (0, 0), tid_flat, 0)
    }

    #[test]
    fn slice_const_special_alu() {
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        let slice = Slice {
            insts: vec![
                SliceInst::Const(5),
                SliceInst::Special(Special::TidX),
                SliceInst::Alu {
                    op: Op::Add,
                    ty: Type::U32,
                    ty2: Type::U32,
                    args: vec![0, 1],
                },
            ],
        };
        for t in 0..4u32 {
            let v = eval(&slice, &p, &mut blocks, &mut global, &[], (t, 0)).unwrap();
            assert_eq!(v, 5 + t, "slice is per-thread");
        }
    }

    #[test]
    fn slice_guarded_select_takes_both_arms() {
        // The executable form of a guarded (predicated) instruction:
        // setp feeds a select, so recovery works on either path.
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        let guarded = |a: u32, b: u32| Slice {
            insts: vec![
                SliceInst::Const(a),
                SliceInst::Const(b),
                SliceInst::Setp { cmp: Cmp::Lt, ty: Type::U32, a: 0, b: 1 },
                SliceInst::Const(111),
                SliceInst::Const(222),
                SliceInst::Select { pred: 2, a: 3, b: 4 },
            ],
        };
        let t = eval(&guarded(3, 7), &p, &mut blocks, &mut global, &[], (0, 0)).unwrap();
        assert_eq!(t, 111, "predicate true selects the first arm");
        let f = eval(&guarded(7, 3), &p, &mut blocks, &mut global, &[], (0, 0)).unwrap();
        assert_eq!(f, 222, "predicate false selects the second arm");
    }

    #[test]
    fn slice_loads_shared_and_global_slots() {
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        // Shared slot 0 lives at shared_ckpt_base, one word per thread.
        for t in 0..4u32 {
            blocks[0].shared.write(SHARED_BASE + t * 4, 100 + t);
        }
        // Global slot 1 lives in the arena, one word per *global* thread.
        let total_threads = dims().threads_per_block() * 2;
        let g1 = GLOBAL_CKPT_BASE + total_threads * 4;
        for t in 0..4u32 {
            global.write(g1 + t * 4, 200 + t);
        }
        let sh = Slice { insts: vec![SliceInst::LoadSlot(shared_slot(0))] };
        let gl = Slice { insts: vec![SliceInst::LoadSlot(global_slot(1))] };
        for t in 0..4u32 {
            let v = eval(&sh, &p, &mut blocks, &mut global, &[], (t, 0)).unwrap();
            assert_eq!(v, 100 + t, "shared slot is per-thread within the block");
            let v = eval(&gl, &p, &mut blocks, &mut global, &[], (t, 0)).unwrap();
            assert_eq!(v, 200 + t, "global slot is per-global-thread");
        }
    }

    #[test]
    fn slice_reloads_params_and_memory() {
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        global.write(0x40, 77);
        let params = [10, 20, 30];
        // Param reload: address 8 → word 2 of the parameter block.
        let param = Slice {
            insts: vec![
                SliceInst::Const(8),
                SliceInst::LoadMem { space: MemSpace::Param, base: 0, offset: 0 },
            ],
        };
        assert_eq!(
            eval(&param, &p, &mut blocks, &mut global, &params, (0, 0)).unwrap(),
            30
        );
        // Global reload with a constant offset off a computed base.
        let mem = Slice {
            insts: vec![
                SliceInst::Const(0x3C),
                SliceInst::LoadMem { space: MemSpace::Global, base: 0, offset: 4 },
            ],
        };
        assert_eq!(eval(&mem, &p, &mut blocks, &mut global, &params, (0, 0)).unwrap(), 77);
    }

    #[test]
    fn empty_slice_is_bad_metadata() {
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        let err = eval(&Slice::default(), &p, &mut blocks, &mut global, &[], (0, 0))
            .expect_err("empty slice has no value");
        assert!(matches!(err, SimError::BadMetadata(_)), "{err:?}");
    }

    #[test]
    fn restore_warp_slots_slices_and_setup() {
        // Live-ins: r3 from a shared slot, r4 from a global slot, r5 from
        // a constant slice. Setup: r6 = tid_flat*4, r7 = this thread's
        // global slot-0 address.
        let slice5 = Slice { insts: vec![SliceInst::Const(0xAB)] };
        let p = protected(
            vec![
                (VReg(3), Restore::Slot(shared_slot(0))),
                (VReg(4), Restore::Slot(global_slot(0))),
                (VReg(5), Restore::Slice(slice5)),
            ],
            vec![
                (VReg(6), SetupValue::TidFlat4),
                (VReg(7), SetupValue::SlotAddr(global_slot(0))),
            ],
        );
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        let mut stats = RfStats::default();
        for t in 0..4u32 {
            blocks[0].shared.write(SHARED_BASE + t * 4, 100 + t);
            global.write(GLOBAL_CKPT_BASE + t * 4, 200 + t);
        }
        let ops = restore_warp(
            &p,
            &dims(),
            penny_ir::RegionId(0),
            0,
            0,
            &mut blocks,
            &mut global,
            &[],
            &mut stats,
        )
        .expect("restore");
        assert_eq!(ops, 4 * 5, "restores + setup per lane");
        for t in 0..4usize {
            let rf = &blocks[0].threads[t].rf;
            assert_eq!(rf.peek(3), 100 + t as u32, "shared-slot restore");
            assert_eq!(rf.peek(4), 200 + t as u32, "global-slot restore");
            assert_eq!(rf.peek(5), 0xAB, "slice restore");
            assert_eq!(rf.peek(6), t as u32 * 4, "TidFlat4 setup");
            assert_eq!(rf.peek(7), GLOBAL_CKPT_BASE + t as u32 * 4, "SlotAddr setup");
        }
    }

    #[test]
    fn restore_warp_respects_partial_width() {
        let p = protected(vec![(VReg(3), Restore::Slot(shared_slot(0)))], vec![]);
        let mut blocks = [block(2)]; // tail warp: only lanes 0 and 1 live
        let mut global = GlobalMemory::new();
        let mut stats = RfStats::default();
        for t in 0..4u32 {
            blocks[0].shared.write(SHARED_BASE + t * 4, 100 + t);
            blocks[0].threads[t as usize].rf.write(3, 0xDEAD, &mut stats);
        }
        let ops = restore_warp(
            &p,
            &dims(),
            penny_ir::RegionId(0),
            0,
            0,
            &mut blocks,
            &mut global,
            &[],
            &mut stats,
        )
        .expect("restore");
        assert_eq!(ops, 2);
        assert_eq!(blocks[0].threads[0].rf.peek(3), 100);
        assert_eq!(blocks[0].threads[1].rf.peek(3), 101);
        assert_eq!(blocks[0].threads[2].rf.peek(3), 0xDEAD, "dead lane untouched");
        assert_eq!(blocks[0].threads[3].rf.peek(3), 0xDEAD, "dead lane untouched");
    }

    #[test]
    fn restore_warp_unknown_region_is_bad_metadata() {
        let p = protected(vec![], vec![]);
        let mut blocks = [block(4)];
        let mut global = GlobalMemory::new();
        let mut stats = RfStats::default();
        let err = restore_warp(
            &p,
            &dims(),
            penny_ir::RegionId(42),
            0,
            0,
            &mut blocks,
            &mut global,
            &[],
            &mut stats,
        )
        .expect_err("region 42 has no metadata");
        assert!(matches!(err, SimError::BadMetadata(_)), "{err:?}");
    }
}
