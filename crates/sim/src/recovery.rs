//! Penny's recovery runtime (paper §3 footnote 3 and Appendix A).
//!
//! When parity detects a corrupted register, the runtime (1) restores
//! every live-in register of the faulting warp's current region — from
//! its checkpoint slot or by evaluating its recovery slice — (2)
//! recomputes the code generator's setup registers, and (3) rewinds the
//! warp to the region-entry snapshot. Re-execution then corrects the
//! error, no matter how many bits were corrupted.

use penny_core::{LaunchDims, Protected, Restore, SetupValue, Slice, SliceInst, SlotRef};
use penny_ir::{MemSpace, RegionId};

use crate::engine::{special_value, BlockCtx};
use crate::memory::GlobalMemory;
use crate::regfile::RfStats;
use crate::SimError;

/// Byte address of `thread`'s word in a checkpoint slot.
pub fn slot_addr(
    slot: &SlotRef,
    protected: &Protected,
    dims: &LaunchDims,
    cta_linear: u32,
    tid_flat: u32,
) -> u32 {
    let base = penny_core::codegen::slot_base(slot, protected.shared_ckpt_base, dims);
    match slot.space {
        MemSpace::Shared => base + tid_flat * 4,
        _ => base + (cta_linear * dims.threads_per_block() + tid_flat) * 4,
    }
}

/// Restores all live-ins of `region` for every lane of warp `wi` in
/// block `bi`. Returns the number of restore operations performed (for
/// the timing charge).
#[allow(clippy::too_many_arguments)]
pub fn restore_warp(
    protected: &Protected,
    dims: &LaunchDims,
    region: RegionId,
    bi: usize,
    wi: usize,
    blocks: &mut [BlockCtx],
    global: &mut GlobalMemory,
    params: &[u32],
    rf_stats: &mut RfStats,
) -> Result<u32, SimError> {
    let info = protected
        .region(region)
        .ok_or_else(|| SimError::BadMetadata(format!("no metadata for {region}")))?;
    let (base_thread, width) = {
        let w = &blocks[bi].warps[wi];
        (w.base_thread as usize, w.width as usize)
    };
    let mut ops = 0u32;
    for lane in 0..width {
        let thread = base_thread + lane;
        let (tid, cta) = {
            let b = &blocks[bi];
            (b.threads[thread].tid, b.cta)
        };
        let tid_flat = tid.0 + tid.1 * dims.block.0;
        let cta_linear = cta.0 + cta.1 * dims.grid.0;
        // Live-in restores.
        for (reg, restore) in &info.restores {
            let value = match restore {
                Restore::Slot(slot) => {
                    let addr = slot_addr(slot, protected, dims, cta_linear, tid_flat);
                    read_slot(blocks, bi, global, slot.space, addr)
                }
                Restore::Slice(slice) => eval_slice(
                    slice, protected, dims, blocks, bi, global, params, tid, cta, tid_flat,
                    cta_linear,
                )?,
            };
            blocks[bi].threads[thread].rf.write(reg.index(), value, rf_stats);
            ops += 1;
        }
        // Setup registers (checkpoint addressing).
        for (reg, sv) in &protected.setup {
            let value = match sv {
                SetupValue::TidFlat4 => tid_flat * 4,
                SetupValue::GlobalTid4 => {
                    (cta_linear * dims.threads_per_block() + tid_flat) * 4
                }
                SetupValue::SlotAddr(slot) => {
                    // The in-kernel address: base + per-thread offset in
                    // the slot's own space addressing scheme.
                    let base = penny_core::codegen::slot_base(
                        slot,
                        protected.shared_ckpt_base,
                        dims,
                    );
                    match slot.space {
                        MemSpace::Shared => base + tid_flat * 4,
                        _ => base + (cta_linear * dims.threads_per_block() + tid_flat) * 4,
                    }
                }
            };
            blocks[bi].threads[thread].rf.write(reg.index(), value, rf_stats);
            ops += 1;
        }
    }
    Ok(ops)
}

fn read_slot(
    blocks: &mut [BlockCtx],
    bi: usize,
    global: &mut GlobalMemory,
    space: MemSpace,
    addr: u32,
) -> u32 {
    match space {
        MemSpace::Shared => blocks[bi].shared.read(addr),
        _ => global.read(addr),
    }
}

/// Evaluates one recovery slice for one thread.
#[allow(clippy::too_many_arguments)]
pub fn eval_slice(
    slice: &Slice,
    protected: &Protected,
    dims: &LaunchDims,
    blocks: &mut [BlockCtx],
    bi: usize,
    global: &mut GlobalMemory,
    params: &[u32],
    tid: (u32, u32),
    cta: (u32, u32),
    tid_flat: u32,
    cta_linear: u32,
) -> Result<u32, SimError> {
    let mut values: Vec<u32> = Vec::with_capacity(slice.len());
    for inst in &slice.insts {
        let v = match inst {
            SliceInst::Const(c) => *c,
            SliceInst::Special(s) => special_value(*s, tid, cta, dims),
            SliceInst::LoadSlot(slot) => {
                let addr = slot_addr(slot, protected, dims, cta_linear, tid_flat);
                read_slot(blocks, bi, global, slot.space, addr)
            }
            SliceInst::LoadMem { space, base, offset } => {
                let addr = values[*base].wrapping_add(*offset as u32);
                match space {
                    MemSpace::Global | MemSpace::Const => global.read(addr),
                    MemSpace::Shared | MemSpace::Local => blocks[bi].shared.read(addr),
                    MemSpace::Param => {
                        params.get((addr / 4) as usize).copied().unwrap_or(0)
                    }
                }
            }
            SliceInst::Alu { op, ty, ty2, args } => {
                // Slice args mirror instruction sources, so the arity
                // cap `penny_ir::MAX_SRCS` applies; gather into fixed
                // slots like the decoded engine path.
                let mut srcs = [0u32; penny_ir::MAX_SRCS];
                for (s, &a) in srcs.iter_mut().zip(args) {
                    *s = values[a];
                }
                crate::alu::eval(*op, *ty, *ty2, &srcs[..args.len()])
            }
            SliceInst::Setp { cmp, ty, a, b } => {
                crate::alu::eval_cmp(*cmp, *ty, values[*a], values[*b]) as u32
            }
            SliceInst::Select { pred, a, b } => {
                if values[*pred] != 0 {
                    values[*a]
                } else {
                    values[*b]
                }
            }
        };
        values.push(v);
    }
    values.last().copied().ok_or_else(|| SimError::BadMetadata("empty recovery slice".into()))
}
