//! Deterministic soft-error injection into the register file.
//!
//! The paper's error model is a particle strike flipping one or more RF
//! bits. An [`Injection`] names its victim by grid coordinates and fires
//! after the victim's warp has executed a given number of instructions —
//! a trigger that is independent of timing-model details, so campaigns
//! are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Linear block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Lane within the warp.
    pub lane: u32,
    /// Victim register.
    pub reg: u32,
    /// Codeword bit to flip (wraps modulo the codeword length).
    pub bit: u32,
    /// Fires when the victim warp has executed this many instructions.
    pub after_warp_insts: u64,
}

impl Injection {
    /// Whether this injection fires for the given victim-warp state: it
    /// names this warp, its lane exists, and the warp's executed-count
    /// trigger has been reached.
    #[inline]
    pub fn due(&self, block: u32, warp: u32, width: u32, executed: u64) -> bool {
        self.block == block
            && self.warp == warp
            && self.lane < width
            && self.after_warp_insts <= executed
    }
}

/// A full injection campaign for one launch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Injections, in any order.
    pub injections: Vec<Injection>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single fault.
    pub fn single(i: Injection) -> FaultPlan {
        FaultPlan { injections: vec![i] }
    }

    /// Generates `count` random single-bit faults over the given
    /// geometry, deterministically from `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        seed: u64,
        count: usize,
        blocks: u32,
        warps_per_block: u32,
        lanes: u32,
        regs: u32,
        bits: u32,
        max_insts: u64,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let injections = (0..count)
            .map(|_| Injection {
                block: rng.gen_range(0..blocks.max(1)),
                warp: rng.gen_range(0..warps_per_block.max(1)),
                lane: rng.gen_range(0..lanes.max(1)),
                reg: rng.gen_range(0..regs.max(1)),
                bit: rng.gen_range(0..bits.max(1)),
                after_warp_insts: rng.gen_range(1..max_insts.max(2)),
            })
            .collect();
        FaultPlan { injections }
    }

    /// Returns `true` when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(7, 5, 4, 2, 32, 16, 33, 100);
        let b = FaultPlan::random(7, 5, 4, 2, 32, 16, 33, 100);
        assert_eq!(a, b);
        assert_eq!(a.injections.len(), 5);
        let c = FaultPlan::random(8, 5, 4, 2, 32, 16, 33, 100);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn bounds_respected() {
        let p = FaultPlan::random(1, 100, 2, 3, 32, 10, 33, 50);
        for i in &p.injections {
            assert!(i.block < 2);
            assert!(i.warp < 3);
            assert!(i.lane < 32);
            assert!(i.reg < 10);
            assert!(i.bit < 33);
            assert!(i.after_warp_insts >= 1 && i.after_warp_insts < 50);
        }
    }

    #[test]
    fn due_matches_victim_warp_and_trigger() {
        let i =
            Injection { block: 1, warp: 2, lane: 5, reg: 0, bit: 0, after_warp_insts: 10 };
        assert!(i.due(1, 2, 32, 10), "fires exactly at the trigger count");
        assert!(i.due(1, 2, 32, 11), "stays due after the trigger count");
        assert!(!i.due(1, 2, 32, 9), "not before the trigger");
        assert!(!i.due(0, 2, 32, 10), "wrong block");
        assert!(!i.due(1, 3, 32, 10), "wrong warp");
        assert!(!i.due(1, 2, 5, 10), "lane beyond a narrow warp");
    }

    #[test]
    fn due_at_first_and_last_executed_instruction() {
        // Trigger 1 is the earliest a fault can fire: after the warp's
        // first instruction, never before the warp has run anything.
        let first =
            Injection { block: 0, warp: 0, lane: 0, reg: 0, bit: 0, after_warp_insts: 1 };
        assert!(!first.due(0, 0, 32, 0), "nothing executed yet");
        assert!(first.due(0, 0, 32, 1), "fires after the first instruction");

        // A trigger equal to the warp's total dynamic count fires after
        // its final instruction; one past it never fires.
        let total = 57u64;
        let last = Injection { after_warp_insts: total, ..first };
        assert!(!last.due(0, 0, 32, total - 1));
        assert!(last.due(0, 0, 32, total));
        let beyond = Injection { after_warp_insts: total + 1, ..first };
        assert!(!beyond.due(0, 0, 32, total), "trigger past the end is benign");
    }

    #[test]
    fn due_respects_warp_width_edges() {
        let at = |lane| Injection {
            block: 0,
            warp: 0,
            lane,
            reg: 0,
            bit: 0,
            after_warp_insts: 1,
        };
        // Last lane of a full warp exists; the one past it does not.
        assert!(at(31).due(0, 0, 32, 1));
        assert!(!at(32).due(0, 0, 32, 1));
        // Partial tail warp: lane == width is out of range, width-1 is in.
        assert!(at(6).due(0, 0, 7, 1));
        assert!(!at(7).due(0, 0, 7, 1));
        // Degenerate width-1 warp keeps only lane 0.
        assert!(at(0).due(0, 0, 1, 1));
        assert!(!at(1).due(0, 0, 1, 1));
    }

    #[test]
    fn multiple_injections_fire_independently() {
        // Two faults on the same warp at different triggers plus one on
        // another warp: each becomes due on its own schedule and a plan
        // never conflates victims.
        let early =
            Injection { block: 0, warp: 0, lane: 3, reg: 1, bit: 2, after_warp_insts: 2 };
        let late =
            Injection { block: 0, warp: 0, lane: 9, reg: 4, bit: 0, after_warp_insts: 8 };
        let other =
            Injection { block: 1, warp: 1, lane: 0, reg: 0, bit: 5, after_warp_insts: 2 };
        let plan = FaultPlan { injections: vec![early, late, other] };
        let due_at = |block, warp, executed| {
            plan.injections.iter().filter(|i| i.due(block, warp, 32, executed)).count()
        };
        assert_eq!(due_at(0, 0, 1), 0);
        assert_eq!(due_at(0, 0, 2), 1, "only the early fault");
        assert_eq!(due_at(0, 0, 8), 2, "both same-warp faults due");
        assert_eq!(due_at(1, 1, 2), 1, "other warp sees only its own");
        assert_eq!(due_at(1, 0, 100), 0, "unnamed warp never fires");
    }

    #[test]
    fn empty_plan() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::single(Injection {
            block: 0,
            warp: 0,
            lane: 0,
            reg: 0,
            bit: 0,
            after_warp_insts: 1
        })
        .is_empty());
    }
}
