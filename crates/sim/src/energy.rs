//! Register-file energy accounting (paper §7.7, figure 14).
//!
//! The paper feeds its synthesis data into GPUWattch; we substitute the
//! direct product of simulated RF access counts and the per-access
//! energy of the configured coding scheme (from the `penny-coding` cost
//! model). Figure 14 then compares, per benchmark:
//!
//! * **ECC**: the baseline program on a SECDED-protected RF;
//! * **Parity/Penny**: the Penny-instrumented program (more RF accesses
//!   from checkpoint code) on a parity-protected RF;
//!
//! both normalized to the baseline program on an unprotected RF.

use penny_coding::{BaselineBank, HwCost, Scheme};

use crate::regfile::RfStats;

/// Energy per RF access (pJ) under a coding scheme.
pub fn energy_per_access_pj(scheme: Scheme) -> f64 {
    let base = BaselineBank::paper().energy_pj;
    let overhead = HwCost::synthesized(scheme).energy_pct;
    base * (1.0 + overhead / 100.0)
}

/// Total RF energy (pJ) for a run.
pub fn rf_energy_pj(stats: &RfStats, scheme: Scheme) -> f64 {
    (stats.reads + stats.writes) as f64 * energy_per_access_pj(scheme)
}

/// RF energy normalized to a baseline run on an unprotected RF.
///
/// A zero-access baseline only yields the neutral 1.0 when the run is
/// also access-free; a nonzero run over a zero baseline is unbounded
/// relative overhead (all of it instrumentation-induced) and reports
/// `f64::INFINITY` instead of silently masking it.
pub fn normalized_rf_energy(run: &RfStats, scheme: Scheme, baseline: &RfStats) -> f64 {
    let base = rf_energy_pj(baseline, Scheme::None);
    let e = rf_energy_pj(run, scheme);
    if base == 0.0 {
        return if e == 0.0 { 1.0 } else { f64::INFINITY };
    }
    e / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_access_energy_tracks_table2() {
        let none = energy_per_access_pj(Scheme::None);
        let parity = energy_per_access_pj(Scheme::Parity);
        let secded = energy_per_access_pj(Scheme::Secded);
        assert_eq!(none, 9.64);
        assert!((parity / none - 1.03).abs() < 1e-9);
        assert!((secded / none - 1.211).abs() < 1e-9);
    }

    #[test]
    fn normalization() {
        let baseline = RfStats { reads: 800, writes: 200, ..RfStats::default() };
        // Same access count on SECDED: exactly the ECC energy overhead.
        let ecc = normalized_rf_energy(&baseline, Scheme::Secded, &baseline);
        assert!((ecc - 1.211).abs() < 1e-9);
        // Penny: 5% more accesses on parity.
        let penny = RfStats { reads: 840, writes: 210, ..RfStats::default() };
        let p = normalized_rf_energy(&penny, Scheme::Parity, &baseline);
        assert!((p - 1.03 * 1.05).abs() < 1e-9);
        assert!(p < ecc, "Penny must beat SECDED for modest access growth");
    }

    #[test]
    fn zero_baseline_degrades_gracefully() {
        let z = RfStats::default();
        assert_eq!(normalized_rf_energy(&z, Scheme::Parity, &z), 1.0);
    }

    #[test]
    fn regression_nonzero_run_over_zero_baseline_is_infinite() {
        // A run with RF traffic normalized against an access-free
        // baseline used to report a perfect 1.0, hiding purely
        // instrumentation-induced energy. It must be +inf.
        let z = RfStats::default();
        let run = RfStats { reads: 10, writes: 2, ..RfStats::default() };
        assert_eq!(normalized_rf_energy(&run, Scheme::Parity, &z), f64::INFINITY);
        assert_eq!(normalized_rf_energy(&run, Scheme::None, &z), f64::INFINITY);
        // Both-zero stays the neutral ratio.
        assert_eq!(normalized_rf_energy(&z, Scheme::Secded, &z), 1.0);
    }
}
