//! The register-file model: per-thread registers stored as codewords of
//! the configured protection scheme, checked at every read.
//!
//! This is where the paper's error model becomes executable: a soft
//! error flips stored bits; with **EDC** the flip is *detected* at the
//! next read (and Penny's runtime recovers); with **ECC** it is
//! *corrected* inline (at the hardware cost Table 2 quantifies); with no
//! protection it silently corrupts the value.

use penny_coding::{Codec, Decode, Scheme};

use crate::config::RfProtection;

/// Outcome of a protected register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The stored word was clean.
    Ok(u32),
    /// ECC repaired the word in place.
    CorrectedInline(u32),
    /// EDC detected corruption — Penny's recovery path.
    Detected,
}

/// One thread's register file.
#[derive(Debug, Clone)]
pub struct RegFile {
    words: Vec<u64>,
    protection: RfProtection,
    codec: Option<Codec>,
}

/// RF access counters for a whole launch (drives the energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RfStats {
    /// Register reads.
    pub reads: u64,
    /// Register writes.
    pub writes: u64,
    /// Errors detected by EDC.
    pub detected: u64,
    /// Errors corrected inline by ECC.
    pub corrected: u64,
}

impl RegFile {
    /// Creates a zero-initialized register file with `n` registers.
    pub fn new(n: usize, protection: RfProtection) -> RegFile {
        let codec = protection.scheme().codec();
        let zero = codec.as_ref().map(|c| c.encode(0)).unwrap_or(0);
        RegFile { words: vec![zero; n], protection, codec }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Writes a register (re-encoding clears any prior corruption).
    pub fn write(&mut self, reg: usize, value: u32, stats: &mut RfStats) {
        stats.writes += 1;
        self.words[reg] = match &self.codec {
            Some(c) => c.encode(value),
            None => value as u64,
        };
    }

    /// Reads a register through the protection scheme.
    pub fn read(&mut self, reg: usize, stats: &mut RfStats) -> ReadOutcome {
        stats.reads += 1;
        let word = self.words[reg];
        let Some(codec) = &self.codec else {
            return ReadOutcome::Ok(word as u32);
        };
        match (codec.decode(word), self.protection) {
            (Decode::Clean(v), _) => ReadOutcome::Ok(v),
            (Decode::Corrected { data, .. }, RfProtection::Ecc(_)) => {
                stats.corrected += 1;
                // Scrub: write the repaired word back.
                self.words[reg] = codec.encode(data);
                ReadOutcome::CorrectedInline(data)
            }
            // In EDC mode the correction capability is *not* wired up:
            // any non-clean word is a detection (paper §2: the code is
            // used solely for detection).
            (Decode::Corrected { .. }, _) | (Decode::Detected, _) => {
                match self.protection {
                    RfProtection::Edc(_) => {
                        stats.detected += 1;
                        ReadOutcome::Detected
                    }
                    RfProtection::Ecc(_) => {
                        stats.detected += 1;
                        ReadOutcome::Detected
                    }
                    // Unprotected RFs cannot detect anything; decode
                    // is identity there, so this arm is unreachable.
                    RfProtection::None => unreachable!("no codec without protection"),
                }
            }
        }
    }

    /// Raw read bypassing checks (host/debug use).
    pub fn peek(&self, reg: usize) -> u32 {
        match &self.codec {
            Some(c) => match c.decode(self.words[reg]) {
                Decode::Clean(v) | Decode::Corrected { data: v, .. } => v,
                Decode::Detected => self.words[reg] as u32,
            },
            None => self.words[reg] as u32,
        }
    }

    /// Flips one stored bit (fault injection). Bits at or above the
    /// codeword length wrap around into it.
    pub fn flip_bit(&mut self, reg: usize, bit: u32) {
        let n = self.codec.as_ref().map(|c| c.n() as u32).unwrap_or(32);
        self.words[reg] ^= 1u64 << (bit % n);
    }

    /// The codeword length of the protection scheme (32 when
    /// unprotected).
    pub fn codeword_bits(&self) -> u32 {
        self.codec.as_ref().map(|c| c.n() as u32).unwrap_or(32)
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.protection.scheme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_reads_back_silently_corrupted() {
        let mut rf = RegFile::new(4, RfProtection::None);
        let mut st = RfStats::default();
        rf.write(0, 0xABCD, &mut st);
        rf.flip_bit(0, 3);
        match rf.read(0, &mut st) {
            ReadOutcome::Ok(v) => assert_eq!(v, 0xABCD ^ 8, "silent corruption"),
            other => panic!("{other:?}"),
        }
        assert_eq!(st.detected, 0);
    }

    #[test]
    fn parity_detects_single_flip() {
        let mut rf = RegFile::new(4, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(1, 99, &mut st);
        rf.flip_bit(1, 17);
        assert_eq!(rf.read(1, &mut st), ReadOutcome::Detected);
        assert_eq!(st.detected, 1);
        // A rewrite clears the corruption.
        rf.write(1, 100, &mut st);
        assert_eq!(rf.read(1, &mut st), ReadOutcome::Ok(100));
    }

    #[test]
    fn secded_ecc_corrects_single_flip_inline() {
        let mut rf = RegFile::new(4, RfProtection::Ecc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(2, 0xDEAD_BEEF, &mut st);
        rf.flip_bit(2, 5);
        assert_eq!(rf.read(2, &mut st), ReadOutcome::CorrectedInline(0xDEAD_BEEF));
        assert_eq!(st.corrected, 1);
        // Scrubbed: next read is clean.
        assert_eq!(rf.read(2, &mut st), ReadOutcome::Ok(0xDEAD_BEEF));
    }

    #[test]
    fn secded_as_edc_detects_three_flips() {
        // The headline Table-1 claim: same SECDED bits, used for
        // detection only, catch 3-bit errors that ECC mode would
        // miscorrect.
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(0, 0x1234_5678, &mut st);
        rf.flip_bit(0, 1);
        rf.flip_bit(0, 9);
        rf.flip_bit(0, 23);
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Detected);
    }

    #[test]
    fn clean_reads_count_but_do_not_detect() {
        let mut rf = RegFile::new(2, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(0, 7, &mut st);
        for _ in 0..10 {
            assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(7));
        }
        assert_eq!(st.reads, 10);
        assert_eq!(st.writes, 1);
        assert_eq!(st.detected, 0);
    }

    #[test]
    fn flip_bit_wraps_to_codeword_length() {
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Parity));
        assert_eq!(rf.codeword_bits(), 33);
        let mut st = RfStats::default();
        rf.write(0, 1, &mut st);
        rf.flip_bit(0, 33); // wraps to bit 0
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Detected);
    }
}
