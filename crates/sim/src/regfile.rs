//! The register-file model: per-thread registers stored as codewords of
//! the configured protection scheme, checked at every read.
//!
//! This is where the paper's error model becomes executable: a soft
//! error flips stored bits; with **EDC** the flip is *detected* at the
//! next read (and Penny's runtime recovers); with **ECC** it is
//! *corrected* inline (at the hardware cost Table 2 quantifies); with no
//! protection it silently corrupts the value.
//!
//! # Fault-aware fast path
//!
//! Fault-free runs dominate the figure suite, yet the seed model paid a
//! full codec decode on *every* read. The file now tracks a per-register
//! **dirty set** (a small bitset): [`RegFile::flip_bit`] — the only way
//! stored bits change behind the codec's back — marks its register
//! dirty, and [`RegFile::write`] (which re-encodes) clears it. Reads of
//! clean registers return the cached decoded value without touching the
//! codec; dirty registers take the full decode path, whose outcome
//! (detection, inline correction + scrub, or a clean decode when flips
//! cancelled) is exactly the pre-fast-path behavior. A read that decodes
//! clean or corrected also re-validates the cache and clears the dirty
//! bit. [`RegFile::read_reference`] keeps the always-decode path alive
//! for the `decode_reference` cross-check; both paths produce
//! bit-identical values and [`RfStats`] counters.

use penny_coding::{Codec, Decode, Scheme};

use crate::config::RfProtection;

/// Outcome of a protected register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The stored word was clean.
    Ok(u32),
    /// ECC repaired the word in place.
    CorrectedInline(u32),
    /// EDC detected corruption — Penny's recovery path.
    Detected,
}

/// One thread's register file.
#[derive(Debug, Clone)]
pub struct RegFile {
    words: Vec<u64>,
    /// Cached decoded value per register, valid while the register's
    /// dirty bit is clear.
    values: Vec<u32>,
    /// One bit per register: set when the stored codeword may disagree
    /// with the cached value (i.e. after fault injection).
    dirty: Vec<u64>,
    /// Number of set dirty bits (lets fault-free reads skip the bitset
    /// probe entirely).
    dirty_count: u32,
    protection: RfProtection,
    codec: Option<Codec>,
}

/// RF access counters for a whole launch (drives the energy model).
#[derive(Debug, Clone, Copy, Default)]
pub struct RfStats {
    /// Register reads.
    pub reads: u64,
    /// Register writes.
    pub writes: u64,
    /// Errors detected by EDC.
    pub detected: u64,
    /// Errors corrected inline by ECC.
    pub corrected: u64,
    /// Reads that took the full codec-decode path (observability only).
    ///
    /// The fast path serves clean registers from the cache; the
    /// reference interpreter decodes every read, so this counter
    /// legitimately diverges between the two execution paths and is
    /// deliberately excluded from `PartialEq`.
    pub decoded_reads: u64,
}

impl RfStats {
    /// Reads served from the clean-register cache without a codec
    /// decode.
    pub fn clean_reads(&self) -> u64 {
        self.reads.saturating_sub(self.decoded_reads)
    }
}

// Manual equality: the architectural counters must match bit-for-bit
// across execution paths, while `decoded_reads` is a property of the
// path itself (reference decodes always; the fast path only on dirty
// registers) and is excluded.
impl PartialEq for RfStats {
    fn eq(&self, other: &RfStats) -> bool {
        self.reads == other.reads
            && self.writes == other.writes
            && self.detected == other.detected
            && self.corrected == other.corrected
    }
}

impl Eq for RfStats {}

impl RegFile {
    /// Creates a zero-initialized register file with `n` registers.
    pub fn new(n: usize, protection: RfProtection) -> RegFile {
        let codec = protection.scheme().codec();
        let zero = codec.as_ref().map(|c| c.encode(0)).unwrap_or(0);
        RegFile {
            words: vec![zero; n],
            values: vec![0; n],
            dirty: vec![0; n.div_ceil(64)],
            dirty_count: 0,
            protection,
            codec,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns `true` if `reg`'s stored bits may disagree with the
    /// cached decoded value (set by fault injection, cleared by writes
    /// and clean/corrected reads).
    pub fn is_dirty(&self, reg: usize) -> bool {
        self.dirty[reg / 64] & (1 << (reg % 64)) != 0
    }

    /// Number of registers currently marked dirty.
    pub fn dirty_count(&self) -> u32 {
        self.dirty_count
    }

    fn mark_dirty(&mut self, reg: usize) {
        let (w, m) = (reg / 64, 1u64 << (reg % 64));
        if self.dirty[w] & m == 0 {
            self.dirty[w] |= m;
            self.dirty_count += 1;
        }
    }

    fn clear_dirty(&mut self, reg: usize) {
        let (w, m) = (reg / 64, 1u64 << (reg % 64));
        if self.dirty[w] & m != 0 {
            self.dirty[w] &= !m;
            self.dirty_count -= 1;
        }
    }

    /// Writes a register (re-encoding clears any prior corruption).
    pub fn write(&mut self, reg: usize, value: u32, stats: &mut RfStats) {
        stats.writes += 1;
        self.words[reg] = match &self.codec {
            Some(c) => c.encode(value),
            None => value as u64,
        };
        self.values[reg] = value;
        if self.dirty_count > 0 {
            self.clear_dirty(reg);
        }
    }

    /// Reads a register through the protection scheme.
    ///
    /// Fast path: a register whose dirty bit is clear cannot decode to
    /// anything but `Clean` (the stored word is exactly the encoding of
    /// the cached value), so the codec is skipped and the cached value
    /// returned. Dirty registers take the full decode path.
    pub fn read(&mut self, reg: usize, stats: &mut RfStats) -> ReadOutcome {
        stats.reads += 1;
        if self.dirty_count == 0 || !self.is_dirty(reg) {
            return ReadOutcome::Ok(self.values[reg]);
        }
        self.decode_read(reg, stats)
    }

    /// Reads a register with an unconditional codec decode — the
    /// pre-fast-path behavior, kept as the `decode_reference`
    /// cross-check (analogous to the engine's `run_reference`). Produces
    /// bit-identical outcomes and counters to [`RegFile::read`].
    pub fn read_reference(&mut self, reg: usize, stats: &mut RfStats) -> ReadOutcome {
        stats.reads += 1;
        self.decode_read(reg, stats)
    }

    /// Full decode of a stored word, re-validating the cache when the
    /// decode lands clean (or is corrected and scrubbed).
    fn decode_read(&mut self, reg: usize, stats: &mut RfStats) -> ReadOutcome {
        stats.decoded_reads += 1;
        let word = self.words[reg];
        let Some(codec) = &self.codec else {
            // Unprotected: the raw word is the value (possibly silently
            // corrupted); re-validate the cache.
            let v = word as u32;
            self.values[reg] = v;
            self.clear_dirty(reg);
            return ReadOutcome::Ok(v);
        };
        match (codec.decode(word), self.protection) {
            (Decode::Clean(v), _) => {
                // Either the register was never faulted or an even number
                // of flips cancelled; the stored word is a valid encoding
                // again.
                self.values[reg] = v;
                self.clear_dirty(reg);
                ReadOutcome::Ok(v)
            }
            (Decode::Corrected { data, .. }, RfProtection::Ecc(_)) => {
                stats.corrected += 1;
                // Scrub: write the repaired word back.
                self.words[reg] = codec.encode(data);
                self.values[reg] = data;
                self.clear_dirty(reg);
                ReadOutcome::CorrectedInline(data)
            }
            // In EDC mode the correction capability is *not* wired up:
            // any non-clean word is a detection (paper §2: the code is
            // used solely for detection).
            (Decode::Corrected { .. }, _) | (Decode::Detected, _) => {
                match self.protection {
                    RfProtection::Edc(_) => {
                        stats.detected += 1;
                        ReadOutcome::Detected
                    }
                    RfProtection::Ecc(_) => {
                        stats.detected += 1;
                        ReadOutcome::Detected
                    }
                    // Unprotected RFs cannot detect anything; decode
                    // is identity there, so this arm is unreachable.
                    RfProtection::None => unreachable!("no codec without protection"),
                }
            }
        }
    }

    /// Raw read bypassing checks (host/debug use).
    pub fn peek(&self, reg: usize) -> u32 {
        match &self.codec {
            Some(c) => match c.decode(self.words[reg]) {
                Decode::Clean(v) | Decode::Corrected { data: v, .. } => v,
                Decode::Detected => self.words[reg] as u32,
            },
            None => self.words[reg] as u32,
        }
    }

    /// Flips one stored bit (fault injection) and marks the register
    /// dirty, forcing its next read through the codec. Bits at or above
    /// the codeword length wrap around into it.
    pub fn flip_bit(&mut self, reg: usize, bit: u32) {
        let n = self.codec.as_ref().map(|c| c.n() as u32).unwrap_or(32);
        self.words[reg] ^= 1u64 << (bit % n);
        self.mark_dirty(reg);
    }

    /// The codeword length of the protection scheme (32 when
    /// unprotected).
    pub fn codeword_bits(&self) -> u32 {
        self.codec.as_ref().map(|c| c.n() as u32).unwrap_or(32)
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.protection.scheme()
    }

    /// The cached decoded values (for the recording serializer, which
    /// only persists *clean* register files — fault-free recordings
    /// guarantee `words[r] == encode(values[r])` for every register, so
    /// the decoded values alone reconstruct the file bit-identically).
    pub(crate) fn values(&self) -> &[u32] {
        &self.values
    }

    /// Rebuilds a clean register file from decoded values by
    /// re-encoding each one with a caller-supplied codec — the inverse
    /// of [`RegFile::values`] for files with no dirty registers. The
    /// recording deserializer rebuilds one file per thread per
    /// snapshot, so it clones a prebuilt codec instead of paying
    /// scheme-table construction per file.
    pub(crate) fn from_values_with(
        values: Vec<u32>,
        protection: RfProtection,
        codec: Option<Codec>,
    ) -> RegFile {
        let words = values
            .iter()
            .map(|&v| codec.as_ref().map(|c| c.encode(v)).unwrap_or(v as u64))
            .collect();
        let dirty = vec![0; values.len().div_ceil(64)];
        RegFile { words, values, dirty, dirty_count: 0, protection, codec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_reads_back_silently_corrupted() {
        let mut rf = RegFile::new(4, RfProtection::None);
        let mut st = RfStats::default();
        rf.write(0, 0xABCD, &mut st);
        rf.flip_bit(0, 3);
        match rf.read(0, &mut st) {
            ReadOutcome::Ok(v) => assert_eq!(v, 0xABCD ^ 8, "silent corruption"),
            other => panic!("{other:?}"),
        }
        assert_eq!(st.detected, 0);
    }

    #[test]
    fn parity_detects_single_flip() {
        let mut rf = RegFile::new(4, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(1, 99, &mut st);
        rf.flip_bit(1, 17);
        assert_eq!(rf.read(1, &mut st), ReadOutcome::Detected);
        assert_eq!(st.detected, 1);
        // A rewrite clears the corruption.
        rf.write(1, 100, &mut st);
        assert_eq!(rf.read(1, &mut st), ReadOutcome::Ok(100));
    }

    #[test]
    fn secded_ecc_corrects_single_flip_inline() {
        let mut rf = RegFile::new(4, RfProtection::Ecc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(2, 0xDEAD_BEEF, &mut st);
        rf.flip_bit(2, 5);
        assert_eq!(rf.read(2, &mut st), ReadOutcome::CorrectedInline(0xDEAD_BEEF));
        assert_eq!(st.corrected, 1);
        // Scrubbed: next read is clean.
        assert_eq!(rf.read(2, &mut st), ReadOutcome::Ok(0xDEAD_BEEF));
    }

    #[test]
    fn secded_as_edc_detects_three_flips() {
        // The headline Table-1 claim: same SECDED bits, used for
        // detection only, catch 3-bit errors that ECC mode would
        // miscorrect.
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(0, 0x1234_5678, &mut st);
        rf.flip_bit(0, 1);
        rf.flip_bit(0, 9);
        rf.flip_bit(0, 23);
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Detected);
    }

    #[test]
    fn clean_reads_count_but_do_not_detect() {
        let mut rf = RegFile::new(2, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(0, 7, &mut st);
        for _ in 0..10 {
            assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(7));
        }
        assert_eq!(st.reads, 10);
        assert_eq!(st.writes, 1);
        assert_eq!(st.detected, 0);
    }

    #[test]
    fn flip_bit_wraps_to_codeword_length() {
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Parity));
        assert_eq!(rf.codeword_bits(), 33);
        let mut st = RfStats::default();
        rf.write(0, 1, &mut st);
        rf.flip_bit(0, 33); // wraps to bit 0
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Detected);
    }

    #[test]
    fn dirty_tracking_marks_and_clears() {
        let mut rf = RegFile::new(4, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        assert_eq!(rf.dirty_count(), 0);
        rf.flip_bit(2, 5);
        assert!(rf.is_dirty(2) && rf.dirty_count() == 1);
        // Detection leaves the register dirty (the corruption persists
        // until something rewrites it).
        assert_eq!(rf.read(2, &mut st), ReadOutcome::Detected);
        assert!(rf.is_dirty(2));
        // A write re-encodes and clears the dirty bit.
        rf.write(2, 11, &mut st);
        assert!(!rf.is_dirty(2) && rf.dirty_count() == 0);
        assert_eq!(rf.read(2, &mut st), ReadOutcome::Ok(11));
    }

    #[test]
    fn cancelled_flips_revalidate_the_cache() {
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(0, 42, &mut st);
        rf.flip_bit(0, 7);
        rf.flip_bit(0, 7); // cancels: stored word is a valid encoding again
        assert!(rf.is_dirty(0), "flips mark dirty even when they cancel");
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(42));
        assert!(!rf.is_dirty(0), "a clean decode re-validates the cache");
        assert_eq!(st.detected, 0);
    }

    #[test]
    fn reference_read_matches_fast_path() {
        for prot in [
            RfProtection::None,
            RfProtection::Edc(Scheme::Parity),
            RfProtection::Ecc(Scheme::Secded),
        ] {
            let mut fast = RegFile::new(2, prot);
            let mut slow = RegFile::new(2, prot);
            let (mut sf, mut ss) = (RfStats::default(), RfStats::default());
            for step in 0..12u32 {
                fast.write(0, step * 3, &mut sf);
                slow.write(0, step * 3, &mut ss);
                if step % 3 == 1 {
                    fast.flip_bit(0, step % 33);
                    slow.flip_bit(0, step % 33);
                }
                assert_eq!(
                    fast.read(0, &mut sf),
                    slow.read_reference(0, &mut ss),
                    "{prot:?} step {step}: outcomes diverge"
                );
            }
            assert_eq!(sf, ss, "{prot:?}: stats diverge");
        }
    }

    #[test]
    fn decoded_reads_count_only_the_decode_path() {
        let mut rf = RegFile::new(2, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(0, 7, &mut st);
        // Clean reads stay on the cached path.
        for _ in 0..5 {
            rf.read(0, &mut st);
        }
        assert_eq!(st.decoded_reads, 0);
        assert_eq!(st.clean_reads(), 5);
        // A fault forces one decode; detection leaves the register dirty
        // so the next read decodes again.
        rf.flip_bit(0, 3);
        rf.read(0, &mut st);
        rf.read(0, &mut st);
        assert_eq!(st.decoded_reads, 2);
        assert_eq!(st.clean_reads(), 5);
        // Reference reads always decode, and equality ignores the
        // counter by design.
        let mut ref_st = st;
        rf.write(0, 9, &mut st);
        rf.write(0, 9, &mut ref_st);
        let a = rf.read(0, &mut st);
        let b = rf.read_reference(0, &mut ref_st);
        assert_eq!(a, b);
        assert_eq!(st, ref_st, "PartialEq must ignore decoded_reads");
        assert_ne!(st.decoded_reads, ref_st.decoded_reads);
    }

    #[test]
    fn ecc_scrub_clears_dirty_on_both_paths() {
        let mut rf = RegFile::new(1, RfProtection::Ecc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(0, 5, &mut st);
        rf.flip_bit(0, 3);
        assert_eq!(rf.read(0, &mut st), ReadOutcome::CorrectedInline(5));
        assert!(!rf.is_dirty(0), "scrub re-validates");
        // Subsequent fast-path read uses the cache.
        assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(5));
        assert_eq!(st.corrected, 1);
    }
}
