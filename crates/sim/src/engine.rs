//! The SIMT execution engine: functional semantics plus a warp-level
//! timing model.
//!
//! Timing captures the three effects Penny's evaluation hinges on:
//!
//! 1. loads stall their warp for the memory latency, hidden only when
//!    enough *other* warps are resident (occupancy);
//! 2. stores occupy the SM's memory pipeline per coalesced segment, so
//!    extra checkpointing stores throttle everything behind them;
//! 3. occupancy derives from per-thread registers and per-block shared
//!    memory through the same limits the compiler's storage assigner
//!    uses.
//!
//! Faults flip RF bits; parity (EDC) raises a detection at the next read
//! of the corrupted register, and the engine then runs Penny's recovery:
//! restore the current region's live-ins (from checkpoint slots or by
//! recovery slices) and rewind the warp to the region entry snapshot.
//!
//! # Execution paths
//!
//! The hot path ([`run`], [`run_reference`]) interprets the pre-decoded
//! micro-op table ([`crate::program::DecodedInst`]): fixed-size operand
//! slots, pre-resolved register indices and branch targets, and the
//! fault-aware register-file fast path (`RegFile::read`). The
//! cross-check path ([`run_decode_reference`]) re-interprets the
//! original `penny_ir` instruction stream with unconditional codec
//! decodes (`RegFile::read_reference`) — the pre-decoding behavior,
//! kept alive so tests can pin the decoded path to it bit-for-bit,
//! exactly as the dense loop ([`run_reference`]) pins the event-driven
//! scheduler.

use penny_core::{LaunchDims, Protected};
use penny_ir::{MemSpace, Op, Operand, RegionId, Special, Terminator};
use penny_obs::{record_sim, Recorder, SpanTimer};

use crate::config::{GpuConfig, RfProtection};
use crate::fault::FaultPlan;
use crate::memory::{GlobalMemory, SharedMemory};
use crate::program::{DKind, DSrc, DecodedInst, PInst, Program, NO_REG};
use crate::recovery;
use crate::regfile::{ReadOutcome, RegFile, RfStats};
use crate::warp::{StackEntry, Warp};
use crate::SimError;

/// Statistics from one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles (max over SMs).
    pub cycles: u64,
    /// Thread-level instructions executed.
    pub instructions: u64,
    /// Warp-level instructions issued.
    pub warp_instructions: u64,
    /// Register-file accesses and error events.
    pub rf: RfStats,
    /// Recovery invocations (region re-executions).
    pub recoveries: u64,
    /// Warp-level instructions re-executed by recoveries: on each
    /// rollback, the instructions the warp had issued since its region
    /// snapshot are replayed and counted here.
    pub reexec_instructions: u64,
    /// Global loads issued (warp-level).
    pub global_loads: u64,
    /// Global stores issued (warp-level).
    pub global_stores: u64,
    /// Shared-memory accesses (warp-level).
    pub shared_accesses: u64,
    /// Barrier waits observed.
    pub barriers: u64,
    /// Idle cycles fast-forwarded by the event-driven scheduler (cycles
    /// a dense cycle-by-cycle loop would have ticked through with every
    /// warp stalled). Counted toward [`RunStats::cycles`] exactly as if
    /// they had been simulated; the dense reference loop
    /// ([`run_reference`]) reports 0 here.
    pub skipped_cycles: u64,
}

/// Kernel launch description.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Grid/block geometry (must match what the kernel was compiled
    /// for).
    pub dims: LaunchDims,
    /// Parameter words, in declaration order.
    pub params: Vec<u32>,
    /// Fault campaign.
    pub faults: FaultPlan,
}

impl LaunchConfig {
    /// A fault-free launch.
    pub fn new(dims: LaunchDims, params: Vec<u32>) -> LaunchConfig {
        LaunchConfig { dims, params, faults: FaultPlan::none() }
    }

    /// Builder-style fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> LaunchConfig {
        self.faults = faults;
        self
    }
}

/// One thread's context.
#[derive(Clone)]
pub struct ThreadCtx {
    /// Register file.
    pub rf: RegFile,
    /// Thread coordinates within the block.
    pub tid: (u32, u32),
}

/// One resident thread block.
#[derive(Clone)]
pub struct BlockCtx {
    /// Linear block index.
    pub index: u32,
    /// Block coordinates.
    pub cta: (u32, u32),
    /// Shared memory (program data + checkpoint arena).
    pub shared: SharedMemory,
    /// Threads, row-major.
    pub threads: Vec<ThreadCtx>,
    /// Warps.
    pub warps: Vec<Warp>,
}

/// Values of the special registers for a given thread.
pub fn special_value(
    s: Special,
    tid: (u32, u32),
    cta: (u32, u32),
    dims: &LaunchDims,
) -> u32 {
    match s {
        Special::TidX => tid.0,
        Special::TidY => tid.1,
        Special::NTidX => dims.block.0,
        Special::NTidY => dims.block.1,
        Special::CtaIdX => cta.0,
        Special::CtaIdY => cta.1,
        Special::NCtaIdX => dims.grid.0,
        Special::NCtaIdY => dims.grid.1,
        Special::LaneId => (tid.0 + tid.1 * dims.block.0) % 32,
    }
}

/// Which interpreter a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecPath {
    /// Pre-decoded micro-op table + fault-aware RF fast path.
    Decoded,
    /// IR-walking interpreter + unconditional codec decode — the
    /// pre-decoding semantics, kept as a cross-check.
    Reference,
}

/// Runs a protected kernel on the configured GPU (event-driven fast
/// path over the pre-decoded micro-op table; idle cycles where every
/// warp is stalled are skipped in one jump; see
/// [`RunStats::skipped_cycles`]).
pub fn run(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    global: &mut GlobalMemory,
) -> Result<RunStats, SimError> {
    run_mode(config, protected, launch, global, false, ExecPath::Decoded)
}

/// Runs a protected kernel with the dense cycle-by-cycle reference
/// loop: every cycle is simulated individually and
/// [`RunStats::skipped_cycles`] stays 0. Timing-identical to [`run`] by
/// construction; exists so tests can prove the fast path changes no
/// measured cycle count.
pub fn run_reference(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    global: &mut GlobalMemory,
) -> Result<RunStats, SimError> {
    run_mode(config, protected, launch, global, true, ExecPath::Decoded)
}

/// Runs a protected kernel through the `decode_reference` cross-check:
/// the original IR-walking interpreter with unconditional codec decodes
/// on every register read. Semantics, [`RfStats`] counters, recovery
/// behavior, and cycle counts are bit-identical to [`run`] by
/// construction; tests enforce it (`tests/determinism.rs`,
/// `crates/sim/tests/decoded_equivalence.rs`).
pub fn run_decode_reference(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    global: &mut GlobalMemory,
) -> Result<RunStats, SimError> {
    run_mode(config, protected, launch, global, false, ExecPath::Reference)
}

/// [`run`] with an observability sink: the launch records one
/// [`penny_obs::SpanKind::Sim`] span (wall time + the full
/// [`RunStats`] counter set) into `rec`. With a disabled recorder this
/// is exactly `run` — no clock read, no span, identical stats — and the
/// simulated run itself is the same hot interpreter either way.
///
/// # Errors
///
/// Same failure modes as [`run`].
pub fn run_observed(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    global: &mut GlobalMemory,
    rec: &dyn Recorder,
) -> Result<RunStats, SimError> {
    let timer = SpanTimer::start(rec);
    let stats = run_mode(config, protected, launch, global, false, ExecPath::Decoded)?;
    if rec.enabled() {
        record_sim(
            rec,
            &protected.kernel.name,
            "run",
            timer,
            &[
                ("cycles", stats.cycles),
                ("skipped_cycles", stats.skipped_cycles),
                ("instructions", stats.instructions),
                ("warp_instructions", stats.warp_instructions),
                ("rf_reads", stats.rf.reads),
                ("rf_decoded_reads", stats.rf.decoded_reads),
                ("rf_clean_reads", stats.rf.clean_reads()),
                ("rf_writes", stats.rf.writes),
                ("rf_detected", stats.rf.detected),
                ("rf_corrected", stats.rf.corrected),
                ("recoveries", stats.recoveries),
                ("reexec_instructions", stats.reexec_instructions),
                ("global_loads", stats.global_loads),
                ("global_stores", stats.global_stores),
                ("shared_accesses", stats.shared_accesses),
                ("barriers", stats.barriers),
            ],
        );
    }
    Ok(stats)
}

/// Validates a launch against its kernel's parameter list.
pub(crate) fn check_launch(
    protected: &Protected,
    launch: &LaunchConfig,
) -> Result<(), SimError> {
    if launch.params.len() != protected.kernel.params.len() {
        return Err(SimError::BadLaunch(format!(
            "kernel `{}` takes {} params, launch supplies {}",
            protected.kernel.name,
            protected.kernel.params.len(),
            launch.params.len()
        )));
    }
    Ok(())
}

/// One entry of the serial wave schedule: the SM it runs on and the
/// linear block indices resident in it.
#[derive(Debug, Clone)]
pub(crate) struct WaveSlot {
    /// SM index.
    pub sm: usize,
    /// Linear block indices resident in this wave.
    pub blocks: Vec<u32>,
}

/// The serial wave schedule [`run`] executes: for each SM in order,
/// the SM's blocks in launch order, chunked by residency. The
/// snapshot/replay layer re-derives the same schedule to fork
/// individual waves.
pub(crate) fn wave_plan(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    program: &Program,
) -> Vec<WaveSlot> {
    let regs_per_thread = if protected.stats.regs_per_thread > 0 {
        protected.stats.regs_per_thread
    } else {
        penny_core::regalloc::register_pressure(&protected.kernel)
    };
    let shared_per_block = program.shared_bytes + protected.shared_ckpt_bytes;
    let tpb = launch.dims.threads_per_block();
    let resident =
        config.machine.blocks_per_sm(tpb, regs_per_thread, shared_per_block).max(1);
    let total_blocks = launch.dims.blocks();
    let mut waves = Vec::new();
    for sm in 0..config.num_sms as usize {
        let my_blocks: Vec<u32> =
            (0..total_blocks).filter(|b| b % config.num_sms == sm as u32).collect();
        for wave in my_blocks.chunks(resident as usize) {
            waves.push(WaveSlot { sm, blocks: wave.to_vec() });
        }
    }
    waves
}

fn run_mode(
    config: &GpuConfig,
    protected: &Protected,
    launch: &LaunchConfig,
    global: &mut GlobalMemory,
    dense: bool,
    path: ExecPath,
) -> Result<RunStats, SimError> {
    check_launch(protected, launch)?;
    let program = match path {
        ExecPath::Decoded => Program::new(&protected.kernel),
        ExecPath::Reference => Program::with_reference(&protected.kernel),
    };
    let mut stats = RunStats::default();
    let mut sm_cycles = vec![0u64; config.num_sms as usize];
    for slot in wave_plan(config, protected, launch, &program) {
        let mut engine = SmEngine::new(
            config,
            protected,
            launch,
            &program,
            global,
            &slot.blocks,
            dense,
            path,
        );
        sm_cycles[slot.sm] += engine.run_wave(&mut stats)?;
    }
    stats.cycles = sm_cycles.iter().copied().max().unwrap_or(0);
    Ok(stats)
}

/// Scheduler-visible state of one in-flight wave, captured at the top
/// of a scheduler cycle (before barrier release). [`SmEngine::capture`]
/// produces it; [`SmEngine::restore`] reconstructs an engine that
/// continues bit-identically — the foundation of the snapshot/replay
/// fault-injection harness in [`crate::snapshot`].
#[derive(Clone)]
pub(crate) struct WaveState {
    /// Resident blocks (registers, shared memory, warps, SIMT stacks).
    pub blocks: Vec<BlockCtx>,
    /// Wave-local cycle counter.
    pub cycle: u64,
    /// Memory-pipeline busy horizon.
    pub mem_busy_until: u64,
    /// Round-robin issue cursor.
    pub rr_cursor: usize,
}

/// One retired warp instruction, as seen by a [`WaveTrace`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceEvent {
    /// Wave-local block index.
    pub bi: usize,
    /// Warp index within the block.
    pub wi: usize,
    /// Program counter of the retired micro-op.
    pub pc: usize,
    /// SIMT mask the instruction issued under (guard reads and branch
    /// predicate reads touch every masked lane).
    pub mask: u32,
    /// Lanes whose guard evaluated true (source reads and destination
    /// writes touch only these).
    pub active: u32,
    /// The warp's dynamic instruction index for this retirement (its
    /// `executed` counter before the increment).
    pub executed: u64,
}

/// Passive observer of a wave execution: per-cycle capture opportunity
/// plus per-instruction retirement events. Implementations must not
/// perturb execution — the recording run's stats and memory are
/// required to be bit-identical to an untraced run.
pub(crate) trait WaveTrace {
    /// Called at the top of every scheduler cycle, before barrier
    /// release; `eng` is the state a resumed engine would continue
    /// from.
    fn at_cycle(&mut self, eng: &SmEngine<'_>, stats: &RunStats);
    /// Called after each retired warp instruction (decoded path only).
    fn on_inst(&mut self, ev: TraceEvent);
}

/// Per-SM, per-wave execution engine.
pub(crate) struct SmEngine<'a> {
    config: &'a GpuConfig,
    protected: &'a Protected,
    launch: &'a LaunchConfig,
    program: &'a Program,
    global: &'a mut GlobalMemory,
    blocks: Vec<BlockCtx>,
    cycle: u64,
    mem_busy_until: u64,
    rr_cursor: usize,
    /// Injections already applied (each fires exactly once).
    faults_applied: Vec<bool>,
    /// Injections not yet applied (lets fault-free runs skip the
    /// per-step injection scan entirely).
    faults_remaining: usize,
    /// Dense reference mode: never jump over idle cycles.
    dense: bool,
    /// Which interpreter steps warps.
    path: ExecPath,
    /// Optional passive observer (recording runs only).
    trace: Option<&'a mut dyn WaveTrace>,
    /// Active-lane mask of the most recently executed instruction
    /// (trace bookkeeping; one word store per instruction).
    last_active: u32,
    // Reused per-step scratch buffers (allocation-free steady state).
    ready: Vec<(usize, usize)>,
    scratch_srcs: Vec<Vec<u32>>,
    scratch_addrs: Vec<u32>,
    scratch_segs: Vec<u32>,
}

impl<'a> SmEngine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        config: &'a GpuConfig,
        protected: &'a Protected,
        launch: &'a LaunchConfig,
        program: &'a Program,
        global: &'a mut GlobalMemory,
        wave: &[u32],
        dense: bool,
        path: ExecPath,
    ) -> SmEngine<'a> {
        let dims = &launch.dims;
        let tpb = dims.threads_per_block();
        let shared_bytes = program.shared_bytes + protected.shared_ckpt_bytes;
        let blocks = wave
            .iter()
            .map(|&bi| {
                let cta = (bi % dims.grid.0, bi / dims.grid.0);
                let threads = (0..tpb)
                    .map(|t| ThreadCtx {
                        rf: RegFile::new(program.num_regs.max(1), config.rf),
                        tid: (t % dims.block.0, t / dims.block.0),
                    })
                    .collect();
                let nwarps = tpb.div_ceil(32);
                let warps = (0..nwarps)
                    .map(|w| {
                        let base = w * 32;
                        let width = (tpb - base).min(32);
                        Warp::new(
                            w,
                            base,
                            width,
                            program.start_of(penny_ir::BlockId(0)),
                            program.end_pc(),
                        )
                    })
                    .collect();
                BlockCtx {
                    index: bi,
                    cta,
                    shared: SharedMemory::new(shared_bytes),
                    threads,
                    warps,
                }
            })
            .collect();
        SmEngine {
            config,
            protected,
            launch,
            program,
            global,
            blocks,
            cycle: 0,
            mem_busy_until: 0,
            rr_cursor: 0,
            faults_applied: vec![false; launch.faults.injections.len()],
            faults_remaining: launch.faults.injections.len(),
            dense,
            path,
            trace: None,
            last_active: 0,
            ready: Vec::new(),
            scratch_srcs: Vec::new(),
            scratch_addrs: Vec::new(),
            scratch_segs: Vec::new(),
        }
    }

    /// A decoded-path engine for one wave, optionally traced — the
    /// constructor the snapshot/replay layer drives directly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_wave(
        config: &'a GpuConfig,
        protected: &'a Protected,
        launch: &'a LaunchConfig,
        program: &'a Program,
        global: &'a mut GlobalMemory,
        wave: &[u32],
        trace: Option<&'a mut dyn WaveTrace>,
    ) -> SmEngine<'a> {
        let mut eng = SmEngine::new(
            config,
            protected,
            launch,
            program,
            global,
            wave,
            false,
            ExecPath::Decoded,
        );
        eng.trace = trace;
        eng
    }

    /// Reconstructs a decoded-path engine from captured wave state. The
    /// engine continues bit-identically to the one that was captured,
    /// except that `launch`'s fault plan starts unapplied (the whole
    /// point of forking a wave: replay it with a new injection).
    pub(crate) fn restore(
        config: &'a GpuConfig,
        protected: &'a Protected,
        launch: &'a LaunchConfig,
        program: &'a Program,
        global: &'a mut GlobalMemory,
        state: &WaveState,
    ) -> SmEngine<'a> {
        SmEngine {
            config,
            protected,
            launch,
            program,
            global,
            blocks: state.blocks.clone(),
            cycle: state.cycle,
            mem_busy_until: state.mem_busy_until,
            rr_cursor: state.rr_cursor,
            faults_applied: vec![false; launch.faults.injections.len()],
            faults_remaining: launch.faults.injections.len(),
            dense: false,
            path: ExecPath::Decoded,
            trace: None,
            last_active: 0,
            ready: Vec::new(),
            scratch_srcs: Vec::new(),
            scratch_addrs: Vec::new(),
            scratch_segs: Vec::new(),
        }
    }

    /// Captures the scheduler-visible wave state (valid at the top of a
    /// cycle, i.e. from [`WaveTrace::at_cycle`]).
    pub(crate) fn capture(&self) -> WaveState {
        WaveState {
            blocks: self.blocks.clone(),
            cycle: self.cycle,
            mem_busy_until: self.mem_busy_until,
            rr_cursor: self.rr_cursor,
        }
    }

    /// The global memory this wave reads and writes.
    pub(crate) fn global(&self) -> &GlobalMemory {
        self.global
    }

    /// The resident blocks (for trace-side warp inspection).
    pub(crate) fn blocks(&self) -> &[BlockCtx] {
        &self.blocks
    }

    pub(crate) fn run_wave(&mut self, stats: &mut RunStats) -> Result<u64, SimError> {
        let cycle_limit = self.config.cycle_limit;
        loop {
            if self.trace.is_some() {
                if let Some(t) = self.trace.take() {
                    t.at_cycle(self, stats);
                    self.trace = Some(t);
                }
            }
            self.release_barriers(stats);
            // One pass over all warps gathers both the ready set for
            // this cycle and the earliest wake-up among stalled warps,
            // so an all-stalled cycle needs no second scan to know how
            // far to jump.
            let mut ready = std::mem::take(&mut self.ready);
            ready.clear();
            let mut any_unfinished = false;
            let mut next_wakeup = u64::MAX;
            for (bi, block) in self.blocks.iter_mut().enumerate() {
                for wi in 0..block.warps.len() {
                    if block.warps[wi].finished() {
                        continue;
                    }
                    any_unfinished = true;
                    let w = &block.warps[wi];
                    if w.at_barrier {
                        continue;
                    }
                    if w.stall_until <= self.cycle {
                        ready.push((bi, wi));
                    } else {
                        next_wakeup = next_wakeup.min(w.stall_until);
                    }
                }
            }
            if !any_unfinished {
                self.ready = ready;
                return Ok(self.cycle);
            }
            if ready.is_empty() {
                // Every warp is stalled or at a barrier (barrier
                // releases happen at loop top). Jump to the earliest
                // wake-up instead of ticking through dead cycles; the
                // dense reference mode ticks one cycle at a time and
                // must reach the same cycle counts.
                if next_wakeup != u64::MAX && next_wakeup > self.cycle && !self.dense {
                    stats.skipped_cycles += next_wakeup - self.cycle - 1;
                    self.cycle = next_wakeup;
                } else {
                    self.cycle += 1;
                }
            } else {
                let width = self.config.issue_width as usize;
                let n = ready.len();
                let start = self.rr_cursor % n;
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                for i in 0..n.min(width) {
                    let (bi, wi) = ready[(start + i) % n];
                    self.step_warp(bi, wi, stats)?;
                }
                self.cycle += 1;
            }
            self.ready = ready;
            if self.cycle > cycle_limit {
                return Err(SimError::CycleLimit {
                    kernel: self.program.name.clone(),
                    limit: cycle_limit,
                });
            }
        }
    }

    fn release_barriers(&mut self, stats: &mut RunStats) {
        for block in &mut self.blocks {
            let all_waiting = block.warps.iter_mut().all(|w| w.at_barrier || w.finished());
            if all_waiting {
                let mut released = false;
                for w in &mut block.warps {
                    if w.at_barrier {
                        w.at_barrier = false;
                        released = true;
                    }
                }
                if released {
                    stats.barriers += 1;
                }
            }
        }
    }

    /// Executes one warp-instruction on the configured interpreter.
    fn step_warp(
        &mut self,
        bi: usize,
        wi: usize,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        match self.path {
            ExecPath::Decoded => self.step_warp_decoded(bi, wi, stats),
            ExecPath::Reference => self.step_warp_reference(bi, wi, stats),
        }
    }

    fn apply_faults(&mut self, bi: usize, wi: usize) {
        let block_index = self.blocks[bi].index;
        let warp = &self.blocks[bi].warps[wi];
        let executed = warp.executed;
        let base_thread = warp.base_thread;
        let width = warp.width;
        let warp_id = warp.id;
        // `launch` lives for 'a, not for the `&mut self` borrow, so the
        // injection list can be walked while mutating register files.
        let launch = self.launch;
        for (i, f) in launch.faults.injections.iter().enumerate() {
            if self.faults_applied[i] || !f.due(block_index, warp_id, width, executed) {
                continue;
            }
            self.faults_applied[i] = true;
            self.faults_remaining -= 1;
            let t = (base_thread + f.lane) as usize;
            // `flip_bit` marks the victim register dirty, steering its
            // next read through the full codec decode.
            let rf = &mut self.blocks[bi].threads[t].rf;
            if (f.reg as usize) < rf.len() {
                rf.flip_bit(f.reg as usize, f.bit);
            }
        }
    }

    /// Maps a detected/unrecoverable read outcome to a step fault.
    fn read_fault(&self, reg: u32) -> StepFault {
        match self.config.rf {
            RfProtection::Edc(_) if self.protected.regions.is_empty() => {
                StepFault::Sim(SimError::UnrecoverableFault {
                    kernel: self.program.name.clone(),
                    reg,
                })
            }
            RfProtection::Edc(_) => StepFault::Detected,
            _ => StepFault::Sim(SimError::UnrecoverableFault {
                kernel: self.program.name.clone(),
                reg,
            }),
        }
    }

    // ---------------------------------------------------------------
    // Decoded fast path
    // ---------------------------------------------------------------

    /// Reads a register for one lane (fast path), surfacing detections.
    #[inline]
    fn read_reg(
        &mut self,
        bi: usize,
        thread: usize,
        reg: u32,
        stats: &mut RunStats,
    ) -> Result<u32, StepFault> {
        let rf = &mut self.blocks[bi].threads[thread].rf;
        match rf.read(reg as usize, &mut stats.rf) {
            ReadOutcome::Ok(v) | ReadOutcome::CorrectedInline(v) => Ok(v),
            ReadOutcome::Detected => Err(self.read_fault(reg)),
        }
    }

    fn step_warp_decoded(
        &mut self,
        bi: usize,
        wi: usize,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        // Fast-forward region markers (zero-cost boundary bookkeeping).
        loop {
            let Some(flow) = self.blocks[bi].warps[wi].current_flow() else {
                return Ok(());
            };
            if flow.pc >= self.program.end_pc() {
                self.blocks[bi].warps[wi].exited |= flow.mask;
                continue;
            }
            if let DKind::RegionEntry(region) = self.program.decoded[flow.pc].kind {
                let warp = &mut self.blocks[bi].warps[wi];
                warp.set_pc(flow.pc + 1);
                warp.snapshot_region(region);
                continue;
            }
            break;
        }
        let Some(flow) = self.blocks[bi].warps[wi].current_flow() else {
            return Ok(());
        };
        // Apply any pending fault injections triggered by this warp's
        // progress.
        if self.faults_remaining > 0 {
            self.apply_faults(bi, wi);
        }
        // The decoded record is `Copy`: lift it out of the table so the
        // borrow checker places no constraint on `&mut self`.
        let d = self.program.decoded[flow.pc];
        let result = self.exec_decoded(bi, wi, flow, &d, stats);
        match result {
            Ok(()) => {
                let warp = &mut self.blocks[bi].warps[wi];
                let executed = warp.executed;
                warp.executed += 1;
                stats.warp_instructions += 1;
                if self.trace.is_some() {
                    let ev = TraceEvent {
                        bi,
                        wi,
                        pc: flow.pc,
                        mask: flow.mask,
                        active: self.last_active,
                        executed,
                    };
                    if let Some(t) = self.trace.take() {
                        t.on_inst(ev);
                        self.trace = Some(t);
                    }
                }
                Ok(())
            }
            Err(StepFault::Detected) => {
                self.recover(bi, wi, stats)?;
                Ok(())
            }
            Err(StepFault::Sim(e)) => Err(e),
        }
    }

    fn exec_decoded(
        &mut self,
        bi: usize,
        wi: usize,
        flow: StackEntry,
        d: &DecodedInst,
        stats: &mut RunStats,
    ) -> Result<(), StepFault> {
        match d.kind {
            DKind::Ret => {
                self.last_active = 0;
                let warp = &mut self.blocks[bi].warps[wi];
                warp.exited |= flow.mask;
                warp.set_pc(flow.reconv); // force a pop on next flow query
                Ok(())
            }
            DKind::Jump { target } => {
                self.last_active = 0;
                let warp = &mut self.blocks[bi].warps[wi];
                warp.set_pc(target);
                warp.stall_until = self.cycle + self.config.lat_alu as u64;
                Ok(())
            }
            DKind::Branch { pred, negated, then_pc, else_pc, reconv } => {
                // Phase 1: read the predicate for every lane (detections
                // fire before any control-state change).
                self.last_active = flow.mask;
                let base = self.blocks[bi].warps[wi].base_thread as usize;
                let mut taken = 0u32;
                for lane in 0..32 {
                    if flow.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let v = self.read_reg(bi, base + lane, pred, stats)?;
                    stats.instructions += 1;
                    let p = (v != 0) ^ negated;
                    if p {
                        taken |= 1 << lane;
                    }
                }
                let not_taken = flow.mask & !taken;
                let warp = &mut self.blocks[bi].warps[wi];
                if not_taken == 0 {
                    warp.set_pc(then_pc);
                } else if taken == 0 {
                    warp.set_pc(else_pc);
                } else {
                    warp.set_pc(reconv);
                    warp.stack.push(StackEntry { pc: else_pc, reconv, mask: not_taken });
                    warp.stack.push(StackEntry { pc: then_pc, reconv, mask: taken });
                }
                warp.stall_until = self.cycle + self.config.lat_alu as u64;
                Ok(())
            }
            _ => {
                let latency = self.exec_inst_decoded(bi, wi, flow, d, stats)?;
                let warp = &mut self.blocks[bi].warps[wi];
                warp.set_pc(flow.pc + 1);
                warp.stall_until = self.cycle + latency;
                Ok(())
            }
        }
    }

    /// Operand-gather and effect phases over fixed-size slots — no heap
    /// traffic, no `penny_ir` walking.
    fn exec_inst_decoded(
        &mut self,
        bi: usize,
        wi: usize,
        flow: StackEntry,
        d: &DecodedInst,
        stats: &mut RunStats,
    ) -> Result<u64, StepFault> {
        let base = self.blocks[bi].warps[wi].base_thread as usize;
        let width = self.blocks[bi].warps[wi].width;
        let nsrcs = d.nsrcs as usize;
        // ---- Phase 1: gather operands (and guards) for all lanes. ----
        let mut lane_active = [false; 32];
        let mut active_mask = 0u32;
        let mut lane_srcs = [[0u32; penny_ir::MAX_SRCS]; 32];
        for lane in 0..width as usize {
            if flow.mask & (1 << lane) == 0 {
                continue;
            }
            let thread = base + lane;
            if d.guard != NO_REG {
                let gv = self.read_reg(bi, thread, d.guard, stats)?;
                if (gv != 0) == d.guard_negated {
                    continue;
                }
            }
            lane_active[lane] = true;
            active_mask |= 1 << lane;
            let (slots, srcs) = (&mut lane_srcs[lane][..nsrcs], &d.srcs[..nsrcs]);
            for (slot, &src) in slots.iter_mut().zip(srcs) {
                *slot = match src {
                    DSrc::Imm(v) => v,
                    DSrc::Reg(r) => self.read_reg(bi, thread, r, stats)?,
                    DSrc::Special(s) => {
                        let t = &self.blocks[bi].threads[thread];
                        special_value(s, t.tid, self.blocks[bi].cta, &self.launch.dims)
                    }
                };
            }
        }

        self.last_active = active_mask;

        // ---- Phase 2: effects. ----
        let active_count = lane_active.iter().filter(|&&a| a).count() as u64;
        stats.instructions += active_count;
        match d.kind {
            DKind::Bar => {
                self.blocks[bi].warps[wi].at_barrier = true;
                Ok(self.config.lat_alu as u64)
            }
            DKind::Nop | DKind::RegionEntry(_) => Ok(1),
            DKind::Ckpt => {
                // Unlowered checkpoints should never reach the engine;
                // treat as a store-like stall to stay robust.
                Ok(self.config.lat_store_issue as u64)
            }
            DKind::Ld(space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(d.offset);
                    let v = self.load(bi, space, addr, stats);
                    let thread = base + lane;
                    if d.dst != NO_REG {
                        self.blocks[bi].threads[thread].rf.write(
                            d.dst as usize,
                            v,
                            &mut stats.rf,
                        );
                    }
                    addrs.push(addr);
                }
                let lat = self.mem_latency(space, &addrs, true, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            DKind::St(space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(d.offset);
                    let v = lane_srcs[lane][1];
                    self.store(bi, space, addr, v, stats);
                    addrs.push(addr);
                }
                let lat = self.mem_latency(space, &addrs, false, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            DKind::Atom(aop, space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(d.offset);
                    let operand = lane_srcs[lane][1];
                    let old = self.load(bi, space, addr, stats);
                    let new = match aop {
                        penny_ir::AtomOp::Add => old.wrapping_add(operand),
                        penny_ir::AtomOp::Min => old.min(operand),
                        penny_ir::AtomOp::Max => old.max(operand),
                        penny_ir::AtomOp::Exch => operand,
                        penny_ir::AtomOp::Cas => operand, // simple model
                    };
                    self.store(bi, space, addr, new, stats);
                    let thread = base + lane;
                    if d.dst != NO_REG {
                        self.blocks[bi].threads[thread].rf.write(
                            d.dst as usize,
                            old,
                            &mut stats.rf,
                        );
                    }
                    addrs.push(addr);
                }
                if !addrs.is_empty() {
                    // The RMW is committed; recovery must not replay it.
                    self.blocks[bi].warps[wi].atomic_since_snapshot = true;
                }
                let lat = self.mem_latency(space, &addrs, true, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            DKind::Alu { op, ty, ty2 } => {
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let v = crate::alu::eval(op, ty, ty2, &lane_srcs[lane][..nsrcs]);
                    let thread = base + lane;
                    if d.dst != NO_REG {
                        self.blocks[bi].threads[thread].rf.write(
                            d.dst as usize,
                            v,
                            &mut stats.rf,
                        );
                    }
                }
                Ok(self.config.latency_of(op) as u64)
            }
            // Control kinds are handled by `exec_decoded` before phase 1.
            DKind::Ret | DKind::Jump { .. } | DKind::Branch { .. } => {
                unreachable!("control micro-ops do not reach exec_inst_decoded")
            }
        }
    }

    // ---------------------------------------------------------------
    // decode_reference cross-check path (pre-decoding interpreter)
    // ---------------------------------------------------------------

    /// Reads a register for one lane through the unconditional-decode
    /// reference path.
    fn read_reg_reference(
        &mut self,
        bi: usize,
        thread: usize,
        reg: penny_ir::VReg,
        stats: &mut RunStats,
    ) -> Result<u32, StepFault> {
        let rf = &mut self.blocks[bi].threads[thread].rf;
        match rf.read_reference(reg.index(), &mut stats.rf) {
            ReadOutcome::Ok(v) | ReadOutcome::CorrectedInline(v) => Ok(v),
            ReadOutcome::Detected => Err(self.read_fault(reg.0)),
        }
    }

    fn read_operand(
        &mut self,
        bi: usize,
        thread: usize,
        op: Operand,
        stats: &mut RunStats,
    ) -> Result<u32, StepFault> {
        match op {
            Operand::Reg(r) => self.read_reg_reference(bi, thread, r, stats),
            Operand::Imm(v) => Ok(v),
            Operand::Special(s) => {
                let t = &self.blocks[bi].threads[thread];
                Ok(special_value(s, t.tid, self.blocks[bi].cta, &self.launch.dims))
            }
        }
    }

    fn step_warp_reference(
        &mut self,
        bi: usize,
        wi: usize,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        let insts = self
            .program
            .reference()
            .expect("reference path requires Program::with_reference");
        // Fast-forward region markers (zero-cost boundary bookkeeping).
        loop {
            let Some(flow) = self.blocks[bi].warps[wi].current_flow() else {
                return Ok(());
            };
            if flow.pc >= self.program.end_pc() {
                self.blocks[bi].warps[wi].exited |= flow.mask;
                continue;
            }
            if let PInst::Inst(inst) = &insts[flow.pc] {
                if let Some(region) = inst.region_entry() {
                    let warp = &mut self.blocks[bi].warps[wi];
                    warp.set_pc(flow.pc + 1);
                    warp.snapshot_region(region);
                    continue;
                }
            }
            break;
        }
        let Some(flow) = self.blocks[bi].warps[wi].current_flow() else {
            return Ok(());
        };
        // Apply any pending fault injections triggered by this warp's
        // progress.
        if self.faults_remaining > 0 {
            self.apply_faults(bi, wi);
        }
        // Copy the program reference out of `self` so the instruction
        // can be borrowed (not cloned) across the `&mut self` call.
        let result = match &insts[flow.pc] {
            PInst::Term(t) => self.exec_terminator(bi, wi, flow, *t, stats),
            PInst::Inst(inst) => self.exec_inst(bi, wi, flow, inst, stats),
        };
        match result {
            Ok(()) => {
                let warp = &mut self.blocks[bi].warps[wi];
                warp.executed += 1;
                stats.warp_instructions += 1;
                Ok(())
            }
            Err(StepFault::Detected) => {
                self.recover(bi, wi, stats)?;
                Ok(())
            }
            Err(StepFault::Sim(e)) => Err(e),
        }
    }

    fn exec_terminator(
        &mut self,
        bi: usize,
        wi: usize,
        flow: StackEntry,
        term: Terminator,
        stats: &mut RunStats,
    ) -> Result<(), StepFault> {
        match term {
            Terminator::Ret => {
                let warp = &mut self.blocks[bi].warps[wi];
                warp.exited |= flow.mask;
                warp.set_pc(flow.reconv); // force a pop on next flow query
                Ok(())
            }
            Terminator::Jump(t) => {
                let pc = self.program.start_of(t);
                let warp = &mut self.blocks[bi].warps[wi];
                warp.set_pc(pc);
                warp.stall_until = self.cycle + self.config.lat_alu as u64;
                Ok(())
            }
            Terminator::Branch { pred, negated, then_, else_ } => {
                // Phase 1: read the predicate for every lane (detections
                // fire before any control-state change).
                let base = self.blocks[bi].warps[wi].base_thread as usize;
                let mut taken = 0u32;
                for lane in 0..32 {
                    if flow.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let v = self.read_reg_reference(bi, base + lane, pred, stats)?;
                    stats.instructions += 1;
                    let p = (v != 0) ^ negated;
                    if p {
                        taken |= 1 << lane;
                    }
                }
                let not_taken = flow.mask & !taken;
                let then_pc = self.program.start_of(then_);
                let else_pc = self.program.start_of(else_);
                let block_id = self.pc_block(flow.pc);
                let reconv = self.program.reconv[block_id];
                let warp = &mut self.blocks[bi].warps[wi];
                if not_taken == 0 {
                    warp.set_pc(then_pc);
                } else if taken == 0 {
                    warp.set_pc(else_pc);
                } else {
                    warp.set_pc(reconv);
                    warp.stack.push(StackEntry { pc: else_pc, reconv, mask: not_taken });
                    warp.stack.push(StackEntry { pc: then_pc, reconv, mask: taken });
                }
                warp.stall_until = self.cycle + self.config.lat_alu as u64;
                Ok(())
            }
        }
    }

    /// Block id containing a pc (for reconvergence lookup on the
    /// reference path; the decoded path carries reconvergence inline).
    fn pc_block(&self, pc: usize) -> usize {
        match self.program.block_start.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    fn exec_inst(
        &mut self,
        bi: usize,
        wi: usize,
        flow: StackEntry,
        inst: &penny_ir::Inst,
        stats: &mut RunStats,
    ) -> Result<(), StepFault> {
        // Borrow the per-engine operand scratch for this step; it is
        // restored before returning so the steady state allocates
        // nothing (a rare early error path rebuilds it next step).
        let mut lane_srcs = std::mem::take(&mut self.scratch_srcs);
        if lane_srcs.len() != 32 {
            lane_srcs.resize_with(32, Vec::new);
        }
        for srcs in &mut lane_srcs {
            srcs.clear();
        }
        let result = self.exec_inst_phases(bi, wi, flow, inst, &mut lane_srcs, stats);
        self.scratch_srcs = lane_srcs;
        let latency = result?;
        let warp = &mut self.blocks[bi].warps[wi];
        warp.set_pc(flow.pc + 1);
        warp.stall_until = self.cycle + latency;
        Ok(())
    }

    fn exec_inst_phases(
        &mut self,
        bi: usize,
        wi: usize,
        flow: StackEntry,
        inst: &penny_ir::Inst,
        lane_srcs: &mut [Vec<u32>],
        stats: &mut RunStats,
    ) -> Result<u64, StepFault> {
        let base = self.blocks[bi].warps[wi].base_thread as usize;
        let width = self.blocks[bi].warps[wi].width;
        // ---- Phase 1: gather operands (and guards) for all lanes. ----
        let mut lane_active = [false; 32];
        for lane in 0..width as usize {
            if flow.mask & (1 << lane) == 0 {
                continue;
            }
            let thread = base + lane;
            let active = match inst.guard {
                Some(g) => {
                    let gv = self.read_reg_reference(bi, thread, g.pred, stats)?;
                    (gv != 0) != g.negated
                }
                None => true,
            };
            if !active {
                continue;
            }
            lane_active[lane] = true;
            lane_srcs[lane].reserve(inst.srcs.len());
            for &s in &inst.srcs {
                let v = self.read_operand(bi, thread, s, stats)?;
                lane_srcs[lane].push(v);
            }
        }

        // ---- Phase 2: effects. ----
        self.apply_effects(bi, wi, inst, &lane_active, lane_srcs, stats)
    }

    fn apply_effects(
        &mut self,
        bi: usize,
        wi: usize,
        inst: &penny_ir::Inst,
        lane_active: &[bool; 32],
        lane_srcs: &[Vec<u32>],
        stats: &mut RunStats,
    ) -> Result<u64, StepFault> {
        let base = self.blocks[bi].warps[wi].base_thread as usize;
        let active_count = lane_active.iter().filter(|&&a| a).count() as u64;
        stats.instructions += active_count;
        match inst.op {
            Op::Bar => {
                self.blocks[bi].warps[wi].at_barrier = true;
                Ok(self.config.lat_alu as u64)
            }
            Op::Nop | Op::RegionEntry(_) => Ok(1),
            Op::Ckpt(_) => {
                // Unlowered checkpoints should never reach the engine;
                // treat as a store-like stall to stay robust.
                Ok(self.config.lat_store_issue as u64)
            }
            Op::Ld(space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(inst.offset as u32);
                    let v = self.load(bi, space, addr, stats);
                    let thread = base + lane;
                    if let Some(d) = inst.dst {
                        self.blocks[bi].threads[thread].rf.write(
                            d.index(),
                            v,
                            &mut stats.rf,
                        );
                    }
                    addrs.push(addr);
                }
                let lat = self.mem_latency(space, &addrs, true, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            Op::St(space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(inst.offset as u32);
                    let v = lane_srcs[lane][1];
                    self.store(bi, space, addr, v, stats);
                    addrs.push(addr);
                }
                let lat = self.mem_latency(space, &addrs, false, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            Op::Atom(aop, space) => {
                let mut addrs = std::mem::take(&mut self.scratch_addrs);
                addrs.clear();
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let addr = lane_srcs[lane][0].wrapping_add(inst.offset as u32);
                    let operand = lane_srcs[lane][1];
                    let old = self.load(bi, space, addr, stats);
                    let new = match aop {
                        penny_ir::AtomOp::Add => old.wrapping_add(operand),
                        penny_ir::AtomOp::Min => old.min(operand),
                        penny_ir::AtomOp::Max => old.max(operand),
                        penny_ir::AtomOp::Exch => operand,
                        penny_ir::AtomOp::Cas => operand, // simple model
                    };
                    self.store(bi, space, addr, new, stats);
                    let thread = base + lane;
                    if let Some(d) = inst.dst {
                        self.blocks[bi].threads[thread].rf.write(
                            d.index(),
                            old,
                            &mut stats.rf,
                        );
                    }
                    addrs.push(addr);
                }
                if !addrs.is_empty() {
                    // The RMW is committed; recovery must not replay it.
                    self.blocks[bi].warps[wi].atomic_since_snapshot = true;
                }
                let lat = self.mem_latency(space, &addrs, true, stats);
                self.scratch_addrs = addrs;
                Ok(lat)
            }
            _ => {
                // ALU.
                for lane in 0..32 {
                    if !lane_active[lane] {
                        continue;
                    }
                    let v = crate::alu::eval(inst.op, inst.ty, inst.ty2, &lane_srcs[lane]);
                    let thread = base + lane;
                    if let Some(d) = inst.dst {
                        self.blocks[bi].threads[thread].rf.write(
                            d.index(),
                            v,
                            &mut stats.rf,
                        );
                    }
                }
                Ok(self.config.latency_of(inst.op) as u64)
            }
        }
    }

    // ---------------------------------------------------------------
    // Shared memory/timing model (both paths)
    // ---------------------------------------------------------------

    fn load(
        &mut self,
        bi: usize,
        space: MemSpace,
        addr: u32,
        _stats: &mut RunStats,
    ) -> u32 {
        match space {
            MemSpace::Global => self.global.read(addr),
            MemSpace::Shared | MemSpace::Local => self.blocks[bi].shared.read(addr),
            MemSpace::Param => {
                let idx = (addr / 4) as usize;
                self.launch.params.get(idx).copied().unwrap_or(0)
            }
            MemSpace::Const => self.global.read(addr),
        }
    }

    fn store(
        &mut self,
        bi: usize,
        space: MemSpace,
        addr: u32,
        value: u32,
        _stats: &mut RunStats,
    ) {
        match space {
            MemSpace::Global | MemSpace::Const => self.global.write(addr, value),
            MemSpace::Shared | MemSpace::Local => self.blocks[bi].shared.write(addr, value),
            MemSpace::Param => {} // read-only: dropped
        }
    }

    /// Warp-visible latency of a memory access, charging the SM memory
    /// pipeline per coalesced 128-byte segment.
    fn mem_latency(
        &mut self,
        space: MemSpace,
        addrs: &[u32],
        is_load: bool,
        stats: &mut RunStats,
    ) -> u64 {
        if addrs.is_empty() {
            return 1;
        }
        let mut segments = std::mem::take(&mut self.scratch_segs);
        segments.clear();
        segments.extend(addrs.iter().map(|a| a / 128));
        segments.sort_unstable();
        segments.dedup();
        let nseg = segments.len() as u64;
        self.scratch_segs = segments;
        match space {
            MemSpace::Param => self.config.lat_alu as u64,
            MemSpace::Shared | MemSpace::Local => {
                stats.shared_accesses += 1;
                // Shared memory has its own banks and no long pipeline:
                // loads pay the scratchpad latency, stores retire at
                // issue cost (this is exactly why Penny prefers shared
                // checkpoint storage).
                if is_load {
                    self.config.lat_shared as u64 + (nseg - 1) * 2
                } else {
                    self.config.lat_store_issue as u64 + (nseg - 1) * 2
                }
            }
            _ => {
                if is_load {
                    stats.global_loads += 1;
                } else {
                    stats.global_stores += 1;
                }
                let start = self.cycle.max(self.mem_busy_until);
                let occupancy_cycles = nseg * self.config.seg_cycles as u64;
                self.mem_busy_until = start + occupancy_cycles;
                let queue_delay = start - self.cycle;
                if is_load {
                    queue_delay + occupancy_cycles + self.config.lat_global as u64
                } else {
                    queue_delay + occupancy_cycles + self.config.lat_store_issue as u64
                }
            }
        }
    }

    /// Penny recovery: roll the warp back to its region snapshot and
    /// restore every live-in of that region for every lane.
    fn recover(
        &mut self,
        bi: usize,
        wi: usize,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        stats.recoveries += 1;
        if self.blocks[bi].warps[wi].snapshot.is_none() {
            return Err(SimError::UnrecoverableFault {
                kernel: self.program.name.clone(),
                reg: u32::MAX,
            });
        }
        if self.blocks[bi].warps[wi].atomic_since_snapshot {
            // Rolling back would replay a committed atomic RMW — a
            // silent memory corruption, not a recovery. Conforming
            // kernels never reach this (the compiler rejects register
            // reads between an atomic and its region boundary); fail
            // loudly if one slips through.
            return Err(SimError::UnrecoverableFault {
                kernel: self.program.name.clone(),
                reg: u32::MAX,
            });
        }
        {
            // Everything executed since the snapshot is about to replay.
            // The live counter itself stays monotonic (fault-plan
            // triggers depend on it); only the delta is attributed.
            let warp = &self.blocks[bi].warps[wi];
            let snap_executed = warp.snapshot.as_ref().map(|s| s.executed).unwrap_or(0);
            stats.reexec_instructions += warp.executed.saturating_sub(snap_executed);
        }
        let region = self.blocks[bi].warps[wi].rollback();
        let restores = recovery::restore_warp(
            self.protected,
            &self.launch.dims,
            region,
            bi,
            wi,
            &mut self.blocks,
            self.global,
            &self.launch.params,
            &mut stats.rf,
        )?;
        let warp = &mut self.blocks[bi].warps[wi];
        warp.stall_until = self.cycle
            + (restores as u64 + 1) * self.config.recovery_cycles_per_restore as u64;
        Ok(())
    }
}

/// Internal step outcome.
enum StepFault {
    /// EDC detection: run recovery.
    Detected,
    /// Fatal simulation error.
    Sim(SimError),
}

impl From<SimError> for StepFault {
    fn from(e: SimError) -> StepFault {
        StepFault::Sim(e)
    }
}

/// Recovery needs mutable access to blocks; expose the pieces it uses.
impl BlockCtx {
    /// The region id marker instruction of `region` if the warp's
    /// current snapshot matches (diagnostics).
    pub fn snapshot_region_of(&self, wi: usize) -> Option<RegionId> {
        self.warps[wi].snapshot.as_ref().map(|s| s.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_values() {
        let dims = LaunchDims { block: (8, 4), grid: (2, 3) };
        assert_eq!(special_value(Special::TidX, (3, 2), (1, 0), &dims), 3);
        assert_eq!(special_value(Special::NTidX, (0, 0), (0, 0), &dims), 8);
        assert_eq!(special_value(Special::NTidY, (0, 0), (0, 0), &dims), 4);
        assert_eq!(special_value(Special::CtaIdY, (0, 0), (1, 2), &dims), 2);
        assert_eq!(special_value(Special::NCtaIdX, (0, 0), (0, 0), &dims), 2);
        assert_eq!(special_value(Special::LaneId, (3, 1), (0, 0), &dims), 11);
    }

    #[test]
    fn launch_config_builders() {
        let l = LaunchConfig::new(LaunchDims::linear(1, 32), vec![1, 2]);
        assert!(l.faults.is_empty());
        let f = l.with_faults(crate::fault::FaultPlan::random(1, 3, 1, 1, 32, 4, 33, 10));
        assert_eq!(f.faults.injections.len(), 3);
    }

    #[test]
    fn stats_default_is_zero() {
        let s = RunStats::default();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.recoveries, 0);
    }
}
