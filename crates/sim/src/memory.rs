//! Simulated GPU memories.
//!
//! Global memory is a sparse, paged, word-granular 32-bit address space
//! (so the high checkpoint arena at `GLOBAL_CKPT_BASE` costs nothing
//! until touched). Shared memory is a flat per-block scratchpad. Both
//! are ECC-protected in the machine model — the reason Penny puts
//! checkpoints there — so injected faults only ever target the RF.

use std::collections::HashMap;
use std::sync::Arc;

/// Words per page.
pub(crate) const PAGE_WORDS: usize = 1024;

/// Sparse global memory (word-addressable via byte addresses).
///
/// Pages are reference-counted so [`GlobalMemory::fork`] is O(pages)
/// pointer copies: a forked memory shares every page with its parent
/// and copies one only when a write lands on it (copy-on-write). The
/// snapshot/replay harness forks the heap once per injection site, so
/// a fork must cost O(dirty pages), not O(heap).
///
/// `PartialEq` compares contents and access counters (but not the
/// copy-on-write bookkeeping), so equality means two runs touched
/// memory identically — the property the decoded-vs-reference
/// determinism tests pin.
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    pages: HashMap<u32, Arc<[u32; PAGE_WORDS]>>,
    /// Read/write counters (for statistics).
    pub reads: u64,
    /// Write counter.
    pub writes: u64,
    /// Pages copied by writes to shared (forked) pages since this
    /// memory was created or forked. Observability only; excluded from
    /// `PartialEq`.
    pages_copied: u64,
}

impl PartialEq for GlobalMemory {
    fn eq(&self, other: &GlobalMemory) -> bool {
        self.reads == other.reads
            && self.writes == other.writes
            && self.pages.len() == other.pages.len()
            && self.pages.iter().all(|(p, pg)| {
                other.pages.get(p).is_some_and(|o| Arc::ptr_eq(pg, o) || pg == o)
            })
    }
}

impl GlobalMemory {
    /// Creates an empty memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    fn page_of(addr: u32) -> (u32, usize) {
        let word = addr / 4;
        (word / PAGE_WORDS as u32, (word as usize) % PAGE_WORDS)
    }

    /// Reads the word at a byte address (unaligned bits are ignored).
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        let (p, o) = Self::page_of(addr);
        self.pages.get(&p).map(|pg| pg[o]).unwrap_or(0)
    }

    /// Reads without counting (host-side inspection).
    pub fn peek(&self, addr: u32) -> u32 {
        let (p, o) = Self::page_of(addr);
        self.pages.get(&p).map(|pg| pg[o]).unwrap_or(0)
    }

    /// Writes the word at a byte address.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        let (p, o) = Self::page_of(addr);
        self.page_mut(p)[o] = value;
    }

    /// Mutable access to a page, copying it first if it is shared with
    /// a fork (copy-on-write).
    fn page_mut(&mut self, p: u32) -> &mut [u32; PAGE_WORDS] {
        let pg = self.pages.entry(p).or_insert_with(|| Arc::new([0; PAGE_WORDS]));
        if Arc::strong_count(pg) > 1 {
            self.pages_copied += 1;
        }
        Arc::make_mut(pg)
    }

    /// Forks this memory: the child shares every page with the parent
    /// until one of them writes (copy-on-write). Access counters carry
    /// over (a fork continues the run it was taken from); the child's
    /// [`GlobalMemory::pages_copied`] starts at zero.
    pub fn fork(&self) -> GlobalMemory {
        GlobalMemory {
            pages: self.pages.clone(),
            reads: self.reads,
            writes: self.writes,
            pages_copied: 0,
        }
    }

    /// Pages copied by copy-on-write since creation or the last
    /// [`GlobalMemory::fork`] that produced this memory.
    pub fn pages_copied(&self) -> u64 {
        self.pages_copied
    }

    /// The raw page map (for the recording serializer, which
    /// deduplicates pages by `Arc` identity).
    pub(crate) fn pages(&self) -> &HashMap<u32, Arc<[u32; PAGE_WORDS]>> {
        &self.pages
    }

    /// Rebuilds a memory from a page map and access counters; the
    /// copy-on-write bookkeeping starts at zero, exactly like a fork.
    pub(crate) fn from_parts(
        pages: HashMap<u32, Arc<[u32; PAGE_WORDS]>>,
        reads: u64,
        writes: u64,
    ) -> GlobalMemory {
        GlobalMemory { pages, reads, writes, pages_copied: 0 }
    }

    /// Contents-only equality (ignores access counters): every word,
    /// present or implicit zero, must match. Shared (still-forked)
    /// pages compare by pointer in O(1).
    pub fn contents_eq(&self, other: &GlobalMemory) -> bool {
        let zero = |pg: &[u32; PAGE_WORDS]| pg.iter().all(|&w| w == 0);
        self.pages.iter().all(|(p, pg)| match other.pages.get(p) {
            Some(o) => Arc::ptr_eq(pg, o) || pg == o,
            None => zero(pg),
        }) && other.pages.iter().all(|(p, pg)| self.pages.contains_key(p) || zero(pg))
    }

    /// Host-side bulk write of consecutive words.
    pub fn write_slice(&mut self, addr: u32, data: &[u32]) {
        for (i, &w) in data.iter().enumerate() {
            let (p, o) = Self::page_of(addr + (i as u32) * 4);
            self.page_mut(p)[o] = w;
        }
    }

    /// Host-side bulk read of consecutive words.
    pub fn read_slice(&self, addr: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.peek(addr + (i as u32) * 4)).collect()
    }

    /// Host-side write of f32 data.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        let words: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
        self.write_slice(addr, &words);
    }

    /// Host-side read of f32 data.
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Vec<f32> {
        self.read_slice(addr, len).into_iter().map(f32::from_bits).collect()
    }

    /// Snapshot of every nonzero word as sorted `(byte address, value)`
    /// pairs — contents only, independent of the access counters that
    /// [`PartialEq`] also compares. Conformance harnesses use this to
    /// compare final memories across runs that legitimately differ in
    /// access counts (recovery re-executes loads and stores).
    pub fn nonzero_words(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (&p, pg) in &self.pages {
            for (o, &w) in pg.iter().enumerate() {
                if w != 0 {
                    out.push(((p * PAGE_WORDS as u32 + o as u32) * 4, w));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Flat per-block shared memory.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
    /// Read counter.
    pub reads: u64,
    /// Write counter.
    pub writes: u64,
}

impl SharedMemory {
    /// Creates a zeroed scratchpad of `bytes` bytes (rounded up to a
    /// word).
    pub fn new(bytes: u32) -> SharedMemory {
        SharedMemory { words: vec![0; bytes.div_ceil(4) as usize], reads: 0, writes: 0 }
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// The raw word array (for the recording serializer).
    pub(crate) fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rebuilds a scratchpad from its word array and access counters.
    pub(crate) fn from_parts(words: Vec<u32>, reads: u64, writes: u64) -> SharedMemory {
        SharedMemory { words, reads, writes }
    }

    /// Reads the word at a byte address; out-of-range reads return 0
    /// (the verifier-level contract is that programs stay in bounds; the
    /// checkpoint arena is sized by the compiler).
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.words.get((addr / 4) as usize).copied().unwrap_or(0)
    }

    /// Writes the word at a byte address (out-of-range writes are
    /// dropped).
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        if let Some(w) = self.words.get_mut((addr / 4) as usize) {
            *w = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_roundtrip_and_default_zero() {
        let mut m = GlobalMemory::new();
        assert_eq!(m.read(0x1000), 0);
        m.write(0x1000, 42);
        assert_eq!(m.read(0x1000), 42);
        assert_eq!(m.peek(0x1004), 0);
    }

    #[test]
    fn global_high_addresses_are_cheap() {
        let mut m = GlobalMemory::new();
        m.write(0xC000_0000, 7);
        m.write(0xFFFF_FFFC, 9);
        assert_eq!(m.peek(0xC000_0000), 7);
        assert_eq!(m.peek(0xFFFF_FFFC), 9);
        assert!(m.pages.len() <= 2);
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_slice(0x2000, &[1, 2, 3, 4]);
        assert_eq!(m.read_slice(0x2000, 4), vec![1, 2, 3, 4]);
        m.write_f32_slice(0x3000, &[1.5, -2.5]);
        assert_eq!(m.read_f32_slice(0x3000, 2), vec![1.5, -2.5]);
    }

    #[test]
    fn slice_crossing_page_boundary() {
        let mut m = GlobalMemory::new();
        let addr = (PAGE_WORDS as u32) * 4 - 8; // last two words of page 0
        m.write_slice(addr, &[10, 20, 30, 40]);
        assert_eq!(m.read_slice(addr, 4), vec![10, 20, 30, 40]);
    }

    #[test]
    fn shared_bounds() {
        let mut s = SharedMemory::new(16);
        s.write(0, 5);
        s.write(12, 7);
        assert_eq!(s.read(0), 5);
        assert_eq!(s.read(12), 7);
        // Out of range: dropped / zero.
        s.write(1000, 1);
        assert_eq!(s.read(1000), 0);
        assert_eq!(s.len_bytes(), 16);
    }

    #[test]
    fn counters_track_accesses() {
        let mut m = GlobalMemory::new();
        m.write(0, 1);
        m.read(0);
        m.read(4);
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 2);
    }

    #[test]
    fn fork_shares_pages_until_written() {
        let mut m = GlobalMemory::new();
        m.write_slice(0x1000, &[1, 2, 3]);
        m.write(0x8000, 9);
        let mut f = m.fork();
        assert_eq!(f.pages_copied(), 0);
        assert!(f.contents_eq(&m));
        assert_eq!(f, m, "fork carries counters");
        // Writing one page in the fork copies exactly that page and
        // leaves the parent untouched.
        f.write(0x1000, 42);
        assert_eq!(f.pages_copied(), 1);
        assert_eq!(f.peek(0x1000), 42);
        assert_eq!(m.peek(0x1000), 1, "parent unchanged");
        assert!(!f.contents_eq(&m));
        // A second write to the same page copies nothing further.
        f.write(0x1004, 43);
        assert_eq!(f.pages_copied(), 1);
        // The untouched page is still shared (and equal).
        assert_eq!(f.peek(0x8000), 9);
    }

    #[test]
    fn contents_eq_ignores_counters_and_zero_pages() {
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        a.write(0x100, 7);
        b.write(0x100, 7);
        b.read(0x100); // counter divergence only
        assert_ne!(a, b, "PartialEq sees counters");
        assert!(a.contents_eq(&b), "contents_eq does not");
        // A page written then zeroed again equals an absent page.
        a.write(0x9000, 1);
        a.write(0x9000, 0);
        assert!(a.contents_eq(&b));
        assert!(b.contents_eq(&a));
        a.write(0x9000, 2);
        assert!(!a.contents_eq(&b));
        assert!(!b.contents_eq(&a));
    }

    #[test]
    fn forked_writes_do_not_leak_into_nonzero_words() {
        let mut m = GlobalMemory::new();
        m.write(0x2000, 5);
        let mut f = m.fork();
        f.write(0x2004, 6);
        assert_eq!(m.nonzero_words(), vec![(0x2000, 5)]);
        assert_eq!(f.nonzero_words(), vec![(0x2000, 5), (0x2004, 6)]);
    }
}
