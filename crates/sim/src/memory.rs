//! Simulated GPU memories.
//!
//! Global memory is a sparse, paged, word-granular 32-bit address space
//! (so the high checkpoint arena at `GLOBAL_CKPT_BASE` costs nothing
//! until touched). Shared memory is a flat per-block scratchpad. Both
//! are ECC-protected in the machine model — the reason Penny puts
//! checkpoints there — so injected faults only ever target the RF.

use std::collections::HashMap;

/// Words per page.
const PAGE_WORDS: usize = 1024;

/// Sparse global memory (word-addressable via byte addresses).
///
/// `PartialEq` compares both contents and access counters, so equality
/// means two runs touched memory identically — the property the
/// decoded-vs-reference determinism tests pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalMemory {
    pages: HashMap<u32, Box<[u32; PAGE_WORDS]>>,
    /// Read/write counters (for statistics).
    pub reads: u64,
    /// Write counter.
    pub writes: u64,
}

impl GlobalMemory {
    /// Creates an empty memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    fn page_of(addr: u32) -> (u32, usize) {
        let word = addr / 4;
        (word / PAGE_WORDS as u32, (word as usize) % PAGE_WORDS)
    }

    /// Reads the word at a byte address (unaligned bits are ignored).
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        let (p, o) = Self::page_of(addr);
        self.pages.get(&p).map(|pg| pg[o]).unwrap_or(0)
    }

    /// Reads without counting (host-side inspection).
    pub fn peek(&self, addr: u32) -> u32 {
        let (p, o) = Self::page_of(addr);
        self.pages.get(&p).map(|pg| pg[o]).unwrap_or(0)
    }

    /// Writes the word at a byte address.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        let (p, o) = Self::page_of(addr);
        self.pages.entry(p).or_insert_with(|| Box::new([0; PAGE_WORDS]))[o] = value;
    }

    /// Host-side bulk write of consecutive words.
    pub fn write_slice(&mut self, addr: u32, data: &[u32]) {
        for (i, &w) in data.iter().enumerate() {
            let (p, o) = Self::page_of(addr + (i as u32) * 4);
            self.pages.entry(p).or_insert_with(|| Box::new([0; PAGE_WORDS]))[o] = w;
        }
    }

    /// Host-side bulk read of consecutive words.
    pub fn read_slice(&self, addr: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.peek(addr + (i as u32) * 4)).collect()
    }

    /// Host-side write of f32 data.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        let words: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
        self.write_slice(addr, &words);
    }

    /// Host-side read of f32 data.
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Vec<f32> {
        self.read_slice(addr, len).into_iter().map(f32::from_bits).collect()
    }

    /// Snapshot of every nonzero word as sorted `(byte address, value)`
    /// pairs — contents only, independent of the access counters that
    /// [`PartialEq`] also compares. Conformance harnesses use this to
    /// compare final memories across runs that legitimately differ in
    /// access counts (recovery re-executes loads and stores).
    pub fn nonzero_words(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (&p, pg) in &self.pages {
            for (o, &w) in pg.iter().enumerate() {
                if w != 0 {
                    out.push(((p * PAGE_WORDS as u32 + o as u32) * 4, w));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Flat per-block shared memory.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
    /// Read counter.
    pub reads: u64,
    /// Write counter.
    pub writes: u64,
}

impl SharedMemory {
    /// Creates a zeroed scratchpad of `bytes` bytes (rounded up to a
    /// word).
    pub fn new(bytes: u32) -> SharedMemory {
        SharedMemory { words: vec![0; bytes.div_ceil(4) as usize], reads: 0, writes: 0 }
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Reads the word at a byte address; out-of-range reads return 0
    /// (the verifier-level contract is that programs stay in bounds; the
    /// checkpoint arena is sized by the compiler).
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.words.get((addr / 4) as usize).copied().unwrap_or(0)
    }

    /// Writes the word at a byte address (out-of-range writes are
    /// dropped).
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        if let Some(w) = self.words.get_mut((addr / 4) as usize) {
            *w = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_roundtrip_and_default_zero() {
        let mut m = GlobalMemory::new();
        assert_eq!(m.read(0x1000), 0);
        m.write(0x1000, 42);
        assert_eq!(m.read(0x1000), 42);
        assert_eq!(m.peek(0x1004), 0);
    }

    #[test]
    fn global_high_addresses_are_cheap() {
        let mut m = GlobalMemory::new();
        m.write(0xC000_0000, 7);
        m.write(0xFFFF_FFFC, 9);
        assert_eq!(m.peek(0xC000_0000), 7);
        assert_eq!(m.peek(0xFFFF_FFFC), 9);
        assert!(m.pages.len() <= 2);
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_slice(0x2000, &[1, 2, 3, 4]);
        assert_eq!(m.read_slice(0x2000, 4), vec![1, 2, 3, 4]);
        m.write_f32_slice(0x3000, &[1.5, -2.5]);
        assert_eq!(m.read_f32_slice(0x3000, 2), vec![1.5, -2.5]);
    }

    #[test]
    fn slice_crossing_page_boundary() {
        let mut m = GlobalMemory::new();
        let addr = (PAGE_WORDS as u32) * 4 - 8; // last two words of page 0
        m.write_slice(addr, &[10, 20, 30, 40]);
        assert_eq!(m.read_slice(addr, 4), vec![10, 20, 30, 40]);
    }

    #[test]
    fn shared_bounds() {
        let mut s = SharedMemory::new(16);
        s.write(0, 5);
        s.write(12, 7);
        assert_eq!(s.read(0), 5);
        assert_eq!(s.read(12), 7);
        // Out of range: dropped / zero.
        s.write(1000, 1);
        assert_eq!(s.read(1000), 0);
        assert_eq!(s.len_bytes(), 16);
    }

    #[test]
    fn counters_track_accesses() {
        let mut m = GlobalMemory::new();
        m.write(0, 1);
        m.read(0);
        m.read(4);
        assert_eq!(m.writes, 1);
        assert_eq!(m.reads, 2);
    }
}
