//! Simulator configuration: machine geometry, latencies, and the RF
//! protection mode.

use penny_coding::Scheme;
use penny_core::MachineParams;

/// How the register file is protected in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfProtection {
    /// Unprotected RF (baseline; injected faults corrupt silently).
    None,
    /// EDC + Penny recovery: errors are detected at register read and
    /// repaired by idempotent re-execution.
    Edc(Scheme),
    /// ECC: errors up to the scheme's correction capability are repaired
    /// inline at read time.
    Ecc(Scheme),
}

impl RfProtection {
    /// The coding scheme in use, if any.
    pub fn scheme(self) -> Scheme {
        match self {
            RfProtection::None => Scheme::None,
            RfProtection::Edc(s) | RfProtection::Ecc(s) => s,
        }
    }
}

/// Default watchdog budget: far beyond any real workload in this repo
/// (the largest finishes in a few million cycles) but finite, so a
/// scheduling bug fails fast instead of hanging `cargo test`.
pub const DEFAULT_CYCLE_LIMIT: u64 = 2_000_000_000;

/// Timing and capacity parameters of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Instructions issued per SM per cycle.
    pub issue_width: u32,
    /// Occupancy-relevant capacity limits.
    pub machine: MachineParams,
    /// ALU latency (cycles) for simple integer ops.
    pub lat_alu: u32,
    /// Latency for multiplies / mads.
    pub lat_mul: u32,
    /// Latency for division / special-function ops.
    pub lat_sfu: u32,
    /// Round-trip latency of a global-memory load.
    pub lat_global: u32,
    /// Latency of a shared-memory access.
    pub lat_shared: u32,
    /// Cycles the memory pipeline is occupied per 128-byte segment.
    pub seg_cycles: u32,
    /// Store issue latency (the warp-visible part of a store).
    pub lat_store_issue: u32,
    /// Register-file protection mode.
    pub rf: RfProtection,
    /// Extra cycles charged per restored register during recovery.
    pub recovery_cycles_per_restore: u32,
    /// Watchdog: a wave exceeding this many cycles aborts with
    /// [`crate::SimError::CycleLimit`] instead of hanging the caller.
    pub cycle_limit: u64,
}

impl GpuConfig {
    /// Fermi-generation preset (Tesla C2050-like), with parity-EDC RF —
    /// the Penny configuration. Scaled to a handful of SMs so tests and
    /// benches run quickly; relative overheads are SM-count independent
    /// in this model.
    pub fn fermi() -> GpuConfig {
        GpuConfig {
            num_sms: 2,
            issue_width: 2,
            machine: MachineParams::scaled_fermi(),
            lat_alu: 8,
            lat_mul: 10,
            lat_sfu: 20,
            lat_global: 400,
            lat_shared: 24,
            seg_cycles: 16,
            lat_store_issue: 6,
            rf: RfProtection::Edc(Scheme::Parity),
            recovery_cycles_per_restore: 40,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// Volta-generation preset (Titan V-like): more warps, bigger
    /// shared memory, better caching (lower average global latency),
    /// wider issue.
    pub fn volta() -> GpuConfig {
        GpuConfig {
            num_sms: 2,
            issue_width: 4,
            machine: MachineParams::scaled_volta(),
            lat_alu: 4,
            lat_mul: 6,
            lat_sfu: 16,
            lat_global: 300,
            lat_shared: 16,
            seg_cycles: 10,
            lat_store_issue: 4,
            rf: RfProtection::Edc(Scheme::Parity),
            recovery_cycles_per_restore: 30,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// Builder-style RF protection override.
    pub fn with_rf(mut self, rf: RfProtection) -> GpuConfig {
        self.rf = rf;
        self
    }

    /// Builder-style watchdog budget override (see
    /// [`GpuConfig::cycle_limit`]).
    pub fn with_cycle_limit(mut self, cycle_limit: u64) -> GpuConfig {
        self.cycle_limit = cycle_limit;
        self
    }

    /// Instruction latency by opcode class.
    pub fn latency_of(&self, op: penny_ir::Op) -> u32 {
        use penny_ir::Op;
        match op {
            Op::Mul | Op::MulHi | Op::Mad => self.lat_mul,
            Op::Div
            | Op::Rem
            | Op::Sqrt
            | Op::Rsqrt
            | Op::Rcp
            | Op::Ex2
            | Op::Lg2
            | Op::Sin
            | Op::Cos => self.lat_sfu,
            _ => self.lat_alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let f = GpuConfig::fermi();
        let v = GpuConfig::volta();
        assert!(v.machine.max_warps_per_sm > f.machine.max_warps_per_sm);
        assert!(v.lat_global < f.lat_global);
        assert!(v.issue_width > f.issue_width);
    }

    #[test]
    fn latency_classes() {
        let f = GpuConfig::fermi();
        assert_eq!(f.latency_of(penny_ir::Op::Add), f.lat_alu);
        assert_eq!(f.latency_of(penny_ir::Op::Mad), f.lat_mul);
        assert_eq!(f.latency_of(penny_ir::Op::Div), f.lat_sfu);
    }

    #[test]
    fn protection_modes() {
        assert_eq!(RfProtection::None.scheme(), Scheme::None);
        assert_eq!(RfProtection::Edc(Scheme::Parity).scheme(), Scheme::Parity);
        assert_eq!(RfProtection::Ecc(Scheme::Secded).scheme(), Scheme::Secded);
    }
}
