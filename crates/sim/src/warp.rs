//! Warp execution state: the SIMT divergence stack, barrier/stall
//! bookkeeping, and the per-warp region snapshot Penny's recovery
//! rewinds to.

use penny_ir::RegionId;

/// One SIMT stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next PC for this flow.
    pub pc: usize,
    /// PC where this flow reconverges with its sibling.
    pub reconv: usize,
    /// Lanes executing this flow.
    pub mask: u32,
}

/// The warp state captured when a region marker is crossed; recovery
/// restores it verbatim (the hardware analogue is resetting the warp's
/// PC/divergence state to the region entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// SIMT stack at the marker (with the top PC already past it).
    pub stack: Vec<StackEntry>,
    /// Exited lanes at the marker.
    pub exited: u32,
    /// The region entered.
    pub region: RegionId,
    /// The warp's executed-instruction count at the marker. Recovery
    /// diffs the live count against this to attribute re-executed
    /// instructions; the live count itself is never rewound (fault-plan
    /// triggers key off its monotonic progression).
    pub executed: u64,
}

/// A warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within its block.
    pub id: u32,
    /// First thread index (within the block) of lane 0.
    pub base_thread: u32,
    /// Number of live lanes (the last warp of a block may be partial).
    pub width: u32,
    /// Divergence stack; the top entry is the executing flow.
    pub stack: Vec<StackEntry>,
    /// Lanes that have executed `ret`.
    pub exited: u32,
    /// Cycle until which the warp is stalled.
    pub stall_until: u64,
    /// Waiting at a block-wide barrier.
    pub at_barrier: bool,
    /// Instructions this warp has executed (fault-plan trigger).
    pub executed: u64,
    /// Snapshot of the current region's entry.
    pub snapshot: Option<WarpSnapshot>,
    /// An atomic read-modify-write committed since the last region
    /// snapshot. Rolling back past it would replay a non-idempotent
    /// memory update, so recovery refuses instead of corrupting memory
    /// silently. The compiler's atomic-window check makes this
    /// unreachable for conforming kernels; the flag is the engine-side
    /// backstop.
    pub atomic_since_snapshot: bool,
}

impl Warp {
    /// Creates a warp starting at `entry_pc` with `width` live lanes,
    /// reconverging (terminating) at `end_pc`.
    pub fn new(
        id: u32,
        base_thread: u32,
        width: u32,
        entry_pc: usize,
        end_pc: usize,
    ) -> Warp {
        let mask = if width >= 32 { u32::MAX } else { (1u32 << width) - 1 };
        Warp {
            id,
            base_thread,
            width,
            stack: vec![StackEntry { pc: entry_pc, reconv: end_pc, mask }],
            exited: 0,
            stall_until: 0,
            at_barrier: false,
            executed: 0,
            snapshot: None,
            atomic_since_snapshot: false,
        }
    }

    /// Pops merged/empty entries; returns the current flow, or `None`
    /// when the warp has finished.
    pub fn current_flow(&mut self) -> Option<StackEntry> {
        loop {
            let &top = self.stack.last()?;
            let live = top.mask & !self.exited;
            if live == 0 || top.pc == top.reconv {
                self.stack.pop();
                continue;
            }
            return Some(StackEntry { mask: live, ..top });
        }
    }

    /// Returns `true` when every lane has exited or the stack drained.
    pub fn finished(&mut self) -> bool {
        self.current_flow().is_none()
    }

    /// Advances the top-of-stack PC.
    pub fn set_pc(&mut self, pc: usize) {
        if let Some(top) = self.stack.last_mut() {
            top.pc = pc;
        }
    }

    /// Takes a region snapshot (top PC must already be past the marker).
    pub fn snapshot_region(&mut self, region: RegionId) {
        self.snapshot = Some(WarpSnapshot {
            stack: self.stack.clone(),
            exited: self.exited,
            region,
            executed: self.executed,
        });
        self.atomic_since_snapshot = false;
    }

    /// Rolls the warp back to its region snapshot; returns the region.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot exists.
    pub fn rollback(&mut self) -> RegionId {
        let snap = self.snapshot.clone().expect("no region snapshot to roll back to");
        self.stack = snap.stack.clone();
        self.exited = snap.exited;
        snap.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_warp_flows_from_entry() {
        let mut w = Warp::new(0, 0, 32, 5, 100);
        let f = w.current_flow().expect("flow");
        assert_eq!(f.pc, 5);
        assert_eq!(f.mask, u32::MAX);
        assert!(!w.finished());
    }

    #[test]
    fn partial_warp_mask() {
        let mut w = Warp::new(1, 32, 7, 0, 10);
        assert_eq!(w.current_flow().expect("flow").mask, 0b111_1111);
    }

    #[test]
    fn reconvergence_pops() {
        let mut w = Warp::new(0, 0, 32, 0, 100);
        // Simulate a divergence reconverging at pc 8: the root entry
        // waits at the merge point while the two sides execute.
        w.set_pc(8);
        w.stack.push(StackEntry { pc: 3, reconv: 8, mask: 0xF0 });
        w.stack.push(StackEntry { pc: 1, reconv: 8, mask: 0x0F });
        // Execute the then-side to its reconvergence point.
        w.set_pc(8);
        let f = w.current_flow().expect("flow");
        assert_eq!(f.mask, 0xF0, "else side resumes");
        w.set_pc(8);
        let f = w.current_flow().expect("flow");
        assert_eq!(f.pc, 8, "merged flow at reconvergence");
        assert_eq!(f.mask, u32::MAX);
        // Draining the final entry ends the warp.
        w.exited = u32::MAX;
        assert!(w.finished());
    }

    #[test]
    fn rollback_restores_snapshot() {
        let mut w = Warp::new(0, 0, 32, 0, 100);
        w.set_pc(4);
        w.snapshot_region(RegionId(2));
        w.set_pc(42);
        w.stack.push(StackEntry { pc: 50, reconv: 60, mask: 1 });
        let r = w.rollback();
        assert_eq!(r, RegionId(2));
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.current_flow().expect("flow").pc, 4);
    }

    #[test]
    #[should_panic(expected = "no region snapshot")]
    fn rollback_without_snapshot_panics() {
        Warp::new(0, 0, 32, 0, 10).rollback();
    }

    #[test]
    fn region_snapshot_clears_the_atomic_marker() {
        let mut w = Warp::new(0, 0, 32, 0, 100);
        w.atomic_since_snapshot = true;
        w.snapshot_region(RegionId(1));
        // A fresh region owes nothing to earlier atomics; the recovery
        // guard must only refuse rollback across RMWs in *this* region.
        assert!(!w.atomic_since_snapshot);
        w.atomic_since_snapshot = true;
        w.rollback();
        // Rollback does not clear it: after a refused recovery the
        // executed atomic is still unprotected by the old snapshot.
        assert!(w.atomic_since_snapshot);
    }

    #[test]
    fn snapshot_captures_executed_and_rollback_preserves_it() {
        let mut w = Warp::new(0, 0, 32, 0, 100);
        w.executed = 7;
        w.snapshot_region(RegionId(1));
        assert_eq!(w.snapshot.as_ref().expect("snapshot").executed, 7);
        // The live count keeps advancing and is NOT rewound by rollback:
        // fault-plan triggers depend on its monotonic progression, and
        // recovery uses the snapshot delta to attribute re-execution.
        w.executed = 19;
        w.rollback();
        assert_eq!(w.executed, 19);
        assert_eq!(w.snapshot.as_ref().expect("snapshot").executed, 7);
    }
}
