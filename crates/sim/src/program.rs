//! Program lowering for execution: blocks flattened into a single
//! pre-decoded micro-op table, plus the immediate-post-dominator
//! reconvergence table the SIMT stack uses.
//!
//! [`Program::new`] lowers every `penny_ir::Inst`/`Terminator` into a
//! flat [`DecodedInst`] — fixed-size operand slots ([`penny_ir::MAX_SRCS`]),
//! pre-resolved register indices, immediates and special-register kinds,
//! and branch/jump targets already translated to PCs (the branch also
//! carries its reconvergence PC, so the engine never searches the block
//! table on the hot path). The IR instruction stream itself is *not*
//! retained on the fast path; [`Program::with_reference`] additionally
//! keeps the [`PInst`] stream for the `decode_reference` cross-check
//! interpreter (see `engine::run_decode_reference`).

use penny_analysis::Dominators;
use penny_ir::{
    AtomOp, BlockId, Inst, Kernel, MemSpace, Op, Operand, RegionId, Special, Terminator,
    Type, MAX_SRCS,
};

/// Sentinel register index meaning "no register" (destination or guard).
pub const NO_REG: u32 = u32::MAX;

/// One pre-resolved source-operand slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DSrc {
    /// Register-file index (pre-resolved from the virtual register).
    Reg(u32),
    /// Immediate bit pattern.
    Imm(u32),
    /// Special (hardware) register kind.
    Special(Special),
}

/// Compact decoded opcode the engine dispatches on.
///
/// Control flow is fully pre-resolved: jump/branch targets are PCs, and
/// a branch carries the reconvergence PC of its block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DKind {
    /// A value-producing ALU operation (dispatched to `alu::eval`).
    Alu {
        /// Opcode (used for evaluation and the latency class).
        op: Op,
        /// Result/operand type.
        ty: Type,
        /// Secondary type (source type for `cvt`).
        ty2: Type,
    },
    /// Load from a memory space.
    Ld(MemSpace),
    /// Store to a memory space.
    St(MemSpace),
    /// Atomic read-modify-write.
    Atom(AtomOp, MemSpace),
    /// Block-wide barrier.
    Bar,
    /// Unlowered checkpoint pseudo-op (robustness arm; never emitted by
    /// code generation).
    Ckpt,
    /// Region-entry marker (consumed by the engine's fast-forward loop).
    RegionEntry(RegionId),
    /// No operation.
    Nop,
    /// Return: retire the flow's lanes.
    Ret,
    /// Unconditional jump to a pre-resolved PC.
    Jump {
        /// Target PC.
        target: usize,
    },
    /// Two-way branch with pre-resolved targets and reconvergence.
    Branch {
        /// Predicate register index.
        pred: u32,
        /// Whether the predicate is negated.
        negated: bool,
        /// PC of the taken side.
        then_pc: usize,
        /// PC of the not-taken side.
        else_pc: usize,
        /// Reconvergence PC (start of the immediate post-dominator).
        reconv: usize,
    },
}

/// One pre-decoded micro-op: everything the engine needs in one flat,
/// `Copy` record — no heap indirection, no `Option<VReg>` re-matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// Decoded opcode (with control flow pre-resolved).
    pub kind: DKind,
    /// Destination register index, or [`NO_REG`].
    pub dst: u32,
    /// Guard predicate register index, or [`NO_REG`] when unguarded.
    pub guard: u32,
    /// Whether the guard is negated (`@!%p`).
    pub guard_negated: bool,
    /// Number of live source slots.
    pub nsrcs: u8,
    /// Fixed-size source slots (`srcs[..nsrcs]` are live).
    pub srcs: [DSrc; MAX_SRCS],
    /// Constant byte offset for memory operands, pre-wrapped to `u32`.
    pub offset: u32,
}

impl DecodedInst {
    fn lower(inst: &Inst) -> DecodedInst {
        let kind = match inst.op {
            Op::Ld(s) => DKind::Ld(s),
            Op::St(s) => DKind::St(s),
            Op::Atom(a, s) => DKind::Atom(a, s),
            Op::Bar => DKind::Bar,
            Op::Ckpt(_) => DKind::Ckpt,
            Op::RegionEntry(r) => DKind::RegionEntry(r),
            Op::Nop => DKind::Nop,
            op => DKind::Alu { op, ty: inst.ty, ty2: inst.ty2 },
        };
        let mut srcs = [DSrc::Imm(0); MAX_SRCS];
        let nsrcs = inst.num_srcs().min(MAX_SRCS);
        for (slot, i) in srcs.iter_mut().zip(0..nsrcs) {
            *slot = match inst.src(i).expect("slot within num_srcs") {
                Operand::Reg(r) => DSrc::Reg(r.index() as u32),
                Operand::Imm(v) => DSrc::Imm(v),
                Operand::Special(s) => DSrc::Special(s),
            };
        }
        let (guard, guard_negated) = match inst.guard {
            Some(g) => (g.pred.index() as u32, g.negated),
            None => (NO_REG, false),
        };
        DecodedInst {
            kind,
            dst: inst.dst.map_or(NO_REG, |d| d.index() as u32),
            guard,
            guard_negated,
            nsrcs: nsrcs as u8,
            srcs,
            offset: inst.offset as u32,
        }
    }

    fn lower_term(term: Terminator, block_start: &[usize], reconv: usize) -> DecodedInst {
        let kind = match term {
            Terminator::Ret => DKind::Ret,
            Terminator::Jump(t) => DKind::Jump { target: block_start[t.index()] },
            Terminator::Branch { pred, negated, then_, else_ } => DKind::Branch {
                pred: pred.index() as u32,
                negated,
                then_pc: block_start[then_.index()],
                else_pc: block_start[else_.index()],
                reconv,
            },
        };
        DecodedInst {
            kind,
            dst: NO_REG,
            guard: NO_REG,
            guard_negated: false,
            nsrcs: 0,
            srcs: [DSrc::Imm(0); MAX_SRCS],
            offset: 0,
        }
    }
}

/// One linearized IR program element (the `decode_reference` stream).
#[derive(Debug, Clone)]
pub enum PInst {
    /// An ordinary instruction.
    Inst(Inst),
    /// A block terminator.
    Term(Terminator),
}

/// An executable, lowered kernel.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat pre-decoded micro-op stream (one entry per PC; terminators
    /// occupy a PC slot exactly like the old `PInst` layout, so PCs and
    /// reconvergence math are unchanged).
    pub decoded: Vec<DecodedInst>,
    /// Start PC of each block.
    pub block_start: Vec<usize>,
    /// Reconvergence PC for a branch in each block: the start of the
    /// block's immediate post-dominator, or [`Program::end_pc`] when the
    /// paths only rejoin at exit.
    pub reconv: Vec<usize>,
    /// Kernel name (diagnostics).
    pub name: String,
    /// Static shared-memory bytes (program data; checkpoint storage is
    /// accounted separately by the launch).
    pub shared_bytes: u32,
    /// Number of virtual registers.
    pub num_regs: usize,
    /// IR instruction stream, retained only by
    /// [`Program::with_reference`] for the cross-check interpreter; the
    /// fast path carries no per-instruction IR (the decoded table owns
    /// the data).
    reference: Option<Vec<PInst>>,
}

impl Program {
    /// Lowers a kernel into the pre-decoded fast-path form.
    pub fn new(kernel: &Kernel) -> Program {
        Program::build(kernel, false)
    }

    /// Lowers a kernel and additionally retains the linearized IR stream
    /// for the `decode_reference` cross-check interpreter.
    pub fn with_reference(kernel: &Kernel) -> Program {
        Program::build(kernel, true)
    }

    fn build(kernel: &Kernel, keep_reference: bool) -> Program {
        let pdom = Dominators::compute_post(kernel);
        // Pass 1: PC layout (block starts and the end sentinel).
        let mut block_start = Vec::with_capacity(kernel.num_blocks());
        let mut pc = 0usize;
        for b in kernel.block_ids() {
            block_start.push(pc);
            pc += kernel.block(b).insts.len() + 1; // + terminator slot
        }
        let end_pc = pc;
        let reconv: Vec<usize> = kernel
            .block_ids()
            .map(|b| match pdom.idom(b) {
                Some(p) => block_start[p.index()],
                None => end_pc,
            })
            .collect();
        // Pass 2: decode, with control-flow targets resolved to PCs.
        let mut decoded = Vec::with_capacity(end_pc);
        let mut reference = keep_reference.then(|| Vec::with_capacity(end_pc));
        for b in kernel.block_ids() {
            let block = kernel.block(b);
            for i in &block.insts {
                decoded.push(DecodedInst::lower(i));
            }
            decoded.push(DecodedInst::lower_term(
                block.term,
                &block_start,
                reconv[b.index()],
            ));
            if let Some(r) = reference.as_mut() {
                r.extend(block.insts.iter().map(|i| PInst::Inst(i.clone())));
                r.push(PInst::Term(block.term));
            }
        }
        Program {
            decoded,
            block_start,
            reconv,
            name: kernel.name.clone(),
            shared_bytes: kernel.shared_bytes,
            num_regs: kernel.vreg_limit() as usize,
            reference,
        }
    }

    /// Sentinel PC one past the last instruction.
    pub fn end_pc(&self) -> usize {
        self.decoded.len()
    }

    /// Start PC of a block.
    pub fn start_of(&self, b: BlockId) -> usize {
        self.block_start[b.index()]
    }

    /// The linearized IR stream, if this program was built with
    /// [`Program::with_reference`].
    pub fn reference(&self) -> Option<&[PInst]> {
        self.reference.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    #[test]
    fn linearization_preserves_order() {
        let k = parse_kernel(
            r#"
            .kernel l
            entry:
                mov.u32 %r0, 1
                jmp next
            next:
                mov.u32 %r1, 2
                ret
        "#,
        )
        .expect("parse");
        let p = Program::new(&k);
        assert_eq!(p.block_start, vec![0, 2]);
        assert_eq!(p.decoded.len(), 4);
        assert!(matches!(p.decoded[1].kind, DKind::Jump { target: 2 }));
        assert!(matches!(p.decoded[3].kind, DKind::Ret));
        assert_eq!(p.end_pc(), 4);
        assert!(p.reference().is_none(), "fast path must not retain IR");
    }

    #[test]
    fn reconvergence_at_ipostdom() {
        let k = parse_kernel(
            r#"
            .kernel d
            entry:
                setp.eq.u32 %p0, 1, 1
                bra %p0, a, b
            a:
                jmp join
            b:
                jmp join
            join:
                ret
        "#,
        )
        .expect("parse");
        let p = Program::new(&k);
        // entry's branch reconverges at join's start.
        let join_start = p.start_of(BlockId(3));
        assert_eq!(p.reconv[0], join_start);
        // join itself reconverges at exit.
        assert_eq!(p.reconv[3], p.end_pc());
        // The decoded branch carries targets and reconvergence inline.
        match p.decoded[1].kind {
            DKind::Branch { then_pc, else_pc, reconv, .. } => {
                assert_eq!(then_pc, p.start_of(BlockId(1)));
                assert_eq!(else_pc, p.start_of(BlockId(2)));
                assert_eq!(reconv, join_start);
            }
            other => panic!("expected a decoded branch, got {other:?}"),
        }
    }

    #[test]
    fn decoded_slots_carry_registers_immediates_and_specials() {
        let k = parse_kernel(
            r#"
            .kernel s .params A
            entry:
                mov.u32 %r0, %tid.x
                ld.param.u32 %r1, [A]
                mad.u32 %r2, %r0, 4, %r1
                ld.global.u32 %r3, [%r2+8]
                ret
        "#,
        )
        .expect("parse");
        let p = Program::new(&k);
        // mov %r0, %tid.x
        let mov = &p.decoded[0];
        assert_eq!(mov.nsrcs, 1);
        assert_eq!(mov.srcs[0], DSrc::Special(Special::TidX));
        assert!(mov.dst != NO_REG && mov.guard == NO_REG);
        // mad %r2, %r0, 4, %r1
        let mad = &p.decoded[2];
        assert_eq!(mad.nsrcs, 3);
        assert!(matches!(mad.srcs[0], DSrc::Reg(_)));
        assert_eq!(mad.srcs[1], DSrc::Imm(4));
        assert!(matches!(mad.srcs[2], DSrc::Reg(_)));
        // ld.global %r3, [%r2+8]
        let ld = &p.decoded[3];
        assert!(matches!(ld.kind, DKind::Ld(MemSpace::Global)));
        assert_eq!(ld.offset, 8);
    }

    #[test]
    fn with_reference_retains_the_ir_stream() {
        let k = parse_kernel(
            r#"
            .kernel l
            entry:
                mov.u32 %r0, 1
                ret
        "#,
        )
        .expect("parse");
        let p = Program::with_reference(&k);
        let r = p.reference().expect("reference stream");
        assert_eq!(r.len(), p.decoded.len());
        assert!(matches!(r[0], PInst::Inst(_)));
        assert!(matches!(r[1], PInst::Term(Terminator::Ret)));
    }
}
