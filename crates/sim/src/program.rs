//! Program linearization for execution: blocks flattened into a single
//! instruction array with explicit terminators, plus the immediate-
//! post-dominator reconvergence table the SIMT stack uses.

use penny_analysis::Dominators;
use penny_ir::{BlockId, Inst, Kernel, Terminator};

/// One linearized program element.
#[derive(Debug, Clone)]
pub enum PInst {
    /// An ordinary instruction.
    Inst(Inst),
    /// A block terminator.
    Term(Terminator),
}

/// An executable, linearized kernel.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flattened instruction stream.
    pub insts: Vec<PInst>,
    /// Start PC of each block.
    pub block_start: Vec<usize>,
    /// Reconvergence PC for a branch in each block: the start of the
    /// block's immediate post-dominator, or [`Program::end_pc`] when the
    /// paths only rejoin at exit.
    pub reconv: Vec<usize>,
    /// Kernel name (diagnostics).
    pub name: String,
    /// Static shared-memory bytes (program data; checkpoint storage is
    /// accounted separately by the launch).
    pub shared_bytes: u32,
    /// Number of virtual registers.
    pub num_regs: usize,
}

impl Program {
    /// Linearizes a kernel.
    pub fn new(kernel: &Kernel) -> Program {
        let pdom = Dominators::compute_post(kernel);
        let mut insts = Vec::new();
        let mut block_start = Vec::with_capacity(kernel.num_blocks());
        for b in kernel.block_ids() {
            block_start.push(insts.len());
            for i in &kernel.block(b).insts {
                insts.push(PInst::Inst(i.clone()));
            }
            insts.push(PInst::Term(kernel.block(b).term));
        }
        let end_pc = insts.len();
        let reconv = kernel
            .block_ids()
            .map(|b| match pdom.idom(b) {
                Some(p) => block_start[p.index()],
                None => end_pc,
            })
            .collect();
        Program {
            insts,
            block_start,
            reconv,
            name: kernel.name.clone(),
            shared_bytes: kernel.shared_bytes,
            num_regs: kernel.vreg_limit() as usize,
        }
    }

    /// Sentinel PC one past the last instruction.
    pub fn end_pc(&self) -> usize {
        self.insts.len()
    }

    /// Start PC of a block.
    pub fn start_of(&self, b: BlockId) -> usize {
        self.block_start[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_ir::parse_kernel;

    #[test]
    fn linearization_preserves_order() {
        let k = parse_kernel(
            r#"
            .kernel l
            entry:
                mov.u32 %r0, 1
                jmp next
            next:
                mov.u32 %r1, 2
                ret
        "#,
        )
        .expect("parse");
        let p = Program::new(&k);
        assert_eq!(p.block_start, vec![0, 2]);
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[1], PInst::Term(Terminator::Jump(_))));
        assert!(matches!(p.insts[3], PInst::Term(Terminator::Ret)));
        assert_eq!(p.end_pc(), 4);
    }

    #[test]
    fn reconvergence_at_ipostdom() {
        let k = parse_kernel(
            r#"
            .kernel d
            entry:
                setp.eq.u32 %p0, 1, 1
                bra %p0, a, b
            a:
                jmp join
            b:
                jmp join
            join:
                ret
        "#,
        )
        .expect("parse");
        let p = Program::new(&k);
        // entry's branch reconverges at join's start.
        let join_start = p.start_of(BlockId(3));
        assert_eq!(p.reconv[0], join_start);
        // join itself reconverges at exit.
        assert_eq!(p.reconv[3], p.end_pc());
    }
}
