//! Deterministic generative kernel machinery shared by the
//! `decoded_equivalence` property suite and the `penny-fuzz` pipeline.
//!
//! Two kernel families are minted from compact op scripts:
//!
//! * **Dense** ([`build_kernel`]) — the structured shape the decoded
//!   equivalence suite has always generated: a uniform counted loop
//!   whose body is driven by an op script (divergent diamonds, guarded
//!   updates, in-place global read-modify-writes, shared-memory round
//!   trips with an optional barrier).
//! * **Sparse** ([`build_sparse_kernel`]) — a CSR-style irregular
//!   shape: per-row data-dependent trip counts, indirect
//!   column/value loads (`CI[j]`, `XV[CI[j]]`), pointer chases,
//!   data-dependent guarded updates, in-place row accumulation, and a
//!   data-dependent atomic histogram scatter. These are exactly the
//!   address-generation and irregular-store paths the dense evaluation
//!   suite never exercises.
//!
//! A [`KernelSpec`] packages one generated kernel — family, op script,
//! topology seed — together with its launch geometry and a
//! deterministic input [`MemImage`], and round-trips through a compact
//! text form ([`KernelSpec::render`] / [`KernelSpec::parse`]) so banked
//! corpus kernels record exactly how they were minted.
//!
//! Everything here is a pure function of its inputs: the same spec
//! always produces the same kernel, image, and fault plans.

use penny_core::{LaunchDims, PennyConfig, Protected};
use penny_ir::{AtomOp, Cmp, Kernel, KernelBuilder, MemSpace, Special, Type};

use crate::{engine, FaultPlan, GlobalMemory, GpuConfig, RunStats};

/// SplitMix64 step: the seed-derivation PRNG for spec and topology
/// generation (stable, dependency-free, full 64-bit avalanche).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of distinct op codes in either family's script alphabet.
pub const OP_ALPHABET: u8 = 8;

/// Rows (and columns) of the generated CSR topology: one row per
/// thread of the sparse launch geometry.
pub const SPARSE_ROWS: u32 = 64;

/// Generated kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Structured dense loop (uniform trip count, optional barrier).
    Dense,
    /// CSR-style irregular kernel (data-dependent loops, indirect
    /// loads, data-dependent stores).
    Sparse,
}

impl Family {
    /// Short tag used in names and rendered specs.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Dense => "dense",
            Family::Sparse => "sparse",
        }
    }
}

/// A deterministic device-memory input image plus kernel parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    /// `(base address, words)` slices written before launch.
    pub writes: Vec<(u32, Vec<u32>)>,
    /// Kernel parameter words, in declaration order.
    pub params: Vec<u32>,
}

impl MemImage {
    /// Writes every slice into `global`.
    pub fn apply(&self, global: &mut GlobalMemory) {
        for (base, words) in &self.writes {
            global.write_slice(*base, words);
        }
    }
}

/// One generated kernel: family, op script, and (for sparse) the CSR
/// topology seed. A spec is the unit the fuzz pipeline generates,
/// shrinks, and banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel family.
    pub family: Family,
    /// Op script driving the loop body (values `0..OP_ALPHABET`).
    pub ops: Vec<u8>,
    /// Dense only: emit a barrier in the shared-memory round trip.
    pub barrier: bool,
    /// Sparse only: CSR topology / input-value seed.
    pub topo_seed: u64,
    /// Sparse only: maximum nonzeros per row (trip-count spread).
    pub max_row_nnz: u8,
}

impl KernelSpec {
    /// A dense-family spec.
    pub fn dense(ops: Vec<u8>, barrier: bool) -> KernelSpec {
        KernelSpec { family: Family::Dense, ops, barrier, topo_seed: 0, max_row_nnz: 0 }
    }

    /// A sparse-family spec.
    pub fn sparse(ops: Vec<u8>, topo_seed: u64, max_row_nnz: u8) -> KernelSpec {
        KernelSpec {
            family: Family::Sparse,
            ops,
            barrier: false,
            topo_seed,
            max_row_nnz: max_row_nnz.clamp(1, 15),
        }
    }

    /// Derives a spec deterministically from a single seed: family,
    /// script length, script contents, and topology all follow from
    /// SplitMix64 draws, so iteration `i` of a fuzz run is
    /// reproducible from `splitmix64(base_seed + i)` alone.
    pub fn from_seed(seed: u64) -> KernelSpec {
        let mut s = seed;
        let mut draw = || {
            s = splitmix64(s);
            s
        };
        let family = if draw() % 2 == 0 { Family::Dense } else { Family::Sparse };
        let len = (draw() % 12 + 1) as usize;
        let ops: Vec<u8> = (0..len).map(|_| (draw() % OP_ALPHABET as u64) as u8).collect();
        match family {
            Family::Dense => KernelSpec::dense(ops, draw() % 2 == 0),
            Family::Sparse => {
                let nnz = (draw() % 8 + 1) as u8;
                KernelSpec::sparse(ops, draw(), nnz)
            }
        }
    }

    /// Launch geometry the generated kernel is written for.
    pub fn dims(&self) -> LaunchDims {
        match self.family {
            Family::Dense => LaunchDims::linear(2, 64),
            Family::Sparse => LaunchDims::linear(2, 32),
        }
    }

    /// Builds the kernel (validated by construction).
    pub fn build(&self) -> Kernel {
        match self.family {
            Family::Dense => build_kernel(&self.ops, self.barrier),
            Family::Sparse => build_sparse_kernel(
                &self.ops,
                &CsrTopo::generate(self.topo_seed, self.max_row_nnz),
            ),
        }
    }

    /// The deterministic input image and parameter words for this spec.
    pub fn image(&self) -> MemImage {
        match self.family {
            Family::Dense => MemImage {
                writes: vec![(
                    0x1000,
                    (0u32..64).map(|x| x.wrapping_mul(7).wrapping_add(3)).collect(),
                )],
                params: vec![0x1000, 0x2000],
            },
            Family::Sparse => {
                let topo = CsrTopo::generate(self.topo_seed, self.max_row_nnz);
                MemImage {
                    writes: vec![
                        (0x1000, topo.row_ptr.clone()),
                        (0x2000, topo.cols.clone()),
                        (0x3000, topo.x.clone()),
                    ],
                    params: vec![0x1000, 0x2000, 0x3000, 0x4000, 0x5000],
                }
            }
        }
    }

    /// Shrink metric: strictly decreasing along every candidate chain
    /// the fuzz shrinker explores (script length, plus one for the
    /// barrier and each unit of row-density above the minimum).
    pub fn size(&self) -> usize {
        self.ops.len()
            + usize::from(self.barrier)
            + usize::from(self.max_row_nnz.saturating_sub(1))
    }

    /// Stable short name, e.g. `fzs-1a2b3c4d5e` — a content hash of the
    /// rendered spec, so equal specs always share a name.
    pub fn name(&self) -> String {
        let tag = match self.family {
            Family::Dense => "fzd",
            Family::Sparse => "fzs",
        };
        format!("{tag}-{:010x}", fnv1a(self.render().as_bytes()) & 0xFF_FFFF_FFFF)
    }

    /// Compact one-line text form (see [`KernelSpec::parse`]).
    pub fn render(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|o| o.to_string()).collect();
        match self.family {
            Family::Dense => {
                format!("dense;ops={};barrier={}", ops.join(","), u8::from(self.barrier))
            }
            Family::Sparse => format!(
                "sparse;ops={};nnz={};topo={:#x}",
                ops.join(","),
                self.max_row_nnz,
                self.topo_seed
            ),
        }
    }

    /// Parses the [`KernelSpec::render`] form back into a spec.
    pub fn parse(s: &str) -> Option<KernelSpec> {
        let mut family = None;
        let mut ops = Vec::new();
        let mut barrier = false;
        let mut nnz = 1u8;
        let mut topo = 0u64;
        for (i, field) in s.trim().split(';').enumerate() {
            if i == 0 {
                family = Some(match field {
                    "dense" => Family::Dense,
                    "sparse" => Family::Sparse,
                    _ => return None,
                });
                continue;
            }
            let (k, v) = field.split_once('=')?;
            match k {
                "ops" => {
                    for t in v.split(',').filter(|t| !t.is_empty()) {
                        ops.push(t.parse().ok()?);
                    }
                }
                "barrier" => barrier = v == "1",
                "nnz" => nnz = v.parse().ok()?,
                "topo" => topo = parse_u64(v)?,
                _ => return None,
            }
        }
        Some(match family? {
            Family::Dense => KernelSpec::dense(ops, barrier),
            Family::Sparse => KernelSpec::sparse(ops, topo, nnz),
        })
    }
}

/// Parses decimal or `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x") {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a over bytes (stable content hashing for names).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A generated CSR topology: 65 row pointers over [`SPARSE_ROWS`]
/// rows, column indices in `0..SPARSE_ROWS`, and input values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrTopo {
    /// `SPARSE_ROWS + 1` row pointers (element indices, not bytes).
    pub row_ptr: Vec<u32>,
    /// Column index per nonzero.
    pub cols: Vec<u32>,
    /// Dense input vector (`SPARSE_ROWS` words).
    pub x: Vec<u32>,
}

impl CsrTopo {
    /// Generates the topology for `seed` with rows of `0..=max_row_nnz`
    /// nonzeros. Deterministic; at least one row is non-empty so every
    /// generated kernel executes its inner loop.
    pub fn generate(seed: u64, max_row_nnz: u8) -> CsrTopo {
        let spread = max_row_nnz.clamp(1, 15) as u64;
        let mut s = seed;
        let mut draw = || {
            s = splitmix64(s);
            s
        };
        let mut row_ptr = Vec::with_capacity(SPARSE_ROWS as usize + 1);
        let mut cols = Vec::new();
        row_ptr.push(0);
        for _ in 0..SPARSE_ROWS {
            let len = draw() % (spread + 1);
            for _ in 0..len {
                cols.push((draw() % SPARSE_ROWS as u64) as u32);
            }
            row_ptr.push(cols.len() as u32);
        }
        if cols.is_empty() {
            // Degenerate all-empty matrix: give row 0 one entry so the
            // irregular loop body is reachable.
            cols.push((draw() % SPARSE_ROWS as u64) as u32);
            for p in row_ptr.iter_mut().skip(1) {
                *p += 1;
            }
        }
        let x = (0..SPARSE_ROWS).map(|_| (draw() & 0xFFFF_FFFF) as u32).collect();
        CsrTopo { row_ptr, cols, x }
    }
}

/// Builds a structured dense kernel from an op script: a loop whose
/// body is driven by `ops`, containing a divergent diamond and
/// (op-dependent) guarded instructions, in-place global updates, and
/// shared-memory traffic with an optional barrier.
///
/// This is the generator the decoded-equivalence property suite has
/// always used, extracted so the suite and `penny-fuzz` share one
/// implementation.
pub fn build_kernel(ops: &[u8], with_barrier: bool) -> Kernel {
    let mut b = KernelBuilder::new("decgen", &["A", "B"]);
    b.shared_bytes(256);
    b.block("entry");
    let tid = b.special(Special::TidX);
    let a = b.ld_param("A");
    let bp = b.ld_param("B");
    let off = b.shl(Type::U32, tid, 2u32);
    let addr = b.add(Type::U32, a, off);
    let out = b.add(Type::U32, bp, off);
    let v0 = b.ld(MemSpace::Global, Type::U32, addr, 0);
    // Shared scratch slot for this thread (wraps in 256 bytes).
    let soff = b.and(Type::U32, off, 0xFCu32);
    let head = b.block("head");
    let exit = b.block("exit");
    let i = b.imm(0);
    let acc = b.mov(Type::U32, v0);
    b.jump(head);
    b.select(head);
    let mut v = acc;
    for (j, op) in ops.iter().enumerate() {
        let c = (j as u32 + 1) | 1;
        v = match op {
            0 => b.add(Type::U32, v, c),
            1 => b.mul(Type::U32, v, c),
            2 => b.xor(Type::U32, v, i),
            3 => {
                // In-place read-modify-write: forces a region cut.
                let t = b.ld(MemSpace::Global, Type::U32, addr, 0);
                let u = b.add(Type::U32, t, v);
                b.st(MemSpace::Global, addr, 0, u);
                u
            }
            4 => {
                // Guarded update: odd lanes only.
                let bit = b.and(Type::U32, tid, 1u32);
                let p = b.setp(Cmp::Eq, Type::U32, bit, 1u32);
                let shadow = b.mov(Type::U32, v);
                b.guarded(p, false, |b| {
                    let u = b.add(Type::U32, v, 17u32);
                    b.mov_to(Type::U32, shadow, u);
                });
                shadow
            }
            5 => {
                // Divergent diamond on the low tid bit.
                let bit = b.and(Type::U32, tid, 1u32);
                let p = b.setp(Cmp::Eq, Type::U32, bit, 0u32);
                let then_ = b.block(format!("then{j}"));
                let else_ = b.block(format!("else{j}"));
                let join = b.block(format!("join{j}"));
                let merged = b.mov(Type::U32, v);
                b.branch(p, false, then_, else_);
                b.select(then_);
                let tv = b.add(Type::U32, v, 3u32);
                b.mov_to(Type::U32, merged, tv);
                b.jump(join);
                b.select(else_);
                let ev = b.sub(Type::U32, v, 1u32);
                b.mov_to(Type::U32, merged, ev);
                b.jump(join);
                b.select(join);
                merged
            }
            6 => {
                // Shared-memory round trip.
                b.st(MemSpace::Shared, soff, 0, v);
                if with_barrier {
                    b.bar();
                }
                let t = b.ld(MemSpace::Shared, Type::U32, soff, 0);
                b.or(Type::U32, t, 1u32)
            }
            _ => b.shr(Type::U32, v, c % 9),
        };
    }
    b.mov_to(Type::U32, acc, v);
    let ni = b.add(Type::U32, i, 1u32);
    b.mov_to(Type::U32, i, ni);
    let p = b.setp(Cmp::Lt, Type::U32, i, 3u32);
    b.branch(p, false, head, exit);
    b.select(exit);
    b.st(MemSpace::Global, out, 0, acc);
    b.ret();
    let k = b.finish();
    penny_ir::validate(&k).expect("generated kernel must validate");
    k
}

/// Builds a CSR-style irregular kernel from an op script. One thread
/// per row walks `CI[RP[row]..RP[row+1]]` — a data-dependent,
/// warp-divergent trip count — performing indirect loads
/// (`XV[CI[j]]`), script-driven accumulator updates (guarded updates,
/// pointer chases, data-dependent atomic scatters, in-place row
/// read-modify-writes), then stores the row result and bumps a
/// data-dependent histogram bucket.
///
/// Parameters: `RP` (row pointers), `CI` (column indices), `XV`
/// (input vector), `Y` (row output), `H` (16-bucket histogram).
pub fn build_sparse_kernel(ops: &[u8], topo: &CsrTopo) -> Kernel {
    let _ = topo; // topology shapes inputs, not code; kept for signature symmetry
    let mut b = KernelBuilder::new("csrgen", &["RP", "CI", "XV", "Y", "H"]);
    b.block("entry");
    let tid = b.special(Special::TidX);
    let ntid = b.special(Special::NTidX);
    let cta = b.special(Special::CtaIdX);
    let row = b.mad(Type::U32, cta, ntid, tid);
    let rp = b.ld_param("RP");
    let ci = b.ld_param("CI");
    let xv = b.ld_param("XV");
    let y = b.ld_param("Y");
    let h = b.ld_param("H");
    let roff = b.shl(Type::U32, row, 2u32);
    let rpa = b.add(Type::U32, rp, roff);
    let start = b.ld(MemSpace::Global, Type::U32, rpa, 0);
    let end = b.ld(MemSpace::Global, Type::U32, rpa, 4);
    let ya = b.add(Type::U32, y, roff);
    let head = b.block("head");
    let body = b.block("body");
    let exit = b.block("exit");
    let j = b.mov(Type::U32, start);
    let acc = b.mov(Type::U32, row);
    b.jump(head);
    b.select(head);
    let p = b.setp(Cmp::Lt, Type::U32, j, end);
    b.branch(p, false, body, exit);
    b.select(body);
    // Indirect column and value loads: the address-generation path.
    let joff = b.shl(Type::U32, j, 2u32);
    let cia = b.add(Type::U32, ci, joff);
    let c = b.ld(MemSpace::Global, Type::U32, cia, 0);
    let coff = b.shl(Type::U32, c, 2u32);
    let xva = b.add(Type::U32, xv, coff);
    let x = b.ld(MemSpace::Global, Type::U32, xva, 0);
    let mut v = acc;
    for (idx, op) in ops.iter().enumerate() {
        let k = (idx as u32 + 1) | 1;
        v = match op {
            0 => b.add(Type::U32, v, x),
            1 => b.xor(Type::U32, v, c),
            2 => b.mad(Type::U32, v, 3u32, x),
            3 => {
                // Data-dependent guarded update: only when XV[c] is odd.
                let bit = b.and(Type::U32, x, 1u32);
                let p = b.setp(Cmp::Eq, Type::U32, bit, 1u32);
                let shadow = b.mov(Type::U32, v);
                b.guarded(p, false, |b| {
                    let u = b.xor(Type::U32, v, c);
                    b.mov_to(Type::U32, shadow, u);
                });
                shadow
            }
            4 => b.min(Type::U32, v, x),
            5 => {
                // Pointer chase: a second, value-dependent indirection.
                let c2 = b.and(Type::U32, x, SPARSE_ROWS - 1);
                let o2 = b.shl(Type::U32, c2, 2u32);
                let a2 = b.add(Type::U32, xv, o2);
                let x2 = b.ld(MemSpace::Global, Type::U32, a2, 0);
                b.add(Type::U32, v, x2)
            }
            6 => {
                // Data-dependent atomic scatter; the returned old value
                // feeds the accumulator, so the store is observed.
                let bucket = b.and(Type::U32, x, 15u32);
                let boff = b.shl(Type::U32, bucket, 2u32);
                let ha = b.add(Type::U32, h, boff);
                let old = b.atom(AtomOp::Add, MemSpace::Global, ha, 0, k);
                b.xor(Type::U32, v, old)
            }
            _ => {
                // In-place row read-modify-write: forces a region cut
                // on an indirectly addressed store.
                let t = b.ld(MemSpace::Global, Type::U32, ya, 0);
                let u = b.add(Type::U32, t, v);
                b.st(MemSpace::Global, ya, 0, u);
                u
            }
        };
    }
    b.mov_to(Type::U32, acc, v);
    let nj = b.add(Type::U32, j, 1u32);
    b.mov_to(Type::U32, j, nj);
    b.jump(head);
    b.select(exit);
    // Row result plus a data-dependent histogram bump.
    b.st(MemSpace::Global, ya, 0, acc);
    let bucket = b.and(Type::U32, acc, 15u32);
    let boff = b.shl(Type::U32, bucket, 2u32);
    let ha = b.add(Type::U32, h, boff);
    b.atom(AtomOp::Add, MemSpace::Global, ha, 0, 1u32);
    b.ret();
    let k = b.finish();
    penny_ir::validate(&k).expect("generated sparse kernel must validate");
    k
}

/// A fault plan sized to a generated kernel's geometry: `count`
/// single-bit flips drawn deterministically from `seed` over the
/// launch's blocks/warps, all 32 lanes, the kernel's register count,
/// and the 33-bit parity codeword.
pub fn fault_plan(seed: u64, dims: LaunchDims, regs: u32, count: usize) -> FaultPlan {
    let warps = dims.threads_per_block().div_ceil(32).max(1);
    FaultPlan::random(seed, count, dims.blocks(), warps, 32, regs, 33, 60)
}

/// Compiles under a Penny config, treating compiler rejections (and
/// panics from overwrite-prevention edge cases on generator-shaped
/// kernels) as `None`: generative suites prove *engine* properties, so
/// kernels the Penny compiler cannot yet instrument are skipped rather
/// than failed.
pub fn try_compile(k: &Kernel, cfg: PennyConfig) -> Option<Protected> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| penny_core::compile(k, &cfg)))
        .ok()
        .and_then(|r| r.ok())
}

/// One interpreter leg's outcome: the run result plus final memory
/// (partial on error — compared only between error legs).
pub type PairLeg = (Result<RunStats, crate::SimError>, GlobalMemory);

/// Runs one launch on both interpreters — the pre-decoded fast path
/// and the always-decode reference — seeded from `image`, and returns
/// `(fast, reference)` legs. Engine errors are returned, not
/// panicked: an error is a *divergence* only if the two legs disagree
/// on it.
pub fn try_run_pair(
    protected: &Protected,
    dims: LaunchDims,
    gpu: &GpuConfig,
    faults: &FaultPlan,
    image: &MemImage,
) -> (PairLeg, PairLeg) {
    let run = |reference: bool| {
        let mut global = GlobalMemory::new();
        image.apply(&mut global);
        let launch = engine::LaunchConfig::new(dims, image.params.clone())
            .with_faults(faults.clone());
        let stats = if reference {
            engine::run_decode_reference(gpu, protected, &launch, &mut global)
        } else {
            engine::run(gpu, protected, &launch, &mut global)
        };
        (stats, global)
    };
    (run(false), run(true))
}

/// [`try_run_pair`] for runs expected to succeed (the property-suite
/// entry point).
///
/// # Panics
///
/// Panics if either interpreter leg returns a [`crate::SimError`].
pub fn run_pair(
    protected: &Protected,
    dims: LaunchDims,
    gpu: &GpuConfig,
    faults: &FaultPlan,
    image: &MemImage,
) -> ((RunStats, GlobalMemory), (RunStats, GlobalMemory)) {
    let ((fast, fast_mem), (reference, ref_mem)) =
        try_run_pair(protected, dims, gpu, faults, image);
    (
        (fast.expect("decoded run"), fast_mem),
        (reference.expect("decode_reference run"), ref_mem),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_from_seed_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(KernelSpec::from_seed(seed), KernelSpec::from_seed(seed));
        }
    }

    #[test]
    fn spec_render_parse_round_trips() {
        for seed in 0..64u64 {
            let spec = KernelSpec::from_seed(splitmix64(seed));
            let back = KernelSpec::parse(&spec.render())
                .unwrap_or_else(|| panic!("unparseable: {}", spec.render()));
            assert_eq!(spec, back, "round trip failed for {}", spec.render());
            assert_eq!(spec.name(), back.name());
        }
    }

    #[test]
    fn both_families_build_and_validate() {
        let dense = KernelSpec::dense(vec![0, 3, 4, 5, 6], true);
        let sparse = KernelSpec::sparse(vec![0, 1, 3, 5, 6, 7], 0x1234, 6);
        for spec in [dense, sparse] {
            let k = spec.build();
            penny_ir::validate(&k).expect("validate");
            assert!(k.num_blocks() >= 3);
            let image = spec.image();
            assert!(!image.params.is_empty());
        }
    }

    #[test]
    fn csr_topology_is_well_formed() {
        for seed in 0..32u64 {
            let t = CsrTopo::generate(seed, 6);
            assert_eq!(t.row_ptr.len() as u32, SPARSE_ROWS + 1);
            assert_eq!(t.x.len() as u32, SPARSE_ROWS);
            assert_eq!(*t.row_ptr.last().expect("last") as usize, t.cols.len());
            assert!(!t.cols.is_empty(), "at least one nonzero");
            for w in t.row_ptr.windows(2) {
                assert!(w[0] <= w[1], "row pointers must be monotone");
            }
            for &c in &t.cols {
                assert!(c < SPARSE_ROWS);
            }
        }
    }

    #[test]
    fn fault_plan_matches_geometry() {
        let plan = fault_plan(7, LaunchDims::linear(2, 64), 10, 5);
        assert_eq!(plan.injections.len(), 5);
        for inj in &plan.injections {
            assert!(inj.block < 2 && inj.warp < 2 && inj.lane < 32);
            assert!(inj.reg < 10 && inj.bit < 33);
            assert!((1..60).contains(&inj.after_warp_insts));
        }
    }
}
