//! Versioned binary serialization of fault-free [`Recording`]s.
//!
//! A recording is the expensive half of a conformance campaign: one
//! traced fault-free run per (workload, scheme) pair, whose wave marks,
//! region-boundary snapshots, and register access trace answer every
//! injection site afterwards. The ROADMAP numbers make the cost
//! concrete — recording MT takes 0.568 ms against 0.035 ms per forked
//! site, and SGEMM pays 3.6 ms per record — so repeated campaigns on an
//! unchanged (kernel text, `PennyConfig`, `GpuConfig`) triple should
//! not re-trace at all. This module gives `Recording` a stable on-disk
//! form so `penny-bench`'s recording store can persist them under a
//! `penny_cache::recording_key` content fingerprint.
//!
//! # Format
//!
//! Little-endian throughout. The header is `b"PREC"`, a `u32` format
//! version ([`RECORDING_FORMAT_VERSION`]), and the caller-supplied
//! `u64` content fingerprint; [`Recording::deserialize`] rejects a
//! wrong magic, an unknown version, or a fingerprint that does not
//! match the caller's expectation *before* touching the body, so a
//! stale or foreign file can never masquerade as a valid recording.
//! After the header comes a shared page table: every distinct
//! global-memory page in the recording, deduplicated by `Arc` identity.
//! The recorded memories (wave start/end marks, snapshot heaps, the
//! final image) fork from one another copy-on-write, so they share
//! almost every page; interning restores both the compactness and the
//! sharing on reload. The body then walks the recording's fields in a
//! fixed order.
//!
//! Two reconstruction shortcuts keep the format small and honest:
//!
//! * register files are persisted as their decoded values only — a
//!   fault-free recording never has a dirty register, so
//!   `words[r] == encode(values[r])` and re-encoding at load is
//!   bit-identical;
//! * the decoded program and the block→wave index are rebuilt from the
//!   `Protected` artifact and the wave list instead of being stored
//!   (both are deterministic functions of them).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use penny_coding::Codec;
use penny_core::{LaunchDims, Protected};
use penny_ir::RegionId;

use crate::config::GpuConfig;
use crate::engine::{BlockCtx, LaunchConfig, RunStats, ThreadCtx, WaveState};
use crate::memory::{GlobalMemory, SharedMemory, PAGE_WORDS};
use crate::program::Program;
use crate::regfile::{RegFile, RfStats};
use crate::snapshot::{Access, Recording, RecordingCounters, Snap, WarpTrace, WaveRec};
use crate::warp::{StackEntry, Warp, WarpSnapshot};

/// File magic: "Penny RECording".
const MAGIC: &[u8; 4] = b"PREC";

/// Current on-disk format version. Any layout change bumps this, which
/// invalidates every persisted recording at load time.
pub const RECORDING_FORMAT_VERSION: u32 = 1;

/// Why a persisted recording was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file does not start with the recording magic.
    BadMagic,
    /// The file's format version is not [`RECORDING_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file's content fingerprint does not match the caller's
    /// expected (kernel text, config, GPU config) fingerprint — the
    /// file is stale or belongs to a different triple.
    FingerprintMismatch {
        /// Fingerprint the caller computed for the current triple.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// The file ended before the structure did.
    Truncated,
    /// The body is structurally invalid (bad index, impossible length).
    Malformed(String),
    /// The body is inconsistent with the artifact or GPU configuration
    /// it is being loaded against.
    ConfigMismatch(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a recording file (bad magic)"),
            LoadError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported recording format version {v} (expected \
                     {RECORDING_FORMAT_VERSION})"
                )
            }
            LoadError::FingerprintMismatch { expected, found } => write!(
                f,
                "recording fingerprint mismatch: expected {expected:#018x}, file has \
                 {found:#018x}"
            ),
            LoadError::Truncated => write!(f, "recording file is truncated"),
            LoadError::Malformed(m) => write!(f, "malformed recording: {m}"),
            LoadError::ConfigMismatch(m) => {
                write!(f, "recording does not match the current configuration: {m}")
            }
        }
    }
}

impl Error for LoadError {}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let end = self.pos.checked_add(n).ok_or(LoadError::Truncated)?;
        if end > self.bytes.len() {
            return Err(LoadError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bulk-decodes `n` little-endian `u32`s in one bounds check. The
    /// element-at-a-time `u32()` path costs a range check and a `pos`
    /// update per word, which dominates load time for multi-megabyte
    /// recordings (pages, register files, traces are all `u32` runs).
    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, LoadError> {
        let raw = self.take(n.checked_mul(4).ok_or(LoadError::Truncated)?)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Bulk-decodes `n` little-endian `u64`s (see [`Reader::u32_vec`]).
    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, LoadError> {
        let raw = self.take(n.checked_mul(8).ok_or(LoadError::Truncated)?)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn bool(&mut self) -> Result<bool, LoadError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(LoadError::Malformed(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a container length and sanity-checks it against the bytes
    /// remaining (each element costs at least `min_elem` bytes), so a
    /// corrupted length cannot drive a huge allocation.
    fn len(&mut self, min_elem: usize) -> Result<usize, LoadError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n.saturating_mul(min_elem.max(1) as u64) > remaining {
            return Err(LoadError::Truncated);
        }
        Ok(n as usize)
    }

    fn done(&self) -> Result<(), LoadError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(LoadError::Malformed(format!(
                "{} trailing bytes after the recording body",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Global-memory pages interned by `Arc` identity: recorded memories
/// fork copy-on-write from one another, so most pages are shared and
/// serialize once.
#[derive(Default)]
struct PageTable {
    ids: HashMap<*const [u32; PAGE_WORDS], u32>,
    pages: Vec<Arc<[u32; PAGE_WORDS]>>,
}

impl PageTable {
    fn intern(&mut self, pg: &Arc<[u32; PAGE_WORDS]>) -> u32 {
        let ptr = Arc::as_ptr(pg);
        if let Some(&id) = self.ids.get(&ptr) {
            return id;
        }
        let id = self.pages.len() as u32;
        self.pages.push(Arc::clone(pg));
        self.ids.insert(ptr, id);
        id
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &RunStats) {
    put_u64(buf, s.cycles);
    put_u64(buf, s.instructions);
    put_u64(buf, s.warp_instructions);
    put_u64(buf, s.rf.reads);
    put_u64(buf, s.rf.writes);
    put_u64(buf, s.rf.detected);
    put_u64(buf, s.rf.corrected);
    put_u64(buf, s.rf.decoded_reads);
    put_u64(buf, s.recoveries);
    put_u64(buf, s.reexec_instructions);
    put_u64(buf, s.global_loads);
    put_u64(buf, s.global_stores);
    put_u64(buf, s.shared_accesses);
    put_u64(buf, s.barriers);
    put_u64(buf, s.skipped_cycles);
}

fn get_stats(r: &mut Reader<'_>) -> Result<RunStats, LoadError> {
    Ok(RunStats {
        cycles: r.u64()?,
        instructions: r.u64()?,
        warp_instructions: r.u64()?,
        rf: RfStats {
            reads: r.u64()?,
            writes: r.u64()?,
            detected: r.u64()?,
            corrected: r.u64()?,
            decoded_reads: r.u64()?,
        },
        recoveries: r.u64()?,
        reexec_instructions: r.u64()?,
        global_loads: r.u64()?,
        global_stores: r.u64()?,
        shared_accesses: r.u64()?,
        barriers: r.u64()?,
        skipped_cycles: r.u64()?,
    })
}

fn put_global(buf: &mut Vec<u8>, table: &mut PageTable, mem: &GlobalMemory) {
    put_u64(buf, mem.reads);
    put_u64(buf, mem.writes);
    let mut keys: Vec<u32> = mem.pages().keys().copied().collect();
    keys.sort_unstable();
    put_u64(buf, keys.len() as u64);
    for p in keys {
        put_u32(buf, p);
        put_u32(buf, table.intern(&mem.pages()[&p]));
    }
}

fn get_global(
    r: &mut Reader<'_>,
    pages: &[Arc<[u32; PAGE_WORDS]>],
) -> Result<GlobalMemory, LoadError> {
    let reads = r.u64()?;
    let writes = r.u64()?;
    let n = r.len(8)?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let p = r.u32()?;
        let id = r.u32()? as usize;
        let pg = pages
            .get(id)
            .ok_or_else(|| LoadError::Malformed(format!("page-table index {id}")))?;
        if map.insert(p, Arc::clone(pg)).is_some() {
            return Err(LoadError::Malformed(format!("duplicate page {p}")));
        }
    }
    Ok(GlobalMemory::from_parts(map, reads, writes))
}

fn put_shared(buf: &mut Vec<u8>, s: &SharedMemory) {
    put_u64(buf, s.reads);
    put_u64(buf, s.writes);
    let words = s.words();
    put_u64(buf, words.len() as u64);
    for &w in words {
        put_u32(buf, w);
    }
}

fn get_shared(r: &mut Reader<'_>) -> Result<SharedMemory, LoadError> {
    let reads = r.u64()?;
    let writes = r.u64()?;
    let n = r.len(4)?;
    let words = r.u32_vec(n)?;
    Ok(SharedMemory::from_parts(words, reads, writes))
}

fn put_regfile(buf: &mut Vec<u8>, rf: &RegFile) {
    debug_assert_eq!(rf.dirty_count(), 0, "recordings persist clean register files");
    let values = rf.values();
    put_u64(buf, values.len() as u64);
    for &v in values {
        put_u32(buf, v);
    }
}

fn get_regfile(
    r: &mut Reader<'_>,
    config: &GpuConfig,
    codec: &Option<Codec>,
) -> Result<RegFile, LoadError> {
    let n = r.len(4)?;
    let values = r.u32_vec(n)?;
    Ok(RegFile::from_values_with(values, config.rf, codec.clone()))
}

fn put_stack(buf: &mut Vec<u8>, stack: &[StackEntry]) {
    put_u64(buf, stack.len() as u64);
    for e in stack {
        put_u64(buf, e.pc as u64);
        put_u64(buf, e.reconv as u64);
        put_u32(buf, e.mask);
    }
}

fn get_stack(r: &mut Reader<'_>) -> Result<Vec<StackEntry>, LoadError> {
    let n = r.len(20)?;
    (0..n)
        .map(|_| {
            Ok(StackEntry {
                pc: r.u64()? as usize,
                reconv: r.u64()? as usize,
                mask: r.u32()?,
            })
        })
        .collect()
}

fn put_warp(buf: &mut Vec<u8>, w: &Warp) {
    put_u32(buf, w.id);
    put_u32(buf, w.base_thread);
    put_u32(buf, w.width);
    put_stack(buf, &w.stack);
    put_u32(buf, w.exited);
    put_u64(buf, w.stall_until);
    put_bool(buf, w.at_barrier);
    put_u64(buf, w.executed);
    match &w.snapshot {
        None => put_bool(buf, false),
        Some(s) => {
            put_bool(buf, true);
            put_stack(buf, &s.stack);
            put_u32(buf, s.exited);
            put_u32(buf, s.region.0);
            put_u64(buf, s.executed);
        }
    }
    put_bool(buf, w.atomic_since_snapshot);
}

fn get_warp(r: &mut Reader<'_>) -> Result<Warp, LoadError> {
    let id = r.u32()?;
    let base_thread = r.u32()?;
    let width = r.u32()?;
    let stack = get_stack(r)?;
    let exited = r.u32()?;
    let stall_until = r.u64()?;
    let at_barrier = r.bool()?;
    let executed = r.u64()?;
    let snapshot = if r.bool()? {
        Some(WarpSnapshot {
            stack: get_stack(r)?,
            exited: r.u32()?,
            region: RegionId(r.u32()?),
            executed: r.u64()?,
        })
    } else {
        None
    };
    let atomic_since_snapshot = r.bool()?;
    Ok(Warp {
        id,
        base_thread,
        width,
        stack,
        exited,
        stall_until,
        at_barrier,
        executed,
        snapshot,
        atomic_since_snapshot,
    })
}

fn put_state(buf: &mut Vec<u8>, st: &WaveState) {
    put_u64(buf, st.cycle);
    put_u64(buf, st.mem_busy_until);
    put_u64(buf, st.rr_cursor as u64);
    put_u64(buf, st.blocks.len() as u64);
    for b in &st.blocks {
        put_u32(buf, b.index);
        put_u32(buf, b.cta.0);
        put_u32(buf, b.cta.1);
        put_shared(buf, &b.shared);
        put_u64(buf, b.threads.len() as u64);
        for t in &b.threads {
            put_u32(buf, t.tid.0);
            put_u32(buf, t.tid.1);
            put_regfile(buf, &t.rf);
        }
        put_u64(buf, b.warps.len() as u64);
        for w in &b.warps {
            put_warp(buf, w);
        }
    }
}

fn get_state(
    r: &mut Reader<'_>,
    config: &GpuConfig,
    codec: &Option<Codec>,
) -> Result<WaveState, LoadError> {
    let cycle = r.u64()?;
    let mem_busy_until = r.u64()?;
    let rr_cursor = r.u64()? as usize;
    let nblocks = r.len(1)?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let index = r.u32()?;
        let cta = (r.u32()?, r.u32()?);
        let shared = get_shared(r)?;
        let nthreads = r.len(1)?;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let tid = (r.u32()?, r.u32()?);
            let rf = get_regfile(r, config, codec)?;
            threads.push(ThreadCtx { rf, tid });
        }
        let nwarps = r.len(1)?;
        let warps = (0..nwarps).map(|_| get_warp(r)).collect::<Result<Vec<Warp>, _>>()?;
        blocks.push(BlockCtx { index, cta, shared, threads, warps });
    }
    Ok(WaveState { blocks, cycle, mem_busy_until, rr_cursor })
}

fn put_trace(buf: &mut Vec<u8>, tr: &WarpTrace) {
    put_u64(buf, tr.final_executed);
    put_u32(buf, tr.width);
    put_u64(buf, tr.num_cells() as u64);
    for i in 0..tr.num_cells() {
        let cell = tr.cell(i);
        put_u64(buf, cell.len() as u64);
        for a in cell {
            put_u64(buf, a.idx);
            put_bool(buf, a.read);
        }
    }
    put_u64(buf, tr.pcs.len() as u64);
    for &pc in &tr.pcs {
        put_u32(buf, pc);
    }
    put_u64(buf, tr.masks.len() as u64);
    for &m in &tr.masks {
        put_u32(buf, m);
    }
}

fn get_trace(r: &mut Reader<'_>, num_regs: usize) -> Result<WarpTrace, LoadError> {
    let final_executed = r.u64()?;
    let width = r.u32()?;
    let ncells = r.len(8)?;
    if ncells != 32 * num_regs {
        return Err(LoadError::Malformed(format!(
            "warp trace has {ncells} cells, expected {}",
            32 * num_regs
        )));
    }
    // The CSR layout rebuilds from exactly two growing vectors; each
    // cell decodes its fixed 9-byte (u64 idx, bool read) pairs from a
    // single `take`, so the whole trace section — the bulk of a large
    // recording — costs one bounds check per cell, not per access.
    let mut offsets = Vec::with_capacity(ncells + 1);
    offsets.push(0u32);
    let mut flat = Vec::new();
    for _ in 0..ncells {
        let n = r.len(9)?;
        let raw = r.take(9 * n)?;
        flat.reserve(n);
        for c in raw.chunks_exact(9) {
            let read = match c[8] {
                0 => false,
                1 => true,
                b => return Err(LoadError::Malformed(format!("invalid bool byte {b}"))),
            };
            flat.push(Access { idx: u64::from_le_bytes(c[..8].try_into().unwrap()), read });
        }
        let end = u32::try_from(flat.len())
            .map_err(|_| LoadError::Malformed("access trace exceeds u32 range".into()))?;
        offsets.push(end);
    }
    let npcs = r.len(4)?;
    let pcs = r.u32_vec(npcs)?;
    let nmasks = r.len(4)?;
    let masks = r.u32_vec(nmasks)?;
    Ok(WarpTrace::from_csr(offsets, flat, final_executed, width, pcs, masks))
}

impl Recording {
    /// Serializes the recording to the versioned binary format, stamped
    /// with `fingerprint` (the `penny_cache::recording_key` of the
    /// (kernel text, compile config, GPU config) triple it was traced
    /// on). [`Recording::deserialize`] refuses any other fingerprint.
    pub fn serialize(&self, fingerprint: u64) -> Vec<u8> {
        let mut table = PageTable::default();
        let mut body = Vec::new();

        // Launch geometry and parameters (recordings are fault-free, so
        // the fault plan is implicitly empty).
        put_u32(&mut body, self.launch.dims.block.0);
        put_u32(&mut body, self.launch.dims.block.1);
        put_u32(&mut body, self.launch.dims.grid.0);
        put_u32(&mut body, self.launch.dims.grid.1);
        put_u64(&mut body, self.launch.params.len() as u64);
        for &p in &self.launch.params {
            put_u32(&mut body, p);
        }

        put_u64(&mut body, self.num_regs as u64);
        put_u32(&mut body, self.warps_per_block);
        put_stats(&mut body, &self.final_stats);
        put_u64(&mut body, self.counters.snapshots);
        put_u64(&mut body, self.counters.total_warp_insts);

        put_u64(&mut body, self.waves.len() as u64);
        for w in &self.waves {
            put_u64(&mut body, w.sm as u64);
            put_u64(&mut body, w.blocks.len() as u64);
            for &b in &w.blocks {
                put_u32(&mut body, b);
            }
            put_stats(&mut body, &w.stats_before);
            put_stats(&mut body, &w.stats_after);
            put_u64(&mut body, w.cycles);
            put_global(&mut body, &mut table, &w.global_start);
            put_global(&mut body, &mut table, &w.global_end);
            put_u64(&mut body, w.snaps.len() as u64);
            for s in &w.snaps {
                put_state(&mut body, &s.state);
                put_global(&mut body, &mut table, &s.global);
                put_stats(&mut body, &s.stats);
                put_u64(&mut body, s.executed.len() as u64);
                for &e in &s.executed {
                    put_u64(&mut body, e);
                }
            }
        }

        let mut keys: Vec<(u32, u32)> = self.accesses.keys().copied().collect();
        keys.sort_unstable();
        put_u64(&mut body, keys.len() as u64);
        for k in keys {
            put_u32(&mut body, k.0);
            put_u32(&mut body, k.1);
            put_trace(&mut body, &self.accesses[&k]);
        }

        put_global(&mut body, &mut table, &self.final_global);

        // Header + interned page table + body. The table is complete
        // only after the body interned every page, so it is assembled
        // last but written first.
        let mut out =
            Vec::with_capacity(16 + table.pages.len() * (4 * PAGE_WORDS) + body.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, RECORDING_FORMAT_VERSION);
        put_u64(&mut out, fingerprint);
        put_u64(&mut out, table.pages.len() as u64);
        for pg in &table.pages {
            for &w in pg.iter() {
                put_u32(&mut out, w);
            }
        }
        out.extend_from_slice(&body);
        out
    }

    /// Reloads a recording persisted by [`Recording::serialize`],
    /// validating the header against `expected_fingerprint` and
    /// rebuilding the decoded program from `protected` and the
    /// register-file encodings from `config`.
    ///
    /// # Errors
    ///
    /// [`LoadError::BadMagic`] / [`LoadError::UnsupportedVersion`] /
    /// [`LoadError::FingerprintMismatch`] when the header does not
    /// match; [`LoadError::Truncated`] / [`LoadError::Malformed`] on a
    /// damaged body; [`LoadError::ConfigMismatch`] when the body is
    /// inconsistent with `protected` or `config` (a fingerprint
    /// collision or a caller bug).
    pub fn deserialize(
        bytes: &[u8],
        expected_fingerprint: u64,
        config: &GpuConfig,
        protected: &Protected,
    ) -> Result<Recording, LoadError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let version = r.u32()?;
        if version != RECORDING_FORMAT_VERSION {
            return Err(LoadError::UnsupportedVersion(version));
        }
        let found = r.u64()?;
        if found != expected_fingerprint {
            return Err(LoadError::FingerprintMismatch {
                expected: expected_fingerprint,
                found,
            });
        }

        // Built once and cloned per register file: a campaign-sized
        // recording reconstructs thousands of them, and the ECC codecs
        // carry lookup tables that are cheaper to copy than to rebuild.
        let codec = config.rf.scheme().codec();

        let npages = r.len(4 * PAGE_WORDS)?;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let raw = r.take(4 * PAGE_WORDS)?;
            let mut arr = [0u32; PAGE_WORDS];
            for (w, c) in arr.iter_mut().zip(raw.chunks_exact(4)) {
                *w = u32::from_le_bytes(c.try_into().unwrap());
            }
            pages.push(Arc::new(arr));
        }

        let dims = LaunchDims { block: (r.u32()?, r.u32()?), grid: (r.u32()?, r.u32()?) };
        let nparams = r.len(4)?;
        let params = r.u32_vec(nparams)?;
        let launch = LaunchConfig::new(dims, params);

        let program = Program::new(&protected.kernel);
        let num_regs = r.u64()? as usize;
        if num_regs != program.num_regs.max(1) {
            return Err(LoadError::ConfigMismatch(format!(
                "recording has {num_regs} registers, kernel has {}",
                program.num_regs.max(1)
            )));
        }
        let warps_per_block = r.u32()?;
        if warps_per_block != dims.threads_per_block().div_ceil(32) {
            return Err(LoadError::Malformed("warps-per-block disagrees with dims".into()));
        }
        let final_stats = get_stats(&mut r)?;
        let counters =
            RecordingCounters { snapshots: r.u64()?, total_warp_insts: r.u64()? };

        let num_sms = config.num_sms as usize;
        let nwaves = r.len(1)?;
        let mut waves = Vec::with_capacity(nwaves);
        let mut block_wave = HashMap::new();
        for k in 0..nwaves {
            let sm = r.u64()? as usize;
            if sm >= num_sms {
                return Err(LoadError::ConfigMismatch(format!(
                    "wave on SM {sm}, GPU has {num_sms}"
                )));
            }
            let nblocks = r.len(4)?;
            let blocks = r.u32_vec(nblocks)?;
            for &b in &blocks {
                if block_wave.insert(b, k).is_some() {
                    return Err(LoadError::Malformed(format!(
                        "block {b} scheduled in two waves"
                    )));
                }
            }
            let stats_before = get_stats(&mut r)?;
            let stats_after = get_stats(&mut r)?;
            let cycles = r.u64()?;
            let global_start = get_global(&mut r, &pages)?;
            let global_end = get_global(&mut r, &pages)?;
            let nsnaps = r.len(1)?;
            let mut snaps = Vec::with_capacity(nsnaps);
            for _ in 0..nsnaps {
                let state = get_state(&mut r, config, &codec)?;
                let global = get_global(&mut r, &pages)?;
                let stats = get_stats(&mut r)?;
                let nexec = r.len(8)?;
                let executed = r.u64_vec(nexec)?;
                snaps.push(Snap { state, global, stats, executed });
            }
            waves.push(WaveRec {
                sm,
                blocks,
                stats_before,
                stats_after,
                cycles,
                global_start,
                global_end,
                snaps,
            });
        }

        let ntraces = r.len(8)?;
        let mut accesses = HashMap::with_capacity(ntraces);
        for _ in 0..ntraces {
            let key = (r.u32()?, r.u32()?);
            let trace = get_trace(&mut r, num_regs)?;
            if accesses.insert(key, trace).is_some() {
                return Err(LoadError::Malformed(format!("duplicate warp trace {key:?}")));
            }
        }

        let final_global = get_global(&mut r, &pages)?;
        r.done()?;

        Ok(Recording {
            protection: config.rf,
            num_sms,
            launch,
            program,
            waves,
            block_wave,
            accesses,
            num_regs,
            warps_per_block,
            final_stats,
            final_global,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_rejections_are_typed() {
        let config = GpuConfig::fermi();
        let kernel = penny_ir::parse_kernel(
            ".kernel f\nentry:\n mov.u32 %r0, 1\n st.global.u32 [%r0], %r0\n ret\n",
        )
        .expect("parse");
        let protected = Protected::passthrough(kernel);

        let err = Recording::deserialize(b"nope", 1, &config, &protected)
            .err()
            .expect("bad magic must fail");
        assert_eq!(err, LoadError::BadMagic);

        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(MAGIC);
        put_u32(&mut bad_version, RECORDING_FORMAT_VERSION + 1);
        put_u64(&mut bad_version, 1);
        let err = Recording::deserialize(&bad_version, 1, &config, &protected)
            .err()
            .expect("bad version must fail");
        assert_eq!(err, LoadError::UnsupportedVersion(RECORDING_FORMAT_VERSION + 1));

        let mut stale = Vec::new();
        stale.extend_from_slice(MAGIC);
        put_u32(&mut stale, RECORDING_FORMAT_VERSION);
        put_u64(&mut stale, 7);
        let err = Recording::deserialize(&stale, 8, &config, &protected)
            .err()
            .expect("stale fingerprint must fail");
        assert_eq!(err, LoadError::FingerprintMismatch { expected: 8, found: 7 });

        let mut truncated = stale.clone();
        truncated.truncate(10);
        let err = Recording::deserialize(&truncated, 7, &config, &protected)
            .err()
            .expect("truncated header must fail");
        assert_eq!(err, LoadError::Truncated);
    }

    #[test]
    fn reader_length_guard_rejects_absurd_lengths() {
        // A length claiming more elements than bytes remain must fail
        // without allocating.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert_eq!(r.len(8).expect_err("length guard"), LoadError::Truncated);
    }
}
