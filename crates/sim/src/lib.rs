#![warn(missing_docs)]
//! A SIMT GPU simulator with a protected register-file model — the
//! execution substrate of the Penny reproduction (stand-in for
//! GPGPU-Sim, per `DESIGN.md`).
//!
//! The simulator executes `penny-ir` kernels functionally (warps, SIMT
//! divergence with post-dominator reconvergence, barriers, atomics,
//! shared/global memories) under a warp-level timing model whose three
//! load-bearing effects are occupancy-dependent latency hiding, a
//! store-throughput-limited memory pipeline, and occupancy derived from
//! register/shared-memory pressure. The register file stores codewords
//! of a configurable scheme: parity (EDC) detections trigger **Penny's
//! idempotent recovery**; SECDED (ECC) corrects inline; an unprotected
//! RF corrupts silently.
//!
//! # Examples
//!
//! ```
//! use penny_core::{compile, LaunchDims, PennyConfig};
//! use penny_sim::{Gpu, GpuConfig, LaunchConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = penny_ir::parse_kernel(r#"
//!     .kernel inc .params A
//!     entry:
//!         mov.u32 %r0, %tid.x
//!         ld.param.u32 %r1, [A]
//!         mad.u32 %r2, %r0, 4, %r1
//!         ld.global.u32 %r3, [%r2]
//!         add.u32 %r4, %r3, 1
//!         st.global.u32 [%r2], %r4
//!         ret
//! "#)?;
//! let dims = LaunchDims::linear(1, 64);
//! let config = PennyConfig::penny().with_launch(dims);
//! let protected = compile(&kernel, &config)?;
//!
//! let mut gpu = Gpu::new(GpuConfig::fermi());
//! gpu.global_mut().write_slice(0x1000, &vec![7u32; 64]);
//! let stats = gpu.run(&protected, &LaunchConfig::new(dims, vec![0x1000]))?;
//! assert_eq!(gpu.global().read_slice(0x1000, 64), vec![8u32; 64]);
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod alu;
pub mod config;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod gen;
pub mod memory;
pub mod persist;
pub mod program;
pub mod recovery;
pub mod regfile;
pub mod snapshot;
pub mod warp;

use std::error::Error;
use std::fmt;

pub use config::{GpuConfig, RfProtection};
pub use engine::{LaunchConfig, RunStats};
pub use fault::{FaultPlan, Injection};
pub use memory::{GlobalMemory, SharedMemory};
pub use persist::{LoadError, RECORDING_FORMAT_VERSION};
pub use program::{DKind, DSrc, DecodedInst, Program, NO_REG};
pub use regfile::{ReadOutcome, RegFile, RfStats};
pub use snapshot::{
    EngineSnapshot, Recording, RecordingCounters, SiteClass, SiteRun, WarpStream,
};

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Launch configuration inconsistent with the kernel.
    BadLaunch(String),
    /// Recovery metadata missing or malformed.
    BadMetadata(String),
    /// A detected RF error with no recovery path (EDC without Penny
    /// metadata, or an uncorrectable pattern under ECC).
    UnrecoverableFault {
        /// Kernel name.
        kernel: String,
        /// Victim register id.
        reg: u32,
    },
    /// The machine made no progress (likely a barrier deadlock).
    Deadlock(String),
    /// The watchdog budget ([`GpuConfig::cycle_limit`]) was exhausted:
    /// the simulation was still making (possibly degenerate) progress
    /// but ran far beyond any plausible cycle count.
    CycleLimit {
        /// Kernel name.
        kernel: String,
        /// The configured budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadLaunch(m) => write!(f, "bad launch: {m}"),
            SimError::BadMetadata(m) => write!(f, "bad recovery metadata: {m}"),
            SimError::UnrecoverableFault { kernel, reg } => {
                write!(f, "unrecoverable register-file fault in `{kernel}` (reg {reg})")
            }
            SimError::Deadlock(k) => write!(f, "no forward progress in `{k}`"),
            SimError::CycleLimit { kernel, limit } => {
                write!(f, "`{kernel}` exceeded the cycle budget of {limit} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// The simulated GPU: configuration plus device (global) memory.
///
/// Global memory persists across launches, like a real device: write
/// inputs, run one or more kernels, read outputs.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    global: GlobalMemory,
}

impl Gpu {
    /// Creates a GPU with empty device memory.
    pub fn new(config: GpuConfig) -> Gpu {
        Gpu { config, global: GlobalMemory::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Device memory (read access).
    pub fn global(&self) -> &GlobalMemory {
        &self.global
    }

    /// Device memory (host writes).
    pub fn global_mut(&mut self) -> &mut GlobalMemory {
        &mut self.global
    }

    /// Launches a kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch/metadata mismatches, unrecoverable
    /// faults, or deadlock.
    pub fn run(
        &mut self,
        protected: &penny_core::Protected,
        launch: &LaunchConfig,
    ) -> Result<RunStats, SimError> {
        engine::run(&self.config, protected, launch, &mut self.global)
    }

    /// Launches a kernel and records a `sim` span on `rec`.
    ///
    /// Identical to [`Gpu::run`] when the recorder is disabled — the
    /// span (and its wall-clock read) only materializes for an enabled
    /// recorder.
    ///
    /// # Errors
    ///
    /// Same as [`Gpu::run`].
    pub fn run_observed(
        &mut self,
        protected: &penny_core::Protected,
        launch: &LaunchConfig,
        rec: &dyn penny_obs::Recorder,
    ) -> Result<RunStats, SimError> {
        engine::run_observed(&self.config, protected, launch, &mut self.global, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_core::{compile, LaunchDims, PennyConfig};

    fn inc_kernel() -> penny_ir::Kernel {
        penny_ir::parse_kernel(
            r#"
            .kernel inc .params A
            entry:
                mov.u32 %r0, %tid.x
                mov.u32 %r5, %ctaid.x
                mov.u32 %r6, %ntid.x
                mad.u32 %r7, %r5, %r6, %r0
                ld.param.u32 %r1, [A]
                mad.u32 %r2, %r7, 4, %r1
                ld.global.u32 %r3, [%r2]
                add.u32 %r4, %r3, 1
                st.global.u32 [%r2], %r4
                ret
        "#,
        )
        .expect("parse")
    }

    #[test]
    fn baseline_run_computes_correctly() {
        let dims = LaunchDims::linear(2, 64);
        let cfg = PennyConfig::unprotected().with_launch(dims);
        let p = compile(&inc_kernel(), &cfg).expect("compile");
        let mut gpu = Gpu::new(GpuConfig::fermi().with_rf(RfProtection::None));
        gpu.global_mut().write_slice(0x1000, &(0..128).collect::<Vec<u32>>());
        let stats = gpu.run(&p, &LaunchConfig::new(dims, vec![0x1000])).expect("run");
        let out = gpu.global().read_slice(0x1000, 128);
        assert_eq!(out, (1..=128).collect::<Vec<u32>>());
        assert!(stats.cycles > 0);
        assert!(stats.instructions >= 128 * 9);
    }

    #[test]
    fn penny_protected_run_matches_baseline_output() {
        let dims = LaunchDims::linear(2, 64);
        let cfg = PennyConfig::penny().with_launch(dims);
        let p = compile(&inc_kernel(), &cfg).expect("compile");
        let mut gpu = Gpu::new(GpuConfig::fermi());
        gpu.global_mut().write_slice(0x1000, &(0..128).collect::<Vec<u32>>());
        gpu.run(&p, &LaunchConfig::new(dims, vec![0x1000])).expect("run");
        assert_eq!(gpu.global().read_slice(0x1000, 128), (1..=128).collect::<Vec<u32>>());
    }

    #[test]
    fn param_count_mismatch_is_rejected() {
        let dims = LaunchDims::linear(1, 32);
        let cfg = PennyConfig::unprotected().with_launch(dims);
        let p = compile(&inc_kernel(), &cfg).expect("compile");
        let mut gpu = Gpu::new(GpuConfig::fermi().with_rf(RfProtection::None));
        let err = gpu.run(&p, &LaunchConfig::new(dims, vec![])).expect_err("must fail");
        assert!(matches!(err, SimError::BadLaunch(_)));
    }
}
