//! Scalar instruction semantics shared by the SIMT interpreter and the
//! recovery-slice evaluator.

use penny_ir::{Cmp, Op, Type};

/// Evaluates a value-producing ALU opcode over 32-bit operands.
///
/// Floats travel as IEEE-754 bit patterns. Integer division by zero
/// yields all-ones (the CUDA hardware convention); shifts mask their
/// amount to 5 bits.
///
/// # Panics
///
/// Panics on non-ALU opcodes (memory, control, pseudo-ops).
pub fn eval(op: Op, ty: Type, ty2: Type, srcs: &[u32]) -> u32 {
    let f = |i: usize| f32::from_bits(srcs[i]);
    let s = |i: usize| srcs[i] as i32;
    let u = |i: usize| srcs[i];
    match (op, ty) {
        (Op::Mov, _) => srcs[0],
        (Op::Add, Type::F32) => (f(0) + f(1)).to_bits(),
        (Op::Add, _) => u(0).wrapping_add(u(1)),
        (Op::Sub, Type::F32) => (f(0) - f(1)).to_bits(),
        (Op::Sub, _) => u(0).wrapping_sub(u(1)),
        (Op::Mul, Type::F32) => (f(0) * f(1)).to_bits(),
        (Op::Mul, _) => u(0).wrapping_mul(u(1)),
        (Op::MulHi, Type::S32) => {
            (((s(0) as i64 * s(1) as i64) >> 32) as u64 & 0xFFFF_FFFF) as u32
        }
        (Op::MulHi, _) => ((u(0) as u64 * u(1) as u64) >> 32) as u32,
        (Op::Mad, Type::F32) => (f(0) * f(1) + f(2)).to_bits(),
        (Op::Mad, _) => u(0).wrapping_mul(u(1)).wrapping_add(u(2)),
        (Op::Div, Type::F32) => (f(0) / f(1)).to_bits(),
        (Op::Div, Type::S32) => {
            if s(1) == 0 {
                u32::MAX
            } else {
                s(0).wrapping_div(s(1)) as u32
            }
        }
        (Op::Div, _) => {
            if u(1) == 0 {
                u32::MAX
            } else {
                u(0) / u(1)
            }
        }
        (Op::Rem, Type::S32) => {
            if s(1) == 0 {
                u(0)
            } else {
                s(0).wrapping_rem(s(1)) as u32
            }
        }
        (Op::Rem, _) => {
            if u(1) == 0 {
                u(0)
            } else {
                u(0) % u(1)
            }
        }
        (Op::Min, Type::F32) => f(0).min(f(1)).to_bits(),
        (Op::Min, Type::S32) => s(0).min(s(1)) as u32,
        (Op::Min, _) => u(0).min(u(1)),
        (Op::Max, Type::F32) => f(0).max(f(1)).to_bits(),
        (Op::Max, Type::S32) => s(0).max(s(1)) as u32,
        (Op::Max, _) => u(0).max(u(1)),
        (Op::Neg, Type::F32) => (-f(0)).to_bits(),
        (Op::Neg, _) => (s(0).wrapping_neg()) as u32,
        (Op::Abs, Type::F32) => f(0).abs().to_bits(),
        (Op::Abs, _) => s(0).wrapping_abs() as u32,
        (Op::And, _) => u(0) & u(1),
        (Op::Or, _) => u(0) | u(1),
        (Op::Xor, _) => u(0) ^ u(1),
        (Op::Not, _) => !u(0),
        (Op::Shl, _) => u(0).wrapping_shl(u(1) & 31),
        (Op::Shr, _) => u(0).wrapping_shr(u(1) & 31),
        (Op::Sra, _) => (s(0).wrapping_shr(u(1) & 31)) as u32,
        (Op::Setp(c), _) => eval_cmp(c, ty, srcs[0], srcs[1]) as u32,
        (Op::Selp, _) => {
            if srcs[2] != 0 {
                srcs[0]
            } else {
                srcs[1]
            }
        }
        (Op::Cvt, _) => eval_cvt(ty, ty2, srcs[0]),
        (Op::Sqrt, _) => f(0).sqrt().to_bits(),
        (Op::Rsqrt, _) => (1.0 / f(0).sqrt()).to_bits(),
        (Op::Rcp, _) => (1.0 / f(0)).to_bits(),
        (Op::Ex2, _) => f(0).exp2().to_bits(),
        (Op::Lg2, _) => f(0).log2().to_bits(),
        (Op::Sin, _) => f(0).sin().to_bits(),
        (Op::Cos, _) => f(0).cos().to_bits(),
        other => panic!("not an ALU op: {other:?}"),
    }
}

/// Comparison semantics for `setp`.
pub fn eval_cmp(cmp: Cmp, ty: Type, a: u32, b: u32) -> bool {
    match ty {
        Type::F32 => {
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            match cmp {
                Cmp::Eq => x == y,
                Cmp::Ne => x != y,
                Cmp::Lt => x < y,
                Cmp::Le => x <= y,
                Cmp::Gt => x > y,
                Cmp::Ge => x >= y,
            }
        }
        Type::S32 => {
            let (x, y) = (a as i32, b as i32);
            match cmp {
                Cmp::Eq => x == y,
                Cmp::Ne => x != y,
                Cmp::Lt => x < y,
                Cmp::Le => x <= y,
                Cmp::Gt => x > y,
                Cmp::Ge => x >= y,
            }
        }
        _ => match cmp {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        },
    }
}

fn eval_cvt(to: Type, from: Type, v: u32) -> u32 {
    match (to, from) {
        (Type::F32, Type::S32) => (v as i32 as f32).to_bits(),
        (Type::F32, Type::U32) => (v as f32).to_bits(),
        (Type::S32, Type::F32) => {
            let f = f32::from_bits(v);
            if f.is_nan() {
                0
            } else {
                (f as i32) as u32 // Rust saturates, matching PTX cvt.rzi
            }
        }
        (Type::U32, Type::F32) => {
            let f = f32::from_bits(v);
            if f.is_nan() {
                0
            } else {
                f as u32
            }
        }
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_wraps() {
        assert_eq!(eval(Op::Add, Type::U32, Type::U32, &[u32::MAX, 1]), 0);
        assert_eq!(eval(Op::Sub, Type::U32, Type::U32, &[0, 1]), u32::MAX);
        assert_eq!(eval(Op::Mul, Type::U32, Type::U32, &[3, 7]), 21);
        assert_eq!(eval(Op::Mad, Type::U32, Type::U32, &[2, 3, 4]), 10);
    }

    #[test]
    fn float_ops_use_bit_patterns() {
        let a = 1.5f32.to_bits();
        let b = 2.0f32.to_bits();
        assert_eq!(f32::from_bits(eval(Op::Add, Type::F32, Type::F32, &[a, b])), 3.5);
        assert_eq!(f32::from_bits(eval(Op::Mul, Type::F32, Type::F32, &[a, b])), 3.0);
        assert_eq!(
            f32::from_bits(eval(Op::Sqrt, Type::F32, Type::F32, &[4.0f32.to_bits()])),
            2.0
        );
    }

    #[test]
    fn division_by_zero_follows_cuda() {
        assert_eq!(eval(Op::Div, Type::U32, Type::U32, &[5, 0]), u32::MAX);
        assert_eq!(eval(Op::Rem, Type::U32, Type::U32, &[5, 0]), 5);
    }

    #[test]
    fn signed_vs_unsigned_comparisons() {
        let neg1 = (-1i32) as u32;
        assert!(eval_cmp(Cmp::Lt, Type::S32, neg1, 0));
        assert!(!eval_cmp(Cmp::Lt, Type::U32, neg1, 0));
        assert!(eval_cmp(Cmp::Ge, Type::U32, neg1, 0));
    }

    #[test]
    fn float_comparison_and_nan() {
        let nan = f32::NAN.to_bits();
        let one = 1.0f32.to_bits();
        assert!(!eval_cmp(Cmp::Lt, Type::F32, nan, one));
        assert!(!eval_cmp(Cmp::Eq, Type::F32, nan, nan));
        assert!(eval_cmp(Cmp::Ne, Type::F32, nan, nan));
    }

    #[test]
    fn conversions() {
        assert_eq!(eval_cvt(Type::F32, Type::S32, (-2i32) as u32), (-2.0f32).to_bits());
        assert_eq!(eval_cvt(Type::S32, Type::F32, (-2.7f32).to_bits()), (-2i32) as u32);
        assert_eq!(eval_cvt(Type::U32, Type::F32, 3.9f32.to_bits()), 3);
        assert_eq!(eval_cvt(Type::S32, Type::F32, f32::NAN.to_bits()), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(eval(Op::Shl, Type::U32, Type::U32, &[1, 33]), 2);
        assert_eq!(
            eval(Op::Sra, Type::S32, Type::S32, &[(-8i32) as u32, 1]),
            (-4i32) as u32
        );
    }

    #[test]
    fn mulhi_matches_wide_multiply() {
        assert_eq!(
            eval(Op::MulHi, Type::U32, Type::U32, &[u32::MAX, u32::MAX]),
            u32::MAX - 1
        );
        assert_eq!(eval(Op::MulHi, Type::S32, Type::S32, &[(-1i32) as u32, 2]), u32::MAX);
    }

    #[test]
    fn selp_selects_on_predicate() {
        assert_eq!(eval(Op::Selp, Type::U32, Type::U32, &[10, 20, 1]), 10);
        assert_eq!(eval(Op::Selp, Type::U32, Type::U32, &[10, 20, 0]), 20);
    }
}
