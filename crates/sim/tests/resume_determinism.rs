//! Resume determinism on *generated* kernels: a [`Recording`] must
//! answer any injection site bit-identically to a from-scratch run,
//! and [`Gpu::run_to_region`] / [`Gpu::resume_from`] must satisfy
//! their documented contract, for arbitrary members of the generator
//! families — not just the hand-written rigs in `snapshot_replay.rs`.

use proptest::prelude::*;
use proptest::test_runner::Reject;

use penny_coding::Scheme;
use penny_core::{PennyConfig, Protected};
use penny_sim::gen::{splitmix64, try_compile, KernelSpec};
use penny_sim::{
    FaultPlan, GlobalMemory, Gpu, GpuConfig, Injection, LaunchConfig, Recording,
    RfProtection, RunStats, SimError,
};

fn gpu_config() -> GpuConfig {
    GpuConfig::fermi().with_rf(RfProtection::Edc(Scheme::Parity))
}

/// From-scratch run of `plan` on a fresh GPU seeded with the spec's
/// input image.
fn cold(
    protected: &Protected,
    spec: &KernelSpec,
    plan: FaultPlan,
) -> Result<(RunStats, GlobalMemory), SimError> {
    let image = spec.image();
    let mut gpu = Gpu::new(gpu_config());
    image.apply(gpu.global_mut());
    let launch = LaunchConfig::new(spec.dims(), image.params.clone()).with_faults(plan);
    let stats = gpu.run(protected, &launch)?;
    Ok((stats, gpu.global().fork()))
}

/// A small deterministic site sample spread over the fault space.
fn sites(seed: u64, regs: u32, count: usize) -> Vec<Injection> {
    let mut s = seed;
    let mut draw = || {
        s = splitmix64(s);
        s
    };
    (0..count)
        .map(|_| Injection {
            block: (draw() % 3) as u32,
            warp: (draw() % 2) as u32,
            lane: (draw() % 32) as u32,
            reg: (draw() % u64::from(regs.max(1))) as u32,
            bit: (draw() % 33) as u32,
            after_warp_insts: 1 + draw() % 120,
        })
        .collect()
}

fn compile_penny(spec: &KernelSpec) -> Option<Protected> {
    let k = spec.build();
    try_compile(&k, PennyConfig::penny().with_launch(spec.dims()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every recorded site answer — stats, memory, counters, errors —
    /// is bit-identical to a from-scratch run of the same injection.
    #[test]
    fn recorded_sites_match_cold_runs_on_generated_kernels(
        ops in proptest::collection::vec(0u8..8, 1..9),
        topo_seed: u64,
        nnz in 1u8..7,
        site_seed: u64,
    ) {
        let spec = KernelSpec::sparse(ops, topo_seed, nnz);
        let protected = match compile_penny(&spec) {
            Some(p) => p,
            None => return Err(Reject), // honest scheme skip
        };
        let image = spec.image();
        let mut seeded = GlobalMemory::new();
        image.apply(&mut seeded);
        let launch = LaunchConfig::new(spec.dims(), image.params.clone());
        let cfg = gpu_config();
        let rec = Recording::record(&cfg, &protected, &launch, &seeded).expect("record");

        // The recording itself is a faithful fault-free run.
        let (plain_stats, plain_global) =
            cold(&protected, &spec, FaultPlan::none()).expect("plain");
        prop_assert_eq!(rec.stats(), &plain_stats);
        prop_assert_eq!(rec.global(), &plain_global);

        let regs = protected.kernel.vreg_limit();
        for inj in sites(site_seed, regs, 6) {
            let forked = rec.run_site(&cfg, &protected, inj);
            let scratch = cold(&protected, &spec, FaultPlan::single(inj));
            match (forked, scratch) {
                (Ok(site), Ok((cs, cg))) => {
                    prop_assert_eq!(&site.stats, &cs, "stats diverge at {:?}", inj);
                    prop_assert_eq!(&site.global, &cg, "memory diverges at {:?}", inj);
                }
                (Err(fe), Err(ce)) => prop_assert_eq!(fe, ce, "errors diverge at {:?}", inj),
                (f, c) => panic!(
                    "outcome shape diverges at {inj:?}: forked={f:?} cold_ok={}",
                    c.is_ok()
                ),
            }
        }
    }

    /// `run_to_region` + fault-free `resume_from` reproduces the plain
    /// run exactly, and faulty resumes honor the documented contract
    /// for triggers at or after the checkpointed progress.
    #[test]
    fn resume_from_matches_from_scratch_on_generated_kernels(
        ops in proptest::collection::vec(0u8..8, 1..9),
        topo_seed: u64,
        nnz in 1u8..7,
        site_seed: u64,
    ) {
        let spec = KernelSpec::sparse(ops, topo_seed, nnz);
        let protected = match compile_penny(&spec) {
            Some(p) => p,
            None => return Err(Reject),
        };
        prop_assume!(!protected.regions.is_empty());
        let region = protected.regions[protected.regions.len() / 2].id;

        let image = spec.image();
        let mut seeded = GlobalMemory::new();
        image.apply(&mut seeded);
        let launch = LaunchConfig::new(spec.dims(), image.params.clone());
        let mut gpu = Gpu::new(gpu_config());
        *gpu.global_mut() = seeded.fork();
        let snap = match gpu.run_to_region(&protected, &launch, region) {
            Ok(s) => s,
            // Some generated launches never enter the sampled region
            // (e.g. it sits on an untaken branch): nothing to resume.
            Err(SimError::BadMetadata(_)) => return Err(Reject),
            Err(e) => panic!("run_to_region: {e:?}"),
        };
        prop_assert_eq!(snap.region(), region);
        prop_assert!(
            gpu.global().contents_eq(&seeded),
            "run_to_region must not mutate device memory"
        );

        // Fault-free resume == plain run.
        let stats = gpu
            .resume_from(&protected, &snap, FaultPlan::none())
            .expect("fault-free resume");
        let (plain_stats, plain_global) =
            cold(&protected, &spec, FaultPlan::none()).expect("plain");
        prop_assert_eq!(&stats, &plain_stats);
        prop_assert_eq!(gpu.global(), &plain_global);

        // Faulty resumes: trigger past the snapshot's total progress is
        // necessarily at-or-after every warp's checkpointed progress.
        let base = snap.stats().warp_instructions;
        let regs = protected.kernel.vreg_limit();
        for mut inj in sites(site_seed, regs, 4) {
            inj.after_warp_insts += base;
            let plan = FaultPlan::single(inj);
            let resumed = gpu.resume_from(&protected, &snap, plan.clone());
            match (resumed, cold(&protected, &spec, plan)) {
                (Ok(rs), Ok((cs, cg))) => {
                    prop_assert_eq!(&rs, &cs, "resume stats diverge at {:?}", inj);
                    prop_assert_eq!(gpu.global(), &cg, "resume memory diverges at {:?}", inj);
                }
                (Err(re), Err(ce)) => prop_assert_eq!(re, ce, "errors diverge at {:?}", inj),
                (a, b) => panic!(
                    "shape diverges at {inj:?}: resumed_ok={} cold_ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}
