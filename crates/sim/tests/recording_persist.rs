//! Recording persistence round-trip: a serialized and reloaded
//! [`Recording`] must answer every injection site bit-identically to
//! the fresh recording it came from — stats, memory, classes, errors —
//! and the loader must reject stale fingerprints and damaged bodies.

use penny_coding::Scheme;
use penny_core::{compile, LaunchDims, PennyConfig, Protection};
use penny_sim::persist::LoadError;
use penny_sim::{
    GlobalMemory, GpuConfig, Injection, LaunchConfig, Recording, RfProtection,
};

const KERNEL: &str = r#"
    .kernel work .params A B N
    entry:
        mov.u32 %r0, %tid.x
        mov.u32 %r1, %ctaid.x
        mov.u32 %r2, %ntid.x
        mad.u32 %r3, %r1, %r2, %r0
        ld.param.u32 %r4, [A]
        ld.param.u32 %r5, [B]
        ld.param.u32 %r6, [N]
        setp.lt.u32 %p0, %r3, %r6
        bra %p0, body, exit
    body:
        shl.u32 %r7, %r3, 2
        add.u32 %r8, %r4, %r7
        add.u32 %r9, %r5, %r7
        ld.global.u32 %r10, [%r8]
        mul.u32 %r11, %r10, 3
        add.u32 %r12, %r11, %r3
        st.global.u32 [%r9], %r12
        ld.global.u32 %r13, [%r9]
        add.u32 %r14, %r13, 1
        st.global.u32 [%r9], %r14
        jmp exit
    exit:
        ret
"#;

const A: u32 = 0x1_0000;
const B: u32 = 0x2_0000;
const N: u32 = 128;
const FINGERPRINT: u64 = 0x5EED_F00D_CAFE_0001;

struct Rig {
    protected: penny_core::Protected,
    gpu_config: GpuConfig,
    launch: LaunchConfig,
    seeded: GlobalMemory,
}

fn rig(protection: Protection) -> Rig {
    let kernel = penny_ir::parse_kernel(KERNEL).expect("parse");
    let dims = LaunchDims::linear(2, 64);
    let (cfg, rf) = match protection {
        Protection::Penny => (PennyConfig::penny(), RfProtection::Edc(Scheme::Parity)),
        Protection::IGpu => (PennyConfig::igpu(), RfProtection::Ecc(Scheme::Secded)),
        _ => (PennyConfig::unprotected(), RfProtection::None),
    };
    let protected = compile(&kernel, &cfg.with_launch(dims)).expect("compile");
    let mut seeded = GlobalMemory::new();
    seeded.write_slice(A, &(0..N).map(|i| i.wrapping_mul(7)).collect::<Vec<u32>>());
    Rig {
        protected,
        gpu_config: GpuConfig::fermi().with_rf(rf),
        launch: LaunchConfig::new(dims, vec![A, B, N]),
        seeded,
    }
}

fn site_grid() -> Vec<Injection> {
    let mut sites = Vec::new();
    for block in 0..4u32 {
        for warp in 0..2 {
            for &lane in &[0u32, 5, 31] {
                for &reg in &[3u32, 9, 10, 13, 40] {
                    for &bit in &[0u32, 12, 32] {
                        for &after in &[1u64, 8, 22, 60, 500] {
                            sites.push(Injection {
                                block,
                                warp,
                                lane,
                                reg,
                                bit,
                                after_warp_insts: after,
                            });
                        }
                    }
                }
            }
        }
    }
    sites
}

fn assert_reloaded_matches_fresh(protection: Protection) {
    let r = rig(protection);
    let fresh = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");
    let bytes = fresh.serialize(FINGERPRINT);
    let reloaded = Recording::deserialize(&bytes, FINGERPRINT, &r.gpu_config, &r.protected)
        .expect("reload");

    assert_eq!(*reloaded.stats(), *fresh.stats(), "final stats diverge");
    assert_eq!(*reloaded.global(), *fresh.global(), "final memory diverges");
    assert_eq!(reloaded.counters().snapshots, fresh.counters().snapshots);
    assert_eq!(reloaded.counters().total_warp_insts, fresh.counters().total_warp_insts);
    assert_eq!(reloaded.launch().params, fresh.launch().params);

    let mut simulated = 0usize;
    for inj in site_grid() {
        assert_eq!(
            reloaded.site_class(&inj),
            fresh.site_class(&inj),
            "class diverges at {inj:?}"
        );
        assert_eq!(
            reloaded.memo_key(&inj),
            fresh.memo_key(&inj),
            "memo key diverges at {inj:?}"
        );
        let a = reloaded.run_site(&r.gpu_config, &r.protected, inj);
        let b = fresh.run_site(&r.gpu_config, &r.protected, inj);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.stats, rb.stats, "stats diverge at {inj:?}");
                assert_eq!(ra.global, rb.global, "memory diverges at {inj:?}");
                assert_eq!(ra.class, rb.class, "class diverges at {inj:?}");
                assert_eq!(ra.spliced, rb.spliced, "splice diverges at {inj:?}");
                assert_eq!(
                    ra.replayed_insts, rb.replayed_insts,
                    "replay work diverges at {inj:?}"
                );
                simulated += matches!(ra.class, penny_sim::SiteClass::Simulated) as usize;
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors diverge at {inj:?}"),
            _ => panic!("outcome shape diverges at {inj:?}"),
        }
    }
    if !matches!(protection, Protection::IGpu) {
        assert!(simulated > 0, "grid must exercise honest replays");
    }
}

#[test]
fn reloaded_recording_is_bit_identical_under_edc() {
    assert_reloaded_matches_fresh(Protection::Penny);
}

#[test]
fn reloaded_recording_is_bit_identical_under_ecc() {
    assert_reloaded_matches_fresh(Protection::IGpu);
}

#[test]
fn reloaded_recording_is_bit_identical_unprotected() {
    assert_reloaded_matches_fresh(Protection::None);
}

#[test]
fn stale_fingerprint_is_rejected_before_the_body() {
    let r = rig(Protection::Penny);
    let rec = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");
    let bytes = rec.serialize(FINGERPRINT);
    let err = Recording::deserialize(&bytes, FINGERPRINT ^ 1, &r.gpu_config, &r.protected)
        .err()
        .expect("stale fingerprint must be rejected");
    assert_eq!(
        err,
        LoadError::FingerprintMismatch { expected: FINGERPRINT ^ 1, found: FINGERPRINT }
    );
}

#[test]
fn damaged_bodies_are_rejected_not_misread() {
    let r = rig(Protection::Penny);
    let rec = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");
    let bytes = rec.serialize(FINGERPRINT);

    // Truncation anywhere in the body fails typed, never panics.
    for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        let err =
            Recording::deserialize(&bytes[..cut], FINGERPRINT, &r.gpu_config, &r.protected)
                .err()
                .expect("truncated body must be rejected");
        assert!(
            matches!(err, LoadError::Truncated | LoadError::Malformed(_)),
            "unexpected error for cut at {cut}: {err:?}"
        );
    }

    // Trailing garbage is rejected too.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 3]);
    let err = Recording::deserialize(&padded, FINGERPRINT, &r.gpu_config, &r.protected)
        .err()
        .expect("trailing bytes must be rejected");
    assert!(matches!(err, LoadError::Truncated | LoadError::Malformed(_)));
}

#[test]
fn serialization_is_deterministic() {
    let r = rig(Protection::Penny);
    let rec = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");
    assert_eq!(
        rec.serialize(FINGERPRINT),
        rec.serialize(FINGERPRINT),
        "same recording must serialize byte-identically"
    );
    let bytes = rec.serialize(FINGERPRINT);
    let reloaded = Recording::deserialize(&bytes, FINGERPRINT, &r.gpu_config, &r.protected)
        .expect("reload");
    assert_eq!(
        reloaded.serialize(FINGERPRINT),
        bytes,
        "reload then re-serialize must be a fixed point"
    );
}
