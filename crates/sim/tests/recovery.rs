//! End-to-end fault-injection tests: the executable form of the paper's
//! Appendix A correctness argument. For every injected RF fault, a
//! Penny-protected kernel must produce exactly the fault-free output.

use penny_core::{compile, LaunchDims, PennyConfig};
use penny_sim::{FaultPlan, Gpu, GpuConfig, Injection, LaunchConfig, RfProtection};

const KERNEL: &str = r#"
    .kernel work .params A B N
    entry:
        mov.u32 %r0, %tid.x
        mov.u32 %r1, %ctaid.x
        mov.u32 %r2, %ntid.x
        mad.u32 %r3, %r1, %r2, %r0
        ld.param.u32 %r4, [A]
        ld.param.u32 %r5, [B]
        ld.param.u32 %r6, [N]
        setp.lt.u32 %p0, %r3, %r6
        bra %p0, body, exit
    body:
        shl.u32 %r7, %r3, 2
        add.u32 %r8, %r4, %r7
        add.u32 %r9, %r5, %r7
        ld.global.u32 %r10, [%r8]
        mul.u32 %r11, %r10, 3
        add.u32 %r12, %r11, %r3
        st.global.u32 [%r9], %r12
        ld.global.u32 %r13, [%r9]
        add.u32 %r14, %r13, 1
        st.global.u32 [%r9], %r14
        jmp exit
    exit:
        ret
"#;

const A: u32 = 0x1_0000;
const B: u32 = 0x2_0000;
const N: usize = 128;

fn expected() -> Vec<u32> {
    (0..N as u32).map(|i| (i * 7) * 3 + i + 1).collect()
}

fn run_with(plan: FaultPlan) -> (Vec<u32>, penny_sim::RunStats) {
    let kernel = penny_ir::parse_kernel(KERNEL).expect("parse");
    let dims = LaunchDims::linear(2, 64);
    let config = PennyConfig::penny().with_launch(dims);
    let protected = compile(&kernel, &config).expect("compile");
    let mut gpu = Gpu::new(GpuConfig::fermi());
    let input: Vec<u32> = (0..N as u32).map(|i| i * 7).collect();
    gpu.global_mut().write_slice(A, &input);
    let launch = LaunchConfig::new(dims, vec![A, B, N as u32]).with_faults(plan);
    let stats = gpu.run(&protected, &launch).expect("run");
    (gpu.global().read_slice(B, N), stats)
}

#[test]
fn fault_free_run_is_correct() {
    let (out, stats) = run_with(FaultPlan::none());
    assert_eq!(out, expected());
    assert_eq!(stats.recoveries, 0);
    assert_eq!(stats.rf.detected, 0);
}

#[test]
fn single_bit_fault_is_recovered() {
    // Corrupt the output-address register %r9 at every possible point
    // in its warp's execution. Instrumentation shifts instruction
    // counts, so sweep the trigger: the output must always be correct,
    // and at least one trigger must land in the register's live window
    // (i.e. actually be detected and recovered).
    let mut detections = 0;
    let mut recoveries = 0;
    for after in 1..40 {
        let plan = FaultPlan::single(Injection {
            block: 0,
            warp: 0,
            lane: 5,
            reg: 9,
            bit: 12,
            after_warp_insts: after,
        });
        let (out, stats) = run_with(plan);
        assert_eq!(out, expected(), "after={after}: output corrupted");
        detections += stats.rf.detected;
        recoveries += stats.recoveries;
    }
    assert!(detections >= 1, "no trigger point hit the live window");
    assert!(recoveries >= 1, "recovery must have run");
}

#[test]
fn multi_bit_fault_is_recovered() {
    // Parity detects odd-weight flips; flip 3 bits of one register and
    // sweep the trigger point as above.
    let mut detections = 0;
    for after in 1..40 {
        let mk = |bit| Injection {
            block: 1,
            warp: 1,
            lane: 9,
            reg: 9,
            bit,
            after_warp_insts: after,
        };
        let plan = FaultPlan { injections: vec![mk(0), mk(7), mk(20)] };
        let (out, stats) = run_with(plan);
        assert_eq!(out, expected(), "after={after}: output corrupted");
        detections += stats.rf.detected;
    }
    assert!(detections >= 1);
}

#[test]
fn random_campaign_never_corrupts_output() {
    // Sweep many random single-bit faults; every run must match the
    // fault-free output (registers whose faults are never read simply
    // never trigger recovery).
    for seed in 0..20 {
        let plan = FaultPlan::random(seed, 2, 2, 2, 32, 15, 33, 16);
        let (out, stats) = run_with(plan);
        assert_eq!(out, expected(), "seed {seed} corrupted output: {stats:?}");
    }
}

#[test]
fn unprotected_rf_can_silently_corrupt() {
    // Sanity check that the fault machinery really corrupts state when
    // no protection is configured: at least one seed must change the
    // output (otherwise the campaign above proves nothing).
    let kernel = penny_ir::parse_kernel(KERNEL).expect("parse");
    let dims = LaunchDims::linear(2, 64);
    let config = PennyConfig::unprotected().with_launch(dims);
    let protected = compile(&kernel, &config).expect("compile");
    let mut corrupted = 0;
    for seed in 0..20 {
        let mut gpu = Gpu::new(GpuConfig::fermi().with_rf(RfProtection::None));
        let input: Vec<u32> = (0..N as u32).map(|i| i * 7).collect();
        gpu.global_mut().write_slice(A, &input);
        let plan = FaultPlan::random(seed, 2, 2, 2, 32, 15, 32, 16);
        let launch = LaunchConfig::new(dims, vec![A, B, N as u32]).with_faults(plan);
        gpu.run(&protected, &launch).expect("run");
        if gpu.global().read_slice(B, N) != expected() {
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "fault injection must be able to corrupt an unprotected run");
}

#[test]
fn detection_in_a_later_region_still_recovers() {
    // The paper's key relaxation (§4): corrupt a register *after* its
    // defining region has ended; parity detects it at first read in a
    // later region, and re-executing that later region recovers.
    // %r9 (the output address) is computed early and read in the final
    // store region.
    let plan = FaultPlan::single(Injection {
        block: 0,
        warp: 0,
        lane: 0,
        reg: 9,
        bit: 3,
        after_warp_insts: 15,
    });
    let (out, stats) = run_with(plan);
    assert_eq!(out, expected());
    assert!(stats.recoveries >= 1);
}
