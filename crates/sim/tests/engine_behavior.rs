//! Focused behavioral tests of the SIMT engine: divergence and
//! reconvergence, predication, barriers, atomics, and the
//! coalescing-sensitive timing model.

use penny_core::{compile, LaunchDims, PennyConfig};
use penny_sim::{Gpu, GpuConfig, LaunchConfig, RfProtection};

fn run_kernel(
    src: &str,
    dims: LaunchDims,
    params: Vec<u32>,
    setup: &[(u32, Vec<u32>)],
) -> (Gpu, penny_sim::RunStats) {
    let kernel = penny_ir::parse_kernel(src).expect("parse");
    let cfg = PennyConfig::unprotected().with_launch(dims);
    let protected = compile(&kernel, &cfg).expect("compile");
    let mut gpu = Gpu::new(GpuConfig::fermi().with_rf(RfProtection::None));
    for (addr, data) in setup {
        gpu.global_mut().write_slice(*addr, data);
    }
    let stats = gpu.run(&protected, &LaunchConfig::new(dims, params)).expect("run");
    (gpu, stats)
}

#[test]
fn nested_divergence_reconverges() {
    // Two nested branches on tid bits; each lane writes a distinct code
    // identifying the path it took, then all lanes write a common value
    // after reconvergence.
    let src = r#"
        .kernel nest .params OUT
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [OUT]
            shl.u32 %r2, %r0, 3
            add.u32 %r3, %r1, %r2
            and.u32 %r4, %r0, 1
            setp.eq.u32 %p0, %r4, 0
            bra %p0, even, odd
        even:
            and.u32 %r5, %r0, 2
            setp.eq.u32 %p1, %r5, 0
            bra %p1, even_a, even_b
        even_a:
            st.global.u32 [%r3], 10
            jmp join
        even_b:
            st.global.u32 [%r3], 20
            jmp join
        odd:
            st.global.u32 [%r3], 30
            jmp join
        join:
            st.global.u32 [%r3+4], 99
            ret
    "#;
    let dims = LaunchDims::linear(1, 32);
    let (gpu, _) = run_kernel(src, dims, vec![0x1000], &[]);
    for t in 0..32u32 {
        let code = gpu.global().peek(0x1000 + t * 8);
        let after = gpu.global().peek(0x1000 + t * 8 + 4);
        let expected = if t % 2 == 1 {
            30
        } else if t % 4 == 0 {
            10
        } else {
            20
        };
        assert_eq!(code, expected, "thread {t} took the wrong path");
        assert_eq!(after, 99, "thread {t} missed the reconverged store");
    }
}

#[test]
fn guarded_execution_does_not_diverge_control() {
    // Predicated stores: inactive lanes skip the effect but the warp
    // stays converged (no branch).
    let src = r#"
        .kernel pred .params OUT
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [OUT]
            shl.u32 %r2, %r0, 2
            add.u32 %r3, %r1, %r2
            st.global.u32 [%r3], 1
            and.u32 %r4, %r0, 1
            setp.eq.u32 %p0, %r4, 0
            @%p0 st.global.u32 [%r3], 2
            @!%p0 st.global.u32 [%r3], 3
            ret
    "#;
    let dims = LaunchDims::linear(1, 32);
    let (gpu, _) = run_kernel(src, dims, vec![0x1000], &[]);
    for t in 0..32u32 {
        let v = gpu.global().peek(0x1000 + t * 4);
        assert_eq!(v, if t % 2 == 0 { 2 } else { 3 }, "thread {t}");
    }
}

#[test]
fn atomics_serialize_correctly_across_warps_and_blocks() {
    let src = r#"
        .kernel count .params CTR
        entry:
            ld.param.u32 %r0, [CTR]
            atom.global.add.u32 %r1, [%r0], 1
            ret
    "#;
    let dims = LaunchDims::linear(4, 32);
    let (gpu, _) = run_kernel(src, dims, vec![0x2000], &[(0x2000, vec![0])]);
    assert_eq!(gpu.global().peek(0x2000), 128, "every thread increments once");
}

#[test]
fn coalesced_loads_are_faster_than_scattered() {
    // Same instruction count; one kernel strides by 4 bytes (1 segment
    // per warp access), the other by 256 bytes (32 segments).
    let coalesced = r#"
        .kernel c .params IN OUT
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [IN]
            ld.param.u32 %r2, [OUT]
            shl.u32 %r3, %r0, 2
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            add.u32 %r6, %r2, %r3
            st.global.u32 [%r6], %r5
            ret
    "#;
    let scattered = r#"
        .kernel s .params IN OUT
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [IN]
            ld.param.u32 %r2, [OUT]
            shl.u32 %r3, %r0, 8
            add.u32 %r4, %r1, %r3
            ld.global.u32 %r5, [%r4]
            shl.u32 %r7, %r0, 2
            add.u32 %r6, %r2, %r7
            st.global.u32 [%r6], %r5
            ret
    "#;
    let dims = LaunchDims::linear(1, 32);
    let input: Vec<u32> = (0..32 * 64).collect();
    let (_, fast) =
        run_kernel(coalesced, dims, vec![0x1_0000, 0x8_0000], &[(0x1_0000, input.clone())]);
    let (_, slow) =
        run_kernel(scattered, dims, vec![0x1_0000, 0x8_0000], &[(0x1_0000, input)]);
    assert!(
        slow.cycles > fast.cycles,
        "scattered ({}) must be slower than coalesced ({})",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn barrier_orders_shared_memory_across_warps() {
    // Warp 1 reads what warp 0 wrote, through a barrier. 64 threads =
    // 2 warps; each thread reads its "mirror" element written by the
    // other warp.
    let src = r#"
        .kernel flipflop .params OUT N
        .shared 256
        entry:
            mov.u32 %r0, %tid.x
            ld.param.u32 %r1, [OUT]
            ld.param.u32 %r2, [N]
            shl.u32 %r3, %r0, 2
            mul.u32 %r4, %r0, 3
            st.shared.u32 [%r3], %r4
            bar.sync
            sub.u32 %r5, %r2, 1
            sub.u32 %r6, %r5, %r0
            shl.u32 %r7, %r6, 2
            ld.shared.u32 %r8, [%r7]
            add.u32 %r9, %r1, %r3
            st.global.u32 [%r9], %r8
            ret
    "#;
    let dims = LaunchDims::linear(1, 64);
    let (gpu, stats) = run_kernel(src, dims, vec![0x3000, 64], &[]);
    for t in 0..64u32 {
        let got = gpu.global().peek(0x3000 + t * 4);
        assert_eq!(got, (63 - t) * 3, "thread {t} read a stale value");
    }
    assert!(stats.barriers >= 1);
}

#[test]
fn early_exit_threads_do_not_hang_the_warp() {
    // Half the threads return immediately; the rest continue through a
    // loop and a store.
    let src = r#"
        .kernel half .params OUT
        entry:
            mov.u32 %r0, %tid.x
            setp.lt.u32 %p0, %r0, 16
            bra %p0, work, exit
        work:
            ld.param.u32 %r1, [OUT]
            shl.u32 %r2, %r0, 2
            add.u32 %r3, %r1, %r2
            mov.u32 %r4, 0
            mov.u32 %r5, 0
            jmp loop
        loop:
            add.u32 %r5, %r5, %r0
            add.u32 %r4, %r4, 1
            setp.lt.u32 %p1, %r4, 4
            bra %p1, loop, done
        done:
            st.global.u32 [%r3], %r5
            ret
        exit:
            ret
    "#;
    let dims = LaunchDims::linear(1, 32);
    let (gpu, _) = run_kernel(src, dims, vec![0x4000], &[]);
    for t in 0..16u32 {
        assert_eq!(gpu.global().peek(0x4000 + t * 4), t * 4, "worker {t}");
    }
    for t in 16..32u32 {
        assert_eq!(gpu.global().peek(0x4000 + t * 4), 0, "early-exit {t} wrote");
    }
}

#[test]
fn occupancy_hides_memory_latency() {
    // The same per-thread work with 1 block vs 4 blocks resident: more
    // warps overlap the global-load latency, so 4 blocks take well under
    // 4x the single-block cycles.
    let src = r#"
        .kernel lat .params IN OUT
        entry:
            mov.u32 %r0, %tid.x
            mov.u32 %r1, %ctaid.x
            mov.u32 %r2, %ntid.x
            mad.u32 %r3, %r1, %r2, %r0
            ld.param.u32 %r4, [IN]
            ld.param.u32 %r5, [OUT]
            shl.u32 %r6, %r3, 2
            add.u32 %r7, %r4, %r6
            mov.u32 %r8, 0
            mov.u32 %r9, 0
            jmp loop
        loop:
            ld.global.u32 %r10, [%r7]
            add.u32 %r9, %r9, %r10
            add.u32 %r8, %r8, 1
            setp.lt.u32 %p0, %r8, 8
            bra %p0, loop, done
        done:
            add.u32 %r11, %r5, %r6
            st.global.u32 [%r11], %r9
            ret
    "#;
    let input: Vec<u32> = (0..256).collect();
    let one = run_kernel(
        src,
        LaunchDims::linear(1, 32),
        vec![0x1_0000, 0x8_0000],
        &[(0x1_0000, input.clone())],
    )
    .1;
    let four = run_kernel(
        src,
        LaunchDims::linear(4, 32),
        vec![0x1_0000, 0x8_0000],
        &[(0x1_0000, input)],
    )
    .1;
    assert!(
        (four.cycles as f64) < 3.0 * one.cycles as f64,
        "4 blocks ({}) should overlap latency vs 1 block ({})",
        four.cycles,
        one.cycles
    );
}

#[test]
fn cycle_budget_watchdog_catches_runaway_kernels() {
    // A kernel that spins forever must come back as a CycleLimit error
    // naming the kernel and the configured budget, not hang the host.
    let src = r#"
        .kernel spin
        entry:
            mov.u32 %r0, 0
            jmp loop
        loop:
            add.u32 %r0, %r0, 1
            jmp loop
    "#;
    let kernel = penny_ir::parse_kernel(src).expect("parse");
    let dims = LaunchDims::linear(1, 32);
    let cfg = PennyConfig::unprotected().with_launch(dims);
    let protected = compile(&kernel, &cfg).expect("compile");
    let mut gpu =
        Gpu::new(GpuConfig::fermi().with_rf(RfProtection::None).with_cycle_limit(10_000));
    let err = gpu
        .run(&protected, &LaunchConfig::new(dims, vec![]))
        .expect_err("spin kernel must trip the watchdog");
    match &err {
        penny_sim::SimError::CycleLimit { kernel, limit } => {
            assert_eq!(kernel, "spin");
            assert_eq!(*limit, 10_000);
        }
        other => panic!("expected CycleLimit, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("spin") && msg.contains("10000"), "message: {msg}");
}
