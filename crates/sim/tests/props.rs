//! Property-based tests for the simulator's scalar semantics and the
//! protected register-file model.

use proptest::prelude::*;

use penny_coding::Scheme;
use penny_ir::{Cmp, Op, Type};
use penny_sim::alu::{eval, eval_cmp};
use penny_sim::{ReadOutcome, RegFile, RfProtection, RfStats};

proptest! {
    /// Integer ALU algebra: commutativity, identities, inverses.
    #[test]
    fn integer_alu_algebra(a: u32, b: u32) {
        let add = |x, y| eval(Op::Add, Type::U32, Type::U32, &[x, y]);
        let mul = |x, y| eval(Op::Mul, Type::U32, Type::U32, &[x, y]);
        prop_assert_eq!(add(a, b), add(b, a));
        prop_assert_eq!(mul(a, b), mul(b, a));
        prop_assert_eq!(add(a, 0), a);
        prop_assert_eq!(mul(a, 1), a);
        prop_assert_eq!(eval(Op::Sub, Type::U32, Type::U32, &[a, a]), 0);
        prop_assert_eq!(eval(Op::Xor, Type::U32, Type::U32, &[a, a]), 0);
        prop_assert_eq!(eval(Op::Not, Type::U32, Type::U32, &[a]) ^ a, u32::MAX);
        // mad == mul + add.
        prop_assert_eq!(
            eval(Op::Mad, Type::U32, Type::U32, &[a, b, 7]),
            add(mul(a, b), 7)
        );
    }

    /// mulhi:mul form the exact 64-bit product.
    #[test]
    fn mulhi_mul_compose(a: u32, b: u32) {
        let lo = eval(Op::Mul, Type::U32, Type::U32, &[a, b]) as u64;
        let hi = eval(Op::MulHi, Type::U32, Type::U32, &[a, b]) as u64;
        prop_assert_eq!((hi << 32) | lo, a as u64 * b as u64);
    }

    /// Comparison trichotomy for signed and unsigned modes.
    #[test]
    fn comparison_trichotomy(a: u32, b: u32) {
        for ty in [Type::U32, Type::S32] {
            let lt = eval_cmp(Cmp::Lt, ty, a, b);
            let eq = eval_cmp(Cmp::Eq, ty, a, b);
            let gt = eval_cmp(Cmp::Gt, ty, a, b);
            prop_assert_eq!(usize::from(lt) + usize::from(eq) + usize::from(gt), 1);
            prop_assert_eq!(eval_cmp(Cmp::Le, ty, a, b), lt || eq);
            prop_assert_eq!(eval_cmp(Cmp::Ge, ty, a, b), gt || eq);
            prop_assert_eq!(eval_cmp(Cmp::Ne, ty, a, b), !eq);
        }
    }

    /// Min/max laws.
    #[test]
    fn min_max_laws(a: u32, b: u32) {
        for ty in [Type::U32, Type::S32] {
            let mn = eval(Op::Min, ty, ty, &[a, b]);
            let mx = eval(Op::Max, ty, ty, &[a, b]);
            prop_assert!(mn == a || mn == b);
            prop_assert!(mx == a || mx == b);
            // min + max = a + b (as multiset identity).
            prop_assert_eq!(mn.wrapping_add(mx), a.wrapping_add(b));
        }
    }

    /// Float ops mirror Rust `f32` semantics bit-for-bit.
    #[test]
    fn float_alu_matches_host(x in -1.0e6f32..1.0e6, y in -1.0e6f32..1.0e6) {
        let (a, b) = (x.to_bits(), y.to_bits());
        prop_assert_eq!(eval(Op::Add, Type::F32, Type::F32, &[a, b]), (x + y).to_bits());
        prop_assert_eq!(eval(Op::Mul, Type::F32, Type::F32, &[a, b]), (x * y).to_bits());
        prop_assert_eq!(
            eval(Op::Mad, Type::F32, Type::F32, &[a, b, 1.0f32.to_bits()]),
            (x * y + 1.0).to_bits()
        );
        prop_assert_eq!(eval(Op::Neg, Type::F32, Type::F32, &[a]), (-x).to_bits());
    }

    /// A write always clears corruption: write-then-read returns the
    /// written value regardless of prior fault history.
    #[test]
    fn rf_write_clears_faults(v1: u32, v2: u32, bit in 0u32..33, scheme_ix in 0usize..3) {
        let scheme = [Scheme::Parity, Scheme::Hamming, Scheme::Secded][scheme_ix];
        let mut rf = RegFile::new(1, RfProtection::Edc(scheme));
        let mut st = RfStats::default();
        rf.write(0, v1, &mut st);
        rf.flip_bit(0, bit % rf.codeword_bits());
        rf.write(0, v2, &mut st);
        prop_assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(v2));
    }

    /// Double flips of the same bit cancel: the register reads clean.
    #[test]
    fn rf_double_flip_cancels(v: u32, bit in 0u32..33) {
        let mut rf = RegFile::new(1, RfProtection::Edc(Scheme::Parity));
        let mut st = RfStats::default();
        rf.write(0, v, &mut st);
        rf.flip_bit(0, bit);
        rf.flip_bit(0, bit);
        prop_assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(v));
        prop_assert_eq!(st.detected, 0);
    }

    /// ECC mode always returns the original value for any single flip,
    /// and scrubs so the next read is clean.
    #[test]
    fn rf_ecc_scrubs(v: u32, bit in 0u32..39) {
        let mut rf = RegFile::new(1, RfProtection::Ecc(Scheme::Secded));
        let mut st = RfStats::default();
        rf.write(0, v, &mut st);
        rf.flip_bit(0, bit);
        prop_assert_eq!(rf.read(0, &mut st), ReadOutcome::CorrectedInline(v));
        prop_assert_eq!(rf.read(0, &mut st), ReadOutcome::Ok(v));
        prop_assert_eq!(st.corrected, 1);
    }
}
