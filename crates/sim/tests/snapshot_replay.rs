//! Snapshot/replay determinism: every site answered from a
//! [`Recording`] must be bit-identical to a from-scratch run of the
//! same injection — stats, memory contents, access counters, and
//! errors — across all four site classes (never-fires, invisible,
//! corrected-inline, simulated), and [`Gpu::run_to_region`] /
//! [`Gpu::resume_from`] must satisfy the same contract.

use penny_coding::Scheme;
use penny_core::{compile, LaunchDims, PennyConfig, Protection};
use penny_sim::{
    FaultPlan, GlobalMemory, Gpu, GpuConfig, Injection, LaunchConfig, Recording,
    RfProtection, SimError, SiteClass,
};

const KERNEL: &str = r#"
    .kernel work .params A B N
    entry:
        mov.u32 %r0, %tid.x
        mov.u32 %r1, %ctaid.x
        mov.u32 %r2, %ntid.x
        mad.u32 %r3, %r1, %r2, %r0
        ld.param.u32 %r4, [A]
        ld.param.u32 %r5, [B]
        ld.param.u32 %r6, [N]
        setp.lt.u32 %p0, %r3, %r6
        bra %p0, body, exit
    body:
        shl.u32 %r7, %r3, 2
        add.u32 %r8, %r4, %r7
        add.u32 %r9, %r5, %r7
        ld.global.u32 %r10, [%r8]
        mul.u32 %r11, %r10, 3
        add.u32 %r12, %r11, %r3
        st.global.u32 [%r9], %r12
        ld.global.u32 %r13, [%r9]
        add.u32 %r14, %r13, 1
        st.global.u32 [%r9], %r14
        jmp exit
    exit:
        ret
"#;

const A: u32 = 0x1_0000;
const B: u32 = 0x2_0000;
const N: u32 = 128;

struct Rig {
    protected: penny_core::Protected,
    gpu_config: GpuConfig,
    launch: LaunchConfig,
    seeded: GlobalMemory,
}

fn rig(protection: Protection) -> Rig {
    let kernel = penny_ir::parse_kernel(KERNEL).expect("parse");
    let dims = LaunchDims::linear(2, 64);
    let (cfg, rf) = match protection {
        Protection::Penny => (PennyConfig::penny(), RfProtection::Edc(Scheme::Parity)),
        Protection::IGpu => (PennyConfig::igpu(), RfProtection::Ecc(Scheme::Secded)),
        _ => (PennyConfig::unprotected(), RfProtection::None),
    };
    let protected = compile(&kernel, &cfg.with_launch(dims)).expect("compile");
    let mut seeded = GlobalMemory::new();
    seeded.write_slice(A, &(0..N).map(|i| i.wrapping_mul(7)).collect::<Vec<u32>>());
    Rig {
        protected,
        gpu_config: GpuConfig::fermi().with_rf(rf),
        launch: LaunchConfig::new(dims, vec![A, B, N]),
        seeded,
    }
}

/// From-scratch faulty run on a fresh GPU seeded identically.
fn cold(r: &Rig, plan: FaultPlan) -> Result<(penny_sim::RunStats, GlobalMemory), SimError> {
    let mut gpu = Gpu::new(r.gpu_config.clone());
    *gpu.global_mut() = r.seeded.fork();
    let stats = gpu.run(&r.protected, &r.launch.clone().with_faults(plan))?;
    Ok((stats, gpu.global().fork()))
}

/// A small but class-diverse site grid for the 2-block x 2-warp rig.
fn site_grid() -> Vec<Injection> {
    let mut sites = Vec::new();
    for block in 0..4u32 {
        for warp in 0..2 {
            for &lane in &[0u32, 5, 31] {
                for &reg in &[3u32, 9, 10, 13, 40] {
                    for &bit in &[0u32, 12, 31, 32] {
                        for &after in &[1u64, 8, 15, 22, 60, 500] {
                            sites.push(Injection {
                                block,
                                warp,
                                lane,
                                reg,
                                bit,
                                after_warp_insts: after,
                            });
                        }
                    }
                }
            }
        }
    }
    sites
}

fn assert_site_equivalence(protection: Protection) -> [usize; 4] {
    let r = rig(protection);
    let rec = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");

    // The recording itself must be bit-identical to a plain run.
    let (plain_stats, plain_global) = cold(&r, FaultPlan::none()).expect("plain run");
    assert_eq!(*rec.stats(), plain_stats, "recording perturbs the fault-free run");
    assert_eq!(*rec.global(), plain_global, "recording global diverges");

    let mut class_counts = [0usize; 4];
    for inj in site_grid() {
        let forked = rec.run_site(&r.gpu_config, &r.protected, inj);
        let from_scratch = cold(&r, FaultPlan::single(inj));
        match (forked, from_scratch) {
            (Ok(site), Ok((cs, cg))) => {
                assert_eq!(site.stats, cs, "stats diverge at {inj:?} ({:?})", site.class);
                assert_eq!(
                    site.global, cg,
                    "memory/counters diverge at {inj:?} ({:?})",
                    site.class
                );
                assert_eq!(
                    site.global.nonzero_words(),
                    cg.nonzero_words(),
                    "contents diverge at {inj:?}"
                );
                class_counts[match site.class {
                    SiteClass::NeverFires => 0,
                    SiteClass::Invisible => 1,
                    SiteClass::CorrectedInline => 2,
                    SiteClass::Simulated => 3,
                }] += 1;
            }
            (Err(fe), Err(ce)) => {
                assert_eq!(fe, ce, "errors diverge at {inj:?}");
            }
            (f, c) => panic!(
                "outcome shape diverges at {inj:?}: forked={:?} cold={:?}",
                f.map(|s| s.class),
                c.map(|(s, _)| s.cycles)
            ),
        }
    }
    class_counts
}

#[test]
fn forked_sites_match_cold_runs_under_edc() {
    let counts = assert_site_equivalence(Protection::Penny);
    assert!(counts[0] > 0, "grid exercises never-fires sites");
    assert!(counts[1] > 0, "grid exercises invisible sites");
    assert_eq!(counts[2], 0, "EDC has no inline correction");
    assert!(counts[3] > 0, "grid exercises simulated sites");
}

#[test]
fn forked_sites_match_cold_runs_under_ecc() {
    let counts = assert_site_equivalence(Protection::IGpu);
    assert!(counts[2] > 0, "grid exercises corrected-inline sites");
    assert_eq!(counts[3], 0, "single-bit faults never simulate under SECDED");
}

#[test]
fn forked_sites_match_cold_runs_unprotected() {
    let counts = assert_site_equivalence(Protection::None);
    assert!(counts[3] > 0, "grid exercises silent-corruption sites");
}

#[test]
fn simulated_sites_include_spliced_and_memoizable_runs() {
    let r = rig(Protection::Penny);
    let rec = Recording::record(&r.gpu_config, &r.protected, &r.launch, &r.seeded)
        .expect("record");
    let mut spliced = 0u32;
    let mut replay_savings = false;
    for inj in site_grid() {
        if rec.site_class(&inj) != SiteClass::Simulated {
            continue;
        }
        let site = rec.run_site(&r.gpu_config, &r.protected, inj).expect("site");
        spliced += site.spliced as u32;
        // The replay must be cheaper than the full recorded run for at
        // least some sites, or the fork buys nothing.
        if site.replayed_insts < rec.counters().total_warp_insts {
            replay_savings = true;
        }
        // Memo contract: equal keys imply bit-identical outcomes.
        let key = rec.memo_key(&inj).expect("simulated sites have memo keys");
        let twin = Injection { bit: if inj.bit == 0 { 31 } else { 0 }, ..inj };
        if rec.memo_key(&twin) == Some(key) {
            let t = rec.run_site(&r.gpu_config, &r.protected, twin).expect("twin");
            assert_eq!(t.stats, site.stats, "memo twins diverge at {inj:?}");
            assert_eq!(t.global, site.global, "memo twin memory diverges at {inj:?}");
        }
    }
    assert!(spliced > 0, "EDC recovery restores memory, so splices must occur");
    assert!(replay_savings, "forked replays never beat the cold cost");
    assert!(rec.counters().snapshots > 0, "regions must produce snapshots");
}

#[test]
fn run_to_region_then_resume_is_bit_identical() {
    let r = rig(Protection::Penny);
    assert!(!r.protected.regions.is_empty(), "penny compile forms regions");
    let region = r.protected.regions[r.protected.regions.len() / 2].id;

    let mut gpu = Gpu::new(r.gpu_config.clone());
    *gpu.global_mut() = r.seeded.fork();
    let snap = gpu.run_to_region(&r.protected, &r.launch, region).expect("snapshot");
    assert_eq!(snap.region(), region);
    assert!(gpu.global().contents_eq(&r.seeded), "run_to_region must not mutate");

    // Fault-free resume == plain run.
    let stats = gpu.resume_from(&r.protected, &snap, FaultPlan::none()).expect("resume");
    let (plain_stats, plain_global) = cold(&r, FaultPlan::none()).expect("plain");
    assert_eq!(stats, plain_stats);
    assert_eq!(*gpu.global(), plain_global);

    // Faulty resumes == from-scratch faulty runs, for triggers at or
    // after the checkpoint (the flip had not yet fired when captured).
    let mut exercised = 0;
    for reg in [9u32, 10, 13] {
        for after in [snap.stats().warp_instructions / 2, 25, 60] {
            let inj = Injection {
                block: 0,
                warp: 0,
                lane: 3,
                reg,
                bit: 7,
                after_warp_insts: after,
            };
            let plan = FaultPlan::single(inj);
            let resumed = gpu.resume_from(&r.protected, &snap, plan.clone());
            match (resumed, cold(&r, plan)) {
                (Ok(rs), Ok((cs, cg))) => {
                    assert_eq!(rs, cs, "resume stats diverge at {inj:?}");
                    assert_eq!(*gpu.global(), cg, "resume memory diverges at {inj:?}");
                    exercised += 1;
                }
                (Err(re), Err(ce)) => assert_eq!(re, ce),
                (a, b) => panic!("shape diverges at {inj:?}: {a:?} vs {b:?}"),
            }
        }
    }
    assert!(exercised > 0);
}

#[test]
fn recording_and_run_to_region_reject_fault_plans() {
    let r = rig(Protection::Penny);
    let inj = Injection { block: 0, warp: 0, lane: 0, reg: 9, bit: 3, after_warp_insts: 5 };
    let faulty = r.launch.clone().with_faults(FaultPlan::single(inj));
    assert!(matches!(
        Recording::record(&r.gpu_config, &r.protected, &faulty, &r.seeded),
        Err(SimError::BadLaunch(_))
    ));
    let gpu = Gpu::new(r.gpu_config.clone());
    assert!(matches!(
        gpu.run_to_region(&r.protected, &faulty, r.protected.regions[0].id),
        Err(SimError::BadLaunch(_))
    ));
}

#[test]
fn run_to_region_reports_unentered_regions() {
    let r = rig(Protection::Penny);
    let gpu = Gpu::new(r.gpu_config.clone());
    let missing = penny_ir::RegionId(9999);
    assert!(matches!(
        gpu.run_to_region(&r.protected, &r.launch, missing),
        Err(SimError::BadMetadata(_))
    ));
}
