//! Property-based equivalence proof for the pre-decoded execution path.
//!
//! `engine::run` interprets the flat `DecodedInst` micro-op table with
//! the fault-aware register-file fast path (clean reads skip the codec
//! decode). `engine::run_decode_reference` re-interprets the original
//! `penny_ir` stream and decodes every read. For every generated kernel
//! — divergent diamonds, loops, guarded instructions, shared memory,
//! barriers, and the sparse CSR family's data-dependent loops and
//! indirect stores — and every generated fault plan, both paths must
//! agree on the full [`RunStats`] record (cycles, instruction counts,
//! every `RfStats` counter, recoveries) and on final memory contents.
//!
//! The generator itself lives in [`penny_sim::gen`], shared with the
//! `penny-fuzz` pipeline.

use proptest::prelude::*;

use penny_core::{compile, LaunchDims, PennyConfig};
use penny_sim::gen::{build_kernel, run_pair, try_compile, KernelSpec, MemImage};
use penny_sim::{FaultPlan, GpuConfig};

/// The dense family's fixed input image (see [`KernelSpec::image`]).
fn dense_image() -> MemImage {
    KernelSpec::dense(vec![0], false).image()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free equivalence over generated structured kernels, both
    /// unprotected (no codec) and under full Penny instrumentation with
    /// parity EDC.
    #[test]
    fn decoded_path_matches_reference(
        ops in proptest::collection::vec(0u8..8, 1..14),
        barrier: bool,
    ) {
        let k = build_kernel(&ops, barrier);
        let dims = LaunchDims::linear(2, 64);
        let image = dense_image();
        // The unprotected pipeline skips checkpoint instrumentation and
        // accepts every generated kernel — this leg never skips.
        let baseline = compile(&k, &PennyConfig::unprotected().with_launch(dims))
            .expect("unprotected compile");
        let no_rf = GpuConfig::fermi().with_rf(penny_sim::RfProtection::None);
        let ((fast, fast_mem), (reference, ref_mem)) =
            run_pair(&baseline, dims, &no_rf, &FaultPlan::none(), &image);
        prop_assert_eq!(fast, reference, "stats diverge (unprotected)");
        prop_assert_eq!(fast_mem, ref_mem, "memory diverges (unprotected)");

        // The Penny pipeline may reject generator-shaped kernels.
        if let Some(protected) = try_compile(&k, PennyConfig::penny().with_launch(dims)) {
            let ((fast, fast_mem), (reference, ref_mem)) =
                run_pair(&protected, dims, &GpuConfig::fermi(), &FaultPlan::none(), &image);
            prop_assert_eq!(fast, reference, "stats diverge (penny)");
            prop_assert_eq!(fast_mem, ref_mem, "memory diverges (penny)");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Equivalence under fault injection: flips dirty the victim
    /// registers, and detections/recoveries must fire identically on
    /// both interpreters.
    #[test]
    fn decoded_path_matches_reference_under_faults(
        ops in proptest::collection::vec(0u8..8, 1..10),
        fault_seed: u64,
    ) {
        let k = build_kernel(&ops, false);
        let dims = LaunchDims::linear(1, 64);
        let cfg = PennyConfig::penny().with_launch(dims);
        prop_assume!(try_compile(&k, cfg.clone()).is_some());
        let protected = try_compile(&k, cfg).expect("compile");
        let regs = protected.kernel.vreg_limit();
        let plan = FaultPlan::random(fault_seed, 3, 1, 2, 32, regs, 33, 60);
        let ((fast, fast_mem), (reference, ref_mem)) =
            run_pair(&protected, dims, &GpuConfig::fermi(), &plan, &dense_image());
        prop_assert_eq!(fast, reference, "stats diverge under faults");
        prop_assert_eq!(fast_mem, ref_mem, "memory diverges under faults");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sparse CSR family — data-dependent trip counts, indirect
    /// loads, atomic scatters — satisfies the same decoded-vs-reference
    /// contract, fault-free and under injection.
    #[test]
    fn sparse_decoded_path_matches_reference(
        ops in proptest::collection::vec(0u8..8, 1..10),
        topo_seed: u64,
        nnz in 1u8..8,
        fault_seed: u64,
    ) {
        let spec = KernelSpec::sparse(ops, topo_seed, nnz);
        let k = spec.build();
        let dims = spec.dims();
        let image = spec.image();
        let baseline = compile(&k, &PennyConfig::unprotected().with_launch(dims))
            .expect("unprotected compile");
        let no_rf = GpuConfig::fermi().with_rf(penny_sim::RfProtection::None);
        let ((fast, fast_mem), (reference, ref_mem)) =
            run_pair(&baseline, dims, &no_rf, &FaultPlan::none(), &image);
        prop_assert_eq!(fast, reference, "stats diverge (unprotected sparse)");
        prop_assert_eq!(fast_mem, ref_mem, "memory diverges (unprotected sparse)");

        if let Some(protected) = try_compile(&k, PennyConfig::penny().with_launch(dims)) {
            let regs = protected.kernel.vreg_limit();
            let plan = penny_sim::gen::fault_plan(fault_seed, dims, regs, 3);
            let ((fast, fast_mem), (reference, ref_mem)) =
                run_pair(&protected, dims, &GpuConfig::fermi(), &plan, &image);
            prop_assert_eq!(fast, reference, "stats diverge (penny sparse)");
            prop_assert_eq!(fast_mem, ref_mem, "memory diverges (penny sparse)");
        }
    }
}
