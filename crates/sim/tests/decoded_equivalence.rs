//! Property-based equivalence proof for the pre-decoded execution path.
//!
//! `engine::run` interprets the flat `DecodedInst` micro-op table with
//! the fault-aware register-file fast path (clean reads skip the codec
//! decode). `engine::run_decode_reference` re-interprets the original
//! `penny_ir` stream and decodes every read. For every generated kernel
//! — divergent diamonds, loops, guarded instructions, shared memory,
//! barriers — and every generated fault plan, both paths must agree on
//! the full [`RunStats`] record (cycles, instruction counts, every
//! `RfStats` counter, recoveries) and on final memory contents.

use proptest::prelude::*;

use penny_core::{compile, LaunchDims, PennyConfig};
use penny_ir::{Cmp, KernelBuilder, MemSpace, Special, Type};
use penny_sim::{engine, FaultPlan, GlobalMemory, GpuConfig, RunStats};

/// Builds a structured kernel from an op script: a loop whose body is
/// driven by `ops`, containing a divergent diamond and (op-dependent)
/// guarded instructions, in-place global updates, and shared-memory
/// traffic with a barrier.
fn build_kernel(ops: &[u8], with_barrier: bool) -> penny_ir::Kernel {
    let mut b = KernelBuilder::new("decgen", &["A", "B"]);
    b.shared_bytes(256);
    b.block("entry");
    let tid = b.special(Special::TidX);
    let a = b.ld_param("A");
    let bp = b.ld_param("B");
    let off = b.shl(Type::U32, tid, 2u32);
    let addr = b.add(Type::U32, a, off);
    let out = b.add(Type::U32, bp, off);
    let v0 = b.ld(MemSpace::Global, Type::U32, addr, 0);
    // Shared scratch slot for this thread (wraps in 256 bytes).
    let soff = b.and(Type::U32, off, 0xFCu32);
    let head = b.block("head");
    let exit = b.block("exit");
    let i = b.imm(0);
    let acc = b.mov(Type::U32, v0);
    b.jump(head);
    b.select(head);
    let mut v = acc;
    for (j, op) in ops.iter().enumerate() {
        let c = (j as u32 + 1) | 1;
        v = match op {
            0 => b.add(Type::U32, v, c),
            1 => b.mul(Type::U32, v, c),
            2 => b.xor(Type::U32, v, i),
            3 => {
                // In-place read-modify-write: forces a region cut.
                let t = b.ld(MemSpace::Global, Type::U32, addr, 0);
                let u = b.add(Type::U32, t, v);
                b.st(MemSpace::Global, addr, 0, u);
                u
            }
            4 => {
                // Guarded update: odd lanes only.
                let bit = b.and(Type::U32, tid, 1u32);
                let p = b.setp(Cmp::Eq, Type::U32, bit, 1u32);
                let shadow = b.mov(Type::U32, v);
                b.guarded(p, false, |b| {
                    let u = b.add(Type::U32, v, 17u32);
                    b.mov_to(Type::U32, shadow, u);
                });
                shadow
            }
            5 => {
                // Divergent diamond on the low tid bit.
                let bit = b.and(Type::U32, tid, 1u32);
                let p = b.setp(Cmp::Eq, Type::U32, bit, 0u32);
                let then_ = b.block(format!("then{j}"));
                let else_ = b.block(format!("else{j}"));
                let join = b.block(format!("join{j}"));
                let merged = b.mov(Type::U32, v);
                b.branch(p, false, then_, else_);
                b.select(then_);
                let tv = b.add(Type::U32, v, 3u32);
                b.mov_to(Type::U32, merged, tv);
                b.jump(join);
                b.select(else_);
                let ev = b.sub(Type::U32, v, 1u32);
                b.mov_to(Type::U32, merged, ev);
                b.jump(join);
                b.select(join);
                merged
            }
            6 => {
                // Shared-memory round trip.
                b.st(MemSpace::Shared, soff, 0, v);
                if with_barrier {
                    b.bar();
                }
                let t = b.ld(MemSpace::Shared, Type::U32, soff, 0);
                b.or(Type::U32, t, 1u32)
            }
            _ => b.shr(Type::U32, v, c % 9),
        };
    }
    b.mov_to(Type::U32, acc, v);
    let ni = b.add(Type::U32, i, 1u32);
    b.mov_to(Type::U32, i, ni);
    let p = b.setp(Cmp::Lt, Type::U32, i, 3u32);
    b.branch(p, false, head, exit);
    b.select(exit);
    b.st(MemSpace::Global, out, 0, acc);
    b.ret();
    let k = b.finish();
    penny_ir::validate(&k).expect("generated kernel must validate");
    k
}

/// Compiles under a Penny config, treating compiler rejections (and
/// panics from overwrite-prevention edge cases on generator-shaped
/// kernels) as `None`: this suite proves *engine* equivalence, so
/// kernels the Penny compiler cannot yet instrument are skipped rather
/// than failed.
fn try_compile(k: &penny_ir::Kernel, cfg: PennyConfig) -> Option<penny_core::Protected> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| compile(k, &cfg)))
        .ok()
        .and_then(|r| r.ok())
}

/// Runs one launch on both interpreters and returns (stats, memory)
/// from each.
fn both_paths(
    protected: &penny_core::Protected,
    dims: LaunchDims,
    gpu: &GpuConfig,
    faults: &FaultPlan,
) -> ((RunStats, GlobalMemory), (RunStats, GlobalMemory)) {
    let run = |reference: bool| {
        let mut global = GlobalMemory::new();
        let input: Vec<u32> =
            (0u32..64).map(|x| x.wrapping_mul(7).wrapping_add(3)).collect();
        global.write_slice(0x1000, &input);
        let launch = engine::LaunchConfig::new(dims, vec![0x1000, 0x2000])
            .with_faults(faults.clone());
        let stats = if reference {
            engine::run_decode_reference(gpu, protected, &launch, &mut global)
                .expect("decode_reference run")
        } else {
            engine::run(gpu, protected, &launch, &mut global).expect("decoded run")
        };
        (stats, global)
    };
    (run(false), run(true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free equivalence over generated structured kernels, both
    /// unprotected (no codec) and under full Penny instrumentation with
    /// parity EDC.
    #[test]
    fn decoded_path_matches_reference(
        ops in proptest::collection::vec(0u8..8, 1..14),
        barrier: bool,
    ) {
        let k = build_kernel(&ops, barrier);
        let dims = LaunchDims::linear(2, 64);
        // The unprotected pipeline skips checkpoint instrumentation and
        // accepts every generated kernel — this leg never skips.
        let baseline = compile(&k, &PennyConfig::unprotected().with_launch(dims))
            .expect("unprotected compile");
        let no_rf = GpuConfig::fermi().with_rf(penny_sim::RfProtection::None);
        let ((fast, fast_mem), (reference, ref_mem)) =
            both_paths(&baseline, dims, &no_rf, &FaultPlan::none());
        prop_assert_eq!(fast, reference, "stats diverge (unprotected)");
        prop_assert_eq!(fast_mem, ref_mem, "memory diverges (unprotected)");

        // The Penny pipeline may reject generator-shaped kernels.
        if let Some(protected) = try_compile(&k, PennyConfig::penny().with_launch(dims)) {
            let ((fast, fast_mem), (reference, ref_mem)) =
                both_paths(&protected, dims, &GpuConfig::fermi(), &FaultPlan::none());
            prop_assert_eq!(fast, reference, "stats diverge (penny)");
            prop_assert_eq!(fast_mem, ref_mem, "memory diverges (penny)");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Equivalence under fault injection: flips dirty the victim
    /// registers, and detections/recoveries must fire identically on
    /// both interpreters.
    #[test]
    fn decoded_path_matches_reference_under_faults(
        ops in proptest::collection::vec(0u8..8, 1..10),
        fault_seed: u64,
    ) {
        let k = build_kernel(&ops, false);
        let dims = LaunchDims::linear(1, 64);
        let cfg = PennyConfig::penny().with_launch(dims);
        prop_assume!(try_compile(&k, cfg.clone()).is_some());
        let protected = try_compile(&k, cfg).expect("compile");
        let regs = protected.kernel.vreg_limit();
        let plan = FaultPlan::random(fault_seed, 3, 1, 2, 32, regs, 33, 60);
        let ((fast, fast_mem), (reference, ref_mem)) =
            both_paths(&protected, dims, &GpuConfig::fermi(), &plan);
        prop_assert_eq!(fast, reference, "stats diverge under faults");
        prop_assert_eq!(fast_mem, ref_mem, "memory diverges under faults");
    }
}
