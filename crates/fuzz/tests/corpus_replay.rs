//! The banked-corpus replay gate as a cargo test: every kernel
//! committed under `corpus/` must load as a named workload and pass
//! the full replay verification — parse, validate, lint, all-scheme
//! compiles, fault-free and faulted differential runs against the
//! banked golden output, and a budgeted conformance sweep.

use penny_fuzz::replay_workload;
use penny_workloads::corpus;

/// Keep the budget modest so the gate stays CI-speed; the standalone
/// `penny-fuzz --replay` path uses the deeper 2048-site default.
const CONFORMANCE_BUDGET: u64 = 256;

#[test]
fn every_banked_kernel_replays_clean() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus loads");
    assert!(
        entries.len() >= 3,
        "the seeded corpus holds at least three kernels, found {}",
        entries.len()
    );
    let mut failures = Vec::new();
    for w in &entries {
        if let Err(e) = replay_workload(w, CONFORMANCE_BUDGET) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "corpus replay failures: {failures:#?}");
}

#[test]
fn corpus_kernels_surface_as_named_workloads() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus loads");
    let all = penny_workloads::all_with_corpus();
    for w in &entries {
        let named = all.iter().find(|c| c.abbr == w.abbr);
        let named = named.unwrap_or_else(|| {
            panic!("banked kernel {} missing from all_with_corpus()", w.abbr)
        });
        assert_eq!(named.source_text(), w.source_text(), "{}: text drifted", w.abbr);
        assert_eq!(named.dims, w.dims, "{}: dims drifted", w.abbr);
    }
}

#[test]
fn corpus_entries_round_trip_through_the_renderer() {
    use penny_workloads::corpus::CorpusEntry;
    let dir = corpus::default_dir();
    for entry in std::fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("dirent").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read");
        let parsed =
            CorpusEntry::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rendered = parsed.render();
        let back = CorpusEntry::parse(&rendered).expect("re-parse");
        assert_eq!(
            back.render(),
            rendered,
            "{}: render/parse do not fix-point",
            path.display()
        );
    }
}
