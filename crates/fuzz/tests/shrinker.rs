//! Unit tests for the divergence shrinker: synthetic failure
//! predicates stand in for the gauntlet, so each property is checked
//! without compiling or simulating anything.

use penny_fuzz::shrink_spec;
use penny_sim::gen::KernelSpec;

/// A spec with enough structure for every shrink dimension to have
/// room: a long script, an active barrier surrogate (sparse specs have
/// none, so use row density), and a wide topology.
fn big_sparse() -> KernelSpec {
    KernelSpec::sparse(vec![0, 1, 2, 3, 4, 5, 0, 1, 2, 3], 0xFEED, 12)
}

fn big_dense() -> KernelSpec {
    KernelSpec::dense(vec![0, 1, 2, 3, 4, 5, 6, 0, 1, 2], true)
}

#[test]
fn shrink_never_grows_and_preserves_the_failure() {
    let spec = big_sparse();
    // Failure: script contains op 5 anywhere.
    let fails = |s: &KernelSpec| s.ops.contains(&5);
    let min = shrink_spec(&spec, &fails);
    assert!(fails(&min), "shrinking must preserve the predicate");
    assert!(min.size() <= spec.size());
}

#[test]
fn shrink_reaches_a_local_minimum() {
    let spec = big_sparse();
    let fails = |s: &KernelSpec| s.ops.contains(&5);
    let min = shrink_spec(&spec, &fails);
    // A single-op script with minimum density is the smallest spec that
    // can still satisfy "contains op 5".
    assert_eq!(min.ops, vec![5], "{:?}", min.ops);
    assert_eq!(min.max_row_nnz, 1);
}

#[test]
fn shrink_is_deterministic() {
    let spec = big_dense();
    let fails = |s: &KernelSpec| s.ops.iter().filter(|&&o| o == 1).count() >= 2;
    let a = shrink_spec(&spec, &fails);
    let b = shrink_spec(&spec, &fails);
    assert_eq!(a, b, "same spec + same predicate must shrink identically");
    assert!(fails(&a));
    assert_eq!(a.ops, vec![1, 1]);
    assert!(!a.barrier, "barrier is shrink-disabled when irrelevant");
}

#[test]
fn shrink_keeps_the_barrier_when_the_failure_needs_it() {
    let spec = big_dense();
    let fails = |s: &KernelSpec| s.barrier;
    let min = shrink_spec(&spec, &fails);
    assert!(min.barrier);
    // Everything else still minimizes around the preserved bit. The
    // half/single-op passes require >= 2 ops, so one op survives.
    assert!(min.ops.len() <= 1, "{:?}", min.ops);
}

#[test]
fn unshrinkable_failure_returns_the_original() {
    let spec = big_sparse();
    // Failure holds only for the exact original: every candidate is
    // strictly smaller, so nothing can replace it.
    let orig = spec.clone();
    let fails = move |s: &KernelSpec| *s == orig;
    let min = shrink_spec(&spec, &fails);
    assert_eq!(min, spec);
}

#[test]
fn shrink_preserves_family_and_topology_seed() {
    let spec = big_sparse();
    let fails = |s: &KernelSpec| !s.ops.is_empty();
    let min = shrink_spec(&spec, &fails);
    assert_eq!(min.family, spec.family);
    assert_eq!(min.topo_seed, spec.topo_seed, "shrinking never reseeds topology");
}
