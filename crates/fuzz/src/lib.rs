#![warn(missing_docs)]
//! `penny-fuzz`: the generative differential-testing pipeline.
//!
//! Each iteration mints one kernel from [`penny_sim::gen::KernelSpec`]
//! (dense structured loops or the sparse CSR family) and drives it
//! through the full gauntlet:
//!
//! 1. **build + validate** — the generator must emit IR that passes
//!    `penny_ir::validate`;
//! 2. **lint** — the kernel must be lint-clean for its launch geometry
//!    (any diagnostic is a generator bug, reported as a divergence);
//! 3. **compile** — every scheme compiles with `with_validation(true)`
//!    and `with_lint(true)`; protected schemes may *skip* (the Penny
//!    pipeline can reject generator-shaped kernels), the Baseline
//!    scheme must not;
//! 4. **differential** — the pre-decoded engine vs the always-decode
//!    reference must agree on stats and memory, fault-free and under
//!    generated fault plans, for every compiled scheme;
//! 5. **cross-scheme** — every protected scheme's fault-free output
//!    must equal the Baseline golden output;
//! 6. **conformance + static agreement** — a budgeted snapshot/replay
//!    sweep in `StaticMode::Validate`
//!    ([`penny_bench::conformance::run_conformance_static_for`]) must
//!    recover every covered fault site, and every compile-time
//!    [`penny_analysis::StaticSiteClass`] claim must agree with the
//!    replay engine's dynamic verdict (translation validation of the
//!    static vulnerability analysis, on the same replays).
//!
//! A divergence is shrunk ([`shrink_spec`]) to a minimal spec that
//! still reproduces the same divergence kind, and can be banked as a
//! committed corpus workload (`corpus/*.pir`) that
//! [`replay_workload`] — and the `scripts/verify.sh` replay gate —
//! re-verifies forever after.
//!
//! Everything is deterministic: reports contain no timings, and two
//! runs with the same seed and iteration count are byte-identical.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use penny_analysis::{lint_kernel, LintOptions, Severity};
use penny_bench::conformance::{run_conformance_static_for, ConformanceReport, StaticMode};
use penny_bench::SchemeId;
use penny_core::Protected;
use penny_sim::gen::{self, splitmix64, KernelSpec};
use penny_sim::{GlobalMemory, GpuConfig, RunStats};
use penny_workloads::corpus::CorpusEntry;
use penny_workloads::{user_words, Setup, Source, Suite, Verify, Workload};

/// Fuzzing-run configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` derives its spec from `seed + i`.
    pub seed: u64,
    /// Number of kernels to generate.
    pub iters: u64,
    /// Protected schemes exercised by the differential and
    /// cross-scheme stages.
    pub schemes: Vec<SchemeId>,
    /// Schemes swept by the conformance stage (recoverable schemes
    /// only — unprotected runs legitimately corrupt).
    pub conformance_schemes: Vec<SchemeId>,
    /// Fault-site budget per conformance sweep (0 disables the stage).
    pub conformance_budget: u64,
    /// Fault plans injected per compiled scheme in the differential
    /// stage.
    pub fault_plans: u64,
}

impl FuzzConfig {
    /// The default gauntlet: all four protected schemes
    /// differentially, Penny conformance with a small site budget.
    pub fn new(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters,
            schemes: vec![
                SchemeId::IGpu,
                SchemeId::BoltGlobal,
                SchemeId::BoltAuto,
                SchemeId::Penny,
            ],
            conformance_schemes: vec![SchemeId::Penny],
            conformance_budget: 24,
            fault_plans: 2,
        }
    }
}

/// What went wrong, at gauntlet-stage granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The generator emitted IR that fails validation (or building
    /// panicked).
    Build,
    /// The generated kernel is not lint-clean.
    Lint,
    /// The Baseline (unprotected) pipeline rejected the kernel — it
    /// must accept every generated shape.
    BaselineCompile,
    /// Decoded engine and decode-reference interpreter disagree.
    Differential,
    /// A protected scheme's fault-free output differs from Baseline's.
    SchemeOutput,
    /// A conformance sweep left fault sites unrecovered.
    Conformance,
    /// A compile-time static site classification contradicted the
    /// replay engine's dynamic verdict (translation-validation failure
    /// of the vulnerability analysis).
    StaticAgreement,
    /// A gauntlet stage panicked (engine or harness bug).
    Engine,
}

impl DivergenceKind {
    /// Stable lowercase tag used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            DivergenceKind::Build => "build",
            DivergenceKind::Lint => "lint",
            DivergenceKind::BaselineCompile => "baseline-compile",
            DivergenceKind::Differential => "differential",
            DivergenceKind::SchemeOutput => "scheme-output",
            DivergenceKind::Conformance => "conformance",
            DivergenceKind::StaticAgreement => "static-agreement",
            DivergenceKind::Engine => "engine",
        }
    }
}

/// One confirmed divergence: the minting spec, its shrunk reproducer,
/// and the failing stage.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The spec that surfaced the divergence.
    pub spec: KernelSpec,
    /// Minimal spec still reproducing the same [`DivergenceKind`].
    pub shrunk: KernelSpec,
    /// Failing gauntlet stage.
    pub kind: DivergenceKind,
    /// Scheme the failure occurred under, when stage-specific.
    pub scheme: Option<&'static str>,
    /// Human-readable failure description.
    pub detail: String,
}

/// Aggregate gauntlet-stage counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Kernels generated.
    pub generated: u64,
    /// Kernels passing build + validate + lint.
    pub lint_clean: u64,
    /// Scheme compiles attempted (Baseline + protected).
    pub compiles: u64,
    /// Protected-scheme compiles the Penny pipeline rejected
    /// (tolerated skips, not failures).
    pub compile_skips: u64,
    /// Differential decoded-vs-reference comparisons executed.
    pub differential_runs: u64,
    /// Fault sites covered by conformance sweeps.
    pub conformance_sites: u64,
    /// Static site-class claims cross-examined against the replay
    /// engine (conformance sweeps run in validate mode).
    pub static_claims: u64,
}

impl StageCounts {
    fn add(&mut self, other: &StageCounts) {
        self.generated += other.generated;
        self.lint_clean += other.lint_clean;
        self.compiles += other.compiles;
        self.compile_skips += other.compile_skips;
        self.differential_runs += other.differential_runs;
        self.conformance_sites += other.conformance_sites;
        self.static_claims += other.static_claims;
    }
}

/// The outcome of one spec's trip through the gauntlet.
#[derive(Debug)]
pub struct GauntletOutcome {
    /// Stage counters for this spec alone.
    pub counts: StageCounts,
    /// The failure, if any stage diverged (not yet shrunk).
    pub failure: Option<(DivergenceKind, Option<&'static str>, String)>,
    /// Baseline golden output (sorted nonzero user words), when the
    /// baseline leg ran successfully.
    pub golden: Option<Vec<(u32, u32)>>,
    /// True when every configured scheme compiled (no skips) — the
    /// banking bar for corpus candidates.
    pub all_schemes_compiled: bool,
}

/// The full result of [`run_fuzz`].
#[derive(Debug)]
pub struct FuzzReport {
    /// The configuration that produced this report.
    pub config: FuzzConfig,
    /// Aggregate stage counters.
    pub counts: StageCounts,
    /// Every confirmed divergence, in iteration order.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// Deterministic text report (no timings, no ordering ambiguity).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "penny-fuzz report");
        let _ = writeln!(out, "seed {}  iters {}", self.config.seed, self.config.iters);
        let c = &self.counts;
        let _ = writeln!(
            out,
            "generated {}  lint-clean {}  compiles {} (skips {})",
            c.generated, c.lint_clean, c.compiles, c.compile_skips
        );
        let _ = writeln!(
            out,
            "differential runs {}  conformance sites {}  static claims {}",
            c.differential_runs, c.conformance_sites, c.static_claims
        );
        let _ = writeln!(out, "divergences {}", self.divergences.len());
        for (i, d) in self.divergences.iter().enumerate() {
            let _ = writeln!(out, "--- divergence {} [{}] ---", i + 1, d.kind.tag());
            if let Some(s) = d.scheme {
                let _ = writeln!(out, "scheme: {s}");
            }
            let _ = writeln!(out, "spec:   {}", d.spec.render());
            let _ = writeln!(out, "shrunk: {}", d.shrunk.render());
            let _ = writeln!(out, "detail: {}", d.detail);
        }
        out
    }
}

/// The GPU configuration a scheme's runs use.
fn gpu_for(scheme: SchemeId) -> GpuConfig {
    GpuConfig::fermi().with_rf(scheme.rf())
}

/// The compiler configuration the gauntlet uses for a scheme: full
/// validation and the lint gate on.
fn gauntlet_config(scheme: SchemeId, spec: &KernelSpec) -> penny_core::PennyConfig {
    scheme.config().with_launch(spec.dims()).with_validation(true).with_lint(true)
}

/// Compares the two interpreter legs of one differential run.
fn compare_legs(
    fast: (Result<RunStats, penny_sim::SimError>, GlobalMemory),
    reference: (Result<RunStats, penny_sim::SimError>, GlobalMemory),
) -> Result<(), String> {
    match (fast.0, reference.0) {
        (Ok(fs), Ok(rs)) => {
            if fs != rs {
                return Err("stats diverge between decoded and reference paths".into());
            }
            if fast.1 != reference.1 {
                return Err(
                    "final memory diverges between decoded and reference paths".into()
                );
            }
            Ok(())
        }
        (Err(fe), Err(re)) => {
            if fe != re {
                return Err(format!("error kinds diverge: decoded={fe} reference={re}"));
            }
            Ok(())
        }
        (Ok(_), Err(e)) => Err(format!("reference errors ({e}) but decoded succeeds")),
        (Err(e), Ok(_)) => Err(format!("decoded errors ({e}) but reference succeeds")),
    }
}

/// A registry-shaped [`Workload`] for a generated spec (conformance
/// and banking both consume workload values). Leaks the name/abbr
/// strings — bounded by the iteration count.
pub fn spec_workload(spec: &KernelSpec, golden: Vec<(u32, u32)>) -> Workload {
    let kernel = spec.build();
    let entry = CorpusEntry {
        abbr: spec.name(),
        name: format!("fuzz {} {}", spec.family.tag(), spec.render()),
        family: spec.family.tag().to_string(),
        spec: Some(spec.render()),
        dims: spec.dims(),
        image: spec.image(),
        golden,
        asm: kernel.to_string(),
    };
    entry.into_workload()
}

/// Runs one spec through the whole gauntlet. Never panics: stage
/// panics are caught and reported as [`DivergenceKind::Engine`].
pub fn run_gauntlet(spec: &KernelSpec, cfg: &FuzzConfig) -> GauntletOutcome {
    let mut out = GauntletOutcome {
        counts: StageCounts { generated: 1, ..StageCounts::default() },
        failure: None,
        golden: None,
        all_schemes_compiled: true,
    };
    let fail = |o: &mut GauntletOutcome, kind, scheme, detail: String| {
        o.failure = Some((kind, scheme, detail));
    };

    // Stage 1 — build + validate (the builder validates on finish).
    let kernel = match catch_unwind(AssertUnwindSafe(|| spec.build())) {
        Ok(k) => k,
        Err(p) => {
            fail(&mut out, DivergenceKind::Build, None, panic_text(p));
            return out;
        }
    };

    // Stage 2 — lint must be clean for the spec's launch geometry.
    let dims = spec.dims();
    let diags = lint_kernel(&kernel, &LintOptions::for_launch(dims.block, dims.grid));
    if !diags.is_empty() {
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let joined = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ");
        fail(
            &mut out,
            DivergenceKind::Lint,
            None,
            format!("{} diagnostics ({errors} errors): {joined}", diags.len()),
        );
        return out;
    }
    out.counts.lint_clean = 1;

    // Stage 3a — the Baseline pipeline must accept every generated
    // kernel (it skips checkpoint instrumentation entirely).
    out.counts.compiles += 1;
    let baseline = match catch_unwind(AssertUnwindSafe(|| {
        penny_core::compile(&kernel, &gauntlet_config(SchemeId::Baseline, spec))
    })) {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => {
            fail(
                &mut out,
                DivergenceKind::BaselineCompile,
                Some("Baseline"),
                e.to_string(),
            );
            return out;
        }
        Err(p) => {
            fail(
                &mut out,
                DivergenceKind::BaselineCompile,
                Some("Baseline"),
                panic_text(p),
            );
            return out;
        }
    };

    // Stage 4a — Baseline differential, fault-free; its output is the
    // cross-scheme golden.
    let image = spec.image();
    // Fault seeds follow the spec content, so every spec sees its own
    // deterministic plans.
    let spec_salt = spec.render().bytes().fold(0u64, |h, b| splitmix64(h ^ u64::from(b)));
    let faults_of =
        |salt: u64, regs: u32| gen::fault_plan(splitmix64(spec_salt ^ salt), dims, regs, 3);
    let run_diff = |protected: &Protected,
                    scheme: SchemeId,
                    plan: &penny_sim::FaultPlan|
     -> Result<GlobalMemory, String> {
        let (fast, reference) =
            gen::try_run_pair(protected, dims, &gpu_for(scheme), plan, &image);
        let mem = fast.1.fork();
        compare_legs(fast, reference).map(|()| mem)
    };
    out.counts.differential_runs += 1;
    let golden_mem = match catch_unwind(AssertUnwindSafe(|| {
        run_diff(&baseline, SchemeId::Baseline, &penny_sim::FaultPlan::none())
    })) {
        Ok(Ok(mem)) => mem,
        Ok(Err(e)) => {
            fail(&mut out, DivergenceKind::Differential, Some("Baseline"), e);
            return out;
        }
        Err(p) => {
            fail(&mut out, DivergenceKind::Engine, Some("Baseline"), panic_text(p));
            return out;
        }
    };
    let golden = user_words(&golden_mem);
    out.golden = Some(golden.clone());

    // Stages 3b/4b/5 — protected schemes: compile (skips tolerated),
    // differential fault-free + under fault plans, output vs golden.
    for &scheme in &cfg.schemes {
        out.counts.compiles += 1;
        let Some(protected) = gen::try_compile(&kernel, gauntlet_config(scheme, spec))
        else {
            out.counts.compile_skips += 1;
            out.all_schemes_compiled = false;
            continue;
        };
        let regs = protected.kernel.vreg_limit().max(1);
        let mut plans = vec![penny_sim::FaultPlan::none()];
        for p in 0..cfg.fault_plans {
            plans.push(faults_of(0xF417 + p, regs));
        }
        for (pi, plan) in plans.iter().enumerate() {
            out.counts.differential_runs += 1;
            let res = catch_unwind(AssertUnwindSafe(|| run_diff(&protected, scheme, plan)));
            match res {
                Ok(Ok(mem)) => {
                    // Cross-scheme check on the fault-free run only:
                    // protection must not change program semantics.
                    if pi == 0 && user_words(&mem) != golden {
                        fail(
                            &mut out,
                            DivergenceKind::SchemeOutput,
                            Some(scheme.name()),
                            "fault-free output differs from Baseline golden".into(),
                        );
                        return out;
                    }
                }
                Ok(Err(e)) => {
                    fail(&mut out, DivergenceKind::Differential, Some(scheme.name()), e);
                    return out;
                }
                Err(p) => {
                    fail(
                        &mut out,
                        DivergenceKind::Engine,
                        Some(scheme.name()),
                        panic_text(p),
                    );
                    return out;
                }
            }
        }
    }

    // Stage 6 — budgeted snapshot/replay conformance sweeps in
    // validate mode: same replays, plus a static-vs-dynamic agreement
    // cross-examination of every compile-time site classification.
    if cfg.conformance_budget > 0 && !cfg.conformance_schemes.is_empty() {
        let workload = spec_workload(spec, golden);
        for &scheme in &cfg.conformance_schemes {
            if gen::try_compile(&kernel, gauntlet_config(scheme, spec)).is_none() {
                continue; // already counted as a skip above when listed
            }
            let budget = cfg.conformance_budget;
            let report = match catch_unwind(AssertUnwindSafe(|| {
                run_conformance_static_for(&workload, scheme, budget, StaticMode::Validate)
            })) {
                Ok(r) => r,
                Err(p) => {
                    fail(
                        &mut out,
                        DivergenceKind::Engine,
                        Some(scheme.name()),
                        panic_text(p),
                    );
                    return out;
                }
            };
            out.counts.conformance_sites += report.covered;
            out.counts.static_claims += report.static_checked;
            if let Some(detail) = conformance_failure(&report) {
                fail(&mut out, DivergenceKind::Conformance, Some(scheme.name()), detail);
                return out;
            }
            if let Some(detail) = static_disagreement(&report) {
                fail(
                    &mut out,
                    DivergenceKind::StaticAgreement,
                    Some(scheme.name()),
                    detail,
                );
                return out;
            }
        }
    }

    out
}

/// Renders a conformance report's failures, if any.
fn conformance_failure(report: &ConformanceReport) -> Option<String> {
    if report.recovered == report.covered {
        return None;
    }
    let mut detail = format!(
        "{}/{} covered sites unrecovered",
        report.covered - report.recovered,
        report.covered
    );
    for f in &report.failures {
        let _ = write!(
            detail,
            "; site b{}w{}l{}r{}bit{}t{}: {}",
            f.injection.block,
            f.injection.warp,
            f.injection.lane,
            f.injection.reg,
            f.injection.bit,
            f.injection.after_warp_insts,
            f.reason
        );
    }
    Some(detail)
}

/// Renders a validate-mode report's static/dynamic disagreements, if
/// any.
fn static_disagreement(report: &ConformanceReport) -> Option<String> {
    if report.static_disagreements == 0 {
        return None;
    }
    let mut detail = format!(
        "{} of {} static claims contradicted by the replay engine",
        report.static_disagreements, report.static_checked
    );
    for (pos, reason) in &report.disagreements {
        let _ = write!(detail, "; site {pos}: {reason}");
    }
    Some(detail)
}

/// Best-effort text from a panic payload.
fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Maximum shrink candidates tried per divergence.
pub const MAX_SHRINK_TRIALS: usize = 96;

/// Greedily shrinks `spec` while `fails` holds, deterministically:
/// candidates are tried in a fixed order (drop op block halves, drop
/// single ops, disable the barrier, halve the sparse row density), a
/// candidate is accepted only if it strictly reduces
/// [`KernelSpec::size`] *and* still fails, and the search is bounded
/// by [`MAX_SHRINK_TRIALS`]. The result always still fails (the input
/// is returned unchanged if nothing smaller does).
pub fn shrink_spec(spec: &KernelSpec, fails: &dyn Fn(&KernelSpec) -> bool) -> KernelSpec {
    let mut best = spec.clone();
    let mut trials = 0usize;
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            if trials >= MAX_SHRINK_TRIALS {
                return best;
            }
            debug_assert!(cand.size() < best.size());
            trials += 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Strictly smaller candidate specs, most aggressive first.
fn shrink_candidates(spec: &KernelSpec) -> Vec<KernelSpec> {
    let mut out = Vec::new();
    let n = spec.ops.len();
    // Drop the first/second half of the op script.
    if n >= 2 {
        let mid = n / 2;
        let mut a = spec.clone();
        a.ops = spec.ops[mid..].to_vec();
        out.push(a);
        let mut b = spec.clone();
        b.ops = spec.ops[..mid].to_vec();
        out.push(b);
    }
    // Drop each single op, ascending index.
    if n >= 2 {
        for i in 0..n {
            let mut c = spec.clone();
            c.ops.remove(i);
            out.push(c);
        }
    }
    // Disable the dense barrier.
    if spec.barrier {
        let mut c = spec.clone();
        c.barrier = false;
        out.push(c);
    }
    // Thin the sparse topology toward single-nonzero rows.
    if spec.max_row_nnz > 1 {
        let mut c = spec.clone();
        c.max_row_nnz = (spec.max_row_nnz / 2).max(1);
        out.push(c);
    }
    out
}

/// Runs the full fuzz loop: `iters` specs derived from `seed`, each
/// through the gauntlet; divergences are shrunk against their
/// divergence kind. Records one `campaign` span per iteration on the
/// process-global recorder (`penny_bench::obs`), when one is
/// installed.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut counts = StageCounts::default();
    let mut divergences = Vec::new();
    for i in 0..cfg.iters {
        let spec = KernelSpec::from_seed(cfg.seed.wrapping_add(i));
        let rec = penny_bench::obs::recorder();
        let timer = penny_obs::SpanTimer::start(rec.as_ref());
        let outcome = run_gauntlet(&spec, cfg);
        counts.add(&outcome.counts);
        if rec.enabled() {
            penny_obs::record_campaign(
                rec.as_ref(),
                &spec.name(),
                "fuzz-gauntlet",
                timer,
                &[
                    ("lint_clean", outcome.counts.lint_clean),
                    ("compiles", outcome.counts.compiles),
                    ("compile_skips", outcome.counts.compile_skips),
                    ("differential_runs", outcome.counts.differential_runs),
                    ("conformance_sites", outcome.counts.conformance_sites),
                    ("diverged", u64::from(outcome.failure.is_some())),
                ],
            );
        }
        if let Some((kind, scheme, detail)) = outcome.failure {
            let shrunk = shrink_spec(
                &spec,
                &|cand| matches!(&run_gauntlet(cand, cfg).failure, Some((k, _, _)) if *k == kind),
            );
            divergences.push(Divergence { spec, shrunk, kind, scheme, detail });
        }
    }
    FuzzReport { config: cfg.clone(), counts, divergences }
}

/// Replays one banked workload through the whole gauntlet: parse +
/// validate + lint, compile under every scheme (validation + lint on),
/// decoded-vs-reference differential (fault-free and faulted), golden
/// output check, and a budgeted Penny conformance sweep in validate
/// mode (every static site-class claim cross-examined against the
/// replay engine).
///
/// # Errors
///
/// Describes the first failing stage.
pub fn replay_workload(w: &Workload, conformance_budget: u64) -> Result<(), String> {
    let kernel = w.kernel().map_err(|e| format!("{}: parse: {e}", w.abbr))?;
    penny_ir::validate(&kernel).map_err(|e| format!("{}: validate: {e}", w.abbr))?;

    let diags = lint_kernel(&kernel, &LintOptions::for_launch(w.dims.block, w.dims.grid));
    if !diags.is_empty() {
        let joined = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ");
        return Err(format!("{}: lint: {joined}", w.abbr));
    }

    let Setup::Image(image) = &w.setup else {
        return Err(format!("{}: corpus workloads must carry a memory image", w.abbr));
    };
    let Verify::Golden(golden) = &w.verify else {
        return Err(format!("{}: corpus workloads must carry a golden snapshot", w.abbr));
    };

    let schemes = [
        SchemeId::Baseline,
        SchemeId::IGpu,
        SchemeId::BoltGlobal,
        SchemeId::BoltAuto,
        SchemeId::Penny,
    ];
    for scheme in schemes {
        let cfg = scheme.config().with_launch(w.dims).with_validation(true).with_lint(true);
        let Some(protected) = gen::try_compile(&kernel, cfg) else {
            if scheme == SchemeId::Baseline || scheme == SchemeId::Penny {
                return Err(format!(
                    "{}: {} must compile banked kernels",
                    w.abbr,
                    scheme.name()
                ));
            }
            continue;
        };
        // Fault-free differential + golden check.
        let (fast, reference) = gen::try_run_pair(
            &protected,
            w.dims,
            &gpu_for(scheme),
            &penny_sim::FaultPlan::none(),
            image,
        );
        let mem = fast.1.fork();
        compare_legs(fast, reference)
            .map_err(|e| format!("{}: {} differential: {e}", w.abbr, scheme.name()))?;
        if user_words(&mem) != **golden {
            return Err(format!(
                "{}: {} fault-free output differs from banked golden",
                w.abbr,
                scheme.name()
            ));
        }
        // Faulted differential.
        let regs = protected.kernel.vreg_limit().max(1);
        let plan = gen::fault_plan(0xC0FFEE ^ regs as u64, w.dims, regs, 3);
        let (fast, reference) =
            gen::try_run_pair(&protected, w.dims, &gpu_for(scheme), &plan, image);
        compare_legs(fast, reference).map_err(|e| {
            format!("{}: {} faulted differential: {e}", w.abbr, scheme.name())
        })?;
    }

    if conformance_budget > 0 {
        let report = run_conformance_static_for(
            w,
            SchemeId::Penny,
            conformance_budget,
            StaticMode::Validate,
        );
        if let Some(detail) = conformance_failure(&report) {
            return Err(format!("{}: conformance: {detail}", w.abbr));
        }
        if let Some(detail) = static_disagreement(&report) {
            return Err(format!("{}: static agreement: {detail}", w.abbr));
        }
    }
    Ok(())
}

/// Banks a spec as a committed corpus file: renders the entry (spec
/// line, memory image, parameter words, golden output, kernel text)
/// and writes `<dir>/<name>.pir`. The caller is responsible for having
/// gauntlet-verified the spec first.
///
/// # Errors
///
/// Propagates I/O errors and refuses specs whose baseline leg fails.
pub fn bank_spec(
    spec: &KernelSpec,
    dir: &std::path::Path,
) -> Result<std::path::PathBuf, String> {
    let kernel = spec.build();
    let dims = spec.dims();
    let image = spec.image();
    let baseline = gen::try_compile(&kernel, gauntlet_config(SchemeId::Baseline, spec))
        .ok_or_else(|| format!("{}: baseline must compile", spec.name()))?;
    let ((_, mem), _) = gen::run_pair(
        &baseline,
        dims,
        &gpu_for(SchemeId::Baseline),
        &penny_sim::FaultPlan::none(),
        &image,
    );
    let entry = CorpusEntry {
        abbr: spec.name(),
        name: format!("fuzz {} {}", spec.family.tag(), spec.name()),
        family: spec.family.tag().to_string(),
        spec: Some(spec.render()),
        dims,
        image,
        golden: user_words(&mem),
        asm: kernel.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.pir", spec.name()));
    std::fs::write(&path, entry.render())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Loads and replays every corpus entry under `dir`.
///
/// # Errors
///
/// Returns every failing entry's description (the gate reports all
/// failures, not just the first).
pub fn replay_dir(
    dir: &std::path::Path,
    conformance_budget: u64,
) -> Result<usize, Vec<String>> {
    let workloads = match penny_workloads::corpus::load_dir(dir) {
        Ok(ws) => ws,
        Err(e) => return Err(vec![e]),
    };
    let mut errors = Vec::new();
    for w in &workloads {
        if w.suite != Suite::Corpus {
            errors.push(format!("{}: not a corpus workload", w.abbr));
            continue;
        }
        if let Err(e) = replay_workload(w, conformance_budget) {
            errors.push(e);
        }
    }
    if errors.is_empty() {
        Ok(workloads.len())
    } else {
        Err(errors)
    }
}

/// True when the workload's source is owned text (a banked entry).
pub fn is_text_sourced(w: &Workload) -> bool {
    matches!(w.source, Source::Text(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauntlet_is_clean_on_known_good_specs() {
        let cfg = FuzzConfig { conformance_budget: 8, ..FuzzConfig::new(0, 0) };
        for spec in
            [KernelSpec::dense(vec![0, 5], true), KernelSpec::sparse(vec![0, 6], 0x77, 3)]
        {
            let out = run_gauntlet(&spec, &cfg);
            assert!(out.failure.is_none(), "{:?}: {:?}", spec.render(), out.failure);
            assert_eq!(out.counts.lint_clean, 1);
            assert!(out.golden.is_some());
        }
    }

    #[test]
    fn fuzz_run_is_deterministic() {
        let cfg = FuzzConfig { conformance_budget: 4, ..FuzzConfig::new(11, 6) };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn spec_workload_round_trips_through_corpus_entry() {
        let spec = KernelSpec::sparse(vec![0, 1, 6], 0xBEEF, 4);
        let w = spec_workload(&spec, vec![(0x4000, 7)]);
        assert_eq!(w.suite, Suite::Corpus);
        assert!(is_text_sourced(&w));
        let k = w.kernel().expect("printed kernel must reparse");
        penny_ir::validate(&k).expect("reparsed kernel must validate");
    }
}
