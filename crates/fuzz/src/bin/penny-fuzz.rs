//! `penny-fuzz`: seeded generative differential testing for the Penny
//! pipeline, plus corpus banking and replay.
//!
//! Usage:
//!
//! ```text
//! penny-fuzz --seed N --iters K [--conformance-budget S] [--jobs N]
//!            [--bank DIR] [--obs FILE]
//! penny-fuzz --replay DIR [--conformance-budget S] [--jobs N]
//! penny-fuzz --mint-sparse COUNT --from-seed S --bank DIR
//!            [--conformance-budget S] [--jobs N]
//! penny-fuzz --mint-spec SPEC --bank DIR
//! ```
//!
//! * `--seed N --iters K` — run the gauntlet on `K` generated kernels
//!   derived from seed `N`; print the deterministic report; exit
//!   nonzero if any divergence was found;
//! * `--conformance-budget S` — fault sites per conformance sweep
//!   (default 24 while fuzzing, 2048 for replay/mint; 0 disables);
//! * `--jobs N` — harness workers for conformance classification;
//!   verdicts are identical for any job count;
//! * `--bank DIR` — write every divergence's shrunk reproducer (or
//!   every minted kernel) as a corpus entry under DIR;
//! * `--replay DIR` — re-verify every banked corpus entry through the
//!   full gauntlet (compile → validate → lint → differential → golden
//!   → conformance); exit nonzero on any failure;
//! * `--mint-sparse COUNT --from-seed S` — scan seeds from `S` for
//!   sparse-family kernels on which **all** schemes compile and the
//!   whole gauntlet passes, then bank the first COUNT of them;
//! * `--mint-spec SPEC` — gauntlet-verify and bank one hand-picked
//!   spec (e.g. `sparse;ops=6,3;nnz=5;topo=0x2a`);
//! * `--obs FILE` — install the observability recorder and append the
//!   run's spans (one `campaign` span per gauntlet iteration, plus the
//!   conformance engine's spans) to FILE as schema-checked JSONL.
//!
//! The fuzz report goes to stdout and contains no timings: two runs
//! with identical arguments produce byte-identical output.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use penny_fuzz::{run_fuzz, run_gauntlet, FuzzConfig};
use penny_obs::MemRecorder;
use penny_sim::gen::{Family, KernelSpec};

fn die(msg: &str) -> ! {
    eprintln!("penny-fuzz: {msg}");
    std::process::exit(2);
}

struct Args {
    seed: u64,
    iters: u64,
    conformance_budget: Option<u64>,
    jobs: usize,
    bank: Option<PathBuf>,
    replay: Option<PathBuf>,
    mint_sparse: Option<u64>,
    mint_spec: Option<String>,
    from_seed: u64,
    obs: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 1,
        iters: 0,
        conformance_budget: None,
        jobs: 1,
        bank: None,
        replay: None,
        mint_sparse: None,
        mint_spec: None,
        from_seed: 1,
        obs: None,
    };
    let mut args = std::env::args().skip(1);
    let next_u64 = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs an unsigned integer")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => a.seed = next_u64(&mut args, "--seed"),
            "--iters" => a.iters = next_u64(&mut args, "--iters"),
            "--conformance-budget" => {
                a.conformance_budget = Some(next_u64(&mut args, "--conformance-budget"))
            }
            "--jobs" => {
                a.jobs = next_u64(&mut args, "--jobs") as usize;
                if a.jobs == 0 {
                    die("--jobs needs a positive integer");
                }
            }
            "--bank" => {
                a.bank =
                    Some(args.next().unwrap_or_else(|| die("--bank needs a DIR")).into())
            }
            "--replay" => {
                a.replay =
                    Some(args.next().unwrap_or_else(|| die("--replay needs a DIR")).into())
            }
            "--mint-sparse" => a.mint_sparse = Some(next_u64(&mut args, "--mint-sparse")),
            "--mint-spec" => {
                a.mint_spec =
                    Some(args.next().unwrap_or_else(|| die("--mint-spec needs a SPEC")))
            }
            "--from-seed" => a.from_seed = next_u64(&mut args, "--from-seed"),
            "--obs" => {
                a.obs =
                    Some(args.next().unwrap_or_else(|| die("--obs needs a FILE")).into())
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    a
}

/// Flushes the in-memory recorder to `path` as schema-checked JSONL.
fn dump_obs(rec: &MemRecorder, path: &PathBuf) {
    let mut out = String::new();
    for span in rec.snapshot() {
        let line = span.to_jsonl();
        penny_obs::schema::validate_line(&line)
            .unwrap_or_else(|e| die(&format!("obs span failed schema check: {e}")));
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(path, out)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
}

fn main() -> ExitCode {
    let a = parse_args();
    penny_bench::set_jobs(a.jobs);
    // The gauntlet *expects* panics: overwrite-prevention rejections
    // surface as catch_unwind'd compile skips, and real divergent
    // panics are captured into the report with their payload text.
    // Keep stderr quiet instead of printing a backtrace per skip.
    std::panic::set_hook(Box::new(|_| {}));

    let obs_rec = a.obs.as_ref().map(|_| Arc::new(MemRecorder::new()));
    if let Some(rec) = &obs_rec {
        penny_bench::obs::set_recorder(rec.clone());
    }
    let finish_obs = |rec: &Option<Arc<MemRecorder>>| {
        if let (Some(rec), Some(path)) = (rec, &a.obs) {
            penny_bench::obs::clear_recorder();
            dump_obs(rec, path);
        }
    };

    // Replay mode: re-verify a banked corpus directory.
    if let Some(dir) = &a.replay {
        let budget = a.conformance_budget.unwrap_or(2048);
        match penny_fuzz::replay_dir(dir, budget) {
            Ok(n) => {
                println!("corpus replay: {n} entries verified ({})", dir.display());
                finish_obs(&obs_rec);
                return ExitCode::SUCCESS;
            }
            Err(errors) => {
                println!("corpus replay: {} failure(s)", errors.len());
                for e in &errors {
                    println!("  {e}");
                }
                finish_obs(&obs_rec);
                return ExitCode::FAILURE;
            }
        }
    }

    // Mint a single hand-picked spec.
    if let Some(spec_line) = &a.mint_spec {
        let dir = a.bank.clone().unwrap_or_else(|| die("--mint-spec needs --bank DIR"));
        let spec = KernelSpec::parse(spec_line)
            .unwrap_or_else(|| die(&format!("unparseable spec `{spec_line}`")));
        let cfg = FuzzConfig {
            conformance_budget: a.conformance_budget.unwrap_or(2048),
            ..FuzzConfig::new(0, 0)
        };
        let outcome = run_gauntlet(&spec, &cfg);
        if let Some((kind, scheme, detail)) = &outcome.failure {
            die(&format!(
                "spec fails the gauntlet [{}{}]: {detail}",
                kind.tag(),
                scheme.map(|s| format!(" under {s}")).unwrap_or_default()
            ));
        }
        if !outcome.all_schemes_compiled {
            die("spec is skipped by at least one scheme; pick another");
        }
        let path = penny_fuzz::bank_spec(&spec, &dir).unwrap_or_else(|e| die(&e));
        println!("minted {} -> {}", spec.render(), path.display());
        finish_obs(&obs_rec);
        return ExitCode::SUCCESS;
    }

    // Mint mode: scan seeds for bankable sparse kernels.
    if let Some(count) = a.mint_sparse {
        let dir = a.bank.clone().unwrap_or_else(|| die("--mint-sparse needs --bank DIR"));
        let budget = a.conformance_budget.unwrap_or(2048);
        let cfg =
            FuzzConfig { conformance_budget: budget, ..FuzzConfig::new(a.from_seed, 0) };
        let mut minted = 0u64;
        let mut seed = a.from_seed;
        while minted < count {
            let spec = KernelSpec::from_seed(seed);
            seed += 1;
            if spec.family != Family::Sparse {
                continue;
            }
            let outcome = run_gauntlet(&spec, &cfg);
            if outcome.failure.is_some() || !outcome.all_schemes_compiled {
                continue;
            }
            let path = penny_fuzz::bank_spec(&spec, &dir).unwrap_or_else(|e| die(&e));
            println!("minted {} -> {}", spec.render(), path.display());
            minted += 1;
        }
        finish_obs(&obs_rec);
        return ExitCode::SUCCESS;
    }

    // Fuzz mode.
    if a.iters == 0 {
        die("nothing to do: pass --iters K, --replay DIR, or --mint-sparse COUNT");
    }
    let mut cfg = FuzzConfig::new(a.seed, a.iters);
    if let Some(budget) = a.conformance_budget {
        cfg.conformance_budget = budget;
    }
    let report = run_fuzz(&cfg);
    print!("{}", report.render());
    if let Some(dir) = &a.bank {
        for d in &report.divergences {
            match penny_fuzz::bank_spec(&d.shrunk, dir) {
                Ok(path) => println!("banked {} -> {}", d.shrunk.render(), path.display()),
                Err(e) => eprintln!("penny-fuzz: banking failed: {e}"),
            }
        }
    }
    finish_obs(&obs_rec);
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
