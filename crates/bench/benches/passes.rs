//! Times the Penny compiler passes and the simulator itself: how long
//! does protecting and simulating a kernel take on the host?

use criterion::{criterion_group, criterion_main, Criterion};
use penny_analysis::AliasOptions;
use penny_core::{compile, PennyConfig, PruningMode};
use penny_sim::{Gpu, GpuConfig};

fn bench_compiler(c: &mut Criterion) {
    let w = penny_workloads::by_abbr("SGEMM").expect("SGEMM");
    let kernel = w.kernel().expect("parse");
    let mut group = c.benchmark_group("compile_SGEMM");
    group.sample_size(20);
    group.bench_function("region_formation", |b| {
        b.iter(|| {
            let mut k = kernel.clone();
            penny_core::regions::form_regions(&mut k, AliasOptions::default())
        });
    });
    for (name, cfg) in [
        ("penny_optimal", PennyConfig::penny().with_launch(w.dims)),
        (
            "penny_basic_pruning",
            PennyConfig {
                pruning: PruningMode::Basic { seed: 1, trials: 64 },
                ..PennyConfig::penny()
            }
            .with_launch(w.dims),
        ),
        ("bolt", PennyConfig::bolt_auto().with_launch(w.dims)),
        ("igpu", PennyConfig::igpu().with_launch(w.dims)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| compile(&kernel, &cfg).expect("compile"));
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let w = penny_workloads::by_abbr("MD").expect("MD");
    let kernel = w.kernel().expect("parse");
    let cfg = PennyConfig::unprotected().with_launch(w.dims);
    let protected = compile(&kernel, &cfg).expect("compile");
    let mut group = c.benchmark_group("simulate_MD");
    group.sample_size(20);
    group.bench_function("fermi", |b| {
        b.iter(|| {
            let mut gpu =
                Gpu::new(GpuConfig::fermi().with_rf(penny_sim::RfProtection::None));
            let launch = w.prepare(gpu.global_mut());
            gpu.run(&protected, &launch).expect("run")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compiler, bench_simulator);
criterion_main!(benches);
