//! Raw simulator-engine throughput: the event-driven fast path against
//! the dense cycle-by-cycle reference loop, on one compute-bound and
//! one memory-bound workload. The two modes produce identical cycle
//! counts (see `tests/determinism.rs`); this bench tracks how much
//! wall-clock the fast path saves.

use criterion::{criterion_group, criterion_main, Criterion};
use penny_sim::{engine, GlobalMemory, GpuConfig, RfProtection};

fn run_pair(c: &mut Criterion, abbr: &str) {
    let w = penny_workloads::by_abbr(abbr).expect("workload");
    let gpu = GpuConfig::fermi().with_rf(RfProtection::None);
    let cfg = penny_core::PennyConfig::unprotected()
        .with_launch(w.dims)
        .with_machine(gpu.machine);
    let protected = penny_bench::cache::compiled(&w, &cfg);

    let mut group = c.benchmark_group(format!("engine/{abbr}"));
    group.sample_size(10);
    group.bench_function("event", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run(&gpu, &protected, &launch, &mut global).expect("run")
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run_reference(&gpu, &protected, &launch, &mut global).expect("run")
        })
    });
    group.finish();
}

fn engine_throughput(c: &mut Criterion) {
    // SPMV is memory-bound (long idle stretches to skip); SGEMM is
    // compute-dense (measures per-step overhead).
    run_pair(c, "SPMV");
    run_pair(c, "SGEMM");
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
