//! Raw simulator-engine throughput.
//!
//! Three axes, each pinned bit-identical by `tests/determinism.rs` so
//! the benches measure pure wall-clock, never semantic drift:
//!
//! * `event` vs `dense` — the event-driven scheduler against the dense
//!   cycle-by-cycle loop;
//! * `decoded` vs `decode_reference` — the pre-decoded micro-op
//!   interpreter (fixed operand slots, fault-aware RF fast path)
//!   against the IR-walking interpreter that codec-decodes every read;
//! * `regfile/*` — a clean-register read (cached value, decode skipped)
//!   against the unconditional codec-decode read.

use criterion::{criterion_group, criterion_main, Criterion};
use penny_sim::{engine, GlobalMemory, GpuConfig, RegFile, RfProtection, RfStats};

fn run_pair(c: &mut Criterion, abbr: &str) {
    let w = penny_workloads::by_abbr(abbr).expect("workload");
    let gpu = GpuConfig::fermi().with_rf(RfProtection::None);
    let cfg = penny_core::PennyConfig::unprotected()
        .with_launch(w.dims)
        .with_machine(gpu.machine);
    let protected = penny_bench::cache::compiled(&w, &cfg);

    let mut group = c.benchmark_group(format!("engine/{abbr}"));
    group.sample_size(10);
    group.bench_function("event", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run(&gpu, &protected, &launch, &mut global).expect("run")
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run_reference(&gpu, &protected, &launch, &mut global).expect("run")
        })
    });
    group.finish();
}

/// Decoded micro-op interpreter vs the IR-walking `decode_reference`
/// interpreter, under full Penny instrumentation (parity codec live on
/// every register access — the configuration the figure suite runs).
fn decode_pair(c: &mut Criterion, abbr: &str) {
    let w = penny_workloads::by_abbr(abbr).expect("workload");
    let gpu = GpuConfig::fermi();
    let cfg =
        penny_core::PennyConfig::penny().with_launch(w.dims).with_machine(gpu.machine);
    let protected = penny_bench::cache::compiled(&w, &cfg);

    let mut group = c.benchmark_group(format!("decode/{abbr}"));
    group.sample_size(10);
    group.bench_function("decoded", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run(&gpu, &protected, &launch, &mut global).expect("run")
        })
    });
    group.bench_function("decode_reference", |b| {
        b.iter(|| {
            let mut global = GlobalMemory::new();
            let launch = w.prepare(&mut global);
            engine::run_decode_reference(&gpu, &protected, &launch, &mut global)
                .expect("run")
        })
    });
    group.finish();
}

/// Isolated register-file read cost: a clean register served from the
/// decoded-value cache vs forced codec decodes via the reference read.
fn regfile_reads(c: &mut Criterion) {
    const REGS: usize = 64;
    let mut group = c.benchmark_group("regfile");
    for (name, protection) in [
        ("parity", RfProtection::Edc(penny_coding::Scheme::Parity)),
        ("secded", RfProtection::Ecc(penny_coding::Scheme::Secded)),
    ] {
        let mut rf = RegFile::new(REGS, protection);
        let mut stats = RfStats::default();
        for r in 0..REGS {
            rf.write(r, (r as u32).wrapping_mul(0x9E37_79B9), &mut stats);
        }
        // 64 reads are sub-microsecond; sweep the file many times per
        // sample so the stand-in harness's ms-resolution clock sees it.
        const SWEEPS: usize = 20_000;
        group.bench_function(&format!("{name}/clean_read"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for _ in 0..SWEEPS {
                    for r in 0..REGS {
                        if let penny_sim::ReadOutcome::Ok(v) = rf.read(r, &mut stats) {
                            acc = acc.wrapping_add(v);
                        }
                    }
                }
                acc
            })
        });
        group.bench_function(&format!("{name}/codec_read"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for _ in 0..SWEEPS {
                    for r in 0..REGS {
                        if let penny_sim::ReadOutcome::Ok(v) =
                            rf.read_reference(r, &mut stats)
                        {
                            acc = acc.wrapping_add(v);
                        }
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn engine_throughput(c: &mut Criterion) {
    // SPMV is memory-bound (long idle stretches to skip); SGEMM is
    // compute-dense (measures per-step overhead).
    run_pair(c, "SPMV");
    run_pair(c, "SGEMM");
    decode_pair(c, "SPMV");
    decode_pair(c, "SGEMM");
    regfile_reads(c);
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
