//! Regenerates every table and figure of the paper when run under
//! `cargo bench`, and times one representative workload per scheme.
//!
//! The full tables print to stdout (they are the artifact); the timed
//! samples keep Criterion meaningful without re-running 25 workloads
//! hundreds of times.

use criterion::{criterion_group, criterion_main, Criterion};
use penny_bench::runner::{run_scheme, SchemeId};
use penny_bench::{figures, report};
use penny_sim::GpuConfig;

fn regenerate_all(c: &mut Criterion) {
    // The paper's tables and figures, regenerated once per bench run.
    print!("{}", report::render_table1());
    print!("{}", report::render_table2());
    print!("{}", report::render_table3());
    print!("{}", report::render_figure(&figures::fig9()));
    print!("{}", report::render_figure(&figures::fig10()));
    print!("{}", report::render_figure(&figures::fig11()));
    print!("{}", report::render_fig12(&figures::fig12()));
    print!("{}", report::render_figure(&figures::fig13()));
    print!("{}", report::render_figure(&figures::fig14()));
    print!("{}", report::render_figure(&figures::fig15()));

    // Timed representative: the paper's motivating kernel (binomial
    // options) under each scheme.
    let gpu = GpuConfig::fermi();
    let w = penny_workloads::by_abbr("BO").expect("BO");
    let mut group = c.benchmark_group("fig9_BO");
    group.sample_size(10);
    for scheme in [
        SchemeId::Baseline,
        SchemeId::IGpu,
        SchemeId::BoltGlobal,
        SchemeId::BoltAuto,
        SchemeId::Penny,
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| run_scheme(&w, scheme, &gpu));
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_all);
criterion_main!(benches);
