//! Times the overwrite-prevention pass (paper §6.3) in isolation: both
//! the register-renaming and the 2-coloring storage-alternation
//! variants, on the loop-carried kernels whose checkpoints sit inside
//! live regions. Those are the worst cases: alternation's 2-coloring
//! keeps conflicting on the loop back-edges, so `color_register` runs
//! deep into its round budget and escalates through
//! `escalate_with_dummies` (edge splits + dummy checkpoints). STC is
//! the historical hot spot — before the incremental-CFG rework this
//! pass was ~75% of total compile time, dominated by these kernels.
//!
//! Run with `cargo bench -p penny-bench --bench overwrite`.

use criterion::{criterion_group, criterion_main, Criterion};
use penny_analysis::{Liveness, LoopInfo, ReachingDefs};
use penny_core::checkpoint::{
    bimodal_placement_counted, insert_checkpoints, lup_edges, region_live_ins,
};
use penny_core::overwrite::{apply_alternation, apply_renaming};
use penny_core::regions::form_regions;
use penny_core::{PennyConfig, RegionMap};
use penny_ir::Kernel;

/// Region-formed, checkpointed kernel exactly as the pipeline hands it
/// to overwrite prevention (Penny config: bimodal placement).
fn checkpointed(abbr: &str) -> (Kernel, RegionMap) {
    let w = penny_workloads::by_abbr(abbr).expect(abbr);
    let cfg = PennyConfig::penny().with_launch(w.dims);
    let mut k = w.kernel().expect("parse");
    form_regions(&mut k, cfg.alias);
    let rm = RegionMap::compute(&k);
    let lv = Liveness::compute(&k);
    let rd = ReachingDefs::compute(&k);
    let live = region_live_ins(&k, &rm, &lv);
    let edges = lup_edges(&k, &rm, &live, &rd);
    let loops = LoopInfo::compute(&k);
    let (placements, _) = bimodal_placement_counted(&k, &rm, &loops, &edges);
    insert_checkpoints(&mut k, &placements);
    (k, rm)
}

fn bench_overwrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("overwrite");
    group.sample_size(20);
    // STC and MD carry checkpointed values around loop back-edges;
    // SGEMM is the dense straight-line contrast case.
    for abbr in ["STC", "MD", "SGEMM"] {
        let (k, rm) = checkpointed(abbr);
        group.bench_function(&format!("renaming_{abbr}"), |b| {
            b.iter(|| apply_renaming(&mut k.clone(), &rm));
        });
        group.bench_function(&format!("alternation_{abbr}"), |b| {
            b.iter(|| apply_alternation(&mut k.clone(), &rm));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overwrite);
criterion_main!(benches);
