//! Per-site cost of the fault-injection conformance harness: a cold
//! from-cycle-0 simulation of one fault site against the same site
//! answered by forking the fault-free [`Recording`] (replay only the
//! victim's wave, splice the recorded suffix back on). The gap between
//! the two is the campaign speedup `penny-eval conformance --bench-json`
//! gates on; bit-identity of the two answers is pinned by
//! `crates/sim/tests/snapshot_replay.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use penny_sim::{FaultPlan, GlobalMemory, Gpu, GpuConfig, Injection, Recording, SiteClass};

fn site_cost(c: &mut Criterion, abbr: &str) {
    let w = penny_workloads::by_abbr(abbr).expect("workload");
    let gpu = GpuConfig::fermi();
    let cfg =
        penny_core::PennyConfig::penny().with_launch(w.dims).with_machine(gpu.machine);
    let protected = penny_bench::cache::compiled(&w, &cfg);

    let mut seed = GlobalMemory::new();
    let launch = w.prepare(&mut seed);
    let recording = Recording::record(&gpu, &protected, &launch, &seed).expect("record");

    // A deterministic simulated-class site: the first grid point whose
    // flip is architecturally observed (EDC detection -> forked replay),
    // i.e. the expensive class both harness paths must actually run.
    let regs = protected.kernel.vreg_limit().max(1);
    let inj = (0..regs)
        .flat_map(|reg| {
            (1..60u64).map(move |t| Injection {
                block: 0,
                warp: 0,
                lane: 0,
                reg,
                bit: 3,
                after_warp_insts: t,
            })
        })
        .find(|i| recording.site_class(i) == SiteClass::Simulated)
        .expect("no simulated site in probe grid");

    let mut group = c.benchmark_group(format!("conformance/{abbr}"));
    group.sample_size(10);
    group.bench_function("cold_site", |b| {
        b.iter(|| {
            let mut gpu_inst = Gpu::new(gpu.clone());
            let l = w.prepare(gpu_inst.global_mut()).with_faults(FaultPlan::single(inj));
            gpu_inst.run(&protected, &l).expect("run")
        })
    });
    group.bench_function("forked_site", |b| {
        b.iter(|| recording.run_site(&gpu, &protected, inj).expect("site"))
    });
    group.bench_function("record", |b| {
        b.iter(|| Recording::record(&gpu, &protected, &launch, &seed).expect("record"))
    });
    group.finish();
}

fn conformance_site_cost(c: &mut Criterion) {
    // MT: the small deep-sweep workload; SGEMM: compute-dense, the
    // worst case for cold per-site cost.
    site_cost(c, "MT");
    site_cost(c, "SGEMM");
}

criterion_group!(benches, conformance_site_cost);
criterion_main!(benches);
