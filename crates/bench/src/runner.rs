//! Shared machinery for running workloads under the evaluated schemes.

use penny_coding::Scheme;
use penny_core::{CompileStats, PennyConfig};
use penny_sim::{engine, GlobalMemory, GpuConfig, RfProtection, RunStats};
use penny_workloads::Workload;

/// The protection schemes of the paper's performance figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// Unmodified program, unprotected RF.
    Baseline,
    /// iGPU (renaming; ECC RF).
    IGpu,
    /// Bolt storing checkpoints in global memory.
    BoltGlobal,
    /// Bolt with Penny's automatic storage assignment.
    BoltAuto,
    /// Fully optimized Penny.
    Penny,
}

impl SchemeId {
    /// Every scheme, in the paper's legend order.
    pub const ALL: [SchemeId; 5] = [
        SchemeId::Baseline,
        SchemeId::IGpu,
        SchemeId::BoltGlobal,
        SchemeId::BoltAuto,
        SchemeId::Penny,
    ];

    /// Parses a CLI token (the variant name, e.g. `BoltGlobal`) back
    /// into a scheme. Tokens are distinct from the slash-y display
    /// names so they survive shells and comma-separated flags.
    pub fn from_token(s: &str) -> Option<SchemeId> {
        Self::ALL.iter().copied().find(|v| v.token() == s)
    }

    /// The CLI token accepted by [`SchemeId::from_token`].
    pub fn token(self) -> &'static str {
        match self {
            SchemeId::Baseline => "Baseline",
            SchemeId::IGpu => "IGpu",
            SchemeId::BoltGlobal => "BoltGlobal",
            SchemeId::BoltAuto => "BoltAuto",
            SchemeId::Penny => "Penny",
        }
    }

    /// Display name (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::Baseline => "Baseline",
            SchemeId::IGpu => "iGPU",
            SchemeId::BoltGlobal => "Bolt/Global",
            SchemeId::BoltAuto => "Bolt/Auto_storage",
            SchemeId::Penny => "Penny",
        }
    }

    /// Compiler configuration for this scheme.
    pub fn config(self) -> PennyConfig {
        match self {
            SchemeId::Baseline => PennyConfig::unprotected(),
            SchemeId::IGpu => PennyConfig::igpu(),
            SchemeId::BoltGlobal => PennyConfig::bolt_global(),
            SchemeId::BoltAuto => PennyConfig::bolt_auto(),
            SchemeId::Penny => PennyConfig::penny(),
        }
    }

    /// RF protection mode this scheme runs with.
    pub fn rf(self) -> RfProtection {
        match self {
            SchemeId::Baseline => RfProtection::None,
            SchemeId::IGpu => RfProtection::Ecc(Scheme::Secded),
            _ => RfProtection::Edc(Scheme::Parity),
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Simulator statistics.
    pub run: RunStats,
    /// Compiler statistics.
    pub compile: CompileStats,
}

/// Compiles (or fetches the cached compilation of) and runs one
/// workload under an explicit configuration. The simulator borrows
/// `gpu_config` directly — nothing is cloned per run.
///
/// # Panics
///
/// Panics on compile or simulation failure — the correctness test suite
/// guarantees neither happens for registered workloads.
pub fn run_workload(
    w: &Workload,
    config: &PennyConfig,
    gpu_config: &GpuConfig,
) -> Measured {
    let cfg = config.clone().with_launch(w.dims).with_machine(gpu_config.machine);
    let protected = crate::cache::compiled(w, &cfg);
    let mut global = GlobalMemory::new();
    let launch = w.prepare(&mut global);
    let run = engine::run_observed(
        gpu_config,
        &protected,
        &launch,
        &mut global,
        crate::obs::recorder().as_ref(),
    )
    .unwrap_or_else(|e| panic!("{}: run: {e}", w.abbr));
    assert!(w.check(&global), "{}: wrong output under {config:?}", w.abbr);
    Measured { run, compile: protected.stats }
}

/// Runs a workload under one of the named schemes (Fermi by default).
pub fn run_scheme(w: &Workload, scheme: SchemeId, base: &GpuConfig) -> Measured {
    let gpu_config = base.clone().with_rf(scheme.rf());
    run_workload(w, &scheme.config(), &gpu_config)
}

/// Geometric mean.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 1.0);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scheme_wiring() {
        assert_eq!(SchemeId::Penny.name(), "Penny");
        assert!(matches!(SchemeId::IGpu.rf(), RfProtection::Ecc(_)));
        assert!(matches!(SchemeId::Penny.rf(), RfProtection::Edc(Scheme::Parity)));
        assert!(matches!(SchemeId::Baseline.rf(), RfProtection::None));
    }

    #[test]
    fn baseline_run_of_one_workload() {
        let w = penny_workloads::by_abbr("MT").expect("MT");
        let m = run_scheme(&w, SchemeId::Baseline, &GpuConfig::fermi());
        assert!(m.run.cycles > 0);
        assert_eq!(m.compile.total_checkpoints, 0);
    }
}
