//! Hand-rolled JSON interchange for shard reports.
//!
//! `penny-herd` shards are separate processes: each writes its
//! [`ConformanceReport`]s as JSON ([`reports_to_json`]) and the
//! orchestrator reads them back ([`reports_from_json`]) before
//! merging. The repo builds fully offline, so this is a small
//! self-contained writer/parser pair — objects, arrays, strings and
//! `u64` numbers are the only shapes a report needs — rather than a
//! serde dependency.
//!
//! Serialization is deterministic (fixed field order, no floats), and
//! `from_json(to_json(r))` reproduces every verdict field
//! bit-identically, so a merged sharded campaign renders byte-identical
//! to the unsharded run even after a process boundary. The round-trip
//! is pinned by the tests below and `tests/herd.rs`.

use std::fmt::Write as _;

use penny_sim::Injection;

use crate::conformance::{
    ConformanceFailure, ConformanceReport, FaultSpace, ReplayWork, SiteClassCounts,
    StaticPruneCounts,
};
use crate::runner::SchemeId;

/// Version tag written at the top of every report file; bumped on any
/// incompatible field change so a herd never merges reports written by
/// a different binary generation.
pub const REPORT_FORMAT_VERSION: u64 = 1;

/// A parsed JSON value — just the shapes shard reports use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// A string literal.
    Str(String),
    /// An unsigned integer (reports carry no floats or negatives).
    Num(u64),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object fields, or an error naming `ctx`.
    fn obj(&self, ctx: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(f) => Ok(f),
            _ => Err(format!("{ctx}: expected an object")),
        }
    }

    /// The array elements, or an error naming `ctx`.
    fn arr(&self, ctx: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => Err(format!("{ctx}: expected an array")),
        }
    }

    /// The number, or an error naming `ctx`.
    fn num(&self, ctx: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{ctx}: expected a number")),
        }
    }

    /// The string, or an error naming `ctx`.
    fn str(&self, ctx: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{ctx}: expected a string")),
        }
    }
}

/// Looks up a required object field.
fn field<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num_field(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    field(fields, key)?.num(key)
}

fn str_field<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    field(fields, key)?.str(key)
}

/// Parses one JSON document (trailing garbage rejected).
///
/// # Errors
///
/// Returns a position-labelled description of the first syntax error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse()
            .map(Json::Num)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid \\u{code:04x} escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (the input is a
                    // &str, so boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if out.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes a string for a JSON string literal (same escape set as
/// `penny_obs`'s span serializer).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes one report as a deterministic JSON object.
pub fn report_to_json(r: &ConformanceReport) -> String {
    let mut o = String::with_capacity(1024);
    let _ = write!(
        o,
        "{{\"workload\":\"{}\",\"variant\":\"{}\"",
        escape(r.workload),
        escape(r.variant)
    );
    let s = &r.space;
    let _ = write!(
        o,
        ",\"space\":{{\"blocks\":{},\"warps\":{},\"lanes\":{},\"triggers\":{},\
         \"regs\":{},\"bits\":{}}}",
        s.blocks, s.warps, s.lanes, s.triggers, s.regs, s.bits
    );
    let _ = write!(
        o,
        ",\"total\":{},\"covered\":{},\"skipped\":{},\"pruned_static\":{}",
        r.total, r.covered, r.skipped, r.pruned_static
    );
    let _ = write!(
        o,
        ",\"static_prune\":{{\"dead\":{},\"overwritten\":{},\"covered\":{}}}",
        r.static_prune.dead, r.static_prune.overwritten, r.static_prune.covered
    );
    let _ = write!(
        o,
        ",\"static_checked\":{},\"static_disagreements\":{}",
        r.static_checked, r.static_disagreements
    );
    o.push_str(",\"disagreements\":[");
    for (i, (pos, reason)) in r.disagreements.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(o, "{{\"pos\":{pos},\"reason\":\"{}\"}}", escape(reason));
    }
    let _ = write!(o, "],\"recovered\":{}", r.recovered);
    let c = &r.classes;
    let _ = write!(
        o,
        ",\"classes\":{{\"never_fires\":{},\"invisible\":{},\"corrected_inline\":{},\
         \"simulated\":{},\"spliced\":{}}}",
        c.never_fires, c.invisible, c.corrected_inline, c.simulated, c.spliced
    );
    let w = &r.work;
    let _ = write!(
        o,
        ",\"work\":{{\"snapshots\":{},\"forks\":{},\"replayed_insts\":{},\
         \"cold_insts\":{},\"pages_copied\":{}}}",
        w.snapshots, w.forks, w.replayed_insts, w.cold_insts, w.pages_copied
    );
    let _ = write!(o, ",\"shard\":[{},{}]", r.shard.0, r.shard.1);
    o.push_str(",\"failures\":[");
    for (i, f) in r.failures.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let inj = &f.injection;
        let _ = write!(
            o,
            "{{\"sample\":{},\"injection\":{{\"block\":{},\"warp\":{},\"lane\":{},\
             \"reg\":{},\"bit\":{},\"after_warp_insts\":{}}},\"reason\":\"{}\",\
             \"reproducer\":\"{}\"}}",
            f.sample,
            inj.block,
            inj.warp,
            inj.lane,
            inj.reg,
            inj.bit,
            inj.after_warp_insts,
            escape(&f.reason),
            escape(&f.reproducer)
        );
    }
    o.push_str("]}");
    o
}

/// Serializes a batch of reports (one shard's output file) with the
/// format version tag.
pub fn reports_to_json(reports: &[ConformanceReport]) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "{{\"v\":{REPORT_FORMAT_VERSION},\"reports\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            o.push_str(",\n");
        }
        o.push_str(&report_to_json(r));
    }
    o.push_str("\n]}\n");
    o
}

/// Restores the `&'static str` workload abbreviation: registry
/// workloads intern to their registry entry; unknown names (e.g.
/// leaked fuzz workloads) are leaked once per distinct name.
fn intern_workload(name: &str) -> &'static str {
    match penny_workloads::by_abbr(name) {
        Some(w) => w.abbr,
        None => Box::leak(name.to_owned().into_boxed_str()),
    }
}

/// Restores the `&'static str` scheme display name.
fn intern_variant(name: &str) -> &'static str {
    SchemeId::ALL
        .iter()
        .map(|s| s.name())
        .find(|n| *n == name)
        .unwrap_or_else(|| Box::leak(name.to_owned().into_boxed_str()))
}

/// Rebuilds one report from its parsed JSON object.
fn report_from_value(v: &Json) -> Result<ConformanceReport, String> {
    let f = v.obj("report")?;
    let space = {
        let s = field(f, "space")?.obj("space")?;
        FaultSpace {
            blocks: num_field(s, "blocks")? as u32,
            warps: num_field(s, "warps")? as u32,
            lanes: num_field(s, "lanes")? as u32,
            triggers: num_field(s, "triggers")?,
            regs: num_field(s, "regs")? as u32,
            bits: num_field(s, "bits")? as u32,
        }
    };
    let static_prune = {
        let s = field(f, "static_prune")?.obj("static_prune")?;
        StaticPruneCounts {
            dead: num_field(s, "dead")?,
            overwritten: num_field(s, "overwritten")?,
            covered: num_field(s, "covered")?,
        }
    };
    let classes = {
        let s = field(f, "classes")?.obj("classes")?;
        SiteClassCounts {
            never_fires: num_field(s, "never_fires")?,
            invisible: num_field(s, "invisible")?,
            corrected_inline: num_field(s, "corrected_inline")?,
            simulated: num_field(s, "simulated")?,
            spliced: num_field(s, "spliced")?,
        }
    };
    let work = {
        let s = field(f, "work")?.obj("work")?;
        ReplayWork {
            snapshots: num_field(s, "snapshots")?,
            forks: num_field(s, "forks")?,
            replayed_insts: num_field(s, "replayed_insts")?,
            cold_insts: num_field(s, "cold_insts")?,
            pages_copied: num_field(s, "pages_copied")?,
        }
    };
    let shard = {
        let s = field(f, "shard")?.arr("shard")?;
        if s.len() != 2 {
            return Err("shard: expected [index, count]".into());
        }
        (s[0].num("shard index")? as u32, s[1].num("shard count")? as u32)
    };
    let mut disagreements = Vec::new();
    for d in field(f, "disagreements")?.arr("disagreements")? {
        let d = d.obj("disagreement")?;
        disagreements.push((num_field(d, "pos")?, str_field(d, "reason")?.to_string()));
    }
    let mut failures = Vec::new();
    for x in field(f, "failures")?.arr("failures")? {
        let x = x.obj("failure")?;
        let i = field(x, "injection")?.obj("injection")?;
        failures.push(ConformanceFailure {
            sample: num_field(x, "sample")?,
            injection: Injection {
                block: num_field(i, "block")? as u32,
                warp: num_field(i, "warp")? as u32,
                lane: num_field(i, "lane")? as u32,
                reg: num_field(i, "reg")? as u32,
                bit: num_field(i, "bit")? as u32,
                after_warp_insts: num_field(i, "after_warp_insts")?,
            },
            reason: str_field(x, "reason")?.to_string(),
            reproducer: str_field(x, "reproducer")?.to_string(),
        });
    }
    Ok(ConformanceReport {
        workload: intern_workload(str_field(f, "workload")?),
        variant: intern_variant(str_field(f, "variant")?),
        space,
        total: num_field(f, "total")?,
        covered: num_field(f, "covered")?,
        skipped: num_field(f, "skipped")?,
        pruned_static: num_field(f, "pruned_static")?,
        static_prune,
        static_checked: num_field(f, "static_checked")?,
        static_disagreements: num_field(f, "static_disagreements")?,
        disagreements,
        recovered: num_field(f, "recovered")?,
        classes,
        work,
        shard,
        failures,
    })
}

/// Parses a shard report file written by [`reports_to_json`].
///
/// # Errors
///
/// Rejects syntax errors, a missing/mismatched version tag, and any
/// structurally wrong report — the herd treats all of these as a failed
/// shard attempt (retryable), never as mergeable data.
pub fn reports_from_json(s: &str) -> Result<Vec<ConformanceReport>, String> {
    let v = parse(s)?;
    let f = v.obj("report file")?;
    let version = num_field(f, "v")?;
    if version != REPORT_FORMAT_VERSION {
        return Err(format!(
            "report format v{version}, this binary reads v{REPORT_FORMAT_VERSION}"
        ));
    }
    field(f, "reports")?.arr("reports")?.iter().map(report_from_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{render_report, run_conformance, MAX_REPORTED_FAILURES};

    #[test]
    fn parser_handles_the_report_shapes() {
        let v = parse(r#"{"a":1,"b":"x\ny","c":[1,2,{"d":[]}]}"#).unwrap();
        let f = v.obj("t").unwrap();
        assert_eq!(num_field(f, "a").unwrap(), 1);
        assert_eq!(str_field(f, "b").unwrap(), "x\ny");
        assert_eq!(field(f, "c").unwrap().arr("c").unwrap().len(), 3);
        assert!(parse("{\"a\":1}garbage").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{").is_err());
        assert!(parse("\"\\u0041\"").unwrap() == Json::Str("A".into()));
    }

    #[test]
    fn clean_report_round_trips_bit_identically() {
        let r = run_conformance("MT", SchemeId::Penny, 48);
        let json = reports_to_json(std::slice::from_ref(&r));
        let back = reports_from_json(&json).expect("parse");
        assert_eq!(back.len(), 1);
        let b = &back[0];
        assert_eq!(b.workload, r.workload);
        assert_eq!(b.variant, r.variant);
        assert_eq!(b.space, r.space);
        assert_eq!(b.total, r.total);
        assert_eq!(b.covered, r.covered);
        assert_eq!(b.skipped, r.skipped);
        assert_eq!(b.classes, r.classes);
        assert_eq!(b.work, r.work);
        assert_eq!(b.shard, r.shard);
        assert_eq!(render_report(b), render_report(&r));
        // Serialization is a fixed point after a round trip.
        assert_eq!(report_to_json(b), report_to_json(&r));
    }

    #[test]
    fn failing_report_round_trips_reproducers() {
        // Baseline MT produces real failures with multi-line reproducer
        // strings — the stress case for string escaping.
        let r = run_conformance("MT", SchemeId::Baseline, 120);
        assert!(!r.failures.is_empty(), "baseline must fail");
        assert!(r.failures.len() <= MAX_REPORTED_FAILURES);
        let back = &reports_from_json(&reports_to_json(std::slice::from_ref(&r)))
            .expect("parse")[0];
        assert_eq!(back.failures.len(), r.failures.len());
        for (a, b) in back.failures.iter().zip(&r.failures) {
            assert_eq!(a.sample, b.sample);
            assert_eq!(a.injection, b.injection);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.reproducer, b.reproducer);
        }
        assert_eq!(render_report(back), render_report(&r));
    }

    #[test]
    fn version_and_structure_errors_are_rejected() {
        assert!(reports_from_json("{\"v\":99,\"reports\":[]}").is_err());
        assert!(reports_from_json("{\"reports\":[]}").is_err());
        assert!(reports_from_json("{\"v\":1,\"reports\":[{\"workload\":\"MT\"}]}").is_err());
        assert!(reports_from_json("not json").is_err());
        assert_eq!(reports_from_json("{\"v\":1,\"reports\":[]}").unwrap().len(), 0);
    }
}
