//! Process-global recorder sink for the harness.
//!
//! The figure and conformance machinery sits behind caches and
//! `parallel_map` workers, so a recorder can't be threaded through every
//! call signature without disturbing the public API the Criterion
//! benches and tests share. Instead the harness consults one
//! process-global sink: [`recorder`] returns the installed recorder, or
//! a shared [`NullRecorder`] when none is installed — so every
//! instrumentation site stays on the zero-cost disabled path by
//! default.
//!
//! Tests that install a recorder must serialize on a lock of their own
//! (see `tests/obs_neutrality.rs`): the sink is process-wide and the
//! test harness runs in parallel.

use std::sync::{Arc, OnceLock, RwLock};

use penny_obs::{NullRecorder, Recorder};

/// The sink's shareable recorder type.
pub type SharedRecorder = Arc<dyn Recorder + Send + Sync>;

fn sink() -> &'static RwLock<Option<SharedRecorder>> {
    static SINK: OnceLock<RwLock<Option<SharedRecorder>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

fn null() -> SharedRecorder {
    static NULL: OnceLock<SharedRecorder> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullRecorder)))
}

/// Installs `rec` as the process-global span sink.
pub fn set_recorder(rec: SharedRecorder) {
    *sink().write().unwrap() = Some(rec);
}

/// Uninstalls the global sink; the harness reverts to the null recorder.
pub fn clear_recorder() {
    *sink().write().unwrap() = None;
}

/// The current global recorder (the shared [`NullRecorder`] when none
/// is installed).
pub fn recorder() -> SharedRecorder {
    sink().read().unwrap().clone().unwrap_or_else(null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use penny_obs::MemRecorder;
    use std::sync::Mutex;

    /// Serializes every test that touches the process-global sink.
    pub static SINK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sink_defaults_to_disabled_and_round_trips() {
        let _guard = SINK_LOCK.lock().unwrap();
        clear_recorder();
        assert!(!recorder().enabled());
        let mem = Arc::new(MemRecorder::new());
        set_recorder(mem.clone());
        assert!(recorder().enabled());
        recorder().record(penny_obs::Span {
            kind: penny_obs::SpanKind::Site,
            subject: "t".into(),
            label: "l".into(),
            wall_ns: 0,
            counters: Vec::new(),
        });
        assert_eq!(mem.len(), 1);
        clear_recorder();
        assert!(!recorder().enabled());
    }
}
