//! Text rendering of tables and figures for the `penny-eval` binary.

use std::fmt::Write as _;

use penny_coding::{table1, BaselineBank, HwCost, Scheme};

use crate::figures::{Figure, PruneBreakdown};

/// Renders a [`Figure`] as an aligned text table: workloads as rows,
/// series as columns, geometric mean as the last row.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {} ==", fig.title);
    let name_w = 8usize;
    let col_w = fig.series.iter().map(|s| s.name.len() + 2).max().unwrap_or(12).max(10);
    let _ = write!(out, "{:name_w$}", "app");
    for s in &fig.series {
        let _ = write!(out, "{:>col_w$}", s.name);
    }
    let _ = writeln!(out);
    for abbr in &fig.workloads {
        let _ = write!(out, "{abbr:name_w$}");
        for s in &fig.series {
            match s.value(abbr) {
                Some(v) => {
                    let _ = write!(out, "{v:>col_w$.3}");
                }
                None => {
                    let _ = write!(out, "{:>col_w$}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:name_w$}", "gmean");
    for s in &fig.series {
        let _ = write!(out, "{:>col_w$.3}", s.gmean);
    }
    let _ = writeln!(out);
    out
}

/// Renders the paper's Table 1 (storage cost, ECC vs Penny).
pub fn render_table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== Table 1: storage cost for a 32-bit register ==");
    let _ = writeln!(
        out,
        "{:<6} {:<22} {:>8}   {:<22} {:>8}",
        "errors", "conventional ECC", "ovh%", "Penny (EDC+recovery)", "ovh%"
    );
    for row in table1() {
        let _ = writeln!(
            out,
            "{:<6} {:<22} {:>7.1}%   {:<22} {:>7.1}%",
            format!("{} bit", row.error_bits),
            format!("{} ({},32)", row.ecc.name(), row.ecc.paper_n()),
            row.ecc_overhead_pct,
            format!("{} ({},32)", row.penny.name(), row.penny.paper_n()),
            row.penny_overhead_pct,
        );
    }
    out
}

/// Renders the paper's Table 2 (per-bank hardware overheads).
pub fn render_table2() -> String {
    let mut out = String::new();
    let base = BaselineBank::paper();
    let _ = writeln!(out, "\n== Table 2: RF bank hardware overheads (22nm model) ==");
    let _ = writeln!(
        out,
        "baseline bank: {:.3} mm^2, {:.2} ns, {:.2} pJ/access, {:.1} nW leakage",
        base.area_mm2, base.latency_ns, base.energy_pj, base.leakage_nw
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "scheme", "area%", "latency%", "energy%", "leakage%"
    );
    for scheme in
        [Scheme::Parity, Scheme::Hamming, Scheme::Secded, Scheme::Dected, Scheme::Tecqed]
    {
        let c = HwCost::synthesized(scheme);
        let _ = writeln!(
            out,
            "{:<10} {:>7.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            scheme.name(),
            c.area_pct,
            c.latency_pct,
            c.energy_pct,
            c.leakage_pct
        );
    }
    out
}

/// Renders the paper's Table 3 (workload roster).
pub fn render_table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== Table 3: applications used for evaluation ==");
    let _ = writeln!(out, "{:<8} {:<40} suite", "abbr", "application");
    for w in penny_workloads::all() {
        let _ = writeln!(out, "{:<8} {:<40} {}", w.abbr, w.name, w.suite.name());
    }
    out
}

/// Renders figure 12's stacked breakdown as a table.
pub fn render_fig12(rows: &[PruneBreakdown]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "\n== Figure 12: checkpoints removed by basic/optimal pruning ==");
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>10} {:>12} {:>11}",
        "app", "total", "basic%", "additional%", "committed%"
    );
    let (mut b, mut a, mut c, mut n) = (0.0, 0.0, 0.0, 0);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>9.1}% {:>11.1}% {:>10.1}%",
            r.abbr,
            r.total,
            r.basic * 100.0,
            r.additional * 100.0,
            r.committed * 100.0
        );
        b += r.basic;
        a += r.additional;
        c += r.committed;
        n += 1;
    }
    if n > 0 {
        let nf = n as f64;
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>9.1}% {:>11.1}% {:>10.1}%",
            "average",
            "",
            b / nf * 100.0,
            a / nf * 100.0,
            c / nf * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    #[test]
    fn tables_render_nonempty() {
        assert!(render_table1().contains("SECDED"));
        assert!(render_table2().contains("Parity"));
        assert!(render_table3().contains("SGEMM"));
    }

    #[test]
    fn figure_rendering_includes_gmean() {
        let fig = Figure {
            title: "t".into(),
            workloads: vec!["A".into()],
            series: vec![Series::new("S", vec![("A".into(), 1.5)])],
        };
        let s = render_figure(&fig);
        assert!(s.contains("gmean"));
        assert!(s.contains("1.500"));
    }
}
