//! One function per table and figure of the paper's evaluation section.
//!
//! Each returns a structured result the `penny-eval` binary renders as a
//! text table; `EXPERIMENTS.md` records the measured values against the
//! paper's.

use penny_core::{OverwritePolicy, PennyConfig, PruningMode, StoragePolicy};
use penny_sim::{energy, GpuConfig, RfProtection};
use penny_workloads::{all, Workload};

use crate::parallel::parallel_map;
use crate::runner::{gmean, run_scheme, run_workload, Measured, SchemeId};

/// A named series of per-workload values plus its geometric mean.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(workload abbreviation, value)` pairs.
    pub values: Vec<(String, f64)>,
    /// Geometric mean over the values.
    pub gmean: f64,
}

impl Series {
    /// Builds a series, computing the geometric mean.
    pub fn new(name: impl Into<String>, values: Vec<(String, f64)>) -> Series {
        let g = gmean(&values.iter().map(|(_, v)| *v).collect::<Vec<_>>());
        Series { name: name.into(), values, gmean: g }
    }

    /// Value for one workload.
    pub fn value(&self, abbr: &str) -> Option<f64> {
        self.values.iter().find(|(a, _)| a == abbr).map(|(_, v)| *v)
    }
}

/// A whole figure: multiple series over the same workloads.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// Workload abbreviations (x axis).
    pub workloads: Vec<String>,
    /// Series (bars).
    pub series: Vec<Series>,
}

fn baseline_cycles(w: &Workload, gpu: &GpuConfig) -> f64 {
    // One cached baseline simulation per (workload, machine) — shared
    // by every series of every figure instead of re-run per series.
    crate::cache::baseline(w, gpu).run.cycles as f64
}

fn overhead_series(
    name: &str,
    gpu: &GpuConfig,
    workloads: &[Workload],
    run: impl Fn(&Workload) -> Measured + Sync,
) -> Series {
    let values = parallel_map(workloads, |w| {
        let base = baseline_cycles(w, gpu);
        let m = run(w);
        (w.abbr.to_string(), m.run.cycles as f64 / base)
    });
    Series::new(name, values)
}

/// Figure 9: normalized fault-free execution time of iGPU, Bolt/Global,
/// Bolt/Auto_storage and Penny on the Fermi-class machine.
pub fn fig9() -> Figure {
    fig_performance(
        "Figure 9: fault-free execution time (Fermi)",
        &GpuConfig::fermi(),
        &all(),
    )
}

/// Figure 15: the same comparison on the Volta-class machine, over the
/// paper's 19-application subset.
pub fn fig15() -> Figure {
    let subset = [
        "CP", "NN", "NQU", "SGEMM", "SPMV", "TPACF", "BP", "BFS", "GAU", "HS", "PF",
        "SRAD", "SC", "BS", "BO", "CS", "FW", "SP", "MT",
    ];
    let ws: Vec<Workload> =
        all().into_iter().filter(|w| subset.contains(&w.abbr)).collect();
    fig_performance(
        "Figure 15: fault-free execution time (Volta)",
        &GpuConfig::volta(),
        &ws,
    )
}

fn fig_performance(title: &str, gpu: &GpuConfig, ws: &[Workload]) -> Figure {
    let series = vec![
        overhead_series("iGPU", gpu, ws, |w| run_scheme(w, SchemeId::IGpu, gpu)),
        overhead_series("Bolt/Global", gpu, ws, |w| {
            run_scheme(w, SchemeId::BoltGlobal, gpu)
        }),
        overhead_series("Bolt/Auto_storage", gpu, ws, |w| {
            run_scheme(w, SchemeId::BoltAuto, gpu)
        }),
        overhead_series("Penny", gpu, ws, |w| run_scheme(w, SchemeId::Penny, gpu)),
    ];
    Figure {
        title: title.into(),
        workloads: ws.iter().map(|w| w.abbr.to_string()).collect(),
        series,
    }
}

/// Figure 10: Penny's optimizations applied cumulatively.
pub fn fig10() -> Figure {
    let gpu = GpuConfig::fermi();
    let ws = all();
    // All bars keep storage alternation as the overwrite scheme except
    // the final fully-optimized one, which uses the auto-selector (the
    // paper's fully optimized Penny).
    let no_opt = PennyConfig::penny_no_opt();
    let auto_storage = PennyConfig { storage: StoragePolicy::Auto, ..no_opt.clone() };
    let bcp = PennyConfig { bcp: true, ..auto_storage.clone() };
    let pruning = PennyConfig { pruning: PruningMode::Optimal, ..bcp.clone() };
    let low =
        PennyConfig { low_opts: true, overwrite: OverwritePolicy::Auto, ..pruning.clone() };
    let bars: Vec<(&str, PennyConfig)> = vec![
        ("No_opt", no_opt),
        ("+Auto_storage", auto_storage),
        ("+BCP", bcp),
        ("+Opt_pruning", pruning),
        ("+Low_opts", low),
    ];
    let parity = gpu.clone().with_rf(RfProtection::Edc(penny_coding::Scheme::Parity));
    let series = bars
        .into_iter()
        .map(|(name, cfg)| {
            overhead_series(name, &gpu, &ws, |w| run_workload(w, &cfg, &parity))
        })
        .collect();
    Figure {
        title: "Figure 10: impact of Penny optimizations (accumulated)".into(),
        workloads: ws.iter().map(|w| w.abbr.to_string()).collect(),
        series,
    }
}

/// Figure 11: checkpoint storage assignment x overwrite prevention.
pub fn fig11() -> Figure {
    let gpu = GpuConfig::fermi();
    let ws = all();
    let base = PennyConfig::penny();
    let combo = |storage, overwrite| PennyConfig { storage, overwrite, ..base.clone() };
    let bars: Vec<(&str, PennyConfig)> = vec![
        ("Shared/RR", combo(StoragePolicy::Shared, OverwritePolicy::Renaming)),
        ("Shared/SA", combo(StoragePolicy::Shared, OverwritePolicy::Alternation)),
        ("Global/RR", combo(StoragePolicy::Global, OverwritePolicy::Renaming)),
        ("Global/SA", combo(StoragePolicy::Global, OverwritePolicy::Alternation)),
        ("Auto_storage/Auto_select", combo(StoragePolicy::Auto, OverwritePolicy::Auto)),
        ("Auto_storage/No_protection", combo(StoragePolicy::Auto, OverwritePolicy::None)),
    ];
    let parity = gpu.clone().with_rf(RfProtection::Edc(penny_coding::Scheme::Parity));
    let series = bars
        .into_iter()
        .map(|(name, cfg)| {
            overhead_series(name, &gpu, &ws, |w| run_workload(w, &cfg, &parity))
        })
        .collect();
    Figure {
        title: "Figure 11: storage assignment and overwrite prevention".into(),
        workloads: ws.iter().map(|w| w.abbr.to_string()).collect(),
        series,
    }
}

/// One kernel's checkpoint-pruning breakdown (figure 12).
#[derive(Debug, Clone)]
pub struct PruneBreakdown {
    /// Workload abbreviation.
    pub abbr: String,
    /// Total checkpoints before pruning.
    pub total: u32,
    /// Fraction removed by Bolt's basic pruning.
    pub basic: f64,
    /// Additional fraction removed only by optimal pruning.
    pub additional: f64,
    /// Fraction remaining committed.
    pub committed: f64,
}

/// Figure 12: checkpoints removed by basic vs optimal pruning.
pub fn fig12() -> Vec<PruneBreakdown> {
    let gpu = GpuConfig::fermi();
    parallel_map(&all(), |w| {
        let m = run_scheme(w, SchemeId::Penny, &gpu);
        let total = m.compile.total_checkpoints.max(1) as f64;
        let basic = m.compile.pruned_basic as f64 / total;
        let additional = m.compile.pruned_additional as f64 / total;
        PruneBreakdown {
            abbr: w.abbr.to_string(),
            total: m.compile.total_checkpoints,
            basic,
            additional,
            committed: (1.0 - basic - additional).max(0.0),
        }
    })
}

/// Figure 13: run-time impact of pruning quality.
pub fn fig13() -> Figure {
    let gpu = GpuConfig::fermi();
    let ws = all();
    let base = PennyConfig::penny();
    let bars: Vec<(&str, PennyConfig)> = vec![
        ("No_pruning", PennyConfig { pruning: PruningMode::None, ..base.clone() }),
        (
            "Basic_pruning",
            PennyConfig {
                pruning: PruningMode::Basic { seed: 0xB017, trials: 64 },
                ..base.clone()
            },
        ),
        ("Opt_pruning", PennyConfig { pruning: PruningMode::Optimal, ..base.clone() }),
    ];
    let parity = gpu.clone().with_rf(RfProtection::Edc(penny_coding::Scheme::Parity));
    let series = bars
        .into_iter()
        .map(|(name, cfg)| {
            overhead_series(name, &gpu, &ws, |w| run_workload(w, &cfg, &parity))
        })
        .collect();
    Figure {
        title: "Figure 13: performance impact of basic/optimal pruning".into(),
        workloads: ws.iter().map(|w| w.abbr.to_string()).collect(),
        series,
    }
}

/// Figure 14: register-file energy, normalized to an unprotected RF
/// running the baseline program.
pub fn fig14() -> Figure {
    let gpu = GpuConfig::fermi();
    let ws = all();
    let rows = parallel_map(&ws, |w| {
        let base = crate::cache::baseline(w, &gpu);
        // ECC: the baseline program on a SECDED RF (same access counts).
        let e = energy::normalized_rf_energy(
            &base.run.rf,
            penny_coding::Scheme::Secded,
            &base.run.rf,
        );
        // Penny: the instrumented program on a parity RF.
        let p_run = run_scheme(w, SchemeId::Penny, &gpu);
        let p = energy::normalized_rf_energy(
            &p_run.run.rf,
            penny_coding::Scheme::Parity,
            &base.run.rf,
        );
        (w.abbr.to_string(), e, p)
    });
    let mut ecc = Vec::new();
    let mut penny = Vec::new();
    for (abbr, e, p) in rows {
        ecc.push((abbr.clone(), e));
        penny.push((abbr, p));
    }
    Figure {
        title: "Figure 14: RF energy consumption (normalized to unprotected)".into(),
        workloads: ws.iter().map(|w| w.abbr.to_string()).collect(),
        series: vec![Series::new("ECC", ecc), Series::new("Parity/Penny", penny)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_gmean() {
        let s = Series::new("x", vec![("A".into(), 1.0), ("B".into(), 4.0)]);
        assert!((s.gmean - 2.0).abs() < 1e-12);
        assert_eq!(s.value("A"), Some(1.0));
        assert_eq!(s.value("Z"), None);
    }
}
