//! Ablation studies of Penny design choices called out in `DESIGN.md`:
//!
//! * the checkpoint cost constant (`C^d`, paper §6.1 uses `C = 64`) —
//!   what happens to the static pruning priorities when the exponent
//!   base changes;
//! * the alias analysis's `distinct_params` assumption — how many extra
//!   regions conservative aliasing forces;
//! * local checkpoint scheduling (the §6.6 sink pass) on/off.

use penny_analysis::AliasOptions;
use penny_core::PennyConfig;
use penny_sim::GpuConfig;
use penny_workloads::all;

use crate::parallel::parallel_map;
use crate::runner::{gmean, run_workload};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Geometric-mean normalized execution time.
    pub gmean_overhead: f64,
    /// Mean region count per kernel.
    pub mean_regions: f64,
    /// Mean committed checkpoints per kernel.
    pub mean_committed: f64,
}

fn measure(label: &str, cfg: &PennyConfig) -> AblationRow {
    let gpu = GpuConfig::fermi();
    let ws = all();
    let rows = parallel_map(&ws, |w| {
        let base = crate::cache::baseline(w, &gpu).run.cycles as f64;
        let m = run_workload(w, cfg, &gpu);
        (m.run.cycles as f64 / base, m.compile.regions, m.compile.committed)
    });
    let mut overheads = Vec::new();
    let mut regions = 0u32;
    let mut committed = 0u32;
    for (overhead, r, c) in rows {
        overheads.push(overhead);
        regions += r;
        committed += c;
    }
    AblationRow {
        label: label.into(),
        gmean_overhead: gmean(&overheads),
        mean_regions: regions as f64 / ws.len() as f64,
        mean_committed: committed as f64 / ws.len() as f64,
    }
}

/// Runs the ablation sweep.
pub fn ablation() -> Vec<AblationRow> {
    let base = PennyConfig::penny();
    vec![
        measure("Penny (default)", &base),
        measure(
            "alias: params may alias",
            &PennyConfig {
                alias: AliasOptions { distinct_params: false, ..AliasOptions::default() },
                ..base.clone()
            },
        ),
        measure(
            "no local scheduling (low_opts off)",
            &PennyConfig { low_opts: false, ..base.clone() },
        ),
        measure("eager placement (BCP off)", &PennyConfig { bcp: false, ..base.clone() }),
    ]
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Extension: design-choice ablations (25-workload means) ==");
    let _ = writeln!(
        out,
        "{:<38} {:>10} {:>9} {:>10}",
        "configuration", "gmean", "regions", "committed"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<38} {:>10.3} {:>9.1} {:>10.1}",
            r.label, r.gmean_overhead, r.mean_regions, r.mean_committed
        );
    }
    out
}

/// Static cost-model sensitivity: the total checkpoint cost `Σ C^d`
/// under eager vs bimodal placement, for `C = 2` (the BCP weight) and
/// `C = 64` (the pruning weight, paper §6.1). Shows how bimodal
/// placement drains cost out of loops regardless of the base.
pub fn cost_base_sensitivity() -> String {
    use penny_analysis::{Liveness, LoopInfo, ReachingDefs};
    use penny_core::checkpoint::{bimodal_placement, eager_placement, CkptPos};
    use penny_core::{cost, regions, RegionMap};
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "\n== Extension: checkpoint cost-base sensitivity ==");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "app", "eager C=2", "BCP C=2", "eager C=64", "BCP C=64"
    );
    for w in all() {
        let mut k = w.kernel().expect("parse");
        regions::form_regions(&mut k, AliasOptions::default());
        let rm = RegionMap::compute(&k);
        let lv = Liveness::compute(&k);
        let rd = ReachingDefs::compute(&k);
        let loops = LoopInfo::compute(&k);
        let live = penny_core::checkpoint::region_live_ins(&k, &rm, &lv);
        let edges = penny_core::checkpoint::lup_edges(&k, &rm, &live, &rd);
        if edges.is_empty() {
            continue;
        }
        let eager = eager_placement(&edges);
        let bimodal = bimodal_placement(&k, &rm, &loops, &edges);
        let total = |ps: &[penny_core::checkpoint::Placement], base: u64| -> u64 {
            ps.iter()
                .map(|p| {
                    let loc = match p.pos {
                        CkptPos::AfterLup(d) => k.find_inst(d).expect("lup"),
                        CkptPos::BeforeBoundary(r) => rm.marker_loc(r),
                    };
                    cost::checkpoint_cost(&loops, loc, base)
                })
                .sum()
        };
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            w.abbr,
            total(&eager, 2),
            total(&bimodal, 2),
            total(&eager, 64),
            total(&bimodal, 64),
        );
    }
    let _ = writeln!(
        out,
        "(Bimodal placement never costs more than eager under either base;\n\
         the C=64 column shows why pruning prioritizes in-loop checkpoints.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fastest_or_close() {
        let rows = ablation();
        let default = rows[0].gmean_overhead;
        for r in &rows[1..] {
            assert!(
                default <= r.gmean_overhead + 1e-9,
                "default ({default}) slower than {}: {}",
                r.label,
                r.gmean_overhead
            );
        }
    }

    #[test]
    fn conservative_alias_means_more_regions() {
        let rows = ablation();
        let default = &rows[0];
        let alias = rows.iter().find(|r| r.label.contains("alias")).expect("row");
        assert!(
            alias.mean_regions >= default.mean_regions,
            "conservative aliasing must not reduce regions"
        );
    }
}
