//! Compile-once, run-many caching for the evaluation harness.
//!
//! Every figure re-runs the same 25 workloads under a handful of
//! compiler configurations; before this cache each `run_workload` call
//! re-parsed and re-compiled the kernel from scratch, and each
//! `overhead_series` re-simulated the Baseline scheme — Fig. 9 paid for
//! 100 baseline simulations instead of 25. The caches here are keyed by
//! the workload plus the full `Debug` rendering of the configuration
//! (both `PennyConfig` and `GpuConfig` are plain data, so the `Debug`
//! form is a faithful fingerprint), and compiled kernels are shared as
//! `Arc<Protected>` so parallel workers hand out references instead of
//! clones.
//!
//! Both caches memoize deterministic functions of their key, so results
//! are bit-identical whether they are computed or recalled, and
//! regardless of which worker thread got there first.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use penny_core::{compile_observed, PennyConfig, Protected};
use penny_sim::GpuConfig;
use penny_workloads::Workload;

use crate::runner::{run_workload, Measured, SchemeId};

fn compiled_cache() -> &'static Mutex<HashMap<String, Arc<Protected>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Protected>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn baseline_cache() -> &'static Mutex<HashMap<String, Measured>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Measured>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The compiled form of `w` under `cfg` (which must already carry the
/// launch dims and machine parameters). Compiles on first use; later
/// calls — from any thread — share the same `Arc<Protected>`.
///
/// # Panics
///
/// Panics on parse or compile failure, like [`run_workload`].
pub fn compiled(w: &Workload, cfg: &PennyConfig) -> Arc<Protected> {
    let key = format!("{}|{cfg:?}", w.abbr);
    if let Some(p) = compiled_cache().lock().unwrap().get(&key) {
        return Arc::clone(p);
    }
    // Compile outside the lock so concurrent workers on different
    // workloads don't serialize; a duplicate racing compile of the same
    // key produces an identical Protected and the first insert wins.
    // Pass spans only cover the first (cache-miss) compilation of a key;
    // callers that need spans for every compile (penny-prof, the
    // `passes` section of BENCH_eval.json) compile directly instead.
    let kernel = w.kernel().unwrap_or_else(|e| panic!("{}: parse: {e}", w.abbr));
    let protected = compile_observed(&kernel, cfg, crate::obs::recorder().as_ref())
        .unwrap_or_else(|e| panic!("{}: compile: {e}", w.abbr));
    let arc = Arc::new(protected);
    Arc::clone(compiled_cache().lock().unwrap().entry(key).or_insert(arc))
}

/// The Baseline-scheme measurement of `w` on `base` (any RF protection
/// on `base` is replaced by the Baseline scheme's). Simulated once per
/// (workload, machine); every series of every figure shares the result.
pub fn baseline(w: &Workload, base: &GpuConfig) -> Measured {
    let gpu = base.clone().with_rf(SchemeId::Baseline.rf());
    let key = format!("{}|{gpu:?}", w.abbr);
    if let Some(m) = baseline_cache().lock().unwrap().get(&key) {
        return m.clone();
    }
    let m = run_workload(w, &SchemeId::Baseline.config(), &gpu);
    baseline_cache().lock().unwrap().entry(key).or_insert(m).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_is_shared() {
        let w = penny_workloads::by_abbr("MT").expect("MT");
        let cfg = PennyConfig::penny()
            .with_launch(w.dims)
            .with_machine(GpuConfig::fermi().machine);
        let a = compiled(&w, &cfg);
        let b = compiled(&w, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn baseline_is_memoized_and_rf_normalized() {
        let w = penny_workloads::by_abbr("MT").expect("MT");
        let base = GpuConfig::fermi();
        let a = baseline(&w, &base);
        // Same machine with a different RF setting must hit the same
        // entry: the Baseline scheme overrides protection anyway.
        let b = baseline(&w, &base.clone().with_rf(penny_sim::RfProtection::None));
        assert_eq!(a.run, b.run);
        assert!(a.run.cycles > 0);
    }
}
