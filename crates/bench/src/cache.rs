//! Compile-once, run-many caching for the evaluation harness, backed by
//! the [`penny_cache`] service layer.
//!
//! Every figure re-runs the same 25 workloads under a handful of
//! compiler configurations; before this cache each `run_workload` call
//! re-parsed and re-compiled the kernel from scratch, and each
//! `overhead_series` re-simulated the Baseline scheme — Fig. 9 paid for
//! 100 baseline simulations instead of 25.
//!
//! Entries are **content-addressed**: the key is a
//! [`penny_cache::compile_key`] digest of the kernel source text plus a
//! canonical field-wise configuration fingerprint (not a `Debug`
//! string), so identical content collapses to one entry no matter which
//! code path — figures, benches, conformance, `penny-prof` — asked
//! first. Racing misses on one key are deduplicated: the first worker
//! compiles, the rest block and share the winner's `Arc`, so a key's
//! pass spans are emitted exactly once regardless of `--jobs` or
//! scheduling (see `tests/cache_service.rs`).
//!
//! Both caches memoize deterministic functions of their key, so results
//! are bit-identical whether they are computed or recalled, and
//! regardless of which worker thread got there first.

use std::sync::{Arc, OnceLock};

use penny_cache::{compile_key, CacheStats, ContentCache, Fingerprint, Fnv64};
use penny_core::{compile_observed, PennyConfig, Protected};
use penny_obs::Recorder;
use penny_sim::GpuConfig;
use penny_workloads::Workload;

use crate::runner::{run_workload, Measured, SchemeId};

fn compiled_cache() -> &'static ContentCache<Protected> {
    static CACHE: OnceLock<ContentCache<Protected>> = OnceLock::new();
    CACHE.get_or_init(ContentCache::with_default_capacity)
}

fn baseline_cache() -> &'static ContentCache<Measured> {
    static CACHE: OnceLock<ContentCache<Measured>> = OnceLock::new();
    CACHE.get_or_init(ContentCache::with_default_capacity)
}

/// The compiled form of `w` under `cfg` (which must already carry the
/// launch dims and machine parameters). Compiles on first use; later
/// calls — from any thread — share the same `Arc<Protected>`. Pass
/// spans go to the process-global recorder ([`crate::obs::recorder`])
/// and only cover the one cache-miss compilation of each key.
///
/// # Panics
///
/// Panics on parse or compile failure, like [`run_workload`].
pub fn compiled(w: &Workload, cfg: &PennyConfig) -> Arc<Protected> {
    compiled_with(w, cfg, crate::obs::recorder().as_ref())
}

/// [`compiled`] with an explicit span recorder: on a cache miss the
/// pipeline's pass spans land in `rec` (`penny-prof` passes its
/// per-workload recorder so a profile observes the full pipeline); on a
/// hit no spans are emitted and the shared artifact is returned as-is.
pub fn compiled_with(
    w: &Workload,
    cfg: &PennyConfig,
    rec: &dyn Recorder,
) -> Arc<Protected> {
    let source = w.source_text();
    let key = compile_key(&source, cfg);
    compiled_cache().get_or_compute(key, || {
        let kernel = w.kernel().unwrap_or_else(|e| panic!("{}: parse: {e}", w.abbr));
        compile_observed(&kernel, cfg, rec)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", w.abbr))
    })
}

/// Compiles every (workload, config) pair, fanning out across the
/// [`crate::parallel`] harness (`--jobs` workers) and returning the
/// artifacts in input order. Results are bit-identical for any job
/// count: each pair's artifact is the cache entry for its content key,
/// and the in-flight dedup guarantees each key compiles at most once
/// regardless of scheduling.
pub fn compile_batch(pairs: &[(Workload, PennyConfig)]) -> Vec<Arc<Protected>> {
    crate::parallel::parallel_map(pairs, |(w, cfg)| compiled(w, cfg))
}

/// The Baseline-scheme measurement of `w` on `base` (any RF protection
/// on `base` is replaced by the Baseline scheme's). Simulated once per
/// (workload, machine); every series of every figure shares the result.
pub fn baseline(w: &Workload, base: &GpuConfig) -> Measured {
    let gpu = base.clone().with_rf(SchemeId::Baseline.rf());
    let mut h = Fnv64::new();
    h.write_str(&w.source_text());
    gpu.fingerprint(&mut h);
    let m = baseline_cache()
        .get_or_compute(h.finish(), || run_workload(w, &SchemeId::Baseline.config(), &gpu));
    (*m).clone()
}

/// Counter snapshot of the compile cache.
pub fn compile_cache_stats() -> CacheStats {
    compiled_cache().stats()
}

/// Counter snapshot of the baseline-measurement cache.
pub fn baseline_cache_stats() -> CacheStats {
    baseline_cache().stats()
}

/// Emits one `cache`-kind span per harness cache (subjects
/// `compile-cache` and `baseline-cache`) carrying the hit/miss/
/// eviction/in-flight-wait counters. `penny-prof` appends these to its
/// JSONL stream so cache effectiveness shows up next to pass timings.
pub fn record_cache_spans(rec: &dyn Recorder) {
    penny_cache::record_cache_span(
        rec,
        "compile-cache",
        compiled_cache().stats(),
        compiled_cache().len(),
    );
    penny_cache::record_cache_span(
        rec,
        "baseline-cache",
        baseline_cache().stats(),
        baseline_cache().len(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_is_shared() {
        let w = penny_workloads::by_abbr("MT").expect("MT");
        let cfg = PennyConfig::penny()
            .with_launch(w.dims)
            .with_machine(GpuConfig::fermi().machine);
        let a = compiled(&w, &cfg);
        let b = compiled(&w, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn baseline_is_memoized_and_rf_normalized() {
        let w = penny_workloads::by_abbr("MT").expect("MT");
        let base = GpuConfig::fermi();
        let a = baseline(&w, &base);
        // Same machine with a different RF setting must hit the same
        // entry: the Baseline scheme overrides protection anyway.
        let b = baseline(&w, &base.clone().with_rf(penny_sim::RfProtection::None));
        assert_eq!(a.run, b.run);
        assert!(a.run.cycles > 0);
    }

    #[test]
    fn cache_stats_move_on_use() {
        let w = penny_workloads::by_abbr("BS").expect("BS");
        let cfg = PennyConfig::igpu()
            .with_launch(w.dims)
            .with_machine(GpuConfig::fermi().machine);
        let before = compile_cache_stats();
        let _ = compiled(&w, &cfg);
        let _ = compiled(&w, &cfg);
        let after = compile_cache_stats();
        // Other tests share the process-global cache, so assert deltas
        // only: at least one more hit, and the key misses at most once.
        assert!(after.hits > before.hits);
        assert!(
            after.misses + after.inflight_waits > before.misses + before.inflight_waits
                || after.hits >= before.hits + 2
        );
    }
}
