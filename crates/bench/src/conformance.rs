//! Fault-space conformance harness: enumerate the (dynamic instruction ×
//! destination register × bit) fault space of a workload, answer every
//! covered site from a snapshot/replay [`Recording`] under each
//! protected scheme, and assert the final memory equals the fault-free
//! reference.
//!
//! The space is enumerated **exhaustively** when it fits the budget;
//! above the budget a deterministic stratified walk (a multiplicative
//! congruential stride coprime with the space size) covers `budget`
//! sites spread across every stratum, and the skipped count is reported.
//! Any failing site is shrunk to a minimal single-[`Injection`]
//! [`FaultPlan`] reproducer rendered as a ready-to-paste `#[test]` —
//! shrinking and reproducers always re-run **cold** (from cycle 0), so
//! the regression oracle is independent of the snapshot engine.
//!
//! # Snapshot/replay site pipeline
//!
//! One fault-free [`Recording`] per (workload, scheme) pair captures
//! region-boundary snapshots and a per-thread register access trace
//! (`penny_sim::snapshot`). Each site is then answered from the
//! cheapest sufficient evidence — recorded outcome for never-firing and
//! overwritten (invisible) flips, recorded outcome plus correction
//! counters under SECDED, a forked replay of just the victim's wave
//! otherwise — and sites whose replays are provably bit-identical
//! (same victim cell, same first observing read) are grouped so one
//! replay answers the whole group. The determinism contract (forked ==
//! from-scratch, bit for bit) is pinned by
//! `crates/sim/tests/snapshot_replay.rs` and the bench-level
//! equivalence suite.
//!
//! # Sharding
//!
//! [`run_conformance_sharded`] partitions **sample positions** (not raw
//! site indices) round-robin across `n` shards, so shards are
//! balanced under any stride, and [`merge_reports`] reassembles a
//! report whose verdict fields (coverage, class counts, failures) are
//! bit-identical to the unsharded run. Replay-work counters
//! ([`ReplayWork`]) are summed honestly and legitimately exceed the
//! unsharded run's (a replay group split across shards is replayed once
//! per shard).
//!
//! Every kernel the harness compiles runs with
//! [`PennyConfig::validate`](penny_core::PennyConfig::validate) enabled,
//! so a compiler-invariant bug fails fast with a named invariant instead
//! of a corrupted-memory assert thousands of cycles later.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use penny_analysis::{RfModel, StaticSiteClass, VulnerabilityMap};
use penny_core::{Protected, GLOBAL_CKPT_BASE};
use penny_sim::{
    FaultPlan, GlobalMemory, Gpu, GpuConfig, Injection, Recording, RegFile, RfProtection,
    SiteClass,
};
use penny_workloads::Workload;

use crate::parallel::parallel_map;
use crate::runner::SchemeId;

/// The mixed-radix fault-space geometry of one (workload, scheme) pair.
///
/// Site index digits, innermost first: bit, register, trigger, lane,
/// warp, block — so a coarse stride varies every digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpace {
    /// Blocks in the launch.
    pub blocks: u32,
    /// Warps per block.
    pub warps: u32,
    /// Lanes per warp.
    pub lanes: u32,
    /// Trigger points (dynamic per-warp instruction indices `1..=triggers`).
    pub triggers: u64,
    /// Destination registers.
    pub regs: u32,
    /// Codeword bits per register.
    pub bits: u32,
}

impl FaultSpace {
    /// Total number of fault sites.
    pub fn total(&self) -> u64 {
        self.blocks as u64
            * self.warps as u64
            * self.lanes as u64
            * self.triggers
            * self.regs as u64
            * self.bits as u64
    }

    /// Decodes a site index into its injection.
    pub fn site(&self, mut index: u64) -> Injection {
        debug_assert!(index < self.total());
        let bit = (index % self.bits as u64) as u32;
        index /= self.bits as u64;
        let reg = (index % self.regs as u64) as u32;
        index /= self.regs as u64;
        let after_warp_insts = 1 + index % self.triggers;
        index /= self.triggers;
        let lane = (index % self.lanes as u64) as u32;
        index /= self.lanes as u64;
        let warp = (index % self.warps as u64) as u32;
        index /= self.warps as u64;
        let block = index as u32;
        Injection { block, warp, lane, reg, bit, after_warp_insts }
    }

    /// The deterministic covered subset: all sites when `budget` covers
    /// the space, otherwise `budget` sites visited by a multiplicative
    /// stride coprime with the total (distinct sites, every stratum
    /// touched).
    pub fn sample(&self, budget: u64) -> Vec<u64> {
        match self.sequence(budget) {
            SiteSeq::Exhaustive(total) => (0..total).collect(),
            SiteSeq::Sampled(sites) => sites,
        }
    }

    /// Like [`FaultSpace::sample`], but exhaustive coverage is
    /// represented as a range instead of a materialized vector — full
    /// sweeps of multi-million-site spaces never allocate per site.
    pub fn sequence(&self, budget: u64) -> SiteSeq {
        let total = self.total();
        if total <= budget {
            return SiteSeq::Exhaustive(total);
        }
        if budget == 0 {
            // A zero budget covers nothing. Without this guard the
            // stride derivation below divides by zero (a zero-budget
            // sweep or an over-sharded partition must yield an
            // empty-but-valid report, not a panic).
            return SiteSeq::Sampled(Vec::new());
        }
        let mut stride = (total / budget) | 1; // odd ⇒ coprime with powers of 2
        while gcd(stride, total) != 1 {
            stride += 2;
        }
        SiteSeq::Sampled(
            (0..budget)
                .map(|j| (j as u128 * stride as u128 % total as u128) as u64)
                .collect(),
        )
    }
}

/// The covered subset of a fault space, indexed by **sample position**
/// (the deterministic visit order the shard partition and failure
/// ordering are defined over).
#[derive(Debug, Clone)]
pub enum SiteSeq {
    /// Every site, visited in index order (position == site index).
    Exhaustive(u64),
    /// A strided sample; `positions[j]` is the j-th visited site index.
    Sampled(Vec<u64>),
}

impl SiteSeq {
    /// Number of covered sites.
    pub fn len(&self) -> u64 {
        match self {
            SiteSeq::Exhaustive(total) => *total,
            SiteSeq::Sampled(v) => v.len() as u64,
        }
    }

    /// Whether no sites are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The site index visited at sample position `pos`.
    pub fn index_at(&self, pos: u64) -> u64 {
        match self {
            SiteSeq::Exhaustive(_) => pos,
            SiteSeq::Sampled(v) => v[pos as usize],
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// One shard of a campaign: this process covers sample positions
/// `pos % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index (`0..count`).
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

/// Why a shard specification was rejected by [`Shard::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Not of the form `i/n`.
    Malformed(String),
    /// The index before the slash is not a `u32`.
    BadIndex(String),
    /// The count after the slash is not a `u32`.
    BadCount(String),
    /// `n == 0`: a partition needs at least one shard.
    ZeroCount,
    /// `i >= n`: the index names a shard outside the partition.
    OutOfRange {
        /// The rejected shard index.
        index: u32,
        /// The partition size it falls outside of.
        count: u32,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Malformed(s) => {
                write!(f, "shard must be i/n (e.g. 0/4), got {s:?}")
            }
            ShardError::BadIndex(i) => write!(f, "bad shard index {i:?}"),
            ShardError::BadCount(n) => write!(f, "bad shard count {n:?}"),
            ShardError::ZeroCount => write!(f, "shard count must be >= 1"),
            ShardError::OutOfRange { index, count } => {
                write!(f, "shard index {index} out of range 0..{count}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl Shard {
    /// The trivial single-shard partition (covers everything).
    pub fn full() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// Parses `"i/n"` (e.g. `--shard 2/4`).
    ///
    /// # Errors
    ///
    /// Rejects malformed syntax, `n == 0`, and `i >= n` — each with its
    /// own [`ShardError`] variant, so callers (the `penny-herd`
    /// orchestrator in particular) can tell a typo from an impossible
    /// partition.
    pub fn parse(s: &str) -> Result<Shard, ShardError> {
        let (i, n) =
            s.split_once('/').ok_or_else(|| ShardError::Malformed(s.to_string()))?;
        let index: u32 =
            i.trim().parse().map_err(|_| ShardError::BadIndex(i.to_string()))?;
        let count: u32 =
            n.trim().parse().map_err(|_| ShardError::BadCount(n.to_string()))?;
        if count == 0 {
            return Err(ShardError::ZeroCount);
        }
        if index >= count {
            return Err(ShardError::OutOfRange { index, count });
        }
        Ok(Shard { index, count })
    }

    fn owns(&self, pos: u64) -> bool {
        pos % self.count as u64 == self.index as u64
    }
}

/// One failing fault site.
#[derive(Debug, Clone)]
pub struct ConformanceFailure {
    /// Sample position of the failing site (orders failures
    /// deterministically across shards).
    pub sample: u64,
    /// The shrunk (minimal) injection that still fails.
    pub injection: Injection,
    /// What went wrong (mismatch / simulator error).
    pub reason: String,
    /// Ready-to-paste regression test reproducing the failure.
    pub reproducer: String,
}

/// Deterministic per-site class counts (identical for any shard
/// partition and job count; summing shard reports reproduces the
/// unsharded counts exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteClassCounts {
    /// Sites whose injection never fires (trigger past the warp's
    /// dynamic length, dead lane, or out-of-range register).
    pub never_fires: u64,
    /// Fired flips overwritten before any read observes them.
    pub invisible: u64,
    /// Flips corrected inline (and scrubbed) by SECDED at first read.
    pub corrected_inline: u64,
    /// Sites that required a forked replay (detected under EDC, or
    /// silently observed on an unprotected RF) — includes sites
    /// answered by an equivalent group member's replay.
    pub simulated: u64,
    /// Simulated sites whose replay converged back onto the recorded
    /// memory image, so the recorded run suffix was spliced on.
    pub spliced: u64,
}

impl SiteClassCounts {
    fn add(&mut self, o: &SiteClassCounts) {
        self.never_fires += o.never_fires;
        self.invisible += o.invisible;
        self.corrected_inline += o.corrected_inline;
        self.simulated += o.simulated;
        self.spliced += o.spliced;
    }
}

/// How the harness uses the compile-time [`VulnerabilityMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaticMode {
    /// Ignore the static analysis entirely (the pre-existing behavior).
    #[default]
    Off,
    /// Skip statically-classified sites: they are answered by the
    /// static proof and reported in the `pruned_static` bucket instead
    /// of being replayed. Residual (`Unknown`) sites run as usual.
    Prune,
    /// Translation validation: run statically-classified sites anyway
    /// and count every static/dynamic disagreement — the dynamic replay
    /// classifier is the oracle, the static claim is on trial.
    Validate,
}

/// Per-class counts of statically-pruned sites (deterministic across
/// shards, like [`SiteClassCounts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPruneCounts {
    /// Sites pruned as [`StaticSiteClass::StaticDead`].
    pub dead: u64,
    /// Sites pruned as [`StaticSiteClass::StaticOverwritten`].
    pub overwritten: u64,
    /// Sites pruned as [`StaticSiteClass::StaticCovered`].
    pub covered: u64,
}

impl StaticPruneCounts {
    fn add(&mut self, o: &StaticPruneCounts) {
        self.dead += o.dead;
        self.overwritten += o.overwritten;
        self.covered += o.covered;
    }

    /// Total pruned sites.
    pub fn total(&self) -> u64 {
        self.dead + self.overwritten + self.covered
    }
}

/// The static analysis's view of a scheme's register file.
pub(crate) fn rf_model(rf: RfProtection) -> RfModel {
    match rf {
        RfProtection::None => RfModel::None,
        RfProtection::Ecc(_) => RfModel::SecdedEcc,
        RfProtection::Edc(_) => RfModel::ParityEdc,
    }
}

/// The translation-validation contract: which dynamic classes each
/// static claim admits. `Unknown` claims nothing and admits anything.
///
/// * `StaticDead` / `StaticOverwritten` promise the flip is never
///   observed: the dynamic class must be `NeverFires` or `Invisible`.
/// * `StaticCovered` under SECDED promises inline correction at the
///   first read; under parity EDC it promises detection inside a
///   committed protection window, i.e. a `Simulated` site whose replay
///   recovers (replay verdicts are enforced by the normal failure
///   path, so a non-recovering covered site still fails the report).
fn static_claim_holds(s: StaticSiteClass, d: SiteClass, model: RfModel) -> bool {
    match s {
        StaticSiteClass::Unknown => true,
        StaticSiteClass::StaticDead | StaticSiteClass::StaticOverwritten => {
            matches!(d, SiteClass::NeverFires | SiteClass::Invisible)
        }
        StaticSiteClass::StaticCovered => match model {
            RfModel::SecdedEcc => matches!(
                d,
                SiteClass::NeverFires | SiteClass::Invisible | SiteClass::CorrectedInline
            ),
            RfModel::ParityEdc => matches!(
                d,
                SiteClass::NeverFires | SiteClass::Invisible | SiteClass::Simulated
            ),
            // The analysis never claims coverage on an unprotected RF.
            RfModel::None => false,
        },
    }
}

/// Snapshot/fork/replay work actually performed. Unlike
/// [`SiteClassCounts`] these depend on the shard partition (a replay
/// group split across shards replays once per shard), so merging sums
/// them honestly rather than reproducing the unsharded values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayWork {
    /// Region-boundary snapshots retained by the recording.
    pub snapshots: u64,
    /// Forked replays actually executed (one per equivalence group).
    pub forks: u64,
    /// Warp instructions re-simulated across all replays.
    pub replayed_insts: u64,
    /// Warp instructions a cold (from-cycle-0) harness would have
    /// executed for the same covered sites: covered × the recording's
    /// dynamic instruction count. `skipped = cold_insts -
    /// replayed_insts` is the work the snapshot engine avoided.
    pub cold_insts: u64,
    /// Copy-on-write pages copied across all replays.
    pub pages_copied: u64,
}

impl ReplayWork {
    fn add(&mut self, o: &ReplayWork) {
        self.snapshots += o.snapshots;
        self.forks += o.forks;
        self.replayed_insts += o.replayed_insts;
        self.cold_insts += o.cold_insts;
        self.pages_copied += o.pages_copied;
    }
}

/// Conformance result for one (workload, scheme) pair.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Workload abbreviation.
    pub workload: &'static str,
    /// Scheme display name.
    pub variant: &'static str,
    /// The enumerated geometry.
    pub space: FaultSpace,
    /// Total fault sites in the space.
    pub total: u64,
    /// Sites covered (classified and answered) by this report.
    pub covered: u64,
    /// Sites skipped by the budget (logged, per the harness contract).
    /// Statically-pruned sites are **not** folded in here — they are
    /// answered (by the static proof), not skipped.
    pub skipped: u64,
    /// Sites answered by the static proof under [`StaticMode::Prune`]
    /// (zero in the other modes).
    pub pruned_static: u64,
    /// Per-class breakdown of `pruned_static`.
    pub static_prune: StaticPruneCounts,
    /// Sites whose static claim was checked against the dynamic
    /// classifier under [`StaticMode::Validate`].
    pub static_checked: u64,
    /// Static claims the dynamic classifier contradicted (translation
    /// validation failures; must be zero for a sound analysis).
    pub static_disagreements: u64,
    /// Disagreeing sites `(sample position, description)`, capped at
    /// [`MAX_REPORTED_FAILURES`] lowest positions.
    pub disagreements: Vec<(u64, String)>,
    /// Covered sites whose final memory matched the fault-free
    /// reference (benign or detected-and-recovered).
    pub recovered: u64,
    /// Per-site classification counts (deterministic across shards).
    pub classes: SiteClassCounts,
    /// Snapshot/fork/replay work performed (shard-dependent).
    pub work: ReplayWork,
    /// The shard this report covers (`(0, 1)` for a full run or merge).
    pub shard: (u32, u32),
    /// Failing sites, shrunk to minimal reproducers (capped at
    /// [`MAX_REPORTED_FAILURES`], lowest sample positions first).
    pub failures: Vec<ConformanceFailure>,
}

/// Cap on fully-shrunk failure reproducers per report. The lowest
/// sample positions are kept, which makes sharded merges reproduce the
/// unsharded selection exactly.
pub const MAX_REPORTED_FAILURES: usize = 8;

/// Sample positions processed per parallel work item.
const CHUNK: u64 = 16_384;

/// Everything needed to run fault sites for one (workload, scheme) pair.
pub(crate) struct Prepared {
    pub(crate) workload: Workload,
    pub(crate) protected: Arc<Protected>,
    pub(crate) gpu_config: GpuConfig,
    /// Fault-free user-space memory (below the checkpoint arena).
    pub(crate) reference: Vec<(u32, u32)>,
    pub(crate) space: FaultSpace,
    /// The fault-free recording forked sites replay from.
    pub(crate) recording: Recording,
}

/// User-visible final memory: nonzero words below the checkpoint arena.
/// The arena itself is runtime scratch and legitimately differs between
/// faulty and fault-free runs.
fn user_memory(global: &GlobalMemory) -> Vec<(u32, u32)> {
    let mut words = global.nonzero_words();
    words.retain(|&(addr, _)| addr < GLOBAL_CKPT_BASE);
    words
}

/// The exact compiler configuration the conformance harness uses for a
/// (workload, scheme) pair — shared by [`prepare`] and [`prewarm`] so
/// both resolve to the same content-cache key.
fn conformance_config(
    w: &Workload,
    scheme: SchemeId,
    vulnerability: bool,
) -> penny_core::PennyConfig {
    scheme
        .config()
        .with_launch(w.dims)
        .with_validation(true)
        .with_vulnerability(vulnerability)
}

/// Compiles every (workload, scheme) pair the caller is about to check,
/// fanned out across [`crate::parallel::jobs`] workers via
/// [`crate::cache::compile_batch`]. Purely a warm-up: the artifacts land
/// in the shared content cache, so the subsequent [`run_conformance`]
/// calls (and any reproducer re-checks) start from hits. Verdicts are
/// identical with or without prewarming.
pub fn prewarm(pairs: &[(&str, SchemeId)]) {
    prewarm_static(pairs, false);
}

/// [`prewarm`] with the vulnerability analysis on, matching the compile
/// key the static-mode entry points resolve to.
pub fn prewarm_static(pairs: &[(&str, SchemeId)], vulnerability: bool) {
    let batch: Vec<(Workload, penny_core::PennyConfig)> = pairs
        .iter()
        .map(|&(abbr, scheme)| {
            let w = penny_workloads::by_abbr(abbr)
                .unwrap_or_else(|| panic!("unknown workload {abbr}"));
            let cfg = conformance_config(&w, scheme, vulnerability);
            (w, cfg)
        })
        .collect();
    let _ = crate::cache::compile_batch(&batch);
}

pub(crate) fn prepare(abbr: &str, scheme: SchemeId, vulnerability: bool) -> Prepared {
    let workload =
        penny_workloads::by_abbr(abbr).unwrap_or_else(|| panic!("unknown workload {abbr}"));
    prepare_workload(workload, scheme, vulnerability)
}

/// [`prepare`] for a workload value that need not be in the registry —
/// the entry point `penny-fuzz` uses for freshly generated kernels.
fn prepare_workload(workload: Workload, scheme: SchemeId, vulnerability: bool) -> Prepared {
    let abbr = workload.abbr;
    // Validator on: every kernel the harness touches is invariant-checked.
    // The compile goes through the content-addressed service cache, so
    // repeated prepares of one (workload, scheme) — `run_conformance`
    // plus every `check_site` reproducer — share a single compilation.
    let config = conformance_config(&workload, scheme, vulnerability);
    let protected = crate::cache::compiled(&workload, &config);
    let gpu_config = GpuConfig::fermi().with_rf(scheme.rf());

    // Fault-free recording: the reference run, the region-boundary
    // snapshots, and the access trace, in one traced execution. Also
    // sizes the trigger dimension.
    let mut seed_mem = GlobalMemory::new();
    let launch = workload.prepare(&mut seed_mem);
    let recording = crate::recstore::load_or_record(
        &workload,
        &config,
        &gpu_config,
        &protected,
        &launch,
        &seed_mem,
    )
    .unwrap_or_else(|e| panic!("{abbr} fault-free run: {e}"));
    assert!(workload.check(recording.global()), "{abbr}: fault-free output wrong");
    let reference = user_memory(recording.global());
    let stats = recording.stats();

    let warps = workload.dims.threads_per_block().div_ceil(32).max(1);
    let total_warps = (warps * workload.dims.blocks()).max(1) as u64;
    // Average dynamic per-warp instruction count. Triggers beyond a
    // shorter warp's execution simply never fire (benign sites).
    let triggers = stats.warp_instructions.div_ceil(total_warps).max(1);
    let bits = RegFile::new(1, gpu_config.rf).codeword_bits();
    let space = FaultSpace {
        blocks: workload.dims.blocks(),
        warps,
        lanes: 32,
        triggers,
        regs: protected.kernel.vreg_limit().max(1),
        bits,
    };
    Prepared { workload, protected, gpu_config, reference, space, recording }
}

/// A compact site label for span output: one field per injection digit.
fn site_label(inj: &Injection) -> String {
    format!(
        "b{}w{}l{}r{}bit{}t{}",
        inj.block, inj.warp, inj.lane, inj.reg, inj.bit, inj.after_warp_insts
    )
}

/// Runs one site **cold** — a full from-cycle-0 simulation, no
/// snapshot engine involved. This is the independent oracle behind
/// [`check_site`], reproducers, and failure shrinking. `Ok` when the
/// final memory matches the fault-free reference (and the workload's
/// own checker passes).
fn run_site(p: &Prepared, inj: &Injection) -> Result<(), String> {
    let mut gpu = Gpu::new(p.gpu_config.clone());
    let launch = p.workload.prepare(gpu.global_mut()).with_faults(FaultPlan::single(*inj));
    match gpu.run(&p.protected, &launch) {
        Ok(_) => {
            if !p.workload.check(gpu.global()) {
                return Err("workload checker rejected the output".into());
            }
            if user_memory(gpu.global()) != p.reference {
                return Err("final memory differs from fault-free reference".into());
            }
            Ok(())
        }
        Err(e) => Err(format!("simulator error: {e}")),
    }
}

/// The verdict and work counters of one forked replay.
struct ForkedOutcome {
    verdict: Result<(), String>,
    spliced: bool,
    replayed_insts: u64,
    pages_copied: u64,
}

/// Answers one simulated-class site by forking the recording, and
/// verifies the verdict. Spliced replays converge onto the recorded
/// (already verified) final memory by construction; divergent replays
/// are checked against the reference honestly. When the global recorder
/// is enabled a `site` span is emitted with the replay counters.
fn run_site_forked(p: &Prepared, inj: &Injection, members: u64) -> ForkedOutcome {
    let rec = crate::obs::recorder();
    let outcome = p.recording.run_site(&p.gpu_config, &p.protected, *inj);
    let (verdict, spliced, replayed_insts, pages_copied) = match outcome {
        Ok(site) => {
            let verdict = if site.spliced {
                Ok(())
            } else if !p.workload.check(&site.global) {
                Err("workload checker rejected the output".to_string())
            } else if user_memory(&site.global) != p.reference {
                Err("final memory differs from fault-free reference".to_string())
            } else {
                Ok(())
            };
            (verdict, site.spliced, site.replayed_insts, site.pages_copied)
        }
        Err(e) => (Err(format!("simulator error: {e}")), false, 0, 0),
    };
    if rec.enabled() {
        penny_obs::record_site(
            rec.as_ref(),
            p.workload.abbr,
            &site_label(inj),
            &[
                ("members", members),
                ("spliced", spliced as u64),
                ("replayed_insts", replayed_insts),
                ("pages_copied", pages_copied),
                ("sim_error", verdict.is_err() as u64),
            ],
        );
    }
    ForkedOutcome { verdict, spliced, replayed_insts, pages_copied }
}

/// Shrink field order (most impactful first) and per-field minimums:
/// trigger, bit, reg, lane, warp, block.
const SHRINK_FIELDS: usize = 6;
const SHRINK_MIN: [u64; SHRINK_FIELDS] = [1, 0, 0, 0, 0, 0];

fn shrink_get(i: &Injection, field: usize) -> u64 {
    match field {
        0 => i.after_warp_insts,
        1 => i.bit as u64,
        2 => i.reg as u64,
        3 => i.lane as u64,
        4 => i.warp as u64,
        _ => i.block as u64,
    }
}

fn shrink_set(i: &mut Injection, field: usize, v: u64) {
    match field {
        0 => i.after_warp_insts = v,
        1 => i.bit = v as u32,
        2 => i.reg = v as u32,
        3 => i.lane = v as u32,
        4 => i.warp = v as u32,
        _ => i.block = v as u32,
    }
}

/// Greedy per-field shrink: repeatedly lower each field of the injection
/// (trigger first, then bit, reg, lane, warp, block) toward its minimum
/// while the predicate keeps failing.
pub fn shrink_injection(
    mut inj: Injection,
    fails: &dyn Fn(&Injection) -> bool,
) -> Injection {
    let mut trials = 0u32;
    loop {
        let mut improved = false;
        for (field, &min) in SHRINK_MIN.iter().enumerate() {
            let cur = shrink_get(&inj, field);
            for cand in [min, cur / 2, cur.saturating_sub(1)] {
                if cand >= cur || cand < min || trials >= 64 {
                    continue;
                }
                trials += 1;
                let mut t = inj;
                shrink_set(&mut t, field, cand);
                if fails(&t) {
                    inj = t;
                    improved = true;
                    break;
                }
            }
        }
        if !improved || trials >= 64 {
            return inj;
        }
    }
}

/// The `SchemeId::` variant token for generated code.
fn scheme_token(scheme: SchemeId) -> &'static str {
    match scheme {
        SchemeId::Baseline => "Baseline",
        SchemeId::IGpu => "IGpu",
        SchemeId::BoltGlobal => "BoltGlobal",
        SchemeId::BoltAuto => "BoltAuto",
        SchemeId::Penny => "Penny",
    }
}

/// Renders a failing site as a ready-to-paste regression test.
pub fn render_reproducer(abbr: &str, scheme: SchemeId, inj: &Injection) -> String {
    let token = scheme_token(scheme);
    format!(
        "#[test]\n\
         fn conformance_regression_{name}_{scheme_lc}() {{\n    \
             // Minimal reproducer generated by the conformance harness.\n    \
             let inj = penny_sim::Injection {{\n        \
                 block: {block},\n        \
                 warp: {warp},\n        \
                 lane: {lane},\n        \
                 reg: {reg},\n        \
                 bit: {bit},\n        \
                 after_warp_insts: {trig},\n    \
             }};\n    \
             penny_bench::conformance::check_site(\"{abbr}\", \
             penny_bench::SchemeId::{token}, &inj)\n        \
             .expect(\"fault site must recover to fault-free memory\");\n\
         }}\n",
        name = abbr.to_lowercase(),
        scheme_lc = token.to_lowercase(),
        block = inj.block,
        warp = inj.warp,
        lane = inj.lane,
        reg = inj.reg,
        bit = inj.bit,
        trig = inj.after_warp_insts,
    )
}

/// Re-runs one fault site **cold** (the entry point generated
/// reproducers call) — deliberately bypassing the snapshot engine so
/// reproducers remain an independent oracle for it.
///
/// # Errors
///
/// Returns the mismatch/simulator-error description when the site does
/// not recover to the fault-free final memory.
pub fn check_site(abbr: &str, scheme: SchemeId, inj: &Injection) -> Result<(), String> {
    let p = prepare(abbr, scheme, false);
    run_site(&p, inj)
}

/// A replay-equivalence group key: sites with equal key provably share
/// one replay outcome (the memo contract — block, warp, lane, reg,
/// bit-under-`None`, first-read index).
type GroupKey = (u32, u32, u32, u32, u32, u64);

/// A replay-equivalence group key plus its bookkeeping: sites that
/// provably share one replay outcome.
struct Group {
    rep: Injection,
    members: u64,
    /// First (lowest) member sample positions, capped at
    /// [`MAX_REPORTED_FAILURES`] — enough to attribute failures.
    positions: Vec<u64>,
}

/// Per-chunk classification output.
struct ChunkClass {
    covered: u64,
    classes: SiteClassCounts,
    /// Unique replay groups first seen in this chunk, in first-seen
    /// (ascending position) order.
    groups: Vec<(GroupKey, Group)>,
    /// Sites answered statically under [`StaticMode::Prune`].
    pruned: StaticPruneCounts,
    /// Static claims checked under [`StaticMode::Validate`].
    static_checked: u64,
    /// Total translation-validation failures in this chunk.
    disagreement_count: u64,
    /// Lowest-position disagreements (capped).
    disagreements: Vec<(u64, String)>,
}

/// Runs the conformance harness for one (workload, scheme) pair with a
/// site budget. Sites run in parallel under [`crate::parallel::jobs`];
/// results are deterministic for any job count.
pub fn run_conformance(abbr: &str, scheme: SchemeId, budget: u64) -> ConformanceReport {
    run_conformance_sharded(abbr, scheme, budget, Shard::full())
}

/// [`run_conformance`] for a workload value that need not be in the
/// registry. The workload's `abbr` must be `'static` (fuzz-generated
/// workloads leak their names, which is bounded by the iteration
/// count).
pub fn run_conformance_for(
    workload: &Workload,
    scheme: SchemeId,
    budget: u64,
) -> ConformanceReport {
    run_conformance_static_for(workload, scheme, budget, StaticMode::Off)
}

/// [`run_conformance_for`] with an explicit [`StaticMode`] — the entry
/// point `penny-fuzz`'s static-agreement stage uses.
pub fn run_conformance_static_for(
    workload: &Workload,
    scheme: SchemeId,
    budget: u64,
    mode: StaticMode,
) -> ConformanceReport {
    let statik = mode != StaticMode::Off;
    run_prepared(
        prepare_workload(workload.clone(), scheme, statik),
        scheme,
        budget,
        Shard::full(),
        mode,
    )
}

/// [`check_site`] for a workload value that need not be in the
/// registry.
///
/// # Errors
///
/// Returns the mismatch/simulator-error description when the site does
/// not recover to the fault-free final memory.
pub fn check_site_for(
    workload: &Workload,
    scheme: SchemeId,
    inj: &Injection,
) -> Result<(), String> {
    let p = prepare_workload(workload.clone(), scheme, false);
    run_site(&p, inj)
}

/// Runs one shard of the conformance harness: only sample positions
/// `pos % shard.count == shard.index` are covered. Reports from all
/// shards [`merge_reports`] into the unsharded report bit-identically
/// (verdict fields; see [`ReplayWork`] for the caveat).
pub fn run_conformance_sharded(
    abbr: &str,
    scheme: SchemeId,
    budget: u64,
    shard: Shard,
) -> ConformanceReport {
    run_prepared(prepare(abbr, scheme, false), scheme, budget, shard, StaticMode::Off)
}

/// [`run_conformance`] with the compile-time [`VulnerabilityMap`] in
/// play: [`StaticMode::Prune`] answers statically-classified sites by
/// the static proof (making exhaustive sweeps of large spaces
/// feasible), [`StaticMode::Validate`] runs them anyway and counts
/// disagreements (translation validation).
pub fn run_conformance_static(
    abbr: &str,
    scheme: SchemeId,
    budget: u64,
    mode: StaticMode,
) -> ConformanceReport {
    run_conformance_static_sharded(abbr, scheme, budget, mode, Shard::full())
}

/// Sharded [`run_conformance_static`]; shard reports merge
/// bit-identically including the pruned-site accounting.
pub fn run_conformance_static_sharded(
    abbr: &str,
    scheme: SchemeId,
    budget: u64,
    mode: StaticMode,
    shard: Shard,
) -> ConformanceReport {
    let statik = mode != StaticMode::Off;
    run_prepared(prepare(abbr, scheme, statik), scheme, budget, shard, mode)
}

/// The shared conformance body: classification, forked replays, and
/// verdicts for an already-[`prepare`]d (workload, scheme) pair.
fn run_prepared(
    p: Prepared,
    scheme: SchemeId,
    budget: u64,
    shard: Shard,
    mode: StaticMode,
) -> ConformanceReport {
    let rec = crate::obs::recorder();
    let timer = penny_obs::SpanTimer::start(rec.as_ref());
    let workload = p.workload.abbr;
    let total = p.space.total();
    let seq = p.space.sequence(budget);
    let positions = seq.len();
    let model = rf_model(scheme.rf());
    let vmap: Option<&VulnerabilityMap> = match mode {
        StaticMode::Off => None,
        _ => Some(p.protected.vulnerability.as_ref().expect(
            "static conformance modes compile with the vulnerability analysis enabled",
        )),
    };

    // Phase 1 — classify every owned site (parallel over position
    // chunks): analytic classes are answered on the spot, simulated
    // sites collapse into replay-equivalence groups.
    let chunk_bounds: Vec<(u64, u64)> = (0..positions)
        .step_by(CHUNK as usize)
        .map(|s| (s, (s + CHUNK).min(positions)))
        .collect();
    let chunked = parallel_map(&chunk_bounds, |&(start, end)| {
        let mut out = ChunkClass {
            covered: 0,
            classes: SiteClassCounts::default(),
            groups: Vec::new(),
            pruned: StaticPruneCounts::default(),
            static_checked: 0,
            disagreement_count: 0,
            disagreements: Vec::new(),
        };
        let mut index_of: HashMap<(u32, u32, u32, u32, u32, u64), usize> = HashMap::new();
        for pos in start..end {
            if !shard.owns(pos) {
                continue;
            }
            let inj = p.space.site(seq.index_at(pos));
            // Static classification first: a claimed site is either
            // answered on the spot (Prune) or cross-examined against
            // the dynamic classifier (Validate).
            let claim = match vmap {
                None => StaticSiteClass::Unknown,
                Some(m) => match p.recording.static_point(&inj) {
                    Some(pc) => m.classify(pc, inj.reg, model),
                    None => StaticSiteClass::Unknown,
                },
            };
            if mode == StaticMode::Prune && claim != StaticSiteClass::Unknown {
                match claim {
                    StaticSiteClass::StaticDead => out.pruned.dead += 1,
                    StaticSiteClass::StaticOverwritten => out.pruned.overwritten += 1,
                    StaticSiteClass::StaticCovered => out.pruned.covered += 1,
                    StaticSiteClass::Unknown => unreachable!(),
                }
                continue;
            }
            out.covered += 1;
            let dynamic = p.recording.site_class(&inj);
            if mode == StaticMode::Validate && claim != StaticSiteClass::Unknown {
                out.static_checked += 1;
                if !static_claim_holds(claim, dynamic, model) {
                    out.disagreement_count += 1;
                    if out.disagreements.len() < MAX_REPORTED_FAILURES {
                        out.disagreements.push((
                            pos,
                            format!(
                                "static {claim} contradicted by dynamic {dynamic:?} at \
                                 {inj:?}"
                            ),
                        ));
                    }
                }
            }
            match dynamic {
                SiteClass::NeverFires => out.classes.never_fires += 1,
                SiteClass::Invisible => out.classes.invisible += 1,
                SiteClass::CorrectedInline => out.classes.corrected_inline += 1,
                SiteClass::Simulated => {
                    out.classes.simulated += 1;
                    let key =
                        p.recording.memo_key(&inj).expect("simulated sites have memo keys");
                    let gi = *index_of.entry(key).or_insert_with(|| {
                        out.groups.push((
                            key,
                            Group { rep: inj, members: 0, positions: Vec::new() },
                        ));
                        out.groups.len() - 1
                    });
                    let g = &mut out.groups[gi].1;
                    g.members += 1;
                    if g.positions.len() < MAX_REPORTED_FAILURES {
                        g.positions.push(pos);
                    }
                }
            }
        }
        out
    });

    // Merge chunks in position order: group representatives keep the
    // globally-first member, positions stay ascending.
    let mut covered = 0u64;
    let mut classes = SiteClassCounts::default();
    let mut static_prune = StaticPruneCounts::default();
    let mut static_checked = 0u64;
    let mut static_disagreements = 0u64;
    let mut disagreements: Vec<(u64, String)> = Vec::new();
    let mut order: Vec<(u32, u32, u32, u32, u32, u64)> = Vec::new();
    let mut merged: HashMap<(u32, u32, u32, u32, u32, u64), Group> = HashMap::new();
    for chunk in chunked {
        covered += chunk.covered;
        classes.add(&chunk.classes);
        static_prune.add(&chunk.pruned);
        static_checked += chunk.static_checked;
        static_disagreements += chunk.disagreement_count;
        disagreements.extend(chunk.disagreements);
        for (key, seen) in chunk.groups {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(key);
                    e.insert(seen);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let g = e.get_mut();
                    g.members += seen.members;
                    for pos in seen.positions {
                        if g.positions.len() < MAX_REPORTED_FAILURES {
                            g.positions.push(pos);
                        }
                    }
                }
            }
        }
    }

    // Phase 2 — one forked replay per group (parallel over groups).
    let groups: Vec<&Group> = order.iter().map(|k| &merged[k]).collect();
    let outcomes = parallel_map(&groups, |g| run_site_forked(&p, &g.rep, g.members));

    // Phase 3 — verdicts, failure attribution, counters.
    let mut work = ReplayWork {
        snapshots: p.recording.counters().snapshots,
        forks: groups.len() as u64,
        replayed_insts: 0,
        cold_insts: covered.saturating_mul(p.recording.counters().total_warp_insts),
        pages_copied: 0,
    };
    let mut failed_sites = 0u64;
    let mut failing: Vec<(u64, String)> = Vec::new();
    for (g, o) in groups.iter().zip(&outcomes) {
        work.replayed_insts += o.replayed_insts;
        work.pages_copied += o.pages_copied;
        if o.spliced {
            classes.spliced += g.members;
        }
        if let Err(reason) = &o.verdict {
            failed_sites += g.members;
            for &pos in &g.positions {
                failing.push((pos, reason.clone()));
            }
        }
    }
    failing.sort_by_key(|a| a.0);
    failing.truncate(MAX_REPORTED_FAILURES);

    let mut failures = Vec::new();
    for (pos, reason) in failing {
        let inj = p.space.site(seq.index_at(pos));
        // Shrink against the cold oracle, so the reproducer stands on
        // its own even if the snapshot engine itself is the bug.
        let shrunk = shrink_injection(inj, &|cand| run_site(&p, cand).is_err());
        let reproducer = render_reproducer(workload, scheme, &shrunk);
        failures.push(ConformanceFailure {
            sample: pos,
            injection: shrunk,
            reason,
            reproducer,
        });
    }

    if rec.enabled() {
        penny_obs::record_campaign(
            rec.as_ref(),
            workload,
            scheme.name(),
            timer,
            &[
                ("sites", covered),
                ("snapshots", work.snapshots),
                ("forks", work.forks),
                ("pages_copied", work.pages_copied),
                ("replayed_insts", work.replayed_insts),
                ("skipped_insts", work.cold_insts.saturating_sub(work.replayed_insts)),
                ("spliced", classes.spliced),
                ("failures", failed_sites),
                ("pruned_static", static_prune.total()),
                ("static_checked", static_checked),
                ("static_disagreements", static_disagreements),
            ],
        );
    }

    disagreements.sort_by_key(|a| a.0);
    disagreements.truncate(MAX_REPORTED_FAILURES);

    ConformanceReport {
        workload,
        variant: scheme.name(),
        space: p.space,
        total,
        covered,
        skipped: total - covered - static_prune.total(),
        pruned_static: static_prune.total(),
        static_prune,
        static_checked,
        static_disagreements,
        disagreements,
        recovered: covered - failed_sites,
        classes,
        work,
        shard: (shard.index, shard.count),
        failures,
    }
}

/// Why a set of shard results refused to merge. Every variant that
/// involves a specific shard surfaces its index, so the `penny-herd`
/// orchestrator (and a human reading its log) can name the offender
/// instead of guessing from a free-form string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No results were supplied at all.
    Empty,
    /// The partition is incomplete (or over-full): the first result
    /// declares `expected` shards but `got` results arrived.
    MissingShards {
        /// Shard count declared by the first result.
        expected: u32,
        /// Number of results actually supplied.
        got: u32,
    },
    /// A result's identity — (workload, variant, space) for conformance
    /// reports — disagrees with the first result's.
    ShapeMismatch {
        /// The offending result's shard index.
        index: u32,
        /// The offending result's shard count.
        count: u32,
        /// Workload of the offending result.
        workload: String,
        /// Scheme/variant of the offending result.
        variant: String,
    },
    /// Two results claim the same shard index.
    DuplicateShard {
        /// The index claimed twice.
        index: u32,
        /// The partition size.
        count: u32,
    },
    /// A campaign result's `(scheme, flips)` cell disagrees with the
    /// first result's — results from different campaign cells cannot be
    /// summed.
    CampaignMismatch {
        /// Position of the offending result in the input slice.
        index: u32,
        /// `{scheme}x{flips}` of the offending result.
        found: String,
        /// `{scheme}x{flips}` of the first result.
        expected: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no reports to merge"),
            MergeError::MissingShards { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            MergeError::ShapeMismatch { index, count, workload, variant } => {
                write!(
                    f,
                    "mismatched shard report {index}/{count} for {workload} {variant}"
                )
            }
            MergeError::DuplicateShard { index, count } => {
                write!(f, "duplicate shard {index}/{count}")
            }
            MergeError::CampaignMismatch { index, found, expected } => {
                write!(f, "mismatched campaign shard {index}: {found} vs {expected}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges per-shard reports into the unsharded report: verdict fields
/// (coverage, recovery, class counts, failures) are bit-identical to a
/// `Shard::full()` run; [`ReplayWork`] counters are summed honestly.
///
/// # Errors
///
/// Rejects an empty input, mismatched (workload, scheme, space) pairs,
/// and partitions that are not exactly `0/n .. (n-1)/n` — each as a
/// distinct [`MergeError`] variant naming the offending shard.
pub fn merge_reports(
    reports: &[ConformanceReport],
) -> Result<ConformanceReport, MergeError> {
    let (merged, missing) = merge_reports_allow_missing(reports)?;
    if !missing.is_empty() {
        return Err(MergeError::MissingShards {
            expected: reports[0].shard.1,
            got: reports.len() as u32,
        });
    }
    Ok(merged)
}

/// [`merge_reports`], but tolerating absent shards — the degraded-mode
/// merge `penny-herd` falls back to when a shard exhausts its retries.
/// Returns the merged report plus the sorted missing shard indices.
/// Sites owned by a missing shard are not invented: they land in
/// `skipped` (which is `total - covered - pruned` by construction), so
/// a partial report stays internally consistent — it just covers less.
///
/// Malformed input is still rejected: an empty slice, a shape mismatch,
/// and a duplicate shard are errors here exactly as in
/// [`merge_reports`]; only *missing* shards are forgiven.
///
/// # Errors
///
/// [`MergeError::Empty`], [`MergeError::ShapeMismatch`], or
/// [`MergeError::DuplicateShard`].
pub fn merge_reports_allow_missing(
    reports: &[ConformanceReport],
) -> Result<(ConformanceReport, Vec<u32>), MergeError> {
    let first = reports.first().ok_or(MergeError::Empty)?;
    let count = first.shard.1;
    let mut seen = vec![false; count as usize];
    let mut merged = ConformanceReport {
        workload: first.workload,
        variant: first.variant,
        space: first.space,
        total: first.total,
        covered: 0,
        skipped: 0,
        pruned_static: 0,
        static_prune: StaticPruneCounts::default(),
        static_checked: 0,
        static_disagreements: 0,
        disagreements: Vec::new(),
        recovered: 0,
        classes: SiteClassCounts::default(),
        work: ReplayWork::default(),
        shard: (0, 1),
        failures: Vec::new(),
    };
    for r in reports {
        if (r.workload, r.variant) != (first.workload, first.variant)
            || r.space != first.space
            || r.shard.1 != count
        {
            return Err(MergeError::ShapeMismatch {
                index: r.shard.0,
                count: r.shard.1,
                workload: r.workload.to_string(),
                variant: r.variant.to_string(),
            });
        }
        let idx = r.shard.0 as usize;
        if idx >= seen.len() {
            // An index past the count can only come from a hand-built
            // (or corrupted) report; Shard::parse rejects it upstream.
            return Err(MergeError::ShapeMismatch {
                index: r.shard.0,
                count: r.shard.1,
                workload: r.workload.to_string(),
                variant: r.variant.to_string(),
            });
        }
        if seen[idx] {
            return Err(MergeError::DuplicateShard { index: idx as u32, count });
        }
        seen[idx] = true;
        merged.covered += r.covered;
        merged.recovered += r.recovered;
        merged.classes.add(&r.classes);
        merged.static_prune.add(&r.static_prune);
        merged.static_checked += r.static_checked;
        merged.static_disagreements += r.static_disagreements;
        merged.disagreements.extend(r.disagreements.iter().cloned());
        merged.work.add(&r.work);
        merged.failures.extend(r.failures.iter().cloned());
    }
    // Snapshots are a property of the (shared, deterministic) recording,
    // not of the shard's site subset: report them once, not n times.
    merged.work.snapshots = first.work.snapshots;
    merged.pruned_static = merged.static_prune.total();
    merged.skipped = merged.total - merged.covered - merged.pruned_static;
    merged.failures.sort_by_key(|a| a.sample);
    merged.failures.truncate(MAX_REPORTED_FAILURES);
    merged.disagreements.sort_by_key(|a| a.0);
    merged.disagreements.truncate(MAX_REPORTED_FAILURES);
    let missing = seen
        .iter()
        .enumerate()
        .filter(|&(_, &present)| !present)
        .map(|(i, _)| i as u32)
        .collect();
    Ok((merged, missing))
}

/// Measured snapshot-vs-cold site throughput for one (workload, scheme)
/// pair (see [`bench_throughput`]).
#[derive(Debug, Clone)]
pub struct ThroughputBench {
    /// Workload abbreviation.
    pub workload: &'static str,
    /// Scheme display name.
    pub variant: &'static str,
    /// Sites covered per sweep.
    pub covered: u64,
    /// Best-of-`reps` wall seconds for the full snapshot/replay sweep,
    /// including the fault-free recording itself.
    pub forked_wall_s: f64,
    /// Covered sites per second through the snapshot engine.
    pub forked_sites_per_sec: f64,
    /// Cold sites actually timed for the baseline extrapolation.
    pub cold_sites_timed: u64,
    /// Wall seconds those cold sites took.
    pub cold_wall_s: f64,
    /// From-cycle-0 sites per second (the pre-snapshot harness cost).
    pub cold_sites_per_sec: f64,
    /// `forked_sites_per_sec / cold_sites_per_sec`.
    pub speedup: f64,
    /// The report of the last timed sweep (verdicts are identical
    /// across reps).
    pub report: ConformanceReport,
}

/// Times the snapshot/replay sweep (best of `reps`, recording cost
/// included) against a cold-harness baseline extrapolated from
/// `cold_samples` evenly spaced sites simulated from cycle 0 — the
/// evidence behind the campaign-throughput gate in `scripts/verify.sh`.
pub fn bench_throughput(
    abbr: &str,
    scheme: SchemeId,
    budget: u64,
    reps: u32,
    cold_samples: u64,
) -> ThroughputBench {
    use std::time::Instant;
    // The first rep runs unconditionally, so there is always a report —
    // no Option, no "at least one rep" panic path, even for degenerate
    // inputs (zero budget, zero reps, empty partitions).
    let t = Instant::now();
    let mut report = run_conformance(abbr, scheme, budget);
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps.max(1) {
        let t = Instant::now();
        report = run_conformance(abbr, scheme, budget);
        best = best.min(t.elapsed().as_secs_f64());
    }

    let p = prepare(abbr, scheme, false);
    let seq = p.space.sequence(budget);
    let step = (seq.len() / cold_samples.max(1)).max(1);
    let cold_positions: Vec<u64> = (0..seq.len()).step_by(step as usize).collect();
    let t = Instant::now();
    for &pos in &cold_positions {
        let _ = run_site(&p, &p.space.site(seq.index_at(pos)));
    }
    let cold_wall_s = t.elapsed().as_secs_f64();
    let cold_sites_timed = cold_positions.len() as u64;

    let forked_sites_per_sec = report.covered as f64 / best.max(1e-9);
    let cold_sites_per_sec = cold_sites_timed as f64 / cold_wall_s.max(1e-9);
    ThroughputBench {
        workload: report.workload,
        variant: report.variant,
        covered: report.covered,
        forked_wall_s: best,
        forked_sites_per_sec,
        cold_sites_timed,
        cold_wall_s,
        cold_sites_per_sec,
        speedup: forked_sites_per_sec / cold_sites_per_sec.max(1e-9),
        report,
    }
}

/// Renders a report block: coverage counts, site classes, plus any
/// reproducers. Deterministic across shard partitions (replay-work
/// counters are deliberately excluded).
pub fn render_report(r: &ConformanceReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<18} total {:>12}  covered {:>6}  skipped {:>12}  recovered {:>6}  \
         failures {:>3}",
        r.workload,
        r.variant,
        r.total,
        r.covered,
        r.skipped,
        r.recovered,
        r.failures.len()
    );
    let _ = writeln!(
        out,
        "       classes: never-fires {}  invisible {}  corrected {}  simulated {} \
         (spliced {})",
        r.classes.never_fires,
        r.classes.invisible,
        r.classes.corrected_inline,
        r.classes.simulated,
        r.classes.spliced
    );
    if r.pruned_static > 0 {
        let _ = writeln!(
            out,
            "       pruned-static {} (dead {}  overwritten {}  covered {})",
            r.pruned_static,
            r.static_prune.dead,
            r.static_prune.overwritten,
            r.static_prune.covered
        );
    }
    if r.static_checked > 0 || r.static_disagreements > 0 {
        let _ = writeln!(
            out,
            "       static-validation: checked {}  disagreements {}",
            r.static_checked, r.static_disagreements
        );
    }
    for (pos, reason) in &r.disagreements {
        let _ = writeln!(out, "  STATIC-DISAGREEMENT @{pos}: {reason}");
    }
    for f in &r.failures {
        let _ = writeln!(out, "  FAIL @{} {:?}: {}", f.sample, f.injection, f.reason);
        let _ = writeln!(out, "{}", f.reproducer);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPACE: FaultSpace =
        FaultSpace { blocks: 2, warps: 3, lanes: 4, triggers: 5, regs: 6, bits: 7 };

    #[test]
    fn site_decoding_is_a_bijection() {
        let total = SPACE.total();
        assert_eq!(total, 2 * 3 * 4 * 5 * 6 * 7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let inj = SPACE.site(i);
            assert!(inj.block < 2 && inj.warp < 3 && inj.lane < 4);
            assert!((1..=5).contains(&inj.after_warp_insts));
            assert!(inj.reg < 6 && inj.bit < 7);
            assert!(seen.insert((
                inj.block,
                inj.warp,
                inj.lane,
                inj.after_warp_insts,
                inj.reg,
                inj.bit
            )));
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn sample_is_exhaustive_within_budget() {
        let total = SPACE.total();
        let sites = SPACE.sample(total + 10);
        assert_eq!(sites.len() as u64, total);
        assert_eq!(sites, (0..total).collect::<Vec<_>>());
        assert!(matches!(SPACE.sequence(total), SiteSeq::Exhaustive(t) if t == total));
    }

    #[test]
    fn sample_above_budget_is_distinct_and_stratified() {
        let budget = 100;
        let sites = SPACE.sample(budget);
        assert_eq!(sites.len() as u64, budget);
        let mut uniq = sites.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len() as u64, budget, "stride must not repeat sites");
        // Every stratum of the coarse digits is touched.
        let injs: Vec<Injection> = sites.iter().map(|&i| SPACE.site(i)).collect();
        for b in 0..2 {
            assert!(injs.iter().any(|i| i.block == b), "block {b} missed");
        }
        for w in 0..3 {
            assert!(injs.iter().any(|i| i.warp == w), "warp {w} missed");
        }
        for bit in 0..7 {
            assert!(injs.iter().any(|i| i.bit == bit), "bit {bit} missed");
        }
    }

    #[test]
    fn sample_is_distinct_for_adversarial_totals() {
        // Totals whose naive `(total / budget) | 1` stride shares a
        // factor with the total: odd composites (3·5·7·9·11, powers of
        // 3), a prime square, and a highly-composite even total. The
        // gcd search must still yield `budget` distinct sites.
        let cases: [(FaultSpace, u64); 4] = [
            // total = 10395 = 3^3·5·7·11; budget 99 → stride 105 | 1 = 105 = 3·5·7.
            (
                FaultSpace {
                    blocks: 3,
                    warps: 5,
                    lanes: 7,
                    triggers: 9,
                    regs: 11,
                    bits: 1,
                },
                99,
            ),
            // total = 3^8 = 6561; budget 243 → stride 27 | 1 = 27 = 3^3.
            (
                FaultSpace { blocks: 9, warps: 9, lanes: 9, triggers: 9, regs: 1, bits: 1 },
                243,
            ),
            // total = 169^2 = 28561; budget 169 → stride 169 | 1 = 169 = 13^2.
            (
                FaultSpace {
                    blocks: 169,
                    warps: 169,
                    lanes: 1,
                    triggers: 1,
                    regs: 1,
                    bits: 1,
                },
                169,
            ),
            // total = 2^6·3^4·5^2 = 129600; budget 100 → stride 1297 (prime, but
            // exercise the even-total path too).
            (
                FaultSpace {
                    blocks: 64,
                    warps: 81,
                    lanes: 25,
                    triggers: 1,
                    regs: 1,
                    bits: 1,
                },
                100,
            ),
        ];
        for (space, budget) in cases {
            let total = space.total();
            let sites = space.sample(budget);
            assert_eq!(sites.len() as u64, budget, "total {total}");
            let mut uniq = sites.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len() as u64, budget, "total {total}: stride revisited sites");
            assert!(sites.iter().all(|&s| s < total), "total {total}: out of range");
        }
    }

    #[test]
    fn site_seq_positions_match_sample() {
        let budget = 50;
        let sample = SPACE.sample(budget);
        let seq = SPACE.sequence(budget);
        assert_eq!(seq.len(), budget);
        for (j, &s) in sample.iter().enumerate() {
            assert_eq!(seq.index_at(j as u64), s);
        }
    }

    #[test]
    fn shard_parse_accepts_and_rejects() {
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::full());
        assert_eq!(Shard::parse("2/4").unwrap(), Shard { index: 2, count: 4 });
        assert!(Shard::parse("4/4").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert!(Shard::parse("0/0").is_err());
    }

    #[test]
    fn shard_parse_boundaries_are_named_errors() {
        // The last valid index of each partition parses...
        assert_eq!(Shard::parse("7/8").unwrap(), Shard { index: 7, count: 8 });
        assert_eq!(Shard::parse(" 3 / 4 ").unwrap(), Shard { index: 3, count: 4 });
        // ...and each rejection carries its own variant, not a bare string.
        assert_eq!(Shard::parse("0/0"), Err(ShardError::ZeroCount));
        assert_eq!(Shard::parse("1/0"), Err(ShardError::ZeroCount));
        assert_eq!(Shard::parse("4/4"), Err(ShardError::OutOfRange { index: 4, count: 4 }));
        assert_eq!(Shard::parse("8/8"), Err(ShardError::OutOfRange { index: 8, count: 8 }));
        assert!(matches!(Shard::parse("3"), Err(ShardError::Malformed(_))));
        assert!(matches!(Shard::parse("x/4"), Err(ShardError::BadIndex(_))));
        assert!(matches!(Shard::parse("0/y"), Err(ShardError::BadCount(_))));
        assert!(matches!(Shard::parse("-1/4"), Err(ShardError::BadIndex(_))));
        // Display keeps the messages the CLI has always printed.
        assert_eq!(ShardError::ZeroCount.to_string(), "shard count must be >= 1");
        assert_eq!(
            ShardError::OutOfRange { index: 4, count: 4 }.to_string(),
            "shard index 4 out of range 0..4"
        );
    }

    #[test]
    fn zero_budget_sample_is_empty_not_a_panic() {
        // `(total / budget) | 1` used to divide by zero here.
        assert!(SPACE.total() > 0);
        assert!(matches!(SPACE.sequence(0), SiteSeq::Sampled(ref v) if v.is_empty()));
        assert!(SPACE.sample(0).is_empty());
        assert_eq!(SPACE.sequence(0).len(), 0);
        assert!(SPACE.sequence(0).is_empty());
    }

    #[test]
    fn shard_partition_is_exact() {
        let shards: Vec<Shard> = (0..3).map(|i| Shard { index: i, count: 3 }).collect();
        for pos in 0..100u64 {
            let owners = shards.iter().filter(|s| s.owns(pos)).count();
            assert_eq!(owners, 1, "position {pos} owned by {owners} shards");
        }
    }

    #[test]
    fn forked_and_cold_verdicts_agree_on_real_workloads() {
        // The bench-level face of the determinism contract: for real
        // workloads, every covered site's verdict through the snapshot
        // engine equals the cold from-cycle-0 verdict — including the
        // failing (silent-corruption) sites of an unprotected RF.
        for (abbr, scheme) in [
            ("MT", SchemeId::Penny),
            ("MT", SchemeId::Baseline),
            ("SGEMM", SchemeId::Penny),
        ] {
            let p = prepare(abbr, scheme, false);
            let seq = p.space.sequence(144);
            let mut simulated = 0u32;
            for pos in 0..seq.len() {
                let inj = p.space.site(seq.index_at(pos));
                let cold = run_site(&p, &inj);
                let forked = match p.recording.site_class(&inj) {
                    SiteClass::Simulated => {
                        simulated += 1;
                        run_site_forked(&p, &inj, 1).verdict
                    }
                    // Analytic classes are bit-identical to the recorded
                    // (verified) run; the cold verdict must agree.
                    _ => Ok(()),
                };
                assert_eq!(cold, forked, "{abbr}/{scheme:?}: verdicts diverge at {inj:?}");
            }
            assert!(simulated > 0, "{abbr}/{scheme:?}: sample never simulated");
        }
    }

    #[test]
    fn shrink_reaches_the_minimal_failing_site() {
        // Synthetic predicate: fails whenever reg >= 3 and trigger >= 4.
        let fails = |i: &Injection| i.reg >= 3 && i.after_warp_insts >= 4;
        let start = Injection {
            block: 1,
            warp: 2,
            lane: 17,
            reg: 9,
            bit: 30,
            after_warp_insts: 40,
        };
        assert!(fails(&start));
        let s = shrink_injection(start, &fails);
        assert!(fails(&s));
        assert_eq!(s.reg, 3);
        assert_eq!(s.after_warp_insts, 4);
        assert_eq!(s.block, 0);
        assert_eq!(s.warp, 0);
        assert_eq!(s.lane, 0);
        assert_eq!(s.bit, 0);
    }

    #[test]
    fn reproducer_is_a_pasteable_test() {
        let inj =
            Injection { block: 0, warp: 1, lane: 2, reg: 3, bit: 4, after_warp_insts: 5 };
        let s = render_reproducer("MT", SchemeId::Penny, &inj);
        assert!(s.contains("#[test]"));
        assert!(s.contains("fn conformance_regression_mt_penny()"));
        assert!(s.contains("after_warp_insts: 5"));
        assert!(s.contains("SchemeId::Penny"));
        assert!(s.contains("check_site(\"MT\""));
    }
}
