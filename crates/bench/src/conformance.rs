//! Fault-space conformance harness: enumerate the (dynamic instruction ×
//! destination register × bit) fault space of a workload, run every
//! covered site through the decoded engine under each protected scheme,
//! and assert the final memory equals the fault-free reference.
//!
//! The space is enumerated **exhaustively** when it fits the budget;
//! above the budget a deterministic stratified walk (a multiplicative
//! congruential stride coprime with the space size) covers `budget`
//! sites spread across every stratum, and the skipped count is reported.
//! Any failing site is shrunk to a minimal single-[`Injection`]
//! [`FaultPlan`] reproducer rendered as a ready-to-paste `#[test]`.
//!
//! Every kernel the harness compiles runs with
//! [`PennyConfig::validate`](penny_core::PennyConfig::validate) enabled,
//! so a compiler-invariant bug fails fast with a named invariant instead
//! of a corrupted-memory assert thousands of cycles later.

use std::sync::Arc;

use penny_core::{Protected, GLOBAL_CKPT_BASE};
use penny_sim::{FaultPlan, Gpu, GpuConfig, Injection, RegFile};
use penny_workloads::Workload;

use crate::parallel::parallel_map;
use crate::runner::SchemeId;

/// The mixed-radix fault-space geometry of one (workload, scheme) pair.
///
/// Site index digits, innermost first: bit, register, trigger, lane,
/// warp, block — so a coarse stride varies every digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpace {
    /// Blocks in the launch.
    pub blocks: u32,
    /// Warps per block.
    pub warps: u32,
    /// Lanes per warp.
    pub lanes: u32,
    /// Trigger points (dynamic per-warp instruction indices `1..=triggers`).
    pub triggers: u64,
    /// Destination registers.
    pub regs: u32,
    /// Codeword bits per register.
    pub bits: u32,
}

impl FaultSpace {
    /// Total number of fault sites.
    pub fn total(&self) -> u64 {
        self.blocks as u64
            * self.warps as u64
            * self.lanes as u64
            * self.triggers
            * self.regs as u64
            * self.bits as u64
    }

    /// Decodes a site index into its injection.
    pub fn site(&self, mut index: u64) -> Injection {
        debug_assert!(index < self.total());
        let bit = (index % self.bits as u64) as u32;
        index /= self.bits as u64;
        let reg = (index % self.regs as u64) as u32;
        index /= self.regs as u64;
        let after_warp_insts = 1 + index % self.triggers;
        index /= self.triggers;
        let lane = (index % self.lanes as u64) as u32;
        index /= self.lanes as u64;
        let warp = (index % self.warps as u64) as u32;
        index /= self.warps as u64;
        let block = index as u32;
        Injection { block, warp, lane, reg, bit, after_warp_insts }
    }

    /// The deterministic covered subset: all sites when `budget` covers
    /// the space, otherwise `budget` sites visited by a multiplicative
    /// stride coprime with the total (distinct sites, every stratum
    /// touched).
    pub fn sample(&self, budget: u64) -> Vec<u64> {
        let total = self.total();
        if total <= budget {
            return (0..total).collect();
        }
        let mut stride = (total / budget) | 1; // odd ⇒ coprime with powers of 2
        while gcd(stride, total) != 1 {
            stride += 2;
        }
        (0..budget).map(|j| (j as u128 * stride as u128 % total as u128) as u64).collect()
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// One failing fault site.
#[derive(Debug, Clone)]
pub struct ConformanceFailure {
    /// The shrunk (minimal) injection that still fails.
    pub injection: Injection,
    /// What went wrong (mismatch / simulator error).
    pub reason: String,
    /// Ready-to-paste regression test reproducing the failure.
    pub reproducer: String,
}

/// Conformance result for one (workload, scheme) pair.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Workload abbreviation.
    pub workload: &'static str,
    /// Scheme display name.
    pub variant: &'static str,
    /// The enumerated geometry.
    pub space: FaultSpace,
    /// Total fault sites in the space.
    pub total: u64,
    /// Sites actually executed.
    pub covered: u64,
    /// Sites skipped by the budget (logged, per the harness contract).
    pub skipped: u64,
    /// Covered sites whose final memory matched the fault-free
    /// reference (benign or detected-and-recovered).
    pub recovered: u64,
    /// Failing sites, shrunk to minimal reproducers.
    pub failures: Vec<ConformanceFailure>,
}

/// Everything needed to run fault sites for one (workload, scheme) pair.
struct Prepared {
    workload: Workload,
    protected: Arc<Protected>,
    gpu_config: GpuConfig,
    /// Fault-free user-space memory (below the checkpoint arena).
    reference: Vec<(u32, u32)>,
    space: FaultSpace,
}

/// User-visible final memory: nonzero words below the checkpoint arena.
/// The arena itself is runtime scratch and legitimately differs between
/// faulty and fault-free runs.
fn user_memory(gpu: &Gpu) -> Vec<(u32, u32)> {
    let mut words = gpu.global().nonzero_words();
    words.retain(|&(addr, _)| addr < GLOBAL_CKPT_BASE);
    words
}

/// The exact compiler configuration the conformance harness uses for a
/// (workload, scheme) pair — shared by [`prepare`] and [`prewarm`] so
/// both resolve to the same content-cache key.
fn conformance_config(w: &Workload, scheme: SchemeId) -> penny_core::PennyConfig {
    scheme.config().with_launch(w.dims).with_validation(true)
}

/// Compiles every (workload, scheme) pair the caller is about to check,
/// fanned out across [`crate::parallel::jobs`] workers via
/// [`crate::cache::compile_batch`]. Purely a warm-up: the artifacts land
/// in the shared content cache, so the subsequent [`run_conformance`]
/// calls (and any reproducer re-checks) start from hits. Verdicts are
/// identical with or without prewarming.
pub fn prewarm(pairs: &[(&str, SchemeId)]) {
    let batch: Vec<(Workload, penny_core::PennyConfig)> = pairs
        .iter()
        .map(|&(abbr, scheme)| {
            let w = penny_workloads::by_abbr(abbr)
                .unwrap_or_else(|| panic!("unknown workload {abbr}"));
            let cfg = conformance_config(&w, scheme);
            (w, cfg)
        })
        .collect();
    let _ = crate::cache::compile_batch(&batch);
}

fn prepare(abbr: &str, scheme: SchemeId) -> Prepared {
    let workload =
        penny_workloads::by_abbr(abbr).unwrap_or_else(|| panic!("unknown workload {abbr}"));
    // Validator on: every kernel the harness touches is invariant-checked.
    // The compile goes through the content-addressed service cache, so
    // repeated prepares of one (workload, scheme) — `run_conformance`
    // plus every `check_site` reproducer — share a single compilation.
    let config = conformance_config(&workload, scheme);
    let protected = crate::cache::compiled(&workload, &config);
    let gpu_config = GpuConfig::fermi().with_rf(scheme.rf());

    // Fault-free reference run; also sizes the trigger dimension.
    let mut gpu = Gpu::new(gpu_config.clone());
    let launch = workload.prepare(gpu.global_mut());
    let stats = gpu
        .run(&protected, &launch)
        .unwrap_or_else(|e| panic!("{abbr} fault-free run: {e}"));
    assert!(workload.check(gpu.global()), "{abbr}: fault-free output wrong");
    let reference = user_memory(&gpu);

    let warps = workload.dims.threads_per_block().div_ceil(32).max(1);
    let total_warps = (warps * workload.dims.blocks()).max(1) as u64;
    // Average dynamic per-warp instruction count. Triggers beyond a
    // shorter warp's execution simply never fire (benign sites).
    let triggers = stats.warp_instructions.div_ceil(total_warps).max(1);
    let bits = RegFile::new(1, gpu_config.rf).codeword_bits();
    let space = FaultSpace {
        blocks: workload.dims.blocks(),
        warps,
        lanes: 32,
        triggers,
        regs: protected.kernel.vreg_limit().max(1),
        bits,
    };
    Prepared { workload, protected, gpu_config, reference, space }
}

/// A compact site label for span output: one field per injection digit.
fn site_label(inj: &Injection) -> String {
    format!(
        "b{}w{}l{}r{}bit{}t{}",
        inj.block, inj.warp, inj.lane, inj.reg, inj.bit, inj.after_warp_insts
    )
}

/// Runs one site; `Ok` when the final memory matches the fault-free
/// reference (and the workload's own checker passes). When the global
/// recorder ([`crate::obs`]) is enabled, each site emits a `site` span
/// with its recovery/re-execution counters.
fn run_site(p: &Prepared, inj: &Injection) -> Result<(), String> {
    let rec = crate::obs::recorder();
    let mut gpu = Gpu::new(p.gpu_config.clone());
    let launch = p.workload.prepare(gpu.global_mut()).with_faults(FaultPlan::single(*inj));
    let outcome = gpu.run(&p.protected, &launch);
    if rec.enabled() {
        let label = site_label(inj);
        match &outcome {
            Ok(stats) => penny_obs::record_site(
                rec.as_ref(),
                p.workload.abbr,
                &label,
                &[
                    ("cycles", stats.cycles),
                    ("recoveries", stats.recoveries),
                    ("reexec_instructions", stats.reexec_instructions),
                    ("rf_detected", stats.rf.detected),
                    ("sim_error", 0),
                ],
            ),
            Err(_) => penny_obs::record_site(
                rec.as_ref(),
                p.workload.abbr,
                &label,
                &[("sim_error", 1)],
            ),
        }
    }
    match outcome {
        Ok(_) => {
            if !p.workload.check(gpu.global()) {
                return Err("workload checker rejected the output".into());
            }
            if user_memory(&gpu) != p.reference {
                return Err("final memory differs from fault-free reference".into());
            }
            Ok(())
        }
        Err(e) => Err(format!("simulator error: {e}")),
    }
}

/// Shrink field order (most impactful first) and per-field minimums:
/// trigger, bit, reg, lane, warp, block.
const SHRINK_FIELDS: usize = 6;
const SHRINK_MIN: [u64; SHRINK_FIELDS] = [1, 0, 0, 0, 0, 0];

fn shrink_get(i: &Injection, field: usize) -> u64 {
    match field {
        0 => i.after_warp_insts,
        1 => i.bit as u64,
        2 => i.reg as u64,
        3 => i.lane as u64,
        4 => i.warp as u64,
        _ => i.block as u64,
    }
}

fn shrink_set(i: &mut Injection, field: usize, v: u64) {
    match field {
        0 => i.after_warp_insts = v,
        1 => i.bit = v as u32,
        2 => i.reg = v as u32,
        3 => i.lane = v as u32,
        4 => i.warp = v as u32,
        _ => i.block = v as u32,
    }
}

/// Greedy per-field shrink: repeatedly lower each field of the injection
/// (trigger first, then bit, reg, lane, warp, block) toward its minimum
/// while the predicate keeps failing.
pub fn shrink_injection(
    mut inj: Injection,
    fails: &dyn Fn(&Injection) -> bool,
) -> Injection {
    let mut trials = 0u32;
    loop {
        let mut improved = false;
        for (field, &min) in SHRINK_MIN.iter().enumerate() {
            let cur = shrink_get(&inj, field);
            for cand in [min, cur / 2, cur.saturating_sub(1)] {
                if cand >= cur || cand < min || trials >= 64 {
                    continue;
                }
                trials += 1;
                let mut t = inj;
                shrink_set(&mut t, field, cand);
                if fails(&t) {
                    inj = t;
                    improved = true;
                    break;
                }
            }
        }
        if !improved || trials >= 64 {
            return inj;
        }
    }
}

/// The `SchemeId::` variant token for generated code.
fn scheme_token(scheme: SchemeId) -> &'static str {
    match scheme {
        SchemeId::Baseline => "Baseline",
        SchemeId::IGpu => "IGpu",
        SchemeId::BoltGlobal => "BoltGlobal",
        SchemeId::BoltAuto => "BoltAuto",
        SchemeId::Penny => "Penny",
    }
}

/// Renders a failing site as a ready-to-paste regression test.
pub fn render_reproducer(abbr: &str, scheme: SchemeId, inj: &Injection) -> String {
    let token = scheme_token(scheme);
    format!(
        "#[test]\n\
         fn conformance_regression_{name}_{scheme_lc}() {{\n    \
             // Minimal reproducer generated by the conformance harness.\n    \
             let inj = penny_sim::Injection {{\n        \
                 block: {block},\n        \
                 warp: {warp},\n        \
                 lane: {lane},\n        \
                 reg: {reg},\n        \
                 bit: {bit},\n        \
                 after_warp_insts: {trig},\n    \
             }};\n    \
             penny_bench::conformance::check_site(\"{abbr}\", \
             penny_bench::SchemeId::{token}, &inj)\n        \
             .expect(\"fault site must recover to fault-free memory\");\n\
         }}\n",
        name = abbr.to_lowercase(),
        scheme_lc = token.to_lowercase(),
        block = inj.block,
        warp = inj.warp,
        lane = inj.lane,
        reg = inj.reg,
        bit = inj.bit,
        trig = inj.after_warp_insts,
    )
}

/// Re-runs one fault site (the entry point generated reproducers call).
///
/// # Errors
///
/// Returns the mismatch/simulator-error description when the site does
/// not recover to the fault-free final memory.
pub fn check_site(abbr: &str, scheme: SchemeId, inj: &Injection) -> Result<(), String> {
    let p = prepare(abbr, scheme);
    run_site(&p, inj)
}

/// Runs the conformance harness for one (workload, scheme) pair with a
/// site budget. Sites run in parallel under [`crate::parallel::jobs`];
/// results are deterministic for any job count.
pub fn run_conformance(abbr: &str, scheme: SchemeId, budget: u64) -> ConformanceReport {
    let p = prepare(abbr, scheme);
    let workload = p.workload.abbr;
    let total = p.space.total();
    let sites = p.space.sample(budget);
    let covered = sites.len() as u64;

    let outcomes = parallel_map(&sites, |&index| {
        let inj = p.space.site(index);
        run_site(&p, &inj).err().map(|reason| (inj, reason))
    });

    let mut failures = Vec::new();
    for (inj, reason) in outcomes.into_iter().flatten() {
        let shrunk = shrink_injection(inj, &|cand| run_site(&p, cand).is_err());
        let reproducer = render_reproducer(workload, scheme, &shrunk);
        failures.push(ConformanceFailure { injection: shrunk, reason, reproducer });
    }

    ConformanceReport {
        workload,
        variant: scheme.name(),
        space: p.space,
        total,
        covered,
        skipped: total - covered,
        recovered: covered - failures.len() as u64,
        failures,
    }
}

/// Renders a report block: coverage counts plus any reproducers.
pub fn render_report(r: &ConformanceReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<18} total {:>12}  covered {:>6}  skipped {:>12}  recovered {:>6}  \
         failures {:>3}",
        r.workload,
        r.variant,
        r.total,
        r.covered,
        r.skipped,
        r.recovered,
        r.failures.len()
    );
    for f in &r.failures {
        let _ = writeln!(out, "  FAIL {:?}: {}", f.injection, f.reason);
        let _ = writeln!(out, "{}", f.reproducer);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPACE: FaultSpace =
        FaultSpace { blocks: 2, warps: 3, lanes: 4, triggers: 5, regs: 6, bits: 7 };

    #[test]
    fn site_decoding_is_a_bijection() {
        let total = SPACE.total();
        assert_eq!(total, 2 * 3 * 4 * 5 * 6 * 7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let inj = SPACE.site(i);
            assert!(inj.block < 2 && inj.warp < 3 && inj.lane < 4);
            assert!((1..=5).contains(&inj.after_warp_insts));
            assert!(inj.reg < 6 && inj.bit < 7);
            assert!(seen.insert((
                inj.block,
                inj.warp,
                inj.lane,
                inj.after_warp_insts,
                inj.reg,
                inj.bit
            )));
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn sample_is_exhaustive_within_budget() {
        let total = SPACE.total();
        let sites = SPACE.sample(total + 10);
        assert_eq!(sites.len() as u64, total);
        assert_eq!(sites, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn sample_above_budget_is_distinct_and_stratified() {
        let budget = 100;
        let sites = SPACE.sample(budget);
        assert_eq!(sites.len() as u64, budget);
        let mut uniq = sites.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len() as u64, budget, "stride must not repeat sites");
        // Every stratum of the coarse digits is touched.
        let injs: Vec<Injection> = sites.iter().map(|&i| SPACE.site(i)).collect();
        for b in 0..2 {
            assert!(injs.iter().any(|i| i.block == b), "block {b} missed");
        }
        for w in 0..3 {
            assert!(injs.iter().any(|i| i.warp == w), "warp {w} missed");
        }
        for bit in 0..7 {
            assert!(injs.iter().any(|i| i.bit == bit), "bit {bit} missed");
        }
    }

    #[test]
    fn shrink_reaches_the_minimal_failing_site() {
        // Synthetic predicate: fails whenever reg >= 3 and trigger >= 4.
        let fails = |i: &Injection| i.reg >= 3 && i.after_warp_insts >= 4;
        let start = Injection {
            block: 1,
            warp: 2,
            lane: 17,
            reg: 9,
            bit: 30,
            after_warp_insts: 40,
        };
        assert!(fails(&start));
        let s = shrink_injection(start, &fails);
        assert!(fails(&s));
        assert_eq!(s.reg, 3);
        assert_eq!(s.after_warp_insts, 4);
        assert_eq!(s.block, 0);
        assert_eq!(s.warp, 0);
        assert_eq!(s.lane, 0);
        assert_eq!(s.bit, 0);
    }

    #[test]
    fn reproducer_is_a_pasteable_test() {
        let inj =
            Injection { block: 0, warp: 1, lane: 2, reg: 3, bit: 4, after_warp_insts: 5 };
        let s = render_reproducer("MT", SchemeId::Penny, &inj);
        assert!(s.contains("#[test]"));
        assert!(s.contains("fn conformance_regression_mt_penny()"));
        assert!(s.contains("after_warp_insts: 5"));
        assert!(s.contains("SchemeId::Penny"));
        assert!(s.contains("check_site(\"MT\""));
    }
}
