//! A tiny deterministic fork-join pool for the evaluation harness.
//!
//! Figures fan out over independent (workload, configuration) runs;
//! [`parallel_map`] distributes them over `jobs()` scoped threads
//! (`std::thread::scope` — no external dependencies) and reassembles
//! results **by input index**, so the output is bit-identical to the
//! sequential order no matter how the work was scheduled. The
//! simulator itself is deterministic, which makes the whole pipeline
//! reproducible under any `--jobs` value.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker count used by [`parallel_map`] (clamped to ≥ 1).
/// The `penny-eval` binary wires this to `--jobs`; the library default
/// is 1 (fully sequential).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The current worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Applies `f` to every item, on up to [`jobs`] threads, returning
/// results in input order. With `jobs() == 1` this is exactly
/// `items.iter().map(f).collect()`. A panic in any worker propagates
/// after all workers finish.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), items.len());
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let square = |x: &u64| x * x;
        set_jobs(1);
        let seq = parallel_map(&items, square);
        set_jobs(8);
        let par = parallel_map(&items, square);
        set_jobs(1);
        assert_eq!(seq, par);
        assert_eq!(par[7], 49);
    }

    #[test]
    fn empty_and_single_inputs() {
        set_jobs(4);
        let empty: Vec<u32> = vec![];
        assert_eq!(parallel_map(&empty, |x| *x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[5u32], |x| x + 1), vec![6]);
        set_jobs(1);
    }
}
