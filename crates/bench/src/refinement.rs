//! Effect of the range-refined alias analysis on region formation and
//! checkpoint pressure.
//!
//! Every workload is compiled twice under the headline Penny
//! configuration: once with [`AliasOptions::conservative`] (the original
//! purely-affine analysis) and once with [`AliasOptions::default`]
//! (base tracking through unknown indices plus value-range
//! disjointness; see `penny_analysis::alias`). Fewer false
//! anti-dependences mean fewer forced region cuts, which cascades into
//! fewer committed checkpoints and smaller checkpoint storage.

use penny_analysis::AliasOptions;
use penny_core::{compile, CompileStats, PennyConfig};
use penny_workloads::all;

use crate::parallel::parallel_map;

/// Per-workload compile statistics before vs after the refinement.
#[derive(Debug, Clone)]
pub struct RefinementRow {
    /// Workload abbreviation (paper Table 3).
    pub abbr: &'static str,
    /// Region count under conservative aliasing.
    pub regions_before: u32,
    /// Region count under range-refined aliasing.
    pub regions_after: u32,
    /// Committed checkpoints under conservative aliasing.
    pub committed_before: u32,
    /// Committed checkpoints under range-refined aliasing.
    pub committed_after: u32,
    /// Checkpoint storage bytes (shared + 4 per global slot),
    /// conservative.
    pub bytes_before: u32,
    /// Checkpoint storage bytes, range-refined.
    pub bytes_after: u32,
}

/// Checkpoint storage footprint: shared bytes plus one 32-bit word per
/// global slot.
fn ckpt_bytes(stats: &CompileStats) -> u32 {
    stats.ckpt_shared_bytes + 4 * stats.ckpt_global_slots
}

/// Compiles all 25 workloads under conservative and refined aliasing.
pub fn refinement_comparison() -> Vec<RefinementRow> {
    let ws = all();
    parallel_map(&ws, |w| {
        let k = w.kernel().expect("workload parses");
        let stats_under = |alias: AliasOptions| -> CompileStats {
            let cfg = PennyConfig { alias, ..PennyConfig::penny().with_launch(w.dims) };
            compile(&k, &cfg).expect("workload compiles").stats
        };
        let before = stats_under(AliasOptions::conservative());
        let after = stats_under(AliasOptions::default());
        RefinementRow {
            abbr: w.abbr,
            regions_before: before.regions,
            regions_after: after.regions,
            committed_before: before.committed,
            committed_after: after.committed,
            bytes_before: ckpt_bytes(&before),
            bytes_after: ckpt_bytes(&after),
        }
    })
}

/// Renders the comparison as a markdown table (the EXPERIMENTS.md
/// format).
pub fn render_refinement(rows: &[RefinementRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| app | regions before | regions after | committed before | committed after | ckpt bytes before | ckpt bytes after |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    let mut improved = 0usize;
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            r.abbr,
            r.regions_before,
            r.regions_after,
            r.committed_before,
            r.committed_after,
            r.bytes_before,
            r.bytes_after,
        );
        if r.committed_after < r.committed_before {
            improved += 1;
        }
    }
    let _ = writeln!(
        out,
        "\n{improved} of {} workloads commit fewer checkpoints under the refined analysis; none regress.",
        rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_one_row_per_workload() {
        let rows = refinement_comparison();
        assert_eq!(rows.len(), 25);
        let table = render_refinement(&rows);
        for r in &rows {
            assert!(table.contains(&format!("| {} |", r.abbr)), "{} missing", r.abbr);
        }
    }
}
