//! Fault-injection campaigns quantifying end-to-end resilience — the
//! executable form of Table 1's detection-capability claims.
//!
//! The paper argues that pairing a `t`-bit-detecting EDC with idempotent
//! recovery corrects up to `t` simultaneous bit flips. This module
//! injects `k`-bit faults into a Penny-protected run and classifies each
//! outcome:
//!
//! * **benign** — the fault was never read (overwritten or dead);
//! * **recovered** — detected, region re-executed, output correct;
//! * **SDC** — silent data corruption: output differs from fault-free.
//!
//! With single parity, 2-bit (even-weight) flips can escape detection —
//! and some become SDCs. Upgrading the *same machinery* to Hamming or
//! SECDED used as an EDC drives the SDC count to zero for 2- and 3-bit
//! faults respectively, exactly the Table 1 progression.

use penny_coding::Scheme;
use penny_core::{compile, PennyConfig};
use penny_sim::{FaultPlan, Gpu, GpuConfig, Injection, RfProtection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::conformance::{MergeError, Shard};

/// Outcome counts of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignResult {
    /// EDC scheme protecting the RF.
    pub scheme: Scheme,
    /// Bits flipped per fault.
    pub flips: u32,
    /// Total runs.
    pub runs: u32,
    /// Faults never observed (dead/overwritten victim).
    pub benign: u32,
    /// Detected and recovered with correct output.
    pub recovered: u32,
    /// Silent data corruptions.
    pub sdc: u32,
}

/// Runs a `k`-bit fault campaign over the matrix-transpose workload
/// (bit-exact integer output) under the given EDC scheme.
pub fn edc_campaign(scheme: Scheme, flips: u32, runs: u32, seed: u64) -> CampaignResult {
    edc_campaign_sharded(scheme, flips, runs, seed, Shard::full())
}

/// One shard of a `k`-bit fault campaign: every shard draws the **full**
/// RNG stream (so run `i` sees identical fault parameters regardless of
/// the partition) but simulates only runs `i % shard.count ==
/// shard.index`. The returned `runs` counts simulated runs only, so
/// [`merge_campaigns`] over all shards reproduces the unsharded result
/// exactly.
pub fn edc_campaign_sharded(
    scheme: Scheme,
    flips: u32,
    runs: u32,
    seed: u64,
    shard: Shard,
) -> CampaignResult {
    let w = penny_workloads::by_abbr("MT").expect("MT workload");
    let kernel = w.kernel().expect("parse");
    let config = PennyConfig::penny().with_launch(w.dims);
    let protected = compile(&kernel, &config).expect("compile");
    let regs = protected.kernel.vreg_limit();
    let gpu_config = GpuConfig::fermi().with_rf(RfProtection::Edc(scheme));
    let data_bits = 32u32; // flip data bits so parity aliasing is possible

    let rec = crate::obs::recorder();
    let timer = penny_obs::SpanTimer::start(rec.as_ref());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result =
        CampaignResult { scheme, flips, runs: 0, benign: 0, recovered: 0, sdc: 0 };
    for run in 0..runs {
        // One multi-bit fault: `flips` distinct bits of one register of
        // one lane, at one trigger point. All draws happen for every
        // run — even ones another shard owns — so the stream position
        // (and therefore every run's parameters) is partition-invariant.
        let lane = rng.gen_range(0..32);
        let reg = rng.gen_range(0..regs);
        let trigger = rng.gen_range(1..40);
        let mut bits: Vec<u32> = (0..data_bits).collect();
        for i in 0..flips as usize {
            let j = rng.gen_range(i..bits.len());
            bits.swap(i, j);
        }
        // All flips hit the same register of the same thread: draw the
        // shared block once, then build the injections with it (one RNG
        // draw total — previously a per-bit `block` was drawn and then
        // immediately overwritten, wasting `flips` draws per run).
        let block = rng.gen_range(0..w.dims.blocks());
        if run as u64 % shard.count as u64 != shard.index as u64 {
            continue;
        }
        result.runs += 1;
        let injections: Vec<Injection> = bits[..flips as usize]
            .iter()
            .map(|&bit| Injection {
                block,
                warp: 0,
                lane,
                reg,
                bit,
                after_warp_insts: trigger,
            })
            .collect();

        let mut gpu = Gpu::new(gpu_config.clone());
        let launch = w.prepare(gpu.global_mut()).with_faults(FaultPlan { injections });
        let outcome = gpu.run(&protected, &launch);
        if rec.enabled() {
            let label = format!("{}x{flips}b@run{run}", scheme.name());
            match &outcome {
                Ok(stats) => penny_obs::record_site(
                    rec.as_ref(),
                    w.abbr,
                    &label,
                    &[
                        ("cycles", stats.cycles),
                        ("recoveries", stats.recoveries),
                        ("reexec_instructions", stats.reexec_instructions),
                        ("rf_detected", stats.rf.detected),
                        ("sim_error", 0),
                    ],
                ),
                Err(_) => penny_obs::record_site(
                    rec.as_ref(),
                    w.abbr,
                    &label,
                    &[("sim_error", 1)],
                ),
            }
        }
        match outcome {
            Ok(stats) => {
                if w.check(gpu.global()) {
                    if stats.recoveries > 0 {
                        result.recovered += 1;
                    } else {
                        result.benign += 1;
                    }
                } else {
                    result.sdc += 1;
                }
            }
            // EDC-mode detections always have a recovery path in this
            // setup; treat a failure as an SDC-equivalent loss.
            Err(_) => result.sdc += 1,
        }
    }
    if rec.enabled() {
        penny_obs::record_campaign(
            rec.as_ref(),
            w.abbr,
            &format!("{}x{flips}b", scheme.name()),
            timer,
            &[
                ("runs", result.runs as u64),
                ("benign", result.benign as u64),
                ("recovered", result.recovered as u64),
                ("sdc", result.sdc as u64),
            ],
        );
    }
    result
}

/// Merges per-shard campaign results into the unsharded result. The
/// shared-RNG-stream contract makes the merged counts bit-identical to
/// a [`Shard::full`] run with the same `(scheme, flips, runs, seed)`.
///
/// # Errors
///
/// Rejects an empty input ([`MergeError::Empty`]) and mismatched
/// `(scheme, flips)` pairs ([`MergeError::CampaignMismatch`], naming
/// the offending result's position).
pub fn merge_campaigns(results: &[CampaignResult]) -> Result<CampaignResult, MergeError> {
    let first = *results.first().ok_or(MergeError::Empty)?;
    let mut merged = CampaignResult { runs: 0, benign: 0, recovered: 0, sdc: 0, ..first };
    for (i, r) in results.iter().enumerate() {
        if (r.scheme, r.flips) != (first.scheme, first.flips) {
            return Err(MergeError::CampaignMismatch {
                index: i as u32,
                found: format!("{:?}x{}", r.scheme, r.flips),
                expected: format!("{:?}x{}", first.scheme, first.flips),
            });
        }
        merged.runs += r.runs;
        merged.benign += r.benign;
        merged.recovered += r.recovered;
        merged.sdc += r.sdc;
    }
    Ok(merged)
}

/// The full Table-1-style sweep: each scheme against 1..=3-bit faults.
pub fn multibit_sweep(runs: u32) -> Vec<CampaignResult> {
    multibit_sweep_sharded(runs, Shard::full())
}

/// One shard of the Table-1-style sweep: every campaign in the matrix
/// runs with the same seeds as the unsharded sweep, simulating only this
/// shard's runs. Row-wise [`merge_campaigns`] over all shards equals
/// [`multibit_sweep`].
pub fn multibit_sweep_sharded(runs: u32, shard: Shard) -> Vec<CampaignResult> {
    let mut out = Vec::new();
    for (scheme, max_flips) in
        [(Scheme::Parity, 3), (Scheme::Hamming, 2), (Scheme::Secded, 3)]
    {
        for flips in 1..=max_flips {
            out.push(edc_campaign_sharded(
                scheme,
                flips,
                runs,
                0x7E57 + flips as u64,
                shard,
            ));
        }
    }
    out
}

/// Renders the sweep as a table.
pub fn render_multibit(results: &[CampaignResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== Extension: end-to-end multi-bit fault campaigns (MT workload) =="
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>6} {:>8} {:>10} {:>6}",
        "EDC", "flips", "runs", "benign", "recovered", "SDC"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>6} {:>8} {:>10} {:>6}",
            r.scheme.name(),
            r.flips,
            r.runs,
            r.benign,
            r.recovered,
            r.sdc
        );
    }
    let _ = writeln!(
        out,
        "(Parity guarantees detection of odd-weight flips only: 2-bit faults can\n\
         slip through as SDCs. Hamming used as EDC covers 2-bit faults, SECDED\n\
         covers 3-bit — recovery then corrects them all, Table 1's progression.)"
    );
    out
}

/// Overhead as a function of error rate (the paper's §3.1 Amdahl
/// argument: at realistic soft-error rates — one per day — recovery time
/// is invisible; Penny therefore optimizes the fault-free path).
/// Returns `(faults injected, normalized execution time)` pairs for the
/// MT workload under parity-EDC Penny.
pub fn error_rate_sensitivity() -> Vec<(u32, f64)> {
    let w = penny_workloads::by_abbr("MT").expect("MT");
    let kernel = w.kernel().expect("parse");
    let config = PennyConfig::penny().with_launch(w.dims);
    let protected = compile(&kernel, &config).expect("compile");
    let regs = protected.kernel.vreg_limit();
    let gpu_config = GpuConfig::fermi();

    let baseline = {
        let mut gpu = Gpu::new(gpu_config.clone());
        let launch = w.prepare(gpu.global_mut());
        gpu.run(&protected, &launch).expect("run").cycles as f64
    };
    [0u32, 1, 2, 4, 8, 16]
        .into_iter()
        .map(|faults| {
            let plan = FaultPlan::random(
                0xE77,
                faults as usize,
                w.dims.blocks(),
                w.dims.threads_per_block().div_ceil(32),
                32,
                regs,
                33,
                40,
            );
            let mut gpu = Gpu::new(gpu_config.clone());
            let launch = w.prepare(gpu.global_mut()).with_faults(plan);
            let stats = gpu.run(&protected, &launch).expect("run");
            assert!(w.check(gpu.global()), "{faults} faults corrupted output");
            (faults, stats.cycles as f64 / baseline)
        })
        .collect()
}

/// Renders the error-rate table.
pub fn render_error_rate(rows: &[(u32, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Extension: overhead vs injected error count (MT) ==");
    let _ = writeln!(out, "{:>8} {:>12}", "faults", "norm. time");
    for (f, t) in rows {
        let _ = writeln!(out, "{f:>8} {t:>12.3}");
    }
    let _ = writeln!(
        out,
        "(A handful of faults per launch is already orders of magnitude beyond\n\
         real soft-error rates (~1/day per GPU) and costs nothing; the knee at\n\
         higher counts is re-execution of barrier-synchronized regions. This is\n\
         the paper's Amdahl argument: optimize the fault-free path, since\n\
         recovery time is invisible at realistic rates.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_single_bit_never_sdcs() {
        let r = edc_campaign(Scheme::Parity, 1, 30, 42);
        assert_eq!(r.sdc, 0, "{r:?}");
        assert_eq!(r.benign + r.recovered, r.runs);
    }

    #[test]
    fn hamming_double_bit_never_sdcs() {
        let r = edc_campaign(Scheme::Hamming, 2, 30, 43);
        assert_eq!(r.sdc, 0, "{r:?}");
    }

    #[test]
    fn secded_triple_bit_never_sdcs() {
        let r = edc_campaign(Scheme::Secded, 3, 30, 44);
        assert_eq!(r.sdc, 0, "{r:?}");
    }

    #[test]
    fn sharded_campaigns_merge_to_the_unsharded_result() {
        let full = edc_campaign(Scheme::Parity, 2, 24, 45);
        for count in [2u32, 3] {
            let shards: Vec<CampaignResult> = (0..count)
                .map(|index| {
                    edc_campaign_sharded(Scheme::Parity, 2, 24, 45, Shard { index, count })
                })
                .collect();
            let merged = merge_campaigns(&shards).expect("merge");
            assert_eq!(merged, full, "{count} shards diverge from the full run");
        }
        assert_eq!(merge_campaigns(&[]), Err(MergeError::Empty));
        let other = edc_campaign(Scheme::Hamming, 1, 4, 1);
        assert!(matches!(
            merge_campaigns(&[full, other]),
            Err(MergeError::CampaignMismatch { index: 1, .. })
        ));
    }
}
