#![warn(missing_docs)]
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (see `DESIGN.md` for the experiment
//! index), plus helpers the Criterion benches reuse.
//!
//! Quick use from code:
//!
//! ```no_run
//! let fig = penny_bench::figures::fig9();
//! println!("{}", penny_bench::report::render_figure(&fig));
//! ```
//!
//! Or run the `penny-eval` binary:
//!
//! ```text
//! cargo run --release -p penny-bench --bin penny-eval -- all
//! ```

pub mod ablation;
pub mod cache;
pub mod campaign;
pub mod conformance;
pub mod figures;
pub mod herd;
pub mod json;
pub mod obs;
pub mod parallel;
pub mod recstore;
pub mod refinement;
pub mod report;
pub mod runner;
pub mod vulnerability;

pub use ablation::{ablation, cost_base_sensitivity, render_ablation, AblationRow};
pub use campaign::{edc_campaign, multibit_sweep, CampaignResult};
pub use conformance::{
    run_conformance, run_conformance_static, ConformanceFailure, ConformanceReport,
    FaultSpace, MergeError, Shard, ShardError, StaticMode, StaticPruneCounts,
};
pub use figures::{Figure, PruneBreakdown, Series};
pub use parallel::{jobs, parallel_map, set_jobs};
pub use refinement::{refinement_comparison, render_refinement, RefinementRow};
pub use runner::{gmean, run_scheme, run_workload, Measured, SchemeId};
pub use vulnerability::{render_profile, static_profile, RegProfile, StaticProfile};
