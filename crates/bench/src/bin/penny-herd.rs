//! `penny-herd`: fleet-scale conformance campaign orchestration.
//!
//! Fans a conformance campaign out across `--shards` local `penny-eval`
//! processes (sample-position sharding), supervises them with
//! per-attempt timeouts and bounded retry-with-backoff, and merges the
//! surviving shard reports. Determinism makes the merge exact: a full
//! merge renders byte-identically to the unsharded run, and a campaign
//! that lost a shard permanently is *labelled* partial with the missing
//! shard indices named.
//!
//! Usage:
//!
//! ```text
//! penny-herd [--workloads A,B] [--schemes X,Y] [--budget N]
//!            [--shards N] [--jobs N] [--timeout SECS] [--retries N]
//!            [--backoff-ms MS] [--out DIR] [--recording-store DIR]
//!            [--check-against FILE] [--eval PATH]
//! ```
//!
//! * `--workloads` / `--schemes` — the campaign matrix (defaults:
//!   `MT` under `Penny`). Scheme tokens: `Baseline`, `IGpu`,
//!   `BoltGlobal`, `BoltAuto`, `Penny`.
//! * `--budget` — samples per pair, split across the shards.
//! * `--shards` — shard process count (default 4).
//! * `--timeout` — per-attempt wall-clock limit (default 600 s).
//! * `--retries` — re-runs after a failed attempt (default 2);
//!   `--backoff-ms` is the first retry delay, doubling per retry.
//! * `--out` — where shard report (and span) files land.
//! * `--recording-store` — shared content-addressed recording store;
//!   warm campaigns skip the fault-free record phase (see
//!   `DESIGN.md` §16).
//! * `--check-against FILE` — a report JSON written by an *unsharded*
//!   `penny-eval --report-json`; the merged campaign must render
//!   byte-identically (the `scripts/verify.sh` gate).
//! * `--eval PATH` — the shard binary (default: `penny-eval` next to
//!   this executable). Tests point this at crash-injecting wrappers.
//!
//! Exit status: 0 clean; 1 site failures or a `--check-against`
//! mismatch; 2 usage errors; 3 campaign completed but partial.

use std::path::PathBuf;
use std::time::Duration;

use penny_bench::herd::{CampaignSpec, CommandTemplate};
use penny_bench::{conformance, SchemeId};

fn main() {
    let mut spec = CampaignSpec {
        workloads: vec!["MT".to_string()],
        schemes: vec![SchemeId::Penny],
        budget: 2000,
        shards: 4,
        jobs_per_shard: std::thread::available_parallelism().map_or(1, |n| n.get()),
        timeout: Duration::from_secs(600),
        retries: 2,
        backoff: Duration::from_millis(250),
        out_dir: PathBuf::from("herd-out"),
        recording_store: None,
        shard_obs: true,
    };
    let mut template = CommandTemplate::penny_eval();
    let mut check_against: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut flag = |name: &str| -> Option<String> {
            if a == name {
                Some(args.next().unwrap_or_else(|| die(&format!("{name} needs a value"))))
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = flag("--workloads") {
            spec.workloads = v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect();
        } else if let Some(v) = flag("--schemes") {
            spec.schemes = v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|tok| {
                    SchemeId::from_token(tok).unwrap_or_else(|| {
                        die(&format!(
                            "--schemes: unknown scheme {tok:?} (tokens: Baseline, IGpu, \
                             BoltGlobal, BoltAuto, Penny)"
                        ))
                    })
                })
                .collect();
        } else if let Some(v) = flag("--budget") {
            spec.budget =
                v.parse().unwrap_or_else(|_| die("--budget needs a non-negative integer"));
        } else if let Some(v) = flag("--shards") {
            spec.shards =
                v.parse().unwrap_or_else(|_| die("--shards needs a positive integer"));
        } else if let Some(v) = flag("--jobs") {
            spec.jobs_per_shard =
                v.parse().unwrap_or_else(|_| die("--jobs needs a positive integer"));
        } else if let Some(v) = flag("--timeout") {
            spec.timeout = Duration::from_secs(
                v.parse().unwrap_or_else(|_| die("--timeout needs seconds")),
            );
        } else if let Some(v) = flag("--retries") {
            spec.retries = v.parse().unwrap_or_else(|_| die("--retries needs an integer"));
        } else if let Some(v) = flag("--backoff-ms") {
            spec.backoff = Duration::from_millis(
                v.parse().unwrap_or_else(|_| die("--backoff-ms needs milliseconds")),
            );
        } else if let Some(v) = flag("--out") {
            spec.out_dir = PathBuf::from(v);
        } else if let Some(v) = flag("--recording-store") {
            spec.recording_store = Some(PathBuf::from(v));
        } else if let Some(v) = flag("--check-against") {
            check_against = Some(v);
        } else if let Some(v) = flag("--eval") {
            template.program = PathBuf::from(v);
        } else {
            die(&format!("unknown argument {a:?}"));
        }
    }
    if spec.shards == 0 {
        die("--shards needs a positive integer");
    }
    if spec.jobs_per_shard == 0 {
        die("--jobs needs a positive integer");
    }

    eprintln!(
        "penny-herd: {} workload(s) x {} scheme(s), budget {}, {} shard(s), \
         timeout {:?}, {} retries",
        spec.workloads.len(),
        spec.schemes.len(),
        spec.budget,
        spec.shards,
        spec.timeout,
        spec.retries
    );
    let outcome = penny_bench::herd::run_campaign(&spec, &template)
        .unwrap_or_else(|e| die(&format!("campaign failed: {e}")));

    let mut site_failures = false;
    let mut rendered = String::new();
    for m in &outcome.merged {
        rendered.push_str(&conformance::render_report(&m.report));
        if m.partial {
            rendered.push_str(&format!(
                "       PARTIAL: missing shard(s) {:?} of {} — counts cover surviving \
                 shards only\n",
                m.missing_shards, spec.shards
            ));
        }
        site_failures |= !m.report.failures.is_empty() || m.report.static_disagreements > 0;
    }
    print!("{rendered}");
    for s in &outcome.shards {
        if s.attempts > 1 || !s.ok {
            eprintln!(
                "penny-herd: shard {}/{}: {} after {} attempt(s)",
                s.index,
                spec.shards,
                if s.ok { "recovered" } else { "FAILED" },
                s.attempts
            );
        }
    }

    if let Some(path) = check_against {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
        let reference = penny_bench::json::reports_from_json(&text)
            .unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
        let expected: String = reference.iter().map(conformance::render_report).collect();
        if outcome.partial {
            eprintln!("penny-herd: check-against skipped — campaign is partial");
        } else if rendered != expected {
            eprintln!("penny-herd: merged campaign does NOT render identically to {path}");
            std::process::exit(1);
        } else {
            eprintln!("penny-herd: merged campaign renders byte-identical to {path}");
        }
    }

    if site_failures {
        std::process::exit(1);
    }
    if outcome.partial {
        eprintln!("penny-herd: campaign is PARTIAL (see missing shards above)");
        std::process::exit(3);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("penny-herd: {msg}");
    std::process::exit(2);
}
