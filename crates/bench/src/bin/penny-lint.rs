//! `penny-lint`: the kernel sanitizer, run standalone over workloads or
//! kernel files.
//!
//! Usage:
//!
//! ```text
//! penny-lint [--all-workloads] [ABBR|FILE]... [--deny-warnings]
//!            [--launch BX[,BY[,GX[,GY]]]] [--allow NAME]... [--json]
//!            [--refinement-table]
//! ```
//!
//! Each positional argument is a workload abbreviation (paper Table 3)
//! or a path to a `.penny` assembly file. `--all-workloads` lints all
//! 25 workloads. Diagnostics carry block and instruction provenance
//! (`severity[name] kernel@block:idx (inst): message`); `--json` emits
//! one JSON object per diagnostic instead. `--allow NAME` suppresses a
//! diagnostic by name. Workloads lint under their declared launch
//! geometry; file targets default to conservative (inexact) geometry,
//! which disables the shared-race prover — pass `--launch` to lint a
//! file under the exact dimensions it will run with. Exit status: 0
//! clean, 1 diagnostics reported (errors always; warnings only under
//! `--deny-warnings`), 2 usage error.
//!
//! `--refinement-table` additionally prints the before/after effect of
//! the range-refined alias analysis on every workload's region and
//! checkpoint counts (see `penny_bench::refinement`).

use penny_analysis::{lint_kernel, Diagnostic, LintOptions, Severity};
use penny_core::LaunchDims;
use penny_ir::Kernel;

struct Target {
    label: String,
    kernel: Kernel,
    dims: Option<LaunchDims>,
}

fn main() {
    let mut all_workloads = false;
    let mut deny_warnings = false;
    let mut json = false;
    let mut refinement_table = false;
    let mut allow: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut launch: Option<LaunchDims> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all-workloads" => all_workloads = true,
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--refinement-table" => refinement_table = true,
            "--allow" => {
                let n = args.next().unwrap_or_else(|| die("--allow needs a name"));
                allow.push(n);
            }
            other if other.starts_with("--allow=") => {
                allow.push(other["--allow=".len()..].to_string());
            }
            "--launch" => {
                let v = args.next().unwrap_or_else(|| die("--launch needs dimensions"));
                launch = Some(parse_launch(&v));
            }
            other if other.starts_with("--launch=") => {
                launch = Some(parse_launch(&other["--launch=".len()..]));
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag `{other}`"));
            }
            other => names.push(other.to_string()),
        }
    }
    if !all_workloads && names.is_empty() && !refinement_table {
        die("nothing to lint (try --all-workloads)");
    }

    let mut targets: Vec<Target> = Vec::new();
    if all_workloads {
        for w in penny_workloads::all_with_corpus() {
            let kernel =
                w.kernel().unwrap_or_else(|e| die(&format!("workload {}: {e}", w.abbr)));
            targets.push(Target { label: w.abbr.to_string(), kernel, dims: Some(w.dims) });
        }
    }
    for name in &names {
        if let Some(w) = penny_workloads::by_abbr(name) {
            let kernel =
                w.kernel().unwrap_or_else(|e| die(&format!("workload {}: {e}", w.abbr)));
            targets.push(Target { label: w.abbr.to_string(), kernel, dims: Some(w.dims) });
        } else {
            let src = std::fs::read_to_string(name).unwrap_or_else(|e| {
                die(&format!(
                    "`{name}` is neither a workload abbreviation nor a readable file: {e}"
                ))
            });
            let kernel = penny_ir::parse_kernel(&src)
                .unwrap_or_else(|e| die(&format!("{name}: parse error: {e}")));
            targets.push(Target { label: name.clone(), kernel, dims: launch });
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for t in &targets {
        let mut opts = match t.dims {
            Some(d) => LintOptions::for_launch(d.block, d.grid),
            None => LintOptions::default(),
        };
        opts.allow.clone_from(&allow);
        let diags = lint_kernel(&t.kernel, &opts);
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if json {
                println!("{}", to_json(&t.label, d));
            } else {
                println!("{}: {d}", t.label);
            }
        }
    }

    if refinement_table {
        print!("{}", penny_bench::render_refinement(&penny_bench::refinement_comparison()));
    }

    if !json && !targets.is_empty() {
        eprintln!(
            "penny-lint: {} target(s), {errors} error(s), {warnings} warning(s)",
            targets.len()
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("penny-lint: {msg}");
    std::process::exit(2);
}

/// `BX[,BY[,GX[,GY]]]` — omitted dimensions default to 1.
fn parse_launch(s: &str) -> LaunchDims {
    let mut dims = [1u32; 4];
    let parts: Vec<&str> = s.split(',').collect();
    if parts.is_empty() || parts.len() > 4 {
        die(&format!("bad --launch `{s}` (want BX[,BY[,GX[,GY]]])"));
    }
    for (slot, p) in dims.iter_mut().zip(&parts) {
        *slot = p
            .parse()
            .unwrap_or_else(|_| die(&format!("bad --launch dimension `{p}` in `{s}`")));
    }
    LaunchDims { block: (dims[0], dims[1]), grid: (dims[2], dims[3]) }
}

/// One diagnostic as a JSON object (no external deps: the fields are
/// simple enough to escape by hand).
fn to_json(target: &str, d: &Diagnostic) -> String {
    let esc = |s: &str| -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c => vec![c],
            })
            .collect()
    };
    format!(
        "{{\"target\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"kernel\":\"{}\",\"block\":\"{}\",\"loc\":\"{}\",\"inst\":\"{}\",\"message\":\"{}\"}}",
        esc(target),
        esc(d.name),
        d.severity,
        esc(&d.kernel),
        esc(&d.block),
        d.loc,
        d.inst,
        esc(&d.message),
    )
}
