//! `penny-eval`: regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! penny-eval [--jobs N] [table1|table2|table3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|
//!             multibit|ablation|errorrate|bench-json|all]...
//! ```
//!
//! `--jobs N` sets the worker-thread count for the figure harness
//! (default: all available cores). Results are bit-identical for every
//! `N`; see `penny_bench::parallel`.
//!
//! `bench-json` runs the Figure 9 pipeline under a wall-clock timer and
//! writes `BENCH_eval.json` (wall-clock seconds, per-workload cycle and
//! skipped-cycle counts) for tracking harness performance over time.

use std::time::Instant;

use penny_bench::{figures, report};
use penny_sim::GpuConfig;

fn main() {
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--jobs needs a positive integer"));
            jobs = n;
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().unwrap_or_else(|_| die("--jobs needs a positive integer"));
        } else {
            targets.push(a);
        }
    }
    if jobs == 0 {
        die("--jobs needs a positive integer");
    }
    penny_bench::set_jobs(jobs);
    prewarm();

    let targets: Vec<&str> = if targets.is_empty() || targets.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "multibit",
            "ablation",
            "errorrate",
        ]
    } else {
        targets.iter().map(String::as_str).collect()
    };
    for t in targets {
        match t {
            "table1" => print!("{}", report::render_table1()),
            "table2" => print!("{}", report::render_table2()),
            "table3" => print!("{}", report::render_table3()),
            "fig9" => print!("{}", report::render_figure(&figures::fig9())),
            "fig10" => print!("{}", report::render_figure(&figures::fig10())),
            "fig11" => print!("{}", report::render_figure(&figures::fig11())),
            "fig12" => print!("{}", report::render_fig12(&figures::fig12())),
            "fig13" => print!("{}", report::render_figure(&figures::fig13())),
            "fig14" => print!("{}", report::render_figure(&figures::fig14())),
            "fig15" => print!("{}", report::render_figure(&figures::fig15())),
            "ablation" => {
                print!("{}", penny_bench::render_ablation(&penny_bench::ablation()));
                print!("{}", penny_bench::cost_base_sensitivity());
            }
            "errorrate" => print!(
                "{}",
                penny_bench::campaign::render_error_rate(
                    &penny_bench::campaign::error_rate_sensitivity()
                )
            ),
            "multibit" => print!(
                "{}",
                penny_bench::campaign::render_multibit(&penny_bench::multibit_sweep(100))
            ),
            "bench-json" => bench_json(jobs),
            other => die(&format!("unknown target `{other}` (try `all`)")),
        }
    }
}

/// Batch-compiles the scheme x workload matrix every figure draws from,
/// fanning the cache misses across the `--jobs` workers up front. The
/// figures then start from cache hits, so their own (serial or
/// parallel) compile order no longer matters for wall time. Artifacts
/// are bit-identical with or without the prewarm: each entry is a pure
/// function of its content key, and in-flight dedup compiles each key
/// at most once.
fn prewarm() {
    use penny_bench::SchemeId;
    let machine = GpuConfig::fermi().machine;
    let mut pairs = Vec::new();
    for scheme in [
        SchemeId::Baseline,
        SchemeId::IGpu,
        SchemeId::BoltGlobal,
        SchemeId::BoltAuto,
        SchemeId::Penny,
    ] {
        for w in penny_workloads::all() {
            let cfg = scheme.config().with_launch(w.dims).with_machine(machine);
            pairs.push((w, cfg));
        }
    }
    let _ = penny_bench::cache::compile_batch(&pairs);
}

fn die(msg: &str) -> ! {
    eprintln!("penny-eval: {msg}");
    std::process::exit(2);
}

/// Pass-timing aggregation for `BENCH_eval.json`: compiles every
/// workload under the Penny scheme with a live recorder (bypassing the
/// compile cache so each compilation is actually observed) and sums
/// span wall time per pass label.
fn pass_timings() -> Vec<(String, u64, u64)> {
    use std::collections::BTreeMap;
    let rec = penny_obs::MemRecorder::new();
    let scheme = penny_bench::SchemeId::Penny;
    let machine = GpuConfig::fermi().machine;
    for w in penny_workloads::all() {
        let kernel = w.kernel().unwrap_or_else(|e| die(&format!("{}: {e}", w.abbr)));
        let cfg = scheme.config().with_launch(w.dims).with_machine(machine);
        penny_core::compile_observed(&kernel, &cfg, &rec)
            .unwrap_or_else(|e| die(&format!("{}: {e}", w.abbr)));
    }
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in rec.take() {
        let e = agg.entry(s.label).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.wall_ns;
    }
    agg.into_iter().map(|(pass, (n, ns))| (pass, n, ns)).collect()
}

/// Times the Figure 9 pipeline and writes `BENCH_eval.json`.
fn bench_json(jobs: usize) {
    let start = Instant::now();
    let fig = figures::fig9();
    let wall = start.elapsed().as_secs_f64();

    let gpu = GpuConfig::fermi();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"fig9_wall_seconds\": {wall:.6},\n"));
    for s in &fig.series {
        out.push_str(&format!(
            "  \"gmean_{}\": {:.6},\n",
            s.name.to_lowercase().replace(['/', ' '], "_"),
            s.gmean
        ));
    }
    out.push_str("  \"passes\": [\n");
    let passes = pass_timings();
    for (i, (pass, spans, total_ns)) in passes.iter().enumerate() {
        let comma = if i + 1 == passes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"pass\": \"{pass}\", \"spans\": {spans}, \"total_ns\": {total_ns}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"workloads\": [\n");
    let ws = penny_workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let base = penny_bench::cache::baseline(w, &gpu).run;
        let comma = if i + 1 == ws.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"abbr\": \"{}\", \"baseline_cycles\": {}, \"skipped_cycles\": {}}}{comma}\n",
            w.abbr, base.cycles, base.skipped_cycles
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_eval.json", &out) {
        Ok(()) => eprintln!(
            "bench-json: fig9 took {wall:.3}s with {jobs} jobs -> BENCH_eval.json"
        ),
        Err(e) => die(&format!("writing BENCH_eval.json: {e}")),
    }
}
