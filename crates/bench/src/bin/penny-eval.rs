//! `penny-eval`: regenerate the paper's tables and figures.
//!
//! Usage: `penny-eval [table1|table2|table3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|all]...`

use penny_bench::{figures, report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "table2", "table3", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "multibit", "ablation", "errorrate",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for t in targets {
        match t {
            "table1" => print!("{}", report::render_table1()),
            "table2" => print!("{}", report::render_table2()),
            "table3" => print!("{}", report::render_table3()),
            "fig9" => print!("{}", report::render_figure(&figures::fig9())),
            "fig10" => print!("{}", report::render_figure(&figures::fig10())),
            "fig11" => print!("{}", report::render_figure(&figures::fig11())),
            "fig12" => print!("{}", report::render_fig12(&figures::fig12())),
            "fig13" => print!("{}", report::render_figure(&figures::fig13())),
            "fig14" => print!("{}", report::render_figure(&figures::fig14())),
            "fig15" => print!("{}", report::render_figure(&figures::fig15())),
            "ablation" => {
                print!("{}", penny_bench::render_ablation(&penny_bench::ablation()));
                print!("{}", penny_bench::cost_base_sensitivity());
            }
            "errorrate" => print!(
                "{}",
                penny_bench::campaign::render_error_rate(
                    &penny_bench::campaign::error_rate_sensitivity()
                )
            ),
            "multibit" => print!(
                "{}",
                penny_bench::campaign::render_multibit(&penny_bench::multibit_sweep(100))
            ),
            other => eprintln!("unknown target `{other}` (try `all`)"),
        }
    }
}
