//! `penny-eval`: regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! penny-eval [--jobs N] [--shard I/N] [--budget N] [--runs N]
//!            [--workloads A,B] [--schemes X,Y] [--report-json PATH]
//!            [--recording-store DIR] [--obs-jsonl PATH]
//!            [--bench-json] [--min-speedup X]
//!            [--static-prune] [--static-validate] [--min-prune X]
//!            [table1|table2|table3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|
//!             multibit|ablation|errorrate|bench-json|
//!             conformance|conformance-exhaustive|campaign|
//!             vulnerability|static-agreement|all]...
//! ```
//!
//! `--jobs N` sets the worker-thread count for the figure harness
//! (default: all available cores). Results are bit-identical for every
//! `N`; see `penny_bench::parallel`.
//!
//! Shard-process flags (what `penny-herd` drives; see `DESIGN.md` §16):
//!
//! * `--workloads A,B` / `--schemes X,Y` restrict the `conformance`
//!   matrix to the named workload abbreviations and scheme tokens
//!   (`Baseline`, `IGpu`, `BoltGlobal`, `BoltAuto`, `Penny`). When
//!   either is given, the global figure prewarm is skipped so shard
//!   processes start fast.
//! * `--report-json PATH` writes every conformance report of the run as
//!   versioned JSON (`penny_bench::json`) — written even when sites
//!   fail, so the orchestrator can always merge what succeeded.
//! * `--recording-store DIR` persists fault-free recordings
//!   content-addressed under `DIR` (`penny_bench::recstore`); warm runs
//!   skip the record phase entirely.
//! * `--obs-jsonl PATH` appends every observability span (including the
//!   `recording-store` and compile-cache counters) as JSON lines.
//!
//! `bench-json` runs the Figure 9 pipeline under a wall-clock timer and
//! writes `BENCH_eval.json` (wall-clock seconds, per-workload cycle and
//! skipped-cycle counts) for tracking harness performance over time.
//!
//! Campaign subcommands:
//!
//! * `conformance` — the deep fault-space sweep (four workloads × four
//!   protected schemes, `--budget` sites each, default 2000) through the
//!   snapshot/replay engine. `--shard I/N` runs one process-level shard:
//!   shard reports merge bit-identically into the unsharded report
//!   (`penny_bench::conformance::merge_reports`). With `--bench-json`
//!   the deep-sweep pairs are timed (best of 3, recording cost
//!   included) against a cold from-cycle-0 baseline and written to
//!   `BENCH_eval.json`; `--min-speedup X` then exits nonzero if any
//!   pair's snapshot-vs-cold speedup falls below `X` (the
//!   `scripts/verify.sh` throughput gate).
//! * `conformance-exhaustive` — sweeps the **entire** fault space of the
//!   small workloads (MT, STC, FW, BS) under Penny: every site
//!   classified and answered, none sampled.
//! * `campaign` — the Table-1 multi-bit EDC campaign matrix
//!   (`--runs` per cell, default 100), shardable with `--shard I/N`.
//!
//! Static-vulnerability subcommands (see `DESIGN.md` §15):
//!
//! * `vulnerability` — the analytic static profile: per
//!   workload × scheme pruned-site fractions plus a per-register
//!   residual-exposure (AVF-style) ranking for the deep-sweep pairs.
//!   `--min-prune X` exits nonzero if the MT/Penny statically-answered
//!   fraction (pruned + never-fires) falls below `X` — the
//!   `scripts/verify.sh` prune-rate regression gate.
//! * `static-agreement` — the translation-validation gauntlet: runs the
//!   deep sweep on MT and SGEMM under every protected scheme in
//!   `StaticMode::Validate` (every statically classified site is
//!   *also* replayed and cross-examined), then validates the entire MT
//!   fault space exhaustively. Any static/dynamic disagreement exits 1.
//!
//! `--static-prune` / `--static-validate` select the static mode for
//! the `conformance` and `conformance-exhaustive` subcommands:
//! pruning answers statically classified sites without replaying them
//! (`pruned-static` bucket in the report); validation replays them
//! anyway and hard-errors on contradictions.

use std::sync::Arc;
use std::time::Instant;

use penny_bench::conformance::Shard;
use penny_bench::{conformance, figures, recstore, report, SchemeId, StaticMode};
use penny_obs::MemRecorder;
use penny_sim::GpuConfig;

fn main() {
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut shard = Shard::full();
    let mut budget: u64 = 2000;
    let mut runs: u32 = 100;
    let mut bench_json_out = false;
    let mut min_speedup: Option<f64> = None;
    let mut static_mode = StaticMode::Off;
    let mut min_prune: Option<f64> = None;
    let mut workloads: Option<Vec<String>> = None;
    let mut schemes: Option<Vec<SchemeId>> = None;
    let mut report_json: Option<String> = None;
    let mut obs_jsonl: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut flag = |name: &str| -> Option<String> {
            if a == name {
                Some(args.next().unwrap_or_else(|| die(&format!("{name} needs a value"))))
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = flag("--jobs") {
            jobs = v.parse().unwrap_or_else(|_| die("--jobs needs a positive integer"));
        } else if let Some(v) = flag("--shard") {
            shard = Shard::parse(&v).unwrap_or_else(|e| die(&e.to_string()));
        } else if let Some(v) = flag("--budget") {
            budget = v.parse().unwrap_or_else(|_| die("--budget needs a positive integer"));
        } else if let Some(v) = flag("--runs") {
            runs = v.parse().unwrap_or_else(|_| die("--runs needs a positive integer"));
        } else if let Some(v) = flag("--min-speedup") {
            min_speedup =
                Some(v.parse().unwrap_or_else(|_| die("--min-speedup needs a number")));
        } else if let Some(v) = flag("--min-prune") {
            min_prune =
                Some(v.parse().unwrap_or_else(|_| die("--min-prune needs a number")));
        } else if let Some(v) = flag("--workloads") {
            workloads = Some(
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|abbr| {
                        if penny_workloads::by_abbr(abbr).is_none() {
                            die(&format!("--workloads: unknown workload {abbr:?}"));
                        }
                        abbr.to_string()
                    })
                    .collect(),
            );
        } else if let Some(v) = flag("--schemes") {
            schemes = Some(
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|tok| {
                        SchemeId::from_token(tok).unwrap_or_else(|| {
                            die(&format!(
                                "--schemes: unknown scheme {tok:?} (tokens: Baseline, \
                                 IGpu, BoltGlobal, BoltAuto, Penny)"
                            ))
                        })
                    })
                    .collect(),
            );
        } else if let Some(v) = flag("--report-json") {
            report_json = Some(v);
        } else if let Some(v) = flag("--recording-store") {
            recstore::set_recording_store(std::path::Path::new(&v))
                .unwrap_or_else(|e| die(&format!("--recording-store {v}: {e}")));
        } else if let Some(v) = flag("--obs-jsonl") {
            obs_jsonl = Some(v);
        } else if a == "--bench-json" {
            bench_json_out = true;
        } else if a == "--static-prune" {
            static_mode = StaticMode::Prune;
        } else if a == "--static-validate" {
            static_mode = StaticMode::Validate;
        } else {
            targets.push(a);
        }
    }
    if jobs == 0 {
        die("--jobs needs a positive integer");
    }
    if budget == 0 {
        die("--budget needs a positive integer");
    }
    penny_bench::set_jobs(jobs);
    let recorder = obs_jsonl.as_ref().map(|_| {
        let rec = Arc::new(MemRecorder::new());
        penny_bench::obs::set_recorder(rec.clone());
        rec
    });
    // The deep-sweep pairs a restricted conformance run covers; `None`
    // means the full built-in matrix.
    let selection: Option<Vec<(&str, SchemeId)>> =
        if workloads.is_some() || schemes.is_some() {
            let ws: Vec<&str> = match &workloads {
                Some(w) => w.iter().map(String::as_str).collect(),
                None => DEEP_SWEEP_WORKLOADS.to_vec(),
            };
            let ss: &[SchemeId] = match &schemes {
                Some(s) => s,
                None => &DEEP_SWEEP_SCHEMES,
            };
            Some(ws.iter().flat_map(|&w| ss.iter().map(move |&s| (w, s))).collect())
        } else {
            None
        };
    // A restricted run is a shard process: the figure-matrix prewarm
    // (5 schemes x every registered workload) would dwarf its real work.
    if selection.is_none() {
        prewarm();
    }

    let targets: Vec<&str> = if targets.is_empty() || targets.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "multibit",
            "ablation",
            "errorrate",
        ]
    } else {
        targets.iter().map(String::as_str).collect()
    };
    let mut conformance_failed = false;
    for t in targets {
        match t {
            "table1" => print!("{}", report::render_table1()),
            "table2" => print!("{}", report::render_table2()),
            "table3" => print!("{}", report::render_table3()),
            "fig9" => print!("{}", report::render_figure(&figures::fig9())),
            "fig10" => print!("{}", report::render_figure(&figures::fig10())),
            "fig11" => print!("{}", report::render_figure(&figures::fig11())),
            "fig12" => print!("{}", report::render_fig12(&figures::fig12())),
            "fig13" => print!("{}", report::render_figure(&figures::fig13())),
            "fig14" => print!("{}", report::render_figure(&figures::fig14())),
            "fig15" => print!("{}", report::render_figure(&figures::fig15())),
            "ablation" => {
                print!("{}", penny_bench::render_ablation(&penny_bench::ablation()));
                print!("{}", penny_bench::cost_base_sensitivity());
            }
            "errorrate" => print!(
                "{}",
                penny_bench::campaign::render_error_rate(
                    &penny_bench::campaign::error_rate_sensitivity()
                )
            ),
            "multibit" => print!(
                "{}",
                penny_bench::campaign::render_multibit(&penny_bench::multibit_sweep(100))
            ),
            "bench-json" => bench_json(jobs),
            "conformance" => {
                conformance_failed |= conformance_cmd(&ConformanceArgs {
                    shard,
                    budget,
                    bench_json_out,
                    min_speedup,
                    jobs,
                    mode: static_mode,
                    pairs: selection.as_deref().unwrap_or(&DEEP_SWEEP),
                    report_json: report_json.as_deref(),
                });
            }
            "conformance-exhaustive" => conformance_exhaustive(shard, static_mode),
            "campaign" => campaign_cmd(runs, shard),
            "vulnerability" => vulnerability_cmd(min_prune),
            "static-agreement" => static_agreement(budget),
            other => die(&format!("unknown target `{other}` (try `all`)")),
        }
    }
    if let (Some(path), Some(rec)) = (&obs_jsonl, &recorder) {
        // Fold the process-wide cache counters in before dumping, so
        // the stream carries the compile-cache and recording-store
        // totals alongside the per-site spans.
        penny_bench::cache::record_cache_spans(rec.as_ref());
        recstore::record_store_span(rec.as_ref());
        let mut out = String::new();
        for span in rec.take() {
            out.push_str(&span.to_jsonl());
            out.push('\n');
        }
        std::fs::write(path, out).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    }
    if conformance_failed {
        std::process::exit(1);
    }
}

/// The deep-sweep workloads.
const DEEP_SWEEP_WORKLOADS: [&str; 4] = ["MT", "SPMV", "SGEMM", "BFS"];

/// The deep-sweep (protected) schemes.
const DEEP_SWEEP_SCHEMES: [SchemeId; 4] =
    [SchemeId::Penny, SchemeId::BoltGlobal, SchemeId::BoltAuto, SchemeId::IGpu];

/// The deep-sweep (workload, scheme) matrix the conformance subcommand
/// and throughput gate cover.
const DEEP_SWEEP: [(&str, SchemeId); 16] = {
    let mut pairs = [("", SchemeId::Penny); 16];
    let mut i = 0;
    while i < 16 {
        pairs[i] = (DEEP_SWEEP_WORKLOADS[i / 4], DEEP_SWEEP_SCHEMES[i % 4]);
        i += 1;
    }
    pairs
};

/// Everything the `conformance` subcommand consumes.
struct ConformanceArgs<'a> {
    shard: Shard,
    budget: u64,
    bench_json_out: bool,
    min_speedup: Option<f64>,
    jobs: usize,
    mode: StaticMode,
    /// The (workload, scheme) matrix to sweep.
    pairs: &'a [(&'a str, SchemeId)],
    /// Where to write the reports as JSON (always written, even on
    /// failures — the orchestrator merges whatever this shard proved).
    report_json: Option<&'a str>,
}

/// `conformance`: deep sweep through the snapshot/replay engine, one
/// shard of the sample-position partition per invocation. Returns
/// whether any site failed (the caller exits nonzero *after* the
/// report JSON and observability spans are flushed).
fn conformance_cmd(a: &ConformanceArgs) -> bool {
    conformance::prewarm_static(a.pairs, a.mode != StaticMode::Off);
    println!(
        "== Conformance deep sweep (budget {}, shard {}/{}{}) ==",
        a.budget,
        a.shard.index,
        a.shard.count,
        match a.mode {
            StaticMode::Off => "",
            StaticMode::Prune => ", static-prune",
            StaticMode::Validate => ", static-validate",
        }
    );
    let mut failed = false;
    let mut reports = Vec::with_capacity(a.pairs.len());
    for &(abbr, scheme) in a.pairs {
        let t = Instant::now();
        let r = conformance::run_conformance_static_sharded(
            abbr, scheme, a.budget, a.mode, a.shard,
        );
        let wall = t.elapsed().as_secs_f64();
        print!("{}", conformance::render_report(&r));
        println!(
            "       work: {} forks, {} snapshots, {} pages copied, {} insts replayed \
             ({} cold)  [{:.2}s, {:.0} sites/s]",
            r.work.forks,
            r.work.snapshots,
            r.work.pages_copied,
            r.work.replayed_insts,
            r.work.cold_insts,
            wall,
            r.covered as f64 / wall.max(1e-9)
        );
        failed |= !r.failures.is_empty() || r.static_disagreements > 0;
        reports.push(r);
    }
    if let Some(path) = a.report_json {
        let json = penny_bench::json::reports_to_json(&reports);
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    }
    if !failed && (a.bench_json_out || a.min_speedup.is_some()) {
        conformance_bench_json(a.budget, a.min_speedup, a.jobs);
    }
    failed
}

/// Times the snapshot engine against the cold harness on the protected
/// deep-sweep pairs and writes `BENCH_eval.json`; enforces
/// `--min-speedup` when given.
fn conformance_bench_json(budget: u64, min_speedup: Option<f64>, jobs: usize) {
    let pairs = [("MT", SchemeId::Penny), ("SGEMM", SchemeId::Penny)];
    let mut rows = Vec::new();
    for (abbr, scheme) in pairs {
        let b = conformance::bench_throughput(abbr, scheme, budget, 3, 48);
        eprintln!(
            "conformance-bench: {} {}: {:.0} sites/s forked vs {:.1} sites/s cold \
             ({:.1}x, best of 3)",
            b.workload, b.variant, b.forked_sites_per_sec, b.cold_sites_per_sec, b.speedup
        );
        rows.push(b);
    }
    let worst = rows.iter().map(|b| b.speedup).fold(f64::INFINITY, f64::min);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"budget\": {budget},\n"));
    out.push_str("  \"conformance\": [\n");
    for (i, b) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"covered\": {}, \
             \"forked_wall_seconds\": {:.6}, \"forked_sites_per_sec\": {:.3}, \
             \"cold_sites_timed\": {}, \"cold_wall_seconds\": {:.6}, \
             \"cold_sites_per_sec\": {:.3}, \"speedup\": {:.3}}}{comma}\n",
            b.workload,
            b.variant,
            b.covered,
            b.forked_wall_s,
            b.forked_sites_per_sec,
            b.cold_sites_timed,
            b.cold_wall_s,
            b.cold_sites_per_sec,
            b.speedup
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"conformance_min_speedup\": {worst:.3}\n"));
    out.push_str("}\n");
    match std::fs::write("BENCH_eval.json", &out) {
        Ok(()) => {
            eprintln!("conformance-bench: min speedup {worst:.1}x -> BENCH_eval.json")
        }
        Err(e) => die(&format!("writing BENCH_eval.json: {e}")),
    }
    if let Some(min) = min_speedup {
        if worst < min {
            eprintln!("conformance-bench: speedup {worst:.1}x below required {min:.1}x");
            std::process::exit(1);
        }
    }
}

/// `conformance-exhaustive`: the entire fault space of the small
/// workloads — every site classified and answered, none sampled.
fn conformance_exhaustive(shard: Shard, mode: StaticMode) {
    println!(
        "== Conformance exhaustive sweep (full fault spaces, shard {}/{}{}) ==",
        shard.index,
        shard.count,
        match mode {
            StaticMode::Off => "",
            StaticMode::Prune => ", static-prune",
            StaticMode::Validate => ", static-validate",
        }
    );
    for abbr in ["MT", "STC", "FW", "BS"] {
        let t = Instant::now();
        let r = conformance::run_conformance_static_sharded(
            abbr,
            SchemeId::Penny,
            u64::MAX,
            mode,
            shard,
        );
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(r.skipped, 0, "exhaustive sweep must answer every site");
        print!("{}", conformance::render_report(&r));
        println!(
            "       work: {} forks over {} covered sites  [{:.2}s, {:.0} sites/s]",
            r.work.forks,
            r.covered,
            wall,
            r.covered as f64 / wall.max(1e-9)
        );
        if !r.failures.is_empty() || r.static_disagreements > 0 {
            std::process::exit(1);
        }
    }
}

/// `vulnerability`: the analytic static profile — per workload × scheme
/// pruned fractions, then the per-register residual-exposure ranking
/// for the deep-sweep workloads under Penny. `--min-prune` gates the
/// MT/Penny statically-answered fraction.
fn vulnerability_cmd(min_prune: Option<f64>) {
    const SCHEMES: [SchemeId; 4] =
        [SchemeId::IGpu, SchemeId::BoltGlobal, SchemeId::BoltAuto, SchemeId::Penny];
    println!("== Static vulnerability profile (site fractions of the full fault space) ==");
    let mut mt_penny_rate = None;
    for w in penny_workloads::all() {
        for scheme in SCHEMES {
            let p = penny_bench::static_profile(w.abbr, scheme);
            print!("{}", penny_bench::render_profile(&p, 0));
            if w.abbr == "MT" && scheme == SchemeId::Penny {
                mt_penny_rate = Some(p.classified_rate());
            }
        }
    }
    println!("== Per-register residual exposure (deep-sweep workloads, Penny) ==");
    for abbr in ["MT", "SPMV", "SGEMM", "BFS"] {
        let p = penny_bench::static_profile(abbr, SchemeId::Penny);
        print!("{}", penny_bench::render_profile(&p, 4));
    }
    if let Some(min) = min_prune {
        let rate = mt_penny_rate.expect("MT is in the registry");
        eprintln!(
            "vulnerability: MT/Penny statically answered {:.1}% (gate {:.1}%)",
            100.0 * rate,
            100.0 * min
        );
        if rate < min {
            eprintln!("vulnerability: below the prune-rate gate");
            std::process::exit(1);
        }
    }
}

/// `static-agreement`: the translation-validation gauntlet. Deep-budget
/// validation of MT and SGEMM under every protected scheme, then an
/// exhaustive validation of the full MT fault space. Every statically
/// classified site is also replayed; one contradiction fails the run.
fn static_agreement(budget: u64) {
    let pairs: Vec<(&str, SchemeId)> = ["MT", "SGEMM"]
        .into_iter()
        .flat_map(|w| {
            [SchemeId::Penny, SchemeId::BoltGlobal, SchemeId::BoltAuto, SchemeId::IGpu]
                .into_iter()
                .map(move |s| (w, s))
        })
        .collect();
    conformance::prewarm_static(&pairs, true);
    println!("== Static/dynamic agreement sweep (budget {budget}, validate mode) ==");
    let mut checked = 0u64;
    for &(abbr, scheme) in &pairs {
        let r =
            conformance::run_conformance_static(abbr, scheme, budget, StaticMode::Validate);
        print!("{}", conformance::render_report(&r));
        checked += r.static_checked;
        if !r.failures.is_empty() || r.static_disagreements > 0 {
            std::process::exit(1);
        }
    }
    println!("== Exhaustive agreement sweep: full MT fault space ==");
    let r = conformance::run_conformance_static(
        "MT",
        SchemeId::Penny,
        u64::MAX,
        StaticMode::Validate,
    );
    print!("{}", conformance::render_report(&r));
    checked += r.static_checked;
    if !r.failures.is_empty() || r.static_disagreements > 0 {
        std::process::exit(1);
    }
    println!("static-agreement: {checked} static claims cross-examined, 0 disagreements");
}

/// `campaign`: the Table-1 multi-bit matrix, one shard per invocation.
fn campaign_cmd(runs: u32, shard: Shard) {
    println!(
        "== Multi-bit EDC campaign ({runs} runs/cell, shard {}/{}) ==",
        shard.index, shard.count
    );
    let results = penny_bench::campaign::multibit_sweep_sharded(runs, shard);
    print!("{}", penny_bench::campaign::render_multibit(&results));
}

/// Batch-compiles the scheme x workload matrix every figure draws from,
/// fanning the cache misses across the `--jobs` workers up front. The
/// figures then start from cache hits, so their own (serial or
/// parallel) compile order no longer matters for wall time. Artifacts
/// are bit-identical with or without the prewarm: each entry is a pure
/// function of its content key, and in-flight dedup compiles each key
/// at most once.
fn prewarm() {
    use penny_bench::SchemeId;
    let machine = GpuConfig::fermi().machine;
    let mut pairs = Vec::new();
    for scheme in [
        SchemeId::Baseline,
        SchemeId::IGpu,
        SchemeId::BoltGlobal,
        SchemeId::BoltAuto,
        SchemeId::Penny,
    ] {
        for w in penny_workloads::all() {
            let cfg = scheme.config().with_launch(w.dims).with_machine(machine);
            pairs.push((w, cfg));
        }
    }
    let _ = penny_bench::cache::compile_batch(&pairs);
}

fn die(msg: &str) -> ! {
    eprintln!("penny-eval: {msg}");
    std::process::exit(2);
}

/// Pass-timing aggregation for `BENCH_eval.json`: compiles every
/// workload under the Penny scheme with a live recorder (bypassing the
/// compile cache so each compilation is actually observed) and sums
/// span wall time per pass label.
fn pass_timings() -> Vec<(String, u64, u64)> {
    use std::collections::BTreeMap;
    let rec = penny_obs::MemRecorder::new();
    let scheme = penny_bench::SchemeId::Penny;
    let machine = GpuConfig::fermi().machine;
    for w in penny_workloads::all() {
        let kernel = w.kernel().unwrap_or_else(|e| die(&format!("{}: {e}", w.abbr)));
        let cfg = scheme.config().with_launch(w.dims).with_machine(machine);
        penny_core::compile_observed(&kernel, &cfg, &rec)
            .unwrap_or_else(|e| die(&format!("{}: {e}", w.abbr)));
    }
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in rec.take() {
        let e = agg.entry(s.label).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.wall_ns;
    }
    agg.into_iter().map(|(pass, (n, ns))| (pass, n, ns)).collect()
}

/// Times the Figure 9 pipeline and writes `BENCH_eval.json`.
fn bench_json(jobs: usize) {
    let start = Instant::now();
    let fig = figures::fig9();
    let wall = start.elapsed().as_secs_f64();

    let gpu = GpuConfig::fermi();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"fig9_wall_seconds\": {wall:.6},\n"));
    for s in &fig.series {
        out.push_str(&format!(
            "  \"gmean_{}\": {:.6},\n",
            s.name.to_lowercase().replace(['/', ' '], "_"),
            s.gmean
        ));
    }
    out.push_str("  \"passes\": [\n");
    let passes = pass_timings();
    for (i, (pass, spans, total_ns)) in passes.iter().enumerate() {
        let comma = if i + 1 == passes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"pass\": \"{pass}\", \"spans\": {spans}, \"total_ns\": {total_ns}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"workloads\": [\n");
    let ws = penny_workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let base = penny_bench::cache::baseline(w, &gpu).run;
        let comma = if i + 1 == ws.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"abbr\": \"{}\", \"baseline_cycles\": {}, \"skipped_cycles\": {}}}{comma}\n",
            w.abbr, base.cycles, base.skipped_cycles
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_eval.json", &out) {
        Ok(()) => eprintln!(
            "bench-json: fig9 took {wall:.3}s with {jobs} jobs -> BENCH_eval.json"
        ),
        Err(e) => die(&format!("writing BENCH_eval.json: {e}")),
    }
}
