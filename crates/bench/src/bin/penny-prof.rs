//! `penny-prof`: compile and run workloads with the observability layer
//! on, emitting one JSONL span per compiler pass, simulator run, and
//! context field.
//!
//! Usage:
//!
//! ```text
//! penny-prof [--workload ABBR]... [--all-workloads] [--corpus]
//!            [--scheme NAME] [--jobs N] [--json] [--summary] [--check]
//!            [--vulnerability] [--conformance BUDGET]
//!            [--assert-share PASS:PCT]
//! ```
//!
//! * `--workload ABBR` — profile one workload (repeatable);
//! * `--all-workloads` — profile every registered paper workload;
//! * `--corpus` — additionally profile the banked fuzz-regression
//!   kernels under `corpus/` (opt-in: the evaluation share gates are
//!   calibrated to the paper's 25 workloads);
//! * `--scheme NAME` — compiler/RF scheme: `baseline`, `igpu`,
//!   `bolt-global`, `bolt-auto`, or `penny` (default);
//! * `--jobs N` — fan the profiles across N harness workers
//!   (default 1: serial profiling gives the least noisy timings);
//! * `--json` — emit spans as JSONL on stdout (the default output);
//! * `--summary` — print aggregated pass-timing and run-metric tables
//!   instead of (or after) the JSONL stream; with `--conformance` a
//!   campaign table (sites, forks, snapshots, replayed/skipped
//!   instructions, CoW pages) follows;
//! * `--check` — validate every emitted line against the span schema
//!   (`penny_obs::schema`); exit nonzero on any violation;
//! * `--vulnerability` — compile with the static vulnerability analysis
//!   enabled, so the `vulnerability` pass span (site-class counters
//!   included) appears in the stream and summary;
//! * `--conformance BUDGET` — additionally run a BUDGET-site
//!   snapshot/replay conformance sweep per workload, capturing its
//!   `campaign` and per-replay `site` spans into the stream;
//! * `--assert-share PASS:PCT` — exit nonzero if `PASS`'s share of
//!   total pass time exceeds `PCT` percent (CI guardrail; see
//!   `scripts/verify.sh`).
//!
//! Compiles go through the content-addressed harness cache
//! (`penny_bench::cache`) with this invocation's recorder, so each
//! profile observes the one real (cache-miss) pipeline execution of its
//! key, and the cache's hit/miss/eviction/in-flight counters are
//! appended to the stream as `cache`-kind spans (subject
//! `compile-cache`, workload `harness`).

use std::collections::BTreeMap;

use penny_bench::SchemeId;
use penny_obs::{MemRecorder, Span, SpanKind};
use penny_sim::{Gpu, GpuConfig};
use penny_workloads::Workload;

fn die(msg: &str) -> ! {
    eprintln!("penny-prof: {msg}");
    std::process::exit(2);
}

fn parse_scheme(name: &str) -> SchemeId {
    match name.to_lowercase().as_str() {
        "baseline" => SchemeId::Baseline,
        "igpu" => SchemeId::IGpu,
        "bolt-global" | "bolt_global" => SchemeId::BoltGlobal,
        "bolt-auto" | "bolt_auto" => SchemeId::BoltAuto,
        "penny" => SchemeId::Penny,
        other => die(&format!(
            "unknown scheme `{other}` (baseline|igpu|bolt-global|bolt-auto|penny)"
        )),
    }
}

/// Spans collected for one workload.
struct Profiled {
    abbr: &'static str,
    spans: Vec<Span>,
}

/// Compiles and runs `w` under `scheme` with a live recorder; returns
/// every span the pipeline and simulator emitted. The compile goes
/// through the harness content cache: a first-touch key records its
/// full pass-span stream here; a repeated key (e.g. `--workload STC
/// --workload STC`) is a cache hit and contributes only sim spans.
fn profile(w: &Workload, scheme: SchemeId, vulnerability: bool) -> Profiled {
    let rec = MemRecorder::new();
    let gpu_config = GpuConfig::fermi().with_rf(scheme.rf());
    let cfg = scheme
        .config()
        .with_launch(w.dims)
        .with_machine(gpu_config.machine)
        .with_vulnerability(vulnerability);
    let protected = penny_bench::cache::compiled_with(w, &cfg, &rec);
    let mut gpu = Gpu::new(gpu_config);
    let launch = w.prepare(gpu.global_mut());
    gpu.run_observed(&protected, &launch, &rec)
        .unwrap_or_else(|e| die(&format!("{}: run: {e}", w.abbr)));
    if !w.check(gpu.global()) {
        die(&format!("{}: wrong output under {scheme:?}", w.abbr));
    }
    Profiled { abbr: w.abbr, spans: rec.take() }
}

/// Pipeline execution order of the known pass labels; the summary
/// table lists passes in this order (unknown labels follow,
/// alphabetically) so rows never reshuffle between runs.
const PASS_ORDER: &[&str] = &[
    "region-formation",
    "checkpoint-placement",
    "overwrite-prevention",
    "validation",
    "pruning",
    "restore-metadata",
    "igpu-renaming",
    "storage-assignment",
    "codegen",
    "vulnerability",
];

fn pass_rank(label: &str) -> (usize, &str) {
    (PASS_ORDER.iter().position(|&p| p == label).unwrap_or(PASS_ORDER.len()), label)
}

/// Aggregated pass timing across every profiled workload: per-pass span
/// count, total/mean wall time, and each pass's share of total pass
/// time, in stable pipeline order.
fn pass_summary(profiles: &[Profiled]) -> String {
    use std::fmt::Write as _;
    // pass label -> (spans, total ns)
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Pass) {
            let e = agg.entry(s.label.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.wall_ns;
        }
    }
    let grand: u64 = agg.values().map(|&(_, ns)| ns).sum();
    let mut rows: Vec<(&str, u64, u64)> =
        agg.into_iter().map(|(pass, (n, ns))| (pass, n, ns)).collect();
    rows.sort_by_key(|&(pass, _, _)| pass_rank(pass));
    let mut out = String::new();
    // The synthetic harness-cache entry carries no pass spans; keep the
    // workload count honest.
    let nworkloads = profiles
        .iter()
        .filter(|p| p.spans.iter().any(|s| s.kind != SpanKind::Cache))
        .count();
    let _ = writeln!(out, "\n== Pass timing ({nworkloads} workloads) ==");
    let _ = writeln!(
        out,
        "{:<22} {:>7} {:>14} {:>12} {:>8}",
        "pass", "spans", "total_ns", "mean_ns", "share"
    );
    for (pass, n, ns) in &rows {
        let _ = writeln!(
            out,
            "{pass:<22} {n:>7} {ns:>14} {:>12} {:>7.1}%",
            ns / n.max(&1),
            100.0 * *ns as f64 / grand.max(1) as f64
        );
    }
    out
}

/// Share (percent) of total pass time spent in `label` across the
/// profiles, or `None` if no such pass span exists.
fn pass_share(profiles: &[Profiled], label: &str) -> Option<f64> {
    let mut target = 0u64;
    let mut grand = 0u64;
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Pass) {
            grand += s.wall_ns;
            if s.label == label {
                target += s.wall_ns;
            }
        }
    }
    (target > 0).then(|| 100.0 * target as f64 / grand.max(1) as f64)
}

/// Snapshot/replay campaign metrics: one row per `campaign` span
/// (sites answered, forked replays, snapshots, replayed vs skipped
/// instructions, CoW pages copied, wall time).
fn campaign_summary(profiles: &[Profiled]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Conformance campaigns (snapshot/replay) ==");
    let _ = writeln!(
        out,
        "{:<6} {:<12} {:>8} {:>7} {:>6} {:>12} {:>14} {:>8} {:>10}",
        "wkld",
        "scheme",
        "sites",
        "forks",
        "snaps",
        "replayed",
        "skipped",
        "pages",
        "wall_ms"
    );
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Campaign) {
            let c = |name: &str| s.counter(name).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<6} {:<12} {:>8} {:>7} {:>6} {:>12} {:>14} {:>8} {:>10.1}",
                p.abbr,
                s.label,
                c("sites"),
                c("forks"),
                c("snapshots"),
                c("replayed_insts"),
                c("skipped_insts"),
                c("pages_copied"),
                s.wall_ns as f64 / 1e6
            );
        }
    }
    out
}

/// Per-workload simulator run metrics.
fn sim_summary(profiles: &[Profiled]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Simulator runs ==");
    let _ = writeln!(
        out,
        "{:<6} {:>12} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "wkld", "cycles", "skipped", "rf_reads", "rf_writes", "recover", "reexec"
    );
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Sim) {
            let c = |name: &str| s.counter(name).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<6} {:>12} {:>14} {:>12} {:>12} {:>10} {:>10}",
                p.abbr,
                c("cycles"),
                c("skipped_cycles"),
                c("rf_reads"),
                c("rf_writes"),
                c("recoveries"),
                c("reexec_instructions")
            );
        }
    }
    out
}

fn main() {
    let mut abbrs: Vec<String> = Vec::new();
    let mut all = false;
    let mut corpus = false;
    let mut scheme = SchemeId::Penny;
    let mut jobs: usize = 1;
    let mut json = false;
    let mut summary = false;
    let mut check = false;
    let mut vulnerability = false;
    let mut conformance_budget: Option<u64> = None;
    let mut assert_share: Option<(String, f64)> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => {
                abbrs.push(args.next().unwrap_or_else(|| die("--workload needs an ABBR")))
            }
            "--all-workloads" => all = true,
            "--corpus" => corpus = true,
            "--scheme" => {
                scheme = parse_scheme(
                    &args.next().unwrap_or_else(|| die("--scheme needs a NAME")),
                )
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"))
            }
            "--assert-share" => {
                assert_share = Some(parse_assert_share(
                    &args.next().unwrap_or_else(|| die("--assert-share needs PASS:PCT")),
                ))
            }
            "--conformance" => {
                conformance_budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--conformance needs a positive budget")),
                )
            }
            "--json" => json = true,
            "--summary" => summary = true,
            "--check" => check = true,
            "--vulnerability" => vulnerability = true,
            other => {
                if let Some(v) = other.strip_prefix("--workload=") {
                    abbrs.push(v.to_string());
                } else if let Some(v) = other.strip_prefix("--scheme=") {
                    scheme = parse_scheme(v);
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    jobs = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--jobs needs a positive integer"));
                } else if let Some(v) = other.strip_prefix("--assert-share=") {
                    assert_share = Some(parse_assert_share(v));
                } else if let Some(v) = other.strip_prefix("--conformance=") {
                    conformance_budget =
                        Some(v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                            die("--conformance needs a positive budget")
                        }));
                } else {
                    die(&format!("unknown argument `{other}`"));
                }
            }
        }
    }
    if !json && !summary {
        json = true; // JSONL is the default output
    }

    let mut workloads: Vec<Workload> = if all {
        if !abbrs.is_empty() {
            die("--all-workloads conflicts with --workload");
        }
        penny_workloads::all()
    } else if abbrs.is_empty() && !corpus {
        die("nothing to profile: pass --workload ABBR, --all-workloads, or --corpus")
    } else {
        abbrs
            .iter()
            .map(|a| {
                penny_workloads::by_abbr(a)
                    .unwrap_or_else(|| die(&format!("unknown workload `{a}`")))
            })
            .collect()
    };
    // Banked fuzz kernels are opt-in: the evaluation pass-share gates
    // are calibrated to the paper's 25 workloads.
    if corpus {
        workloads.extend(penny_workloads::corpus::corpus().iter().cloned());
    }

    penny_bench::set_jobs(jobs);
    // Fan the (workload, config) profiles across the parallel harness;
    // results come back in input order, so output is deterministic for
    // any job count. Then append the harness cache counters as
    // `cache`-kind spans so the stream reports cache effectiveness.
    let mut profiles: Vec<Profiled> =
        penny_bench::parallel_map(&workloads, |w| profile(w, scheme, vulnerability));

    // Snapshot/replay conformance sweeps run serially with the
    // process-global sink installed (the sweep itself already fans its
    // sites across the `--jobs` workers), capturing one `campaign` span
    // plus a `site` span per forked replay group into each workload's
    // stream.
    if let Some(budget) = conformance_budget {
        for (w, p) in workloads.iter().zip(&mut profiles) {
            let rec = std::sync::Arc::new(MemRecorder::new());
            penny_bench::obs::set_recorder(rec.clone());
            let report = penny_bench::conformance::run_conformance(w.abbr, scheme, budget);
            penny_bench::obs::clear_recorder();
            if !report.failures.is_empty() {
                die(&format!(
                    "{}: {} conformance sites failed to recover under {scheme:?}",
                    w.abbr,
                    report.covered - report.recovered
                ));
            }
            p.spans.extend(rec.take());
        }
    }
    {
        let rec = MemRecorder::new();
        penny_bench::cache::record_cache_spans(&rec);
        profiles.push(Profiled { abbr: "harness", spans: rec.take() });
    }

    let mut violations = 0u64;
    if json || check {
        let mut stdout = String::new();
        for p in &profiles {
            for s in &p.spans {
                let line =
                    s.to_jsonl_with(&[("workload", p.abbr), ("scheme", scheme.name())]);
                if check {
                    if let Err(e) = penny_obs::schema::validate_line(&line) {
                        eprintln!("penny-prof: schema violation: {e}\n  in: {line}");
                        violations += 1;
                    }
                }
                if json {
                    stdout.push_str(&line);
                    stdout.push('\n');
                }
            }
        }
        print!("{stdout}");
    }

    if summary {
        print!("{}", pass_summary(&profiles));
        print!("{}", sim_summary(&profiles));
        if profiles.iter().any(|p| p.spans.iter().any(|s| s.kind == SpanKind::Campaign)) {
            print!("{}", campaign_summary(&profiles));
        }
    }

    if check {
        let total: usize = profiles.iter().map(|p| p.spans.len()).sum();
        eprintln!("penny-prof: checked {total} spans, {violations} schema violations");
        if violations > 0 {
            std::process::exit(1);
        }
    }

    if let Some((pass, limit)) = assert_share {
        match pass_share(&profiles, &pass) {
            Some(share) if share > limit => {
                eprintln!(
                    "penny-prof: pass `{pass}` share {share:.1}% exceeds limit {limit:.1}%"
                );
                std::process::exit(1);
            }
            Some(share) => {
                eprintln!("penny-prof: pass `{pass}` share {share:.1}% <= {limit:.1}%")
            }
            None => die(&format!("--assert-share: no spans for pass `{pass}`")),
        }
    }
}

/// Parses `PASS:PCT` (e.g. `overwrite-prevention:35`).
fn parse_assert_share(v: &str) -> (String, f64) {
    let Some((pass, pct)) = v.rsplit_once(':') else {
        die("--assert-share needs PASS:PCT");
    };
    let limit: f64 = pct
        .parse()
        .ok()
        .filter(|p: &f64| p.is_finite() && *p >= 0.0)
        .unwrap_or_else(|| die("--assert-share: PCT must be a non-negative number"));
    (pass.to_string(), limit)
}
