//! `penny-prof`: compile and run workloads with the observability layer
//! on, emitting one JSONL span per compiler pass, simulator run, and
//! context field.
//!
//! Usage:
//!
//! ```text
//! penny-prof [--workload ABBR]... [--all-workloads] [--scheme NAME]
//!            [--json] [--summary] [--check]
//! ```
//!
//! * `--workload ABBR` — profile one workload (repeatable);
//! * `--all-workloads` — profile every registered workload;
//! * `--scheme NAME` — compiler/RF scheme: `baseline`, `igpu`,
//!   `bolt-global`, `bolt-auto`, or `penny` (default);
//! * `--json` — emit spans as JSONL on stdout (the default output);
//! * `--summary` — print aggregated pass-timing and run-metric tables
//!   instead of (or after) the JSONL stream;
//! * `--check` — validate every emitted line against the span schema
//!   (`penny_obs::schema`); exit nonzero on any violation.
//!
//! Workloads are compiled directly (bypassing the harness compile
//! cache) so every invocation observes a full pipeline execution.

use std::collections::BTreeMap;

use penny_bench::SchemeId;
use penny_obs::{MemRecorder, Span, SpanKind};
use penny_sim::{Gpu, GpuConfig};
use penny_workloads::Workload;

fn die(msg: &str) -> ! {
    eprintln!("penny-prof: {msg}");
    std::process::exit(2);
}

fn parse_scheme(name: &str) -> SchemeId {
    match name.to_lowercase().as_str() {
        "baseline" => SchemeId::Baseline,
        "igpu" => SchemeId::IGpu,
        "bolt-global" | "bolt_global" => SchemeId::BoltGlobal,
        "bolt-auto" | "bolt_auto" => SchemeId::BoltAuto,
        "penny" => SchemeId::Penny,
        other => die(&format!(
            "unknown scheme `{other}` (baseline|igpu|bolt-global|bolt-auto|penny)"
        )),
    }
}

/// Spans collected for one workload.
struct Profiled {
    abbr: &'static str,
    spans: Vec<Span>,
}

/// Compiles and runs `w` under `scheme` with a live recorder; returns
/// every span the pipeline and simulator emitted.
fn profile(w: &Workload, scheme: SchemeId) -> Profiled {
    let rec = MemRecorder::new();
    let kernel = w.kernel().unwrap_or_else(|e| die(&format!("{}: parse: {e}", w.abbr)));
    let gpu_config = GpuConfig::fermi().with_rf(scheme.rf());
    let cfg = scheme.config().with_launch(w.dims).with_machine(gpu_config.machine);
    let protected = penny_core::compile_observed(&kernel, &cfg, &rec)
        .unwrap_or_else(|e| die(&format!("{}: compile: {e}", w.abbr)));
    let mut gpu = Gpu::new(gpu_config);
    let launch = w.prepare(gpu.global_mut());
    gpu.run_observed(&protected, &launch, &rec)
        .unwrap_or_else(|e| die(&format!("{}: run: {e}", w.abbr)));
    if !w.check(gpu.global()) {
        die(&format!("{}: wrong output under {scheme:?}", w.abbr));
    }
    Profiled { abbr: w.abbr, spans: rec.take() }
}

/// Aggregated pass timing across every profiled workload.
fn pass_summary(profiles: &[Profiled]) -> String {
    use std::fmt::Write as _;
    // pass label -> (spans, total ns)
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Pass) {
            let e = agg.entry(s.label.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.wall_ns;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== Pass timing ({} workloads) ==", profiles.len());
    let _ =
        writeln!(out, "{:<22} {:>7} {:>14} {:>12}", "pass", "spans", "total_ns", "mean_ns");
    for (pass, (n, ns)) in &agg {
        let _ = writeln!(out, "{pass:<22} {n:>7} {ns:>14} {:>12}", ns / n.max(&1));
    }
    out
}

/// Per-workload simulator run metrics.
fn sim_summary(profiles: &[Profiled]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== Simulator runs ==");
    let _ = writeln!(
        out,
        "{:<6} {:>12} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "wkld", "cycles", "skipped", "rf_reads", "rf_writes", "recover", "reexec"
    );
    for p in profiles {
        for s in p.spans.iter().filter(|s| s.kind == SpanKind::Sim) {
            let c = |name: &str| s.counter(name).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<6} {:>12} {:>14} {:>12} {:>12} {:>10} {:>10}",
                p.abbr,
                c("cycles"),
                c("skipped_cycles"),
                c("rf_reads"),
                c("rf_writes"),
                c("recoveries"),
                c("reexec_instructions")
            );
        }
    }
    out
}

fn main() {
    let mut abbrs: Vec<String> = Vec::new();
    let mut all = false;
    let mut scheme = SchemeId::Penny;
    let mut json = false;
    let mut summary = false;
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => {
                abbrs.push(args.next().unwrap_or_else(|| die("--workload needs an ABBR")))
            }
            "--all-workloads" => all = true,
            "--scheme" => {
                scheme = parse_scheme(
                    &args.next().unwrap_or_else(|| die("--scheme needs a NAME")),
                )
            }
            "--json" => json = true,
            "--summary" => summary = true,
            "--check" => check = true,
            other => {
                if let Some(v) = other.strip_prefix("--workload=") {
                    abbrs.push(v.to_string());
                } else if let Some(v) = other.strip_prefix("--scheme=") {
                    scheme = parse_scheme(v);
                } else {
                    die(&format!("unknown argument `{other}`"));
                }
            }
        }
    }
    if !json && !summary {
        json = true; // JSONL is the default output
    }

    let workloads: Vec<Workload> = if all {
        if !abbrs.is_empty() {
            die("--all-workloads conflicts with --workload");
        }
        penny_workloads::all()
    } else if abbrs.is_empty() {
        die("nothing to profile: pass --workload ABBR or --all-workloads")
    } else {
        abbrs
            .iter()
            .map(|a| {
                penny_workloads::by_abbr(a)
                    .unwrap_or_else(|| die(&format!("unknown workload `{a}`")))
            })
            .collect()
    };

    let profiles: Vec<Profiled> = workloads.iter().map(|w| profile(w, scheme)).collect();

    let mut violations = 0u64;
    if json || check {
        let mut stdout = String::new();
        for p in &profiles {
            for s in &p.spans {
                let line =
                    s.to_jsonl_with(&[("workload", p.abbr), ("scheme", scheme.name())]);
                if check {
                    if let Err(e) = penny_obs::schema::validate_line(&line) {
                        eprintln!("penny-prof: schema violation: {e}\n  in: {line}");
                        violations += 1;
                    }
                }
                if json {
                    stdout.push_str(&line);
                    stdout.push('\n');
                }
            }
        }
        print!("{stdout}");
    }

    if summary {
        print!("{}", pass_summary(&profiles));
        print!("{}", sim_summary(&profiles));
    }

    if check {
        let total: usize = profiles.iter().map(|p| p.spans.len()).sum();
        eprintln!("penny-prof: checked {total} spans, {violations} schema violations");
        if violations > 0 {
            std::process::exit(1);
        }
    }
}
